//! `dcl1-sim` — command-line front end to the simulator.
//!
//! ```text
//! dcl1-sim [--app NAME | --trace FILE] [--design NAME]... [options]
//!
//!   --app NAME          workload from the 28-app catalog (default T-AlexNet)
//!   --trace FILE        replay a recorded .dcl1trc trace instead
//!   --design NAME       design to run; repeatable (default baseline + sh40+c10+boost)
//!                       names: baseline, ideal, pr40, sh40, sh40+c10,
//!                       sh40+c10+boost, cdxbar, baseline+2xl1, ...
//!   --scale S           full | quarter | smoke (default quarter)
//!   --cores N           core count (default 80; must fit the design)
//!   --l1-kb N           per-core L1 capacity in KiB (default 16)
//!   --latency N         override L1/DC-L1 access latency
//!   --perfect           perfect (always-hit) L1s
//!   --gto               greedy-then-oldest wavefront scheduler
//!   --distributed-ctas  block-distributed CTA scheduler
//!   --no-warmup         measure from cold (default: warm first third)
//!   --csv               emit CSV instead of a table
//! ```

use dcl1_repro::bench::Table;
use dcl1_repro::dcl1::{Design, GpuConfig, GpuSystem, RunStats, SimOptions};
use dcl1_repro::gpu::{CtaPolicy, IssuePolicy, TraceFactory};
use dcl1_repro::workloads::{all_apps, by_name, FileTraceFactory};

fn fail(msg: &str) -> ! {
    eprintln!("dcl1-sim: {msg}");
    eprintln!("run with --help for usage");
    std::process::exit(2);
}

fn main() {
    let mut app_name = "T-AlexNet".to_string();
    let mut trace_path: Option<String> = None;
    let mut designs: Vec<Design> = Vec::new();
    let mut scale = (1u32, 4u32);
    let mut cfg = GpuConfig::default();
    let mut opts = SimOptions::default();
    let mut warmup = true;
    let mut csv = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut value = |name: &str| -> String {
            args.next().unwrap_or_else(|| fail(&format!("{name} needs a value")))
        };
        match a.as_str() {
            "--help" | "-h" => {
                println!("{}", HELP);
                return;
            }
            "--list-apps" => {
                for app in all_apps() {
                    println!(
                        "{:14} {:10} {}",
                        app.name,
                        format!("{:?}", app.suite),
                        if app.replication_sensitive { "replication-sensitive" } else { "" }
                    );
                }
                return;
            }
            "--app" => app_name = value("--app"),
            "--trace" => trace_path = Some(value("--trace")),
            "--design" => {
                let name = value("--design");
                designs.push(name.parse().unwrap_or_else(|e| fail(&format!("{e}"))));
            }
            "--scale" => {
                scale = match value("--scale").as_str() {
                    "full" => (1, 1),
                    "quarter" => (1, 4),
                    "smoke" => (1, 16),
                    other => fail(&format!("unknown scale {other}")),
                }
            }
            "--cores" => {
                cfg.cores = value("--cores").parse().unwrap_or_else(|_| fail("bad --cores"))
            }
            "--l1-kb" => {
                let kb: usize = value("--l1-kb").parse().unwrap_or_else(|_| fail("bad --l1-kb"));
                cfg.l1_bytes = kb * 1024;
            }
            "--latency" => {
                opts.l1_latency_override =
                    Some(value("--latency").parse().unwrap_or_else(|_| fail("bad --latency")))
            }
            "--perfect" => opts.perfect_l1 = true,
            "--gto" => cfg.issue_policy = IssuePolicy::GreedyThenOldest,
            "--distributed-ctas" => opts.cta_policy = CtaPolicy::DistributedBlocks,
            "--no-warmup" => warmup = false,
            "--csv" => csv = true,
            other => fail(&format!("unknown argument {other}")),
        }
    }
    if designs.is_empty() {
        designs = vec![Design::Baseline, Design::flagship(&cfg)];
    }

    // Resolve the workload.
    let replay;
    let spec;
    let factory: &dyn TraceFactory = match &trace_path {
        Some(p) => {
            replay = FileTraceFactory::load(p)
                .unwrap_or_else(|e| fail(&format!("cannot load trace {p}: {e}")));
            &replay
        }
        None => {
            spec = by_name(&app_name)
                .unwrap_or_else(|| fail(&format!("unknown app {app_name}; try --list-apps")))
                .scaled(scale.0, scale.1);
            if warmup {
                opts.warmup_instructions = spec.total_instructions() / 3;
            }
            &spec
        }
    };

    let mut table = Table::new(
        format!("{app_name}: {} designs on {} cores", designs.len(), cfg.cores),
        &["design", "cycles", "IPC", "miss", "repl", "rtt_p50", "rtt_p95", "dram"],
    );
    let mut base_ipc: Option<f64> = None;
    for design in &designs {
        let mut sys = GpuSystem::build(&cfg, design, factory, opts)
            .unwrap_or_else(|e| fail(&format!("{}: {e}", design.name())));
        let stats: RunStats = sys.run();
        let ipc = stats.ipc();
        let norm = match base_ipc {
            None => {
                base_ipc = Some(ipc);
                1.0
            }
            Some(b) => ipc / b,
        };
        table.row(
            stats.design.clone(),
            vec![
                stats.cycles.to_string(),
                format!("{ipc:.2} ({norm:.2}x)"),
                format!("{:.3}", stats.l1_miss_rate()),
                format!("{:.3}", stats.replication_ratio()),
                stats.p50_load_rtt.to_string(),
                stats.p95_load_rtt.to_string(),
                stats.dram_requests.to_string(),
            ],
        );
    }
    if csv {
        print!("{}", table.to_csv());
    } else {
        println!("{table}");
    }
}

const HELP: &str = "dcl1-sim — DC-L1 GPU cache-hierarchy simulator
usage: dcl1-sim [--app NAME | --trace FILE] [--design NAME]... [options]
  --app NAME          workload from the 28-app catalog (default T-AlexNet)
  --list-apps         print the catalog and exit
  --trace FILE        replay a recorded .dcl1trc trace
  --design NAME       repeatable: baseline | ideal | prY | shY | shY+cZ |
                      shY+cZ+boost | cdxbar[+2xnoc1|+2xnoc] |
                      baseline+2xl1 | baseline+2xnoc | baseline+4xflit
  --scale S           full | quarter | smoke    (default quarter)
  --cores N           core count                (default 80)
  --l1-kb N           per-core L1 KiB           (default 16)
  --latency N         L1/DC-L1 access latency override
  --perfect           perfect (always-hit) L1s
  --gto               greedy-then-oldest wavefront scheduler
  --distributed-ctas  block-distributed CTA scheduler
  --no-warmup         measure from cold
  --csv               CSV output";
