//! Umbrella crate for the DC-L1 reproduction: re-exports every workspace
//! crate under one roof so the repository-level `examples/` and `tests/`
//! can exercise the whole system.
//!
//! * [`dcl1`] — the paper's contribution: DC-L1 designs + full simulator;
//! * [`workloads`] — the 28 calibrated GPGPU applications;
//! * [`bench`](crate::bench) — the experiment harness regenerating every figure/table;
//! * [`cache`] / [`noc`] / [`mem`] / [`gpu`] / [`power`] / [`common`] —
//!   the substrates;
//! * [`obs`](crate::obs) — transaction tracing and time-series metrics.
//!
//! # Examples
//!
//! ```
//! use dcl1_repro::dcl1::{Design, GpuConfig};
//!
//! let cfg = GpuConfig::default();
//! let flagship = Design::flagship(&cfg);
//! assert_eq!(flagship.name(), "Sh40+C10+Boost");
//! ```

#![warn(missing_docs)]

pub use dcl1;
pub use dcl1_bench as bench;
pub use dcl1_cache as cache;
pub use dcl1_common as common;
pub use dcl1_gpu as gpu;
pub use dcl1_mem as mem;
pub use dcl1_noc as noc;
pub use dcl1_obs as obs;
pub use dcl1_power as power;
pub use dcl1_workloads as workloads;
