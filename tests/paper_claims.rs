//! Qualitative paper-claim checks on the real 80-core machine.
//!
//! These run the full-size GPU, so they are `#[ignore]`d by default and
//! meant for release mode:
//!
//! ```bash
//! cargo test --release --test paper_claims -- --ignored
//! ```

#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use dcl1_repro::dcl1::{Design, GpuConfig, GpuSystem, RunStats, SimOptions};
use dcl1_repro::workloads::by_name;

fn run(app: &str, design: Design) -> RunStats {
    let spec = by_name(app).unwrap().scaled(1, 8);
    let cfg = GpuConfig::default();
    let opts = SimOptions {
        warmup_instructions: spec.total_instructions() / 3,
        ..SimOptions::default()
    };
    let mut sys = GpuSystem::build(&cfg, &design, &spec, opts).expect("build");
    let stats = sys.run();
    assert!(stats.cycles < opts.max_cycles, "{app} on {} hung", stats.design);
    stats
}

/// Paper Fig 1: Tango's AlexNet has ~95% replication ratio; BlackScholes
/// has none.
#[test]
#[ignore = "full-size machine; run with --release -- --ignored"]
fn replication_ratio_extremes_match_fig1() {
    let alex = run("T-AlexNet", Design::Baseline);
    assert!(alex.replication_ratio() > 0.8, "AlexNet repl {}", alex.replication_ratio());
    let blk = run("C-BLK", Design::Baseline);
    assert!(blk.replication_ratio() < 0.05, "C-BLK repl {}", blk.replication_ratio());
}

/// Paper §V-B: the shared organization eliminates cross-L1 replication
/// and collapses the miss rate of replication-sensitive apps.
#[test]
#[ignore = "full-size machine; run with --release -- --ignored"]
fn sh40_eliminates_replication_and_cuts_misses() {
    let base = run("T-AlexNet", Design::Baseline);
    let sh = run("T-AlexNet", Design::Shared { nodes: 40 });
    assert!(sh.replication_ratio() < 0.01);
    assert!(
        sh.l1_miss_rate() < 0.5 * base.l1_miss_rate(),
        "Sh40 miss {} vs base {}",
        sh.l1_miss_rate(),
        base.l1_miss_rate()
    );
    assert!(sh.ipc() > 1.3 * base.ipc(), "Sh40 should speed AlexNet up");
}

/// Paper §VI: clustering bounds replicas to the cluster count.
#[test]
#[ignore = "full-size machine; run with --release -- --ignored"]
fn clustering_bounds_replicas() {
    let c10 = run("T-AlexNet", Design::Clustered { nodes: 40, clusters: 10, boost: false });
    assert!(c10.mean_replicas <= 10.0 + 0.5, "replicas {}", c10.mean_replicas);
    let base = run("T-AlexNet", Design::Baseline);
    assert!(base.mean_replicas > c10.mean_replicas);
}

/// Paper Fig 13a / §VI-C: the bandwidth-sensitive poor performer
/// (P-2DCONV) drops under the clustered design and recovers with Boost.
#[test]
#[ignore = "full-size machine; run with --release -- --ignored"]
fn boost_recovers_bandwidth_sensitive_apps()
{
    let base = run("P-2DCONV", Design::Baseline);
    let c10 = run("P-2DCONV", Design::Clustered { nodes: 40, clusters: 10, boost: false });
    let boost = run("P-2DCONV", Design::Clustered { nodes: 40, clusters: 10, boost: true });
    assert!(c10.ipc() < 0.8 * base.ipc(), "C10 should hurt P-2DCONV");
    assert!(boost.ipc() > 1.2 * c10.ipc(), "Boost should recover P-2DCONV");
}

/// Paper §V-B: partition camping — the camped striped apps collapse under
/// the fully shared design but not at baseline, and clustering relieves
/// the hotspot.
#[test]
#[ignore = "full-size machine; run with --release -- --ignored"]
fn partition_camping_story() {
    let base = run("P-GEMM", Design::Baseline);
    let sh = run("P-GEMM", Design::Shared { nodes: 40 });
    let c10 = run("P-GEMM", Design::Clustered { nodes: 40, clusters: 10, boost: true });
    assert!(sh.ipc() < 0.7 * base.ipc(), "Sh40 must camp P-GEMM");
    assert!(c10.ipc() > sh.ipc(), "clustering must relieve camping");
    // The load imbalance across nodes is visibly worse under Sh40.
    assert!(sh.node_load_imbalance() > 2.0, "imbalance {}", sh.node_load_imbalance());
}

/// Paper Table I / Fig 4a: Pr80 performs close to baseline despite the
/// 4× peak-bandwidth drop (latency tolerance).
#[test]
#[ignore = "full-size machine; run with --release -- --ignored"]
fn pr80_close_to_baseline() {
    let base = run("C-BLK", Design::Baseline);
    let pr80 = run("C-BLK", Design::Private { nodes: 80 });
    let ratio = pr80.ipc() / base.ipc();
    assert!(ratio > 0.9, "Pr80/baseline {ratio}");
}
