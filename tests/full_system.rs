//! Repository-level integration tests: every crate working together on
//! the small test machine.

use dcl1_repro::dcl1::{Design, GpuConfig, GpuSystem, SimOptions};
use dcl1_repro::gpu::{
    MemAccess, MemInstr, MemKind, TraceFactory, TraceSource, WavefrontInstr,
};
use dcl1_repro::common::{LineAddr, SplitMix64};

/// A moderately mixed kernel exercising loads, stores, atomics and aux
/// traffic over shared and streaming regions.
#[derive(Debug)]
struct MixedKernel;

#[derive(Debug)]
struct MixedTrace {
    rng: SplitMix64,
    uid: u64,
    i: u32,
    cursor: u64,
}

impl TraceSource for MixedTrace {
    fn next_instr(&mut self) -> WavefrontInstr {
        self.i += 1;
        if self.i > 48 {
            return WavefrontInstr::Done;
        }
        if self.rng.chance(0.5) {
            return WavefrontInstr::Alu { latency: 2 };
        }
        let r = self.rng.next_f64();
        let (kind, line) = if r < 0.05 {
            (MemKind::Aux, 900_000 + self.rng.next_below(64))
        } else if r < 0.10 {
            (MemKind::Atomic, 910_000 + self.rng.next_below(8))
        } else if r < 0.25 {
            (MemKind::Store, self.rng.next_below(192))
        } else if r < 0.70 {
            (MemKind::Load, self.rng.next_below(192)) // shared region
        } else {
            self.cursor += 1;
            (MemKind::Load, 1_000_000 + self.uid * 977 + self.cursor)
        };
        WavefrontInstr::Mem(MemInstr {
            kind,
            accesses: vec![MemAccess { line: LineAddr::new(line), bytes: 64 }],
        })
    }
}

impl TraceFactory for MixedKernel {
    fn wavefront_trace(&self, cta: u32, wf: u32) -> Box<dyn TraceSource> {
        let uid = cta as u64 * 2 + wf as u64;
        Box::new(MixedTrace { rng: SplitMix64::new(17).split(uid), uid, i: 0, cursor: 0 })
    }
    fn total_ctas(&self) -> u32 {
        24
    }
    fn wavefronts_per_cta(&self) -> u32 {
        2
    }
}

const EXPECTED_INSTRS: u64 = 24 * 2 * 48;

fn run(design: Design, opts: SimOptions) -> dcl1_repro::dcl1::RunStats {
    let cfg = GpuConfig::small_test();
    let mut sys = GpuSystem::build(&cfg, &design, &MixedKernel, opts).expect("build");
    let stats = sys.run();
    assert!(stats.cycles < opts.max_cycles, "{} did not drain", stats.design);
    stats
}

#[test]
fn mixed_traffic_flows_through_the_flagship_design() {
    let stats = run(
        Design::Clustered { nodes: 4, clusters: 2, boost: true },
        SimOptions { max_cycles: 1_000_000, ..SimOptions::default() },
    );
    assert_eq!(stats.instructions, EXPECTED_INSTRS);
    assert!(stats.l1_accesses > 0);
    assert!(stats.l2_accesses > 0);
    assert!(stats.dram_requests > 0);
    assert!(stats.mean_load_rtt > 0.0);
    assert!(!stats.noc_flits.is_empty());
    assert!(stats.noc_flits.iter().all(|&f| f > 0), "both NoCs must carry traffic");
}

#[test]
fn warmup_reset_preserves_work_but_shrinks_measured_window() {
    let cold = run(
        Design::Baseline,
        SimOptions { max_cycles: 1_000_000, ..SimOptions::default() },
    );
    let warm = run(
        Design::Baseline,
        SimOptions {
            max_cycles: 1_000_000,
            warmup_instructions: EXPECTED_INSTRS / 2,
            ..SimOptions::default()
        },
    );
    // The warm run measures only the post-warmup window.
    assert!(warm.instructions < cold.instructions);
    assert!(warm.instructions > 0);
    assert!(warm.cycles < cold.cycles);
    // Warm measurement can only improve the apparent hit rate.
    assert!(warm.l1_miss_rate() <= cold.l1_miss_rate() + 0.05);
}

#[test]
fn boost_never_hurts() {
    let plain = run(
        Design::Clustered { nodes: 4, clusters: 2, boost: false },
        SimOptions { max_cycles: 1_000_000, ..SimOptions::default() },
    );
    let boosted = run(
        Design::Clustered { nodes: 4, clusters: 2, boost: true },
        SimOptions { max_cycles: 1_000_000, ..SimOptions::default() },
    );
    assert!(
        boosted.cycles <= plain.cycles + plain.cycles / 20,
        "boost made things worse: {} vs {}",
        boosted.cycles,
        plain.cycles
    );
}

#[test]
fn run_stats_are_internally_consistent() {
    let stats = run(
        Design::Shared { nodes: 4 },
        SimOptions { max_cycles: 1_000_000, ..SimOptions::default() },
    );
    assert_eq!(stats.l1_hits + stats.l1_misses, stats.l1_accesses);
    assert!(stats.l1_replicated_misses <= stats.l1_misses);
    assert!(stats.l2_misses <= stats.l2_accesses);
    assert_eq!(
        stats.per_node_accesses.iter().sum::<u64>(),
        stats.l1_accesses,
        "per-node accesses must sum to the total"
    );
    assert!((0.0..=1.0).contains(&stats.dram_row_hit_rate));
    assert!(stats.max_port_utilization >= stats.mean_port_utilization);
}

#[test]
fn power_model_composes_with_simulation_output() {
    use dcl1_repro::power::{CrossbarModel, EnergyReport};
    let cfg = GpuConfig::small_test();
    let design = Design::Clustered { nodes: 4, clusters: 2, boost: true };
    let mut sys = GpuSystem::build(&cfg, &design, &MixedKernel, SimOptions::default()).unwrap();
    let stats = sys.run();
    let spec = design.topology(&cfg).unwrap().noc_spec(&cfg);
    assert_eq!(spec.xbars.len(), stats.noc_flits.len(), "flit groups align with the NoC spec");
    let report = EnergyReport::new(
        &CrossbarModel::default(),
        &spec,
        &stats.noc_flits,
        stats.seconds(cfg.core_mhz),
        stats.instructions,
    );
    assert!(report.power.static_mw > 0.0);
    assert!(report.power.dynamic_mw > 0.0);
    assert!(report.perf_per_watt() > 0.0);
}
