//! End-to-end determinism: a run is a pure function of
//! (app, design, config, options, scale).
//!
//! Two direct machine builds must produce bit-identical [`RunStats`], and
//! the parallel runner must return the same results regardless of worker
//! count — with its memoized values matching a fresh simulation.

use dcl1::{Design, GpuConfig, GpuSystem, RunStats, SimOptions};
use dcl1_bench::runner::{self, RunRequest};
use dcl1_bench::Scale;
use dcl1_workloads::by_name;

/// Simulates one point directly, bypassing the runner's memo layers.
/// Mirrors `run_app`'s scaling and default-warmup policy so results are
/// comparable with the memoized path.
fn simulate_fresh(req: &RunRequest, scale: Scale) -> RunStats {
    let (num, den) = scale.ratio();
    let app = req.app.scaled(num, den);
    let mut opts = req.opts;
    if opts.warmup_instructions == 0 {
        opts.warmup_instructions = app.total_instructions() / 3;
    }
    let mut sys =
        GpuSystem::build(&req.cfg, &req.design, &app, opts).expect("design resolves");
    sys.run()
}

#[test]
fn same_seed_same_stats_across_two_runs() {
    let app = by_name("C-BLK").expect("catalog app");
    for design in [
        Design::Baseline,
        Design::Shared { nodes: 40 },
        Design::flagship(&GpuConfig::default()),
    ] {
        let req = RunRequest::new(app, design);
        let a = simulate_fresh(&req, Scale::Smoke);
        let b = simulate_fresh(&req, Scale::Smoke);
        assert_eq!(a, b, "{}: two identical runs diverged", a.design);
        assert!(a.instructions > 0, "{}: empty run", a.design);
    }
}

#[test]
fn fast_forward_does_not_change_stats() {
    let app = by_name("C-BFS").expect("catalog app");
    let mut req = RunRequest::new(app, Design::Shared { nodes: 40 });
    req.opts = SimOptions { fast_forward: false, ..SimOptions::default() };
    let stepped = simulate_fresh(&req, Scale::Smoke);
    req.opts.fast_forward = true;
    let ff = simulate_fresh(&req, Scale::Smoke);
    assert_eq!(stepped, ff, "idle fast-forward changed results");
}

#[test]
fn worker_count_does_not_change_stats() {
    // Redirect the disk cache so stale entries from other binaries can't
    // leak into the comparison (the env var is read per call; this test
    // binary is its own process).
    let dir = std::env::temp_dir().join("dcl1-determinism-cache");
    let _ = std::fs::remove_dir_all(&dir);
    std::env::set_var("DCL1_CACHE_DIR", &dir);

    let reqs: Vec<RunRequest> = ["C-BLK", "C-BFS", "P-GEMM"]
        .iter()
        .map(|n| RunRequest::new(by_name(n).expect("catalog app"), Design::Baseline))
        .collect();

    let serial = runner::run_apps_with_workers(&reqs, Scale::Smoke, 1);
    let parallel = runner::run_apps_with_workers(&reqs, Scale::Smoke, 4);
    assert_eq!(serial, parallel, "worker count changed results");

    for (req, got) in reqs.iter().zip(&serial) {
        let fresh = simulate_fresh(req, Scale::Smoke);
        assert_eq!(&fresh, got, "{}: memoized result differs from a fresh run", got.design);
    }

    let _ = std::fs::remove_dir_all(&dir);
}
