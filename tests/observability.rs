//! End-to-end observability: run a small kernel with tracing and metrics
//! attached, then validate the Chrome trace JSON and the metrics JSONL —
//! schema shape, span-phase coverage per sampled load, sampling cadence —
//! and check that attaching an observer does not perturb the simulation.

// Integration test: unwraps on fixture setup are the right failure mode.
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use dcl1_repro::common::{LineAddr, SplitMix64};
use dcl1_repro::dcl1::{
    Design, GpuConfig, GpuSystem, MetricsFormat, Observer, SimOptions,
};
use dcl1_repro::gpu::{MemAccess, MemInstr, MemKind, TraceFactory, TraceSource, WavefrontInstr};
use dcl1_repro::obs::json::Json;
use std::collections::{BTreeSet, HashMap};
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

/// An in-memory sink the test can read back after the run.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    fn text(&self) -> String {
        String::from_utf8(self.0.lock().unwrap().clone()).unwrap()
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Load-heavy kernel: mostly shared-region loads with some streaming
/// misses, a few stores, and ALU gaps.
#[derive(Debug)]
struct LoadKernel;

#[derive(Debug)]
struct LoadTrace {
    rng: SplitMix64,
    uid: u64,
    i: u32,
    cursor: u64,
}

impl TraceSource for LoadTrace {
    fn next_instr(&mut self) -> WavefrontInstr {
        self.i += 1;
        if self.i > 40 {
            return WavefrontInstr::Done;
        }
        if self.rng.chance(0.4) {
            return WavefrontInstr::Alu { latency: 2 };
        }
        let r = self.rng.next_f64();
        let (kind, line) = if r < 0.15 {
            (MemKind::Store, self.rng.next_below(128))
        } else if r < 0.60 {
            (MemKind::Load, self.rng.next_below(128))
        } else {
            self.cursor += 1;
            (MemKind::Load, 500_000 + self.uid * 131 + self.cursor)
        };
        WavefrontInstr::Mem(MemInstr {
            kind,
            accesses: vec![MemAccess { line: LineAddr::new(line), bytes: 64 }],
        })
    }
}

impl TraceFactory for LoadKernel {
    fn wavefront_trace(&self, cta: u32, wf: u32) -> Box<dyn TraceSource> {
        let uid = cta as u64 * 2 + wf as u64;
        Box::new(LoadTrace { rng: SplitMix64::new(23).split(uid), uid, i: 0, cursor: 0 })
    }
    fn total_ctas(&self) -> u32 {
        16
    }
    fn wavefronts_per_cta(&self) -> u32 {
        2
    }
}

fn run_observed(design: &Design) -> (SharedBuf, SharedBuf, dcl1::RunStats) {
    let trace_buf = SharedBuf::default();
    let metrics_buf = SharedBuf::default();
    let obs = Observer::disabled()
        .with_trace(Box::new(trace_buf.clone()), 1)
        .unwrap()
        .with_metrics(Box::new(metrics_buf.clone()), 64, MetricsFormat::Jsonl);
    let cfg = GpuConfig::small_test();
    let mut sys = GpuSystem::build(&cfg, design, &LoadKernel, SimOptions::default()).unwrap();
    sys.attach_observer(obs);
    let stats = sys.run();
    (trace_buf, metrics_buf, stats)
}

#[test]
fn trace_json_is_schema_valid_with_full_span_chains() {
    for design in [Design::Baseline, Design::Shared { nodes: 4 }] {
        let (trace_buf, _, stats) = run_observed(&design);
        assert!(stats.instructions > 0);

        let doc = Json::parse(&trace_buf.text()).expect("trace must be valid JSON");
        assert_eq!(doc.get("displayTimeUnit").and_then(Json::as_str), Some("ms"));
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        assert!(!events.is_empty(), "no spans recorded ({design:?})");

        // Every event is a complete ("X") span with the required fields.
        let mut phases_by_txn: HashMap<u64, BTreeSet<String>> = HashMap::new();
        let mut load_txns = BTreeSet::new();
        for ev in events {
            assert_eq!(ev.get("ph").and_then(Json::as_str), Some("X"));
            let name = ev.get("name").and_then(Json::as_str).expect("name");
            assert!(ev.get("ts").and_then(Json::as_f64).is_some());
            assert!(ev.get("dur").and_then(Json::as_f64).unwrap() >= 1.0);
            assert!(ev.get("pid").and_then(Json::as_f64).is_some());
            let tid = ev.get("tid").and_then(Json::as_f64).expect("tid") as u64;
            let args = ev.get("args").expect("args");
            assert!(args.get("core").and_then(Json::as_f64).is_some());
            assert!(args.get("line").and_then(Json::as_f64).is_some());
            let kind = args.get("kind").and_then(Json::as_str).expect("kind");
            if kind == "load" {
                load_txns.insert(tid);
            }
            phases_by_txn.entry(tid).or_default().insert(name.to_string());
        }

        // Each sampled load walks at least four distinct lifecycle phases
        // (e.g. coalesce → l1_queue → dcl1_hit/dcl1_miss → … → reply).
        assert!(!load_txns.is_empty());
        for tid in &load_txns {
            let phases = &phases_by_txn[tid];
            assert!(
                phases.len() >= 4,
                "load txn {tid} has only phases {phases:?} ({design:?})"
            );
            assert!(phases.contains("coalesce"), "txn {tid} missing coalesce");
            assert!(phases.contains("reply"), "txn {tid} missing reply");
        }

        // Misses must additionally traverse the L2 side of the machine.
        let miss_phases: BTreeSet<&str> = phases_by_txn
            .values()
            .filter(|p| p.contains("dcl1_miss"))
            .flat_map(|p| p.iter().map(String::as_str))
            .collect();
        for required in ["noc2_req", "l2", "noc2_rep"] {
            assert!(miss_phases.contains(required), "no miss span hit {required}");
        }
    }
}

#[test]
fn metrics_jsonl_parses_and_samples_on_cadence() {
    let (_, metrics_buf, _) = run_observed(&Design::Baseline);
    let text = metrics_buf.text();
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty(), "no metrics samples recorded");
    let mut prev_cycle = 0;
    for line in &lines {
        let doc = Json::parse(line).expect("metrics line must be valid JSON");
        let cycle = doc.get("cycle").and_then(Json::as_f64).expect("cycle") as u64;
        assert!(cycle.is_multiple_of(64), "sample off the 64-cycle cadence: {cycle}");
        assert!(cycle > prev_cycle || prev_cycle == 0, "cycles must increase");
        prev_cycle = cycle;
        for field in ["outbox_depth", "node_mshr", "active_wavefronts", "instructions"] {
            assert!(doc.get(field).and_then(Json::as_f64).is_some(), "missing {field}");
        }
    }
}

#[test]
fn observer_does_not_perturb_results() {
    let cfg = GpuConfig::small_test();
    for design in [Design::Baseline, Design::Shared { nodes: 4 }] {
        let mut plain = GpuSystem::build(&cfg, &design, &LoadKernel, SimOptions::default()).unwrap();
        let baseline = plain.run();
        let (_, _, observed) = run_observed(&design);
        assert_eq!(baseline, observed, "observer changed simulation results ({design:?})");
    }
}
