//! Cheap (no-simulation) checks that the workload catalog encodes the
//! paper's application taxonomy and that it composes with the design and
//! power crates.

use dcl1_repro::dcl1::{Design, GpuConfig};
use dcl1_repro::power::CrossbarModel;
use dcl1_repro::workloads::{all_apps, poor_performing, replication_sensitive, STRIPE_LINES};

#[test]
fn suite_prefixes_match_suites() {
    use dcl1_repro::workloads::Suite;
    for app in all_apps() {
        let expect = match app.suite {
            Suite::CudaSdk => "C-",
            Suite::Rodinia => "R-",
            Suite::Shoc => "S-",
            Suite::PolyBench => "P-",
            Suite::Tango => "T-",
        };
        assert!(app.name.starts_with(expect), "{} vs {:?}", app.name, app.suite);
    }
}

#[test]
fn capacity_taxonomy_against_machine_capacities() {
    // Machine capacities in lines on the default config.
    let cfg = GpuConfig::default();
    let l1_lines = (cfg.l1_bytes / cfg.line_bytes) as u64; // 128
    let flagship = Design::flagship(&cfg).topology(&cfg).unwrap();
    let cluster_lines = (flagship.node_bytes(&cfg) / cfg.line_bytes) as u64
        * flagship.nodes_per_cluster() as u64; // 1024
    let total_lines = (cfg.total_l1_bytes() / cfg.line_bytes) as u64; // 10240

    // Every replication-sensitive app's shared region must exceed one L1
    // (otherwise replication wouldn't cost capacity) yet fit in the total
    // budget (otherwise sharing couldn't recover it).
    for app in replication_sensitive() {
        assert!(app.shared_lines > l1_lines, "{}: region fits one L1", app.name);
        assert!(app.shared_lines <= total_lines, "{}: region exceeds budget", app.name);
    }
    // The paper's "Sh40-only" winners exceed a cluster's reach.
    for name in ["S-Reduction", "P-SYRK"] {
        let app = all_apps().into_iter().find(|a| a.name == name).unwrap();
        assert!(app.shared_lines > cluster_lines, "{name} must exceed a cluster");
    }
    // The Tango CNNs fit within a cluster (they win under Sh40+C10 too).
    for name in ["T-AlexNet", "T-ResNet", "T-SqueezeNet"] {
        let app = all_apps().into_iter().find(|a| a.name == name).unwrap();
        assert!(app.shared_lines <= cluster_lines, "{name} must fit a cluster");
    }
}

#[test]
fn camping_stripe_is_consistent_with_all_interleaves() {
    let cfg = GpuConfig::default();
    // The stripe stride must be a multiple of every home/slice interleave
    // of the evaluated designs so camped lines share a home everywhere.
    for d in [
        Design::Shared { nodes: 40 },
        Design::Clustered { nodes: 40, clusters: 10, boost: false },
        Design::Clustered { nodes: 40, clusters: 5, boost: false },
        Design::Clustered { nodes: 40, clusters: 20, boost: false },
    ] {
        let topo = d.topology(&cfg).unwrap();
        assert_eq!(
            STRIPE_LINES % topo.nodes_per_cluster() as u64,
            0,
            "{}: stripe not aligned to home interleave",
            d.name()
        );
    }
    assert_eq!(STRIPE_LINES % cfg.l2_slices as u64, 0, "stripe vs L2 slices");
}

#[test]
fn poor_performers_have_a_modelled_cause() {
    // Each of the five Fig 9 poor performers must carry at least one of
    // the mechanisms the paper names: camping, bandwidth pressure, or
    // latency sensitivity (low occupancy).
    for app in poor_performing() {
        let camped = app.striped_private || app.home_skew > 0.0;
        let bandwidth = app.mem_fraction >= 0.6 && app.private_hot_fraction >= 0.8;
        let latency = (app.wavefronts_per_cta * 6) < 48 / 2 + 1; // low occupancy
        assert!(
            camped || bandwidth || latency,
            "{}: no poor-performance mechanism modelled",
            app.name
        );
    }
}

#[test]
fn every_design_used_by_the_paper_resolves_and_prices() {
    let cfg = GpuConfig::default();
    let model = CrossbarModel::default();
    let designs = [
        Design::Baseline,
        Design::IdealSingleL1,
        Design::Private { nodes: 80 },
        Design::Private { nodes: 40 },
        Design::Private { nodes: 20 },
        Design::Private { nodes: 10 },
        Design::Shared { nodes: 40 },
        Design::Clustered { nodes: 40, clusters: 5, boost: false },
        Design::Clustered { nodes: 40, clusters: 10, boost: false },
        Design::Clustered { nodes: 40, clusters: 10, boost: true },
        Design::Clustered { nodes: 40, clusters: 20, boost: false },
        Design::CdXbar { stage1_mult: 1, stage2_mult: 1 },
    ];
    for d in designs {
        let topo = d.topology(&cfg).unwrap_or_else(|e| panic!("{}: {e}", d.name()));
        let spec = topo.noc_spec(&cfg);
        assert!(!spec.xbars.is_empty() || matches!(d, Design::IdealSingleL1));
        let area = model.noc_area_mm2(&spec);
        assert!(area >= 0.0 && area.is_finite(), "{}: bad area", d.name());
    }
    // And the 120-core scaling config.
    let cfg120 = GpuConfig::scaled_120();
    Design::flagship(&cfg120).topology(&cfg120).unwrap();
}
