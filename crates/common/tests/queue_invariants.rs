//! Property tests for `BoundedQueue`'s conservation instrumentation: under
//! random operation sequences the queue never exceeds capacity and always
//! satisfies `accepted == popped + len` (the invariant the checked-sim
//! harness sweeps each epoch), and the `FlowMeter` hook behind it panics
//! on underflow in debug builds while staying a reportable error in
//! release.

#![allow(clippy::cast_possible_truncation)] // test values are tiny

use dcl1_common::{BoundedQueue, FlowMeter, SplitMix64};

#[test]
fn random_ops_conserve_items_and_respect_capacity() {
    for seed in 0..16u64 {
        let mut rng = SplitMix64::new(0x9E37_79B9_7F4A_7C15 ^ seed);
        let cap = 1 + (rng.next_u64() % 8) as usize;
        let mut q: BoundedQueue<u64> = BoundedQueue::new(cap);
        let mut model: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
        for step in 0..2000u64 {
            match rng.next_u64() % 3 {
                0 => {
                    let pushed = q.try_push(step).is_ok();
                    assert_eq!(pushed, model.len() < cap, "push admission mismatch");
                    if pushed {
                        model.push_back(step);
                    }
                }
                1 => {
                    assert_eq!(q.pop(), model.pop_front(), "pop mismatch");
                }
                _ => {
                    if !model.is_empty() {
                        let at = (rng.next_u64() as usize) % model.len();
                        assert_eq!(q.remove_at(at), model.remove(at), "remove_at mismatch");
                    }
                }
            }
            assert!(q.len() <= cap, "capacity exceeded");
            assert_eq!(q.accepted(), q.popped() + q.len() as u64, "conservation broke");
            q.check_conservation("prop.queue").expect("invariant check");
        }
    }
}

#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "underflow")]
fn flowmeter_underflow_panics_in_checked_builds() {
    let mut m = FlowMeter::new("txns");
    m.produce(1);
    m.consume(1);
    m.consume(1); // nothing left in flight
}

#[cfg(not(debug_assertions))]
#[test]
fn flowmeter_underflow_reports_in_release_builds() {
    let mut m = FlowMeter::new("txns");
    m.produce(1);
    m.consume(2);
    let err = m.check(0).expect_err("underflow must be reported");
    assert!(err.detail.contains("underflow"), "{err}");
}

#[test]
fn flowmeter_leak_is_reported_not_panicked() {
    let mut m = FlowMeter::new("txns");
    m.produce(3);
    m.consume(1);
    let err = m.check_drained().expect_err("2 in flight is a leak at drain");
    assert!(err.detail.contains("leak"), "{err}");
}
