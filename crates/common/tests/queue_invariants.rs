//! Property tests for `BoundedQueue`'s conservation instrumentation: under
//! random operation sequences the queue never exceeds capacity and always
//! satisfies `accepted == popped + len` (the invariant the checked-sim
//! harness sweeps each epoch), and the `FlowMeter` hook behind it panics
//! on underflow in debug builds while staying a reportable error in
//! release.

#![allow(clippy::cast_possible_truncation)] // test values are tiny

use dcl1_common::{BoundedQueue, FlatMap, FlatSet, FlowMeter, SplitMix64};
use std::collections::{BTreeMap, BTreeSet};

#[test]
fn random_ops_conserve_items_and_respect_capacity() {
    for seed in 0..16u64 {
        let mut rng = SplitMix64::new(0x9E37_79B9_7F4A_7C15 ^ seed);
        let cap = 1 + (rng.next_u64() % 8) as usize;
        let mut q: BoundedQueue<u64> = BoundedQueue::new(cap);
        let mut model: std::collections::VecDeque<u64> = std::collections::VecDeque::new();
        for step in 0..2000u64 {
            match rng.next_u64() % 3 {
                0 => {
                    let pushed = q.try_push(step).is_ok();
                    assert_eq!(pushed, model.len() < cap, "push admission mismatch");
                    if pushed {
                        model.push_back(step);
                    }
                }
                1 => {
                    assert_eq!(q.pop(), model.pop_front(), "pop mismatch");
                }
                _ => {
                    if !model.is_empty() {
                        let at = (rng.next_u64() as usize) % model.len();
                        assert_eq!(q.remove_at(at), model.remove(at), "remove_at mismatch");
                    }
                }
            }
            assert!(q.len() <= cap, "capacity exceeded");
            assert_eq!(q.accepted(), q.popped() + q.len() as u64, "conservation broke");
            q.check_conservation("prop.queue").expect("invariant check");
        }
    }
}

#[cfg(debug_assertions)]
#[test]
#[should_panic(expected = "underflow")]
fn flowmeter_underflow_panics_in_checked_builds() {
    let mut m = FlowMeter::new("txns");
    m.produce(1);
    m.consume(1);
    m.consume(1); // nothing left in flight
}

#[cfg(not(debug_assertions))]
#[test]
fn flowmeter_underflow_reports_in_release_builds() {
    let mut m = FlowMeter::new("txns");
    m.produce(1);
    m.consume(2);
    let err = m.check(0).expect_err("underflow must be reported");
    assert!(err.detail.contains("underflow"), "{err}");
}

#[test]
fn flowmeter_leak_is_reported_not_panicked() {
    let mut m = FlowMeter::new("txns");
    m.produce(3);
    m.consume(1);
    let err = m.check_drained().expect_err("2 in flight is a leak at drain");
    assert!(err.detail.contains("leak"), "{err}");
}

/// Differential test of the open-addressed `FlatMap` against `BTreeMap`
/// as a reference model: random insert/remove/get sequences (with enough
/// churn to exercise backward-shift deletion and growth) must agree on
/// every return value, the live population, and the address-sorted
/// iteration the map synthesizes on demand.
#[test]
fn flatmap_matches_btreemap_reference_model() {
    for seed in 0..16u64 {
        let mut rng = SplitMix64::new(0xF1A7_0000 ^ (seed * 0x9E37));
        let mut map: FlatMap<u64> = if seed.is_multiple_of(2) {
            FlatMap::new() // exercise growth from the minimum table
        } else {
            FlatMap::with_capacity(8)
        };
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for step in 0..5000u64 {
            // A mix of clustered (sequential) and scattered keys: the
            // clustered half stresses probe-chain displacement.
            let key = if rng.next_u64().is_multiple_of(2) {
                rng.next_u64() % 48
            } else {
                rng.next_u64() << 6
            };
            match rng.next_u64() % 4 {
                0 | 1 => {
                    assert_eq!(
                        map.insert(key, step),
                        model.insert(key, step),
                        "insert return diverged for key {key}"
                    );
                }
                2 => {
                    assert_eq!(
                        map.remove(key),
                        model.remove(&key),
                        "remove return diverged for key {key}"
                    );
                }
                _ => {
                    assert_eq!(map.get(key), model.get(&key), "get diverged for key {key}");
                    assert_eq!(map.contains_key(key), model.contains_key(&key));
                }
            }
            assert_eq!(map.len(), model.len(), "population diverged");
        }
        let sorted = map.sorted_keys();
        let model_sorted: Vec<u64> = model.keys().copied().collect();
        assert_eq!(sorted, model_sorted, "ordered iteration diverged");
        let mut via_iter: Vec<(u64, u64)> = map.iter().map(|(k, &v)| (k, v)).collect();
        via_iter.sort_unstable();
        let model_pairs: Vec<(u64, u64)> = model.into_iter().collect();
        assert_eq!(via_iter, model_pairs, "key/value pairs diverged");
    }
}

/// Same differential discipline for `FlatSet` (used for the L2 dirty-line
/// set) against `BTreeSet`.
#[test]
fn flatset_matches_btreeset_reference_model() {
    for seed in 0..8u64 {
        let mut rng = SplitMix64::new(0x5E7_5E7 ^ (seed << 9));
        let mut set = FlatSet::with_capacity(4);
        let mut model: BTreeSet<u64> = BTreeSet::new();
        for _ in 0..3000 {
            let key = rng.next_u64() % 96;
            if rng.next_u64() % 3 < 2 {
                assert_eq!(set.insert(key), model.insert(key), "insert diverged for {key}");
            } else {
                assert_eq!(set.remove(key), model.remove(&key), "remove diverged for {key}");
            }
            assert_eq!(set.contains(key), model.contains(&key));
            assert_eq!(set.len(), model.len(), "population diverged");
        }
        let model_sorted: Vec<u64> = model.into_iter().collect();
        assert_eq!(set.sorted_keys(), model_sorted, "ordered iteration diverged");
    }
}
