//! Byte addresses, cache-line addresses and sector arithmetic.
//!
//! The simulated GPU uses 128-byte cache lines (paper Table II) and 32-byte
//! NoC flits, so a line decomposes into four 32-byte *sectors*. The memory
//! side interleaves the linear address space across memory partitions in
//! 256-byte chunks.

use std::fmt;

/// Size of a cache line in bytes (paper Table II: 128 B).
pub const LINE_SIZE: usize = 128;
/// Size of a NoC flit / memory sector in bytes (paper Table II: 32 B).
pub const SECTOR_SIZE: usize = 32;
/// Number of sectors per cache line.
pub const SECTORS_PER_LINE: usize = LINE_SIZE / SECTOR_SIZE;
/// Memory-partition interleaving granularity in bytes (paper Table II: 256 B).
pub const MC_INTERLEAVE: usize = 256;

const LINE_SHIFT: u32 = LINE_SIZE.trailing_zeros();

/// A byte address in the simulated global address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Address(u64);

impl Address {
    /// Creates an address from a raw byte offset.
    ///
    /// # Examples
    ///
    /// ```
    /// use dcl1_common::addr::Address;
    /// let a = Address::new(640);
    /// assert_eq!(a.raw(), 640);
    /// ```
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Address(raw)
    }

    /// Returns the raw byte offset.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the cache line containing this address.
    #[inline]
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }

    /// Returns the sector index (0..4) of this address within its line.
    #[inline]
    // Truncation keeps the low bits, which fully determine the
    // power-of-two `% LINE_SIZE` below.
    #[expect(clippy::cast_possible_truncation)]
    pub const fn sector(self) -> usize {
        ((self.0 as usize) % LINE_SIZE) / SECTOR_SIZE
    }
}

impl From<u64> for Address {
    fn from(raw: u64) -> Self {
        Address(raw)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A cache-line address: a byte address with the line-offset bits removed.
///
/// All caches, presence maps and NoC payloads in the simulator operate on
/// `LineAddr` rather than raw byte addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from a raw line number.
    #[inline]
    pub const fn new(raw: u64) -> Self {
        LineAddr(raw)
    }

    /// Returns the raw line number.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Returns the byte address of the first byte in this line.
    #[inline]
    pub const fn base(self) -> Address {
        Address(self.0 << LINE_SHIFT)
    }

    /// Selects an interleaved *home* out of `n` targets using low line bits.
    ///
    /// This implements the paper's home-bit selection (Section V-A): the
    /// `⌈log2 n⌉` bits directly above the line offset choose which DC-L1
    /// (or L2 slice, at a coarser granularity) owns the line. For `n` that
    /// is not a power of two a modulo is used, which the paper's crossbar
    /// configurations never require but keeps this total.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use dcl1_common::addr::LineAddr;
    /// assert_eq!(LineAddr::new(5).interleave(4), 1);
    /// assert_eq!(LineAddr::new(8).interleave(4), 0);
    /// ```
    #[inline]
    // Result is reduced mod `n` (< usize); 64-bit hosts lose nothing.
    #[expect(clippy::cast_possible_truncation)]
    pub fn interleave(self, n: usize) -> usize {
        assert!(n > 0, "interleave target count must be nonzero");
        if n.is_power_of_two() {
            (self.0 as usize) & (n - 1)
        } else {
            (self.0 as usize) % n
        }
    }

    /// Selects the memory partition (of `n_mcs`) that owns this line using
    /// the paper's 256-byte interleaving.
    #[inline]
    // Result is reduced mod `n_mcs` (< usize).
    #[expect(clippy::cast_possible_truncation)]
    pub fn mc_home(self, n_mcs: usize) -> usize {
        let chunk = self.base().raw() / MC_INTERLEAVE as u64;
        if n_mcs.is_power_of_two() {
            (chunk as usize) & (n_mcs - 1)
        } else {
            (chunk as usize) % n_mcs
        }
    }
}

impl From<Address> for LineAddr {
    fn from(a: Address) -> Self {
        a.line()
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

#[cfg(test)]
#[allow(clippy::cast_possible_truncation)] // test values are tiny
mod tests {
    use super::*;

    #[test]
    fn line_of_address_strips_offset() {
        let a = Address::new(3 * LINE_SIZE as u64 + 17);
        assert_eq!(a.line(), LineAddr::new(3));
        assert_eq!(a.line().base(), Address::new(3 * LINE_SIZE as u64));
    }

    #[test]
    fn sectors_cover_line() {
        for off in 0..LINE_SIZE as u64 {
            let s = Address::new(1000 * LINE_SIZE as u64 + off).sector();
            assert_eq!(s, off as usize / SECTOR_SIZE);
            assert!(s < SECTORS_PER_LINE);
        }
    }

    #[test]
    fn interleave_power_of_two_uses_low_bits() {
        for i in 0..64u64 {
            assert_eq!(LineAddr::new(i).interleave(8), (i % 8) as usize);
        }
    }

    #[test]
    fn interleave_non_power_of_two_is_modulo() {
        for i in 0..100u64 {
            assert_eq!(LineAddr::new(i).interleave(10), (i % 10) as usize);
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn interleave_zero_targets_panics() {
        LineAddr::new(1).interleave(0);
    }

    #[test]
    fn mc_home_uses_256_byte_chunks() {
        // Lines 0 and 1 live in the same 256 B chunk → same MC.
        assert_eq!(LineAddr::new(0).mc_home(16), LineAddr::new(1).mc_home(16));
        // Lines 1 and 2 straddle a chunk boundary → adjacent MCs.
        assert_eq!(LineAddr::new(2).mc_home(16), 1);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Address::new(255).to_string(), "0xff");
        assert_eq!(LineAddr::new(255).to_string(), "L0xff");
    }
}
