//! Content checksums for crash-safe persistence.
//!
//! Cached simulation results and checkpoint-journal entries survive process
//! kills, disk-full truncation, and concurrent writers only if a reader can
//! tell a complete payload from a torn one. This module provides the 64-bit
//! FNV-1a digest those readers verify: not cryptographic, but stable across
//! processes and Rust releases (unlike `DefaultHasher`), cheap, and
//! sensitive to truncation, bit flips, and reordering.

/// 64-bit FNV-1a offset basis.
const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// 64-bit FNV-1a prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

/// The 64-bit FNV-1a digest of `bytes`.
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut state = OFFSET;
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(PRIME);
    }
    state
}

/// [`fnv64`] rendered as the fixed-width lowercase hex used in cache
/// entries and journal lines.
#[must_use]
pub fn fnv64_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv64(bytes))
}

/// Verifies a payload against its recorded hex digest. Returns `false` on
/// a malformed digest string as well as a mismatch — a corrupt header is
/// just as disqualifying as corrupt content.
#[must_use]
pub fn verify_hex(bytes: &[u8], digest_hex: &str) -> bool {
    matches!(u64::from_str_radix(digest_hex, 16), Ok(d) if d == fnv64(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn hex_roundtrip_verifies() {
        let payload = b"cycles 123\ninstructions 456\n";
        let digest = fnv64_hex(payload);
        assert_eq!(digest.len(), 16);
        assert!(verify_hex(payload, &digest));
    }

    #[test]
    fn corruption_is_detected() {
        let payload = b"cycles 123\n";
        let digest = fnv64_hex(payload);
        assert!(!verify_hex(b"cycles 124\n", &digest), "bit flip");
        assert!(!verify_hex(&payload[..5], &digest), "truncation");
        assert!(!verify_hex(payload, "not-hex"), "malformed digest");
        assert!(!verify_hex(payload, ""), "empty digest");
    }
}
