//! Conservation-law bookkeeping for checked-simulation mode.
//!
//! Cycle-level models rot silently: a dropped reply or a leaked MSHR entry
//! rarely crashes — it just skews the statistics the paper figures are built
//! from. This module provides the small, always-cheap counters the machine
//! uses to prove per-epoch conservation laws when `--check` is enabled:
//!
//! * [`FlowMeter`] — a produced/consumed pair for any flow where everything
//!   that enters must eventually leave (transactions issued vs. retired,
//!   flits injected vs. delivered, MSHR allocations vs. frees).
//! * [`InvariantError`] — a structured violation report naming the site and
//!   the imbalance, so a failing check points at the leaking component.
//!
//! Mutators carry `debug_assert!` hooks (free in release builds); the
//! explicit `check*` methods run regardless of build profile and are what
//! the machine's checked mode calls every epoch.
//!
//! # Examples
//!
//! ```
//! use dcl1_common::invariant::FlowMeter;
//!
//! let mut txns = FlowMeter::new("txns");
//! txns.produce(3);
//! txns.consume(2);
//! assert_eq!(txns.in_flight(), 1);
//! assert!(txns.check(1).is_ok());
//! assert!(txns.check_drained().is_err()); // one still in flight
//! ```

use std::fmt;

/// A conservation violation: which flow broke and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvariantError {
    /// The component or flow that failed (e.g. `"node3.q1"`, `"txns"`).
    pub site: String,
    /// Human-readable imbalance description with the raw counter values.
    pub detail: String,
}

impl InvariantError {
    /// Builds a violation report for `site`.
    pub fn new(site: impl Into<String>, detail: impl Into<String>) -> Self {
        InvariantError { site: site.into(), detail: detail.into() }
    }
}

impl fmt::Display for InvariantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invariant violated at {}: {}", self.site, self.detail)
    }
}

impl std::error::Error for InvariantError {}

/// Shorthand for invariant-check results.
pub type InvariantResult = Result<(), InvariantError>;

/// Monotonic produced/consumed counters for one conserved flow.
///
/// The law is `produced == consumed + in_flight` with both counters
/// monotonically non-decreasing; [`FlowMeter::consume`] debug-asserts that
/// consumption never overtakes production (an *underflow* — retiring
/// something that was never issued), and [`FlowMeter::check_drained`]
/// reports a *leak* (production never matched by consumption) once the
/// machine claims to be idle.
#[derive(Debug, Clone, Default)]
pub struct FlowMeter {
    label: &'static str,
    produced: u64,
    consumed: u64,
}

impl FlowMeter {
    /// A zeroed meter labelled for error reports.
    pub fn new(label: &'static str) -> Self {
        FlowMeter { label, produced: 0, consumed: 0 }
    }

    /// Records `n` units entering the flow.
    #[inline]
    pub fn produce(&mut self, n: u64) {
        self.produced += n;
    }

    /// Records `n` units leaving the flow.
    ///
    /// Debug builds panic immediately on underflow (consuming what was
    /// never produced); release builds defer detection to [`check`].
    ///
    /// [`check`]: FlowMeter::check
    #[inline]
    pub fn consume(&mut self, n: u64) {
        self.consumed += n;
        debug_assert!(
            self.consumed <= self.produced,
            "flow '{}' underflow: consumed {} > produced {}",
            self.label,
            self.consumed,
            self.produced,
        );
    }

    /// Lifetime units produced.
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Lifetime units consumed.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Units currently in flight (saturating so a release-build underflow
    /// still yields a reportable value instead of wrapping).
    pub fn in_flight(&self) -> u64 {
        self.produced.saturating_sub(self.consumed)
    }

    /// Checks `produced == consumed + expected_in_flight`.
    ///
    /// # Errors
    ///
    /// Returns the imbalance when the law does not hold.
    pub fn check(&self, expected_in_flight: u64) -> InvariantResult {
        if self.consumed > self.produced {
            return Err(InvariantError::new(
                self.label,
                format!(
                    "underflow: consumed {} > produced {}",
                    self.consumed, self.produced
                ),
            ));
        }
        if self.in_flight() != expected_in_flight {
            return Err(InvariantError::new(
                self.label,
                format!(
                    "produced {} != consumed {} + in-flight {} (meter says {})",
                    self.produced,
                    self.consumed,
                    expected_in_flight,
                    self.in_flight()
                ),
            ));
        }
        Ok(())
    }

    /// Checks the flow has fully drained (`produced == consumed`), the
    /// end-of-run form of [`check`](FlowMeter::check).
    ///
    /// # Errors
    ///
    /// Returns the leak or underflow when the counters differ.
    pub fn check_drained(&self) -> InvariantResult {
        if self.produced != self.consumed {
            return Err(InvariantError::new(
                self.label,
                format!(
                    "leak at drain: produced {} != consumed {}",
                    self.produced, self.consumed
                ),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_meter_checks_clean() {
        let mut m = FlowMeter::new("t");
        m.produce(10);
        m.consume(4);
        assert_eq!(m.in_flight(), 6);
        assert!(m.check(6).is_ok());
        m.consume(6);
        assert!(m.check_drained().is_ok());
    }

    #[test]
    fn leak_is_reported() {
        let mut m = FlowMeter::new("t");
        m.produce(3);
        m.consume(1);
        let err = m.check_drained().unwrap_err();
        assert!(err.detail.contains("leak"), "{err}");
        assert!(m.check(1).is_err());
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "underflow")]
    fn debug_underflow_panics() {
        let mut m = FlowMeter::new("t");
        m.produce(1);
        m.consume(2);
    }

    #[test]
    fn error_display_names_site() {
        let e = InvariantError::new("node3.q1", "off by 1");
        assert_eq!(e.to_string(), "invariant violated at node3.q1: off by 1");
    }
}
