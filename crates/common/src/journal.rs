//! Append-only JSONL checkpoint journal for long sweeps.
//!
//! Each completed simulation point is appended as one self-contained JSON
//! line; a killed process therefore loses at most the line it was writing.
//! Readers verify a per-line FNV-1a checksum ([`crate::checksum`]) and
//! silently skip anything torn or scribbled, so a journal that crosses a
//! crash — or a disk that lost its tail — still resumes every intact
//! point instead of aborting the sweep.
//!
//! The payload is hex-encoded: it carries the runner's multi-line
//! serialized statistics, and hex keeps the line format trivial to parse
//! without a JSON-escape round-trip (this crate is dependency-free).
//!
//! Line shape (versioned so a future format can coexist):
//!
//! ```json
//! {"v":1,"key":"<32 hex>","point":"C-BLK/Pr4","crc":"<16 hex>","payload":"<hex>"}
//! ```

use crate::checksum;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// One intact journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// The memo key of the simulation point (stable across processes).
    pub key: u128,
    /// Human-readable `APP/DESIGN` label, for reports only.
    pub point: String,
    /// The serialized statistics payload the checksum covered.
    pub payload: String,
}

/// Appends checkpoint records to a journal file, flushing each line so a
/// kill loses at most the record being written.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
}

impl JournalWriter {
    /// Opens `path` for appending, creating it if absent.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be opened.
    pub fn open(path: &Path) -> io::Result<JournalWriter> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JournalWriter { file })
    }

    /// Appends one record and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on a failed write.
    pub fn append(&mut self, key: u128, point: &str, payload: &str) -> io::Result<()> {
        let line = render_line(key, point, payload);
        self.file.write_all(line.as_bytes())?;
        self.file.flush()
    }
}

/// Renders one journal line (exposed for tests and tooling).
#[must_use]
pub fn render_line(key: u128, point: &str, payload: &str) -> String {
    let crc = checksum::fnv64_hex(payload.as_bytes());
    let hex = hex_encode(payload.as_bytes());
    // `point` is an APP/DESIGN label (alphanumerics, `/`, `+`, `-`), safe
    // to embed without JSON escaping; anything exotic is filtered here so
    // the line stays valid JSON regardless.
    let point: String =
        point.chars().filter(|c| c.is_ascii_graphic() && *c != '"' && *c != '\\').collect();
    format!("{{\"v\":1,\"key\":\"{key:032x}\",\"point\":\"{point}\",\"crc\":\"{crc}\",\"payload\":\"{hex}\"}}\n")
}

/// Reads every intact record from `path`, skipping torn or corrupt lines.
/// Returns the entries plus the number of lines skipped; a missing file is
/// an empty journal, not an error.
#[must_use]
pub fn read_entries(path: &Path) -> (Vec<JournalEntry>, usize) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return (Vec::new(), 0);
    };
    let mut out = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_line(line) {
            Some(e) => out.push(e),
            None => skipped += 1,
        }
    }
    (out, skipped)
}

/// Parses one line; `None` when the line is malformed, unversioned, or
/// fails its checksum.
#[must_use]
pub fn parse_line(line: &str) -> Option<JournalEntry> {
    if field(line, "v")? != "1" {
        return None;
    }
    let key = u128::from_str_radix(&field(line, "key")?, 16).ok()?;
    let point = field(line, "point")?;
    let crc = field(line, "crc")?;
    let payload_bytes = hex_decode(&field(line, "payload")?)?;
    if !checksum::verify_hex(&payload_bytes, &crc) {
        return None;
    }
    let payload = String::from_utf8(payload_bytes).ok()?;
    Some(JournalEntry { key, point, payload })
}

/// Extracts the string value of `"name":"..."` from a flat JSON object of
/// string/number fields. Sufficient for this module's own format (values
/// never contain quotes); not a general JSON parser.
fn field(line: &str, name: &str) -> Option<String> {
    let tag = format!("\"{name}\":");
    let at = line.find(&tag)? + tag.len();
    let rest = &line[at..];
    if let Some(s) = rest.strip_prefix('"') {
        Some(s[..s.find('"')?].to_string())
    } else {
        let end = rest.find([',', '}'])?;
        Some(rest[..end].trim().to_string())
    }
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit(u32::from(b >> 4), 16).unwrap_or('0'));
        s.push(char::from_digit(u32::from(b & 0xf), 16).unwrap_or('0'));
    }
    s
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for pair in bytes.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        #[expect(clippy::cast_possible_truncation)] // two hex digits fit u8
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_roundtrip() {
        let payload = "cycles 42\ninstructions 7\ndesign Sh16+C8+Boost\n";
        let line = render_line(0xDEAD_BEEF, "C-BLK/Sh16+C8+Boost", payload);
        assert!(line.ends_with('\n'));
        let e = parse_line(line.trim_end()).expect("intact line parses");
        assert_eq!(e.key, 0xDEAD_BEEF);
        assert_eq!(e.point, "C-BLK/Sh16+C8+Boost");
        assert_eq!(e.payload, payload);
    }

    #[test]
    fn torn_and_corrupt_lines_are_skipped() {
        let dir = std::env::temp_dir().join(format!("dcl1-journal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.jsonl");
        let _ = std::fs::remove_file(&path);

        let mut w = JournalWriter::open(&path).unwrap();
        w.append(1, "A/P", "one\n").unwrap();
        w.append(2, "B/Q", "two\n").unwrap();
        drop(w);
        // Simulate a kill mid-append: a torn third line.
        let good = std::fs::read_to_string(&path).unwrap();
        let torn = render_line(3, "C/R", "three\n");
        std::fs::write(&path, format!("{good}{}", &torn[..torn.len() / 2])).unwrap();

        let (entries, skipped) = read_entries(&path);
        assert_eq!(entries.len(), 2);
        assert_eq!(skipped, 1);
        assert_eq!(entries[0].key, 1);
        assert_eq!(entries[1].payload, "two\n");

        // A scribbled payload fails its checksum and is skipped too.
        let mut bad = render_line(4, "D/S", "four\n");
        let flip = bad.rfind('0').unwrap_or(bad.len() - 10);
        bad.replace_range(flip..=flip, "1");
        std::fs::write(&path, format!("{good}{bad}")).unwrap();
        let (entries, skipped) = read_entries(&path);
        assert_eq!(entries.len(), 2, "corrupt line must not parse");
        assert_eq!(skipped, 1);

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_journal_is_empty() {
        let (entries, skipped) = read_entries(Path::new("/nonexistent/journal.jsonl"));
        assert!(entries.is_empty());
        assert_eq!(skipped, 0);
    }

    #[test]
    fn hex_helpers() {
        assert_eq!(hex_encode(b"\x00\xffA"), "00ff41");
        assert_eq!(hex_decode("00ff41").unwrap(), b"\x00\xffA");
        assert!(hex_decode("abc").is_none(), "odd length");
        assert!(hex_decode("zz").is_none(), "non-hex");
    }
}
