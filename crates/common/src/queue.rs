//! Bounded FIFO queues with occupancy and backpressure statistics.
//!
//! Every buffering point in the simulator — the four queues of a DC-L1 node
//! (Q1..Q4 in paper Fig. 3), NoC injection/ejection buffers, MSHR-to-NoC
//! staging — is a [`BoundedQueue`]. Besides FIFO semantics it records how
//! often a producer found the queue full, which is the signal the paper's
//! partition-camping analysis relies on.

use crate::invariant::{InvariantError, InvariantResult};
use std::collections::VecDeque;

/// A fixed-capacity FIFO queue.
///
/// # Examples
///
/// ```
/// use dcl1_common::queue::BoundedQueue;
///
/// let mut q: BoundedQueue<u32> = BoundedQueue::new(2);
/// assert!(q.try_push(1).is_ok());
/// assert!(q.try_push(2).is_ok());
/// assert_eq!(q.try_push(3), Err(3)); // full: item handed back
/// assert_eq!(q.pop(), Some(1));
/// ```
#[derive(Debug, Clone)]
pub struct BoundedQueue<T> {
    items: VecDeque<T>,
    capacity: usize,
    /// Number of `try_push` calls rejected because the queue was full.
    rejected: u64,
    /// Number of items ever accepted.
    accepted: u64,
    /// Number of items ever removed (via `pop` or `remove_at`).
    popped: u64,
    /// Sum of occupancy observed at each `sample_occupancy` call.
    occupancy_sum: u64,
    occupancy_samples: u64,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be nonzero");
        BoundedQueue {
            items: VecDeque::with_capacity(capacity),
            capacity,
            rejected: 0,
            accepted: 0,
            popped: 0,
            occupancy_sum: 0,
            occupancy_samples: 0,
        }
    }

    /// Attempts to enqueue `item`.
    ///
    /// # Errors
    ///
    /// Returns `Err(item)` (handing the item back to the caller) if the
    /// queue is full, and counts the rejection as backpressure.
    pub fn try_push(&mut self, item: T) -> Result<(), T> {
        if self.items.len() >= self.capacity {
            self.rejected += 1;
            Err(item)
        } else {
            self.items.push_back(item);
            self.accepted += 1;
            Ok(())
        }
    }

    /// Dequeues the oldest item, if any.
    pub fn pop(&mut self) -> Option<T> {
        let item = self.items.pop_front();
        if item.is_some() {
            self.popped += 1;
            debug_assert!(self.popped <= self.accepted, "queue pop/accept skew");
        }
        item
    }

    /// Returns a reference to the oldest item without removing it.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Returns a mutable reference to the oldest item.
    pub fn front_mut(&mut self) -> Option<&mut T> {
        self.items.front_mut()
    }

    /// Number of items currently queued.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the queue is at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() >= self.capacity
    }

    /// Remaining slots before the queue is full.
    pub fn free_slots(&self) -> usize {
        self.capacity - self.items.len()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates over queued items from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.items.iter()
    }

    /// Removes and returns the item at `index` (0 = oldest), shifting the
    /// rest. Used by virtual-channel-style arbitration that may serve a
    /// non-head packet.
    pub fn remove_at(&mut self, index: usize) -> Option<T> {
        let item = self.items.remove(index);
        if item.is_some() {
            self.popped += 1;
            debug_assert!(self.popped <= self.accepted, "queue pop/accept skew");
        }
        item
    }

    /// Records the current occupancy into the running-average statistics.
    pub fn sample_occupancy(&mut self) {
        self.occupancy_sum += self.items.len() as u64;
        self.occupancy_samples += 1;
    }

    /// Number of rejected (backpressured) push attempts.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Number of accepted pushes.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Number of items removed over the queue's lifetime.
    pub fn popped(&self) -> u64 {
        self.popped
    }

    /// Checks the queue's conservation law: every accepted item is either
    /// still queued or was removed exactly once, and occupancy never
    /// exceeds capacity. `site` names the queue in the error report.
    ///
    /// # Errors
    ///
    /// Returns the imbalance when `accepted != popped + len` or the queue
    /// holds more than its capacity.
    pub fn check_conservation(&self, site: &str) -> InvariantResult {
        let len = self.items.len() as u64;
        if self.items.len() > self.capacity {
            return Err(InvariantError::new(
                site,
                format!("occupancy {} exceeds capacity {}", self.items.len(), self.capacity),
            ));
        }
        if self.accepted != self.popped + len {
            return Err(InvariantError::new(
                site,
                format!(
                    "accepted {} != popped {} + queued {}",
                    self.accepted, self.popped, len
                ),
            ));
        }
        Ok(())
    }

    /// Mean occupancy over all samples, or 0.0 if never sampled.
    pub fn mean_occupancy(&self) -> f64 {
        if self.occupancy_samples == 0 {
            0.0
        } else {
            self.occupancy_sum as f64 / self.occupancy_samples as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let mut q = BoundedQueue::new(4);
        for i in 0..4 {
            q.try_push(i).unwrap();
        }
        for i in 0..4 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
    }

    #[test]
    fn backpressure_counts_rejections() {
        let mut q = BoundedQueue::new(1);
        q.try_push('a').unwrap();
        assert_eq!(q.try_push('b'), Err('b'));
        assert_eq!(q.try_push('c'), Err('c'));
        assert_eq!(q.rejected(), 2);
        assert_eq!(q.accepted(), 1);
    }

    #[test]
    fn occupancy_statistics() {
        let mut q = BoundedQueue::new(8);
        q.sample_occupancy(); // 0
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.sample_occupancy(); // 2
        assert!((q.mean_occupancy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn front_and_free_slots() {
        let mut q = BoundedQueue::new(2);
        assert_eq!(q.free_slots(), 2);
        q.try_push(10).unwrap();
        assert_eq!(q.front(), Some(&10));
        *q.front_mut().unwrap() = 11;
        assert_eq!(q.pop(), Some(11));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_panics() {
        BoundedQueue::<u8>::new(0);
    }
}
