//! Cycle counting and rational frequency-domain ticking.
//!
//! The simulator advances in *core cycles* (1400 MHz in the default
//! configuration). Slower or faster components — the 700 MHz interconnect,
//! the 924 MHz GDDR5 command clock, or the frequency-boosted NoC#1 — are
//! driven through a [`ClockDomain`], which converts the core-cycle stream
//! into the right number of component ticks using an error accumulator
//! (a Bresenham-style rational divider), so no long-run drift accumulates.


/// A point in simulated time, measured in core clock cycles.
pub type Cycle = u64;

/// A frequency domain derived from the core clock.
///
/// `ClockDomain` answers, per core cycle, *how many ticks* the component
/// should execute. A 700 MHz NoC under a 1400 MHz core ticks once every two
/// core cycles; a 2× boosted NoC#1 ticks twice per core cycle; the 924 MHz
/// DRAM ticks 0.66 times per core cycle on average.
///
/// # Examples
///
/// ```
/// use dcl1_common::clock::ClockDomain;
///
/// // 700 MHz component under a 1400 MHz core clock.
/// let mut noc = ClockDomain::new(700, 1400);
/// let ticks: u32 = (0..4).map(|_| noc.advance()).sum();
/// assert_eq!(ticks, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClockDomain {
    /// Component frequency in MHz (numerator of the tick ratio).
    freq_mhz: u64,
    /// Core frequency in MHz (denominator of the tick ratio).
    core_mhz: u64,
    /// Error accumulator in units of `core_mhz`.
    acc: u64,
    /// Total ticks issued so far.
    ticks: u64,
}

impl ClockDomain {
    /// Creates a domain running at `freq_mhz` under a core clock of
    /// `core_mhz`.
    ///
    /// # Panics
    ///
    /// Panics if either frequency is zero.
    pub fn new(freq_mhz: u64, core_mhz: u64) -> Self {
        assert!(freq_mhz > 0, "component frequency must be nonzero");
        assert!(core_mhz > 0, "core frequency must be nonzero");
        ClockDomain { freq_mhz, core_mhz, acc: 0, ticks: 0 }
    }

    /// Creates a domain that ticks exactly once per core cycle.
    pub fn core_rate(core_mhz: u64) -> Self {
        ClockDomain::new(core_mhz, core_mhz)
    }

    /// Returns the component frequency in MHz.
    pub fn freq_mhz(&self) -> u64 {
        self.freq_mhz
    }

    /// Returns the core frequency in MHz.
    pub fn core_mhz(&self) -> u64 {
        self.core_mhz
    }

    /// Advances simulated time by one core cycle and returns how many
    /// component ticks elapse during it (0, 1, or more for boosted domains).
    #[inline]
    // Ticks per core cycle = freq ratio (< 3 in every config) fits u32.
    #[expect(clippy::cast_possible_truncation)]
    pub fn advance(&mut self) -> u32 {
        self.acc += self.freq_mhz;
        let t = self.acc / self.core_mhz;
        self.acc -= t * self.core_mhz;
        self.ticks += t;
        t as u32
    }

    /// Advances simulated time by `cycles` core cycles at once and returns
    /// how many component ticks elapse in total.
    ///
    /// Exactly equivalent to calling [`advance`](ClockDomain::advance)
    /// `cycles` times: the accumulator invariant `acc < core_mhz` makes the
    /// batched division distribute over the per-cycle ones.
    pub fn advance_by(&mut self, cycles: u64) -> u64 {
        self.acc += cycles * self.freq_mhz;
        let t = self.acc / self.core_mhz;
        self.acc -= t * self.core_mhz;
        self.ticks += t;
        t
    }

    /// The smallest number of core cycles after which `ticks` more
    /// component ticks will have been issued (0 when `ticks` is 0).
    pub fn cycles_until_ticks(&self, ticks: u64) -> u64 {
        if ticks == 0 {
            return 0;
        }
        // Need acc + s * freq >= ticks * core; acc < core <= ticks * core.
        let needed = ticks * self.core_mhz - self.acc;
        needed.div_ceil(self.freq_mhz)
    }

    /// Total component ticks issued since construction.
    pub fn total_ticks(&self) -> u64 {
        self.ticks
    }

    /// Multiplies the component frequency by `factor` (used by the paper's
    /// `+Boost` designs, which double NoC#1 frequency).
    pub fn boost(&mut self, factor: u64) {
        assert!(factor > 0, "boost factor must be nonzero");
        self.freq_mhz *= factor;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn half_rate_ticks_every_other_cycle() {
        let mut d = ClockDomain::new(700, 1400);
        let pattern: Vec<u32> = (0..6).map(|_| d.advance()).collect();
        assert_eq!(pattern.iter().sum::<u32>(), 3);
        assert_eq!(d.total_ticks(), 3);
    }

    #[test]
    fn same_rate_ticks_every_cycle() {
        let mut d = ClockDomain::core_rate(1400);
        for _ in 0..10 {
            assert_eq!(d.advance(), 1);
        }
    }

    #[test]
    fn double_rate_ticks_twice_per_cycle() {
        let mut d = ClockDomain::new(2800, 1400);
        for _ in 0..10 {
            assert_eq!(d.advance(), 2);
        }
    }

    #[test]
    fn dram_ratio_has_no_drift() {
        // 924 MHz under 1400 MHz: after 1400 core cycles exactly 924 ticks.
        let mut d = ClockDomain::new(924, 1400);
        let total: u32 = (0..1400).map(|_| d.advance()).sum();
        assert_eq!(total, 924);
    }

    #[test]
    fn boost_doubles_tick_rate() {
        let mut d = ClockDomain::new(700, 1400);
        d.boost(4);
        assert_eq!(d.freq_mhz(), 2800);
        for _ in 0..5 {
            assert_eq!(d.advance(), 2);
        }
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_frequency_panics() {
        ClockDomain::new(0, 1400);
    }

    #[test]
    fn advance_by_matches_repeated_advance() {
        for (f, c) in [(700, 1400), (924, 1400), (2800, 1400), (1400, 1400), (3, 7)] {
            let mut step = ClockDomain::new(f, c);
            let mut batch = ClockDomain::new(f, c);
            let mut total = 0u64;
            for n in [1u64, 2, 3, 5, 17, 64, 1000] {
                let stepped: u64 = (0..n).map(|_| u64::from(step.advance())).sum();
                let batched = batch.advance_by(n);
                assert_eq!(stepped, batched, "{f}/{c} over {n}");
                total += n;
                assert_eq!(step.total_ticks(), batch.total_ticks());
                assert_eq!(step, batch, "accumulator state diverged after {total}");
            }
        }
    }

    #[test]
    fn cycles_until_ticks_is_tight() {
        for (f, c) in [(700, 1400), (924, 1400), (2800, 1400), (3, 7)] {
            let mut d = ClockDomain::new(f, c);
            // Desynchronize the accumulator.
            d.advance_by(13);
            for k in [1u64, 2, 5, 40] {
                let s = d.cycles_until_ticks(k);
                let mut probe = d.clone();
                assert!(probe.advance_by(s) >= k, "{f}/{c}: {s} cycles too few for {k}");
                if s > 0 {
                    let mut short = d.clone();
                    assert!(short.advance_by(s - 1) < k, "{f}/{c}: {s} not minimal for {k}");
                }
            }
            assert_eq!(d.cycles_until_ticks(0), 0);
        }
    }
}
