//! Error types for configuration validation.

use std::error::Error;
use std::fmt;

/// An invalid simulator configuration.
///
/// Returned by constructors that validate structural constraints the paper's
/// designs impose (e.g. the DC-L1 node count must divide the core count, the
/// cluster count must divide the node count, the L2 slice count must be a
/// multiple of the per-cluster node count).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    message: String,
}

impl ConfigError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        ConfigError { message: message.into() }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid configuration: {}", self.message)
    }
}

impl Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = ConfigError::new("cores (80) not divisible by nodes (7)");
        assert!(e.to_string().contains("not divisible"));
        // Usable as a boxed error.
        let _boxed: Box<dyn Error> = Box::new(e);
    }
}
