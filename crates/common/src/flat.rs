//! Deterministic open-addressed map and set over `u64` keys.
//!
//! The simulator's hot per-transaction paths (MSHR lookups, the
//! cross-cache presence map, the L2 dirty set) need associative state that
//! is both *flat* — index arithmetic instead of pointer-chasing a tree —
//! and *deterministic* — no `RandomState`, so iteration and layout are a
//! pure function of the operation sequence and the on-disk result memo
//! stays byte-stable (the `hash_order` simcheck rule).
//!
//! [`FlatMap`] is a linear-probing open-addressed table keyed by a
//! deterministic FNV-seeded multiplicative mixer:
//!
//! * probes are O(1) expected at the ≤7/8 load factor the table maintains;
//! * removal uses backward-shift deletion, so there are no tombstones and
//!   lookups never degrade over time;
//! * the raw slot layout depends only on the keys present and the
//!   insertion history — byte-reproducible across processes and Rust
//!   releases. Where callers need *address-ordered* output (per-line
//!   reports), [`FlatMap::sorted_keys`] materializes the ≤len live keys
//!   and sorts them, preserving the ordered-iteration guarantee the old
//!   `BTreeMap` structures promised.
//!
//! [`FlatSet`] is membership-only sugar over `FlatMap<()>`.
//!
//! # Examples
//!
//! ```
//! use dcl1_common::flat::FlatMap;
//!
//! let mut m: FlatMap<u32> = FlatMap::new();
//! m.insert(9, 1);
//! *m.get_mut(9).unwrap() += 1;
//! assert_eq!(m.get(9), Some(&2));
//! assert_eq!(m.remove(9), Some(2));
//! assert!(m.is_empty());
//! ```

/// Deterministic key mixer: the key is whitened with the 64-bit FNV-1a
/// offset basis, spread by a Fibonacci (golden-ratio) multiply, and
/// xor-folded so the power-of-two mask keeps well-diffused bits. Stable
/// across processes and Rust releases — layout is a pure function of the
/// operation history, never of a hasher seed.
///
/// Measured alternatives on the 112-point smoke sweep: the classic
/// byte-at-a-time FNV-1a chain is 8 *dependent* multiplies and cost ~10%
/// end-to-end sim throughput; a word-at-a-time FNV multiply (the sparse
/// FNV prime) clusters sequential line addresses into long probe chains
/// and cost ~6%. This mixer matched the pre-slab baseline.
#[inline]
fn mix_key(key: u64) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FIB: u64 = 0x9E37_79B9_7F4A_7C15;
    let h = (key ^ FNV_OFFSET).wrapping_mul(FIB);
    h ^ (h >> 29)
}

/// Smallest power-of-two table length that holds `entries` below the 7/8
/// load-factor ceiling (minimum 8 slots, so probes always terminate).
fn table_len_for(entries: usize) -> usize {
    let needed = entries.saturating_mul(8) / 7 + 1;
    needed.next_power_of_two().max(8)
}

/// A deterministic open-addressed hash map from `u64` keys to `V`.
///
/// See the [module docs](self) for the design constraints it satisfies.
#[derive(Debug, Clone)]
pub struct FlatMap<V> {
    /// Power-of-two slot array; `None` = empty slot.
    slots: Vec<Option<(u64, V)>>,
    len: usize,
}

impl<V> Default for FlatMap<V> {
    fn default() -> Self {
        FlatMap::new()
    }
}

impl<V> FlatMap<V> {
    /// Creates an empty map with the minimum table size.
    pub fn new() -> Self {
        FlatMap::with_capacity(0)
    }

    /// Creates an empty map pre-sized so `entries` insertions never
    /// re-hash — the allocation-free steady state the hot paths rely on.
    pub fn with_capacity(entries: usize) -> Self {
        let mut slots = Vec::new();
        slots.resize_with(table_len_for(entries), || None);
        FlatMap { slots, len: 0 }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn mask(&self) -> usize {
        self.slots.len() - 1
    }

    /// Slot index holding `key`, if present.
    #[inline]
    fn find(&self, key: u64) -> Option<usize> {
        let mask = self.mask();
        #[expect(clippy::cast_possible_truncation)] // masked to table range
        let mut i = mix_key(key) as usize & mask;
        loop {
            match &self.slots[i] {
                Some((k, _)) if *k == key => return Some(i),
                Some(_) => i = (i + 1) & mask,
                None => return None,
            }
        }
    }

    /// Returns a reference to the value for `key`.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        self.find(key).map(|i| &self.slots[i].as_ref().expect("found slot is live").1)
    }

    /// Returns a mutable reference to the value for `key`.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        let i = self.find(key)?;
        Some(&mut self.slots[i].as_mut().expect("found slot is live").1)
    }

    /// Whether `key` is present.
    #[inline]
    pub fn contains_key(&self, key: u64) -> bool {
        self.find(key).is_some()
    }

    /// Inserts `key` → `value`, returning the previous value if the key
    /// was already present. Re-hashes (the only allocating operation) when
    /// the 7/8 load factor would be exceeded; a map built by
    /// [`with_capacity`](FlatMap::with_capacity) for its worst-case
    /// occupancy never re-hashes.
    pub fn insert(&mut self, key: u64, value: V) -> Option<V> {
        if (self.len + 1) * 8 > self.slots.len() * 7 {
            self.grow();
        }
        let mask = self.mask();
        #[expect(clippy::cast_possible_truncation)] // masked to table range
        let mut i = mix_key(key) as usize & mask;
        loop {
            match &mut self.slots[i] {
                Some((k, v)) if *k == key => return Some(std::mem::replace(v, value)),
                Some(_) => i = (i + 1) & mask,
                None => {
                    self.slots[i] = Some((key, value));
                    self.len += 1;
                    return None;
                }
            }
        }
    }

    /// Removes `key`, returning its value if it was present. Uses
    /// backward-shift deletion: every entry displaced past the vacated
    /// slot is shifted back, so no tombstones accumulate.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        let mut hole = self.find(key)?;
        let (_, value) = self.slots[hole].take().expect("found slot is live");
        self.len -= 1;
        let mask = self.mask();
        let mut j = hole;
        loop {
            j = (j + 1) & mask;
            let Some((k, _)) = &self.slots[j] else { break };
            #[expect(clippy::cast_possible_truncation)] // masked to table range
            let home = mix_key(*k) as usize & mask;
            // The entry at `j` may move into the hole iff the hole lies on
            // its probe path, i.e. the cyclic distance home→j covers the
            // distance hole→j.
            if j.wrapping_sub(home) & mask >= j.wrapping_sub(hole) & mask {
                self.slots[hole] = self.slots[j].take();
                hole = j;
            }
        }
        Some(value)
    }

    /// Doubles the table and re-inserts every entry.
    fn grow(&mut self) {
        let mut bigger: Vec<Option<(u64, V)>> = Vec::new();
        bigger.resize_with(self.slots.len() * 2, || None);
        let old = std::mem::replace(&mut self.slots, bigger);
        let mask = self.mask();
        for slot in old.into_iter().flatten() {
            #[expect(clippy::cast_possible_truncation)] // masked to table range
            let mut i = mix_key(slot.0) as usize & mask;
            while self.slots[i].is_some() {
                i = (i + 1) & mask;
            }
            self.slots[i] = Some(slot);
        }
    }

    /// Iterates over `(key, &value)` in slot order — deterministic for a
    /// given operation history, but *not* key-ordered. Use
    /// [`sorted_keys`](FlatMap::sorted_keys) when output order matters.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &V)> {
        self.slots.iter().filter_map(|s| s.as_ref().map(|(k, v)| (*k, v)))
    }

    /// All live keys in ascending order (the ordered-iteration guarantee
    /// for reports). Allocates the returned vector; not for per-cycle use.
    pub fn sorted_keys(&self) -> Vec<u64> {
        let mut keys: Vec<u64> = self.iter().map(|(k, _)| k).collect();
        keys.sort_unstable();
        keys
    }
}

/// A deterministic open-addressed membership set over `u64` keys.
#[derive(Debug, Clone, Default)]
pub struct FlatSet {
    map: FlatMap<()>,
}

impl FlatSet {
    /// Creates an empty set with the minimum table size.
    pub fn new() -> Self {
        FlatSet::default()
    }

    /// Creates an empty set pre-sized so `entries` insertions never
    /// re-hash.
    pub fn with_capacity(entries: usize) -> Self {
        FlatSet { map: FlatMap::with_capacity(entries) }
    }

    /// Inserts `key`; returns `true` if it was not already present.
    pub fn insert(&mut self, key: u64) -> bool {
        self.map.insert(key, ()).is_none()
    }

    /// Removes `key`; returns `true` if it was present.
    pub fn remove(&mut self, key: u64) -> bool {
        self.map.remove(key).is_some()
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: u64) -> bool {
        self.map.contains_key(key)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// All members in ascending order.
    pub fn sorted_keys(&self) -> Vec<u64> {
        self.map.sorted_keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut m: FlatMap<u64> = FlatMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(1, 10), None);
        assert_eq!(m.insert(1, 11), Some(10));
        assert_eq!(m.get(1), Some(&11));
        assert_eq!(m.len(), 1);
        assert_eq!(m.remove(1), Some(11));
        assert_eq!(m.remove(1), None);
        assert!(m.is_empty());
    }

    #[test]
    fn with_capacity_never_grows() {
        let mut m: FlatMap<usize> = FlatMap::with_capacity(64);
        let table = m.slots.len();
        for k in 0..64 {
            m.insert(k, 0);
        }
        assert_eq!(m.slots.len(), table, "pre-sized table re-hashed");
    }

    #[test]
    fn grows_past_load_factor_and_keeps_entries() {
        let mut m: FlatMap<u64> = FlatMap::new();
        for k in 0..1000 {
            m.insert(k * 3, k);
        }
        assert_eq!(m.len(), 1000);
        for k in 0..1000 {
            assert_eq!(m.get(k * 3), Some(&k), "key {k} lost in growth");
        }
    }

    #[test]
    fn backward_shift_keeps_probe_chains_intact() {
        // Dense sequential keys maximize displacement; removing from the
        // middle of chains must not orphan later entries.
        let mut m: FlatMap<u64> = FlatMap::with_capacity(32);
        for k in 0..28 {
            m.insert(k, k);
        }
        for k in (0..28).step_by(2) {
            assert_eq!(m.remove(k), Some(k));
        }
        for k in 0..28 {
            let expect = if k % 2 == 0 { None } else { Some(&k) };
            assert_eq!(m.get(k), expect, "probe chain broken at key {k}");
        }
    }

    #[test]
    fn sorted_keys_is_address_ordered() {
        let mut m: FlatMap<()> = FlatMap::new();
        for k in [9, 2, 77, 4, 0] {
            m.insert(k, ());
        }
        assert_eq!(m.sorted_keys(), vec![0, 2, 4, 9, 77]);
    }

    #[test]
    fn set_membership() {
        let mut s = FlatSet::with_capacity(4);
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(s.is_empty());
    }

    #[test]
    fn layout_is_reproducible_for_same_history() {
        let build = || {
            let mut m: FlatMap<u64> = FlatMap::new();
            for k in 0..200 {
                m.insert(k * 7 % 251, k);
            }
            for k in 0..100 {
                m.remove(k * 13 % 251);
            }
            m
        };
        let (a, b) = (build(), build());
        let av: Vec<_> = a.iter().map(|(k, v)| (k, *v)).collect();
        let bv: Vec<_> = b.iter().map(|(k, v)| (k, *v)).collect();
        assert_eq!(av, bv, "slot layout must be a pure function of history");
    }
}
