//! A small deterministic RNG for reproducible simulations.
//!
//! Workload generation must be bit-reproducible across runs and across
//! machines so that EXPERIMENTS.md numbers can be regenerated. SplitMix64
//! is tiny, fast, passes BigCrush for this use, and — unlike a shared
//! `rand` generator — can be split per wavefront so trace generation is
//! order-independent.

/// SplitMix64 pseudo-random generator.
///
/// # Examples
///
/// ```
/// use dcl1_common::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Derives an independent generator for a sub-stream (e.g. one
    /// wavefront's trace) without perturbing this generator's sequence.
    pub fn split(&self, stream: u64) -> Self {
        // Mix the stream id through one SplitMix round so adjacent stream
        // ids land far apart in state space.
        let mut z = self.state ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SplitMix64 { state: z ^ (z >> 31) }
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // simulation purposes and the method is branch-free.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn split_streams_are_independent_of_parent_sequence() {
        let parent = SplitMix64::new(99);
        let s1 = parent.split(0);
        let s2 = parent.split(1);
        assert_ne!(s1, s2);
        // Splitting does not mutate the parent.
        assert_eq!(parent, SplitMix64::new(99));
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(3);
        for _ in 0..10_000 {
            assert!(r.next_below(7) < 7);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(5);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = SplitMix64::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
