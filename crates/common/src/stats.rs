//! Counters, running means and utilization helpers used by every component.

use std::fmt;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use dcl1_common::stats::Counter;
///
/// let mut hits = Counter::default();
/// hits.add(3);
/// hits.inc();
/// assert_eq!(hits.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Returns the current count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Returns this count as a fraction of `total` (0.0 when `total` is 0).
    pub fn ratio_of(self, total: u64) -> f64 {
        ratio(self.0, total)
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Computes `num / den`, returning 0.0 for an empty denominator.
#[inline]
pub fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// An online mean with count, min/max and Welford variance, for
/// latency-style statistics and time-series summaries.
///
/// The mean is computed from a plain sum (`sum / count`), keeping it
/// bit-identical to the pre-variance implementation; the Welford state
/// (`wmean`, `m2`) exists only for [`variance`](RunningMean::variance).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningMean {
    sum: f64,
    count: u64,
    min: f64,
    max: f64,
    /// Welford running mean (variance bookkeeping only).
    wmean: f64,
    /// Welford sum of squared deviations.
    m2: f64,
}

impl RunningMean {
    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: f64) {
        self.sum += value;
        self.count += 1;
        if self.count == 1 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        let delta = value - self.wmean;
        self.wmean += delta / self.count as f64;
        self.m2 += delta * (value - self.wmean);
    }

    /// Returns the mean of all observations, or 0.0 if none were recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Smallest observation, or 0.0 if none were recorded.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation, or 0.0 if none were recorded.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Population variance (Welford), or 0.0 with fewer than two
    /// observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another mean into this one (used when aggregating per-node
    /// statistics into machine-level statistics). Uses Chan's parallel
    /// update so the merged variance equals recording both streams into
    /// one accumulator (up to rounding).
    pub fn merge(&mut self, other: &RunningMean) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.wmean - self.wmean;
        self.m2 += other.m2 + delta * delta * n1 * n2 / (n1 + n2);
        self.wmean += delta * n2 / (n1 + n2);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// Geometric mean of a slice of positive ratios.
///
/// The paper reports average speedups; for normalized ratios the geometric
/// mean is the conventional aggregate, and it is what the bench harness
/// prints alongside the arithmetic mean.
///
/// Returns 0.0 for an empty slice. Non-positive entries are clamped to a
/// tiny epsilon so a single degenerate run cannot poison the aggregate.
pub fn geomean(values: &[f64]) -> f64 {
    geomean_counting(values).0
}

/// Like [`geomean`], but also reports how many non-positive entries were
/// clamped to the epsilon — a nonzero count means some run in the
/// aggregate was degenerate (zero or negative ratio) and the geomean is
/// an underestimate rather than a faithful average.
pub fn geomean_counting(values: &[f64]) -> (f64, usize) {
    if values.is_empty() {
        return (0.0, 0);
    }
    let clamped = values.iter().filter(|&&v| v <= 0.0).count();
    let log_sum: f64 = values.iter().map(|&v| v.max(1e-12).ln()).sum();
    ((log_sum / values.len() as f64).exp(), clamped)
}

/// Arithmetic mean of a slice, 0.0 when empty.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::default();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert!((c.ratio_of(20) - 0.5).abs() < 1e-12);
        assert_eq!(c.ratio_of(0), 0.0);
        assert_eq!(c.to_string(), "10");
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(ratio(5, 0), 0.0);
        assert!((ratio(1, 4) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn running_mean_basics() {
        let mut m = RunningMean::default();
        assert_eq!(m.mean(), 0.0);
        m.record(2.0);
        m.record(4.0);
        assert!((m.mean() - 3.0).abs() < 1e-12);
        assert_eq!(m.count(), 2);
    }

    #[test]
    fn running_mean_merge() {
        let mut a = RunningMean::default();
        a.record(1.0);
        let mut b = RunningMean::default();
        b.record(3.0);
        a.merge(&b);
        assert!((a.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn running_mean_min_max_variance() {
        let mut m = RunningMean::default();
        assert_eq!(m.min(), 0.0);
        assert_eq!(m.max(), 0.0);
        assert_eq!(m.variance(), 0.0);
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            m.record(v);
        }
        assert_eq!(m.min(), 2.0);
        assert_eq!(m.max(), 9.0);
        assert!((m.mean() - 5.0).abs() < 1e-12);
        // Classic Welford example: population variance 4, stddev 2.
        assert!((m.variance() - 4.0).abs() < 1e-9, "{}", m.variance());
        assert!((m.stddev() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn running_mean_handles_negative_min() {
        let mut m = RunningMean::default();
        m.record(-3.0);
        m.record(1.0);
        assert_eq!(m.min(), -3.0);
        assert_eq!(m.max(), 1.0);
    }

    #[test]
    fn merge_matches_single_stream() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0, -1.0, 12.5];
        for split in 0..=data.len() {
            let mut a = RunningMean::default();
            let mut b = RunningMean::default();
            let mut whole = RunningMean::default();
            for (i, &v) in data.iter().enumerate() {
                if i < split {
                    a.record(v);
                } else {
                    b.record(v);
                }
                whole.record(v);
            }
            a.merge(&b);
            assert_eq!(a.count(), whole.count());
            assert!((a.mean() - whole.mean()).abs() < 1e-12, "split {split}");
            assert_eq!(a.min(), whole.min(), "split {split}");
            assert_eq!(a.max(), whole.max(), "split {split}");
            assert!((a.variance() - whole.variance()).abs() < 1e-9, "split {split}");
        }
    }

    #[test]
    fn geomean_of_reciprocals_is_one() {
        let v = [2.0, 0.5, 4.0, 0.25];
        assert!((geomean(&v) - 1.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn geomean_clamps_nonpositive() {
        let g = geomean(&[0.0, 1.0]);
        assert!(g > 0.0 && g < 1.0);
    }

    #[test]
    fn geomean_counting_reports_clamps() {
        let (g, clamped) = geomean_counting(&[0.0, -2.0, 1.0, 4.0]);
        assert_eq!(clamped, 2);
        assert!(g > 0.0);
        let (g2, clamped2) = geomean_counting(&[2.0, 0.5]);
        assert_eq!(clamped2, 0);
        assert!((g2 - 1.0).abs() < 1e-12);
        assert_eq!(geomean_counting(&[]), (0.0, 0));
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }
}
