//! Counters, running means and utilization helpers used by every component.

use std::fmt;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use dcl1_common::stats::Counter;
///
/// let mut hits = Counter::default();
/// hits.add(3);
/// hits.inc();
/// assert_eq!(hits.get(), 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Increments by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Returns the current count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Returns this count as a fraction of `total` (0.0 when `total` is 0).
    pub fn ratio_of(self, total: u64) -> f64 {
        ratio(self.0, total)
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Computes `num / den`, returning 0.0 for an empty denominator.
#[inline]
pub fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// An online mean with count, for latency-style statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RunningMean {
    sum: f64,
    count: u64,
}

impl RunningMean {
    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: f64) {
        self.sum += value;
        self.count += 1;
    }

    /// Returns the mean of all observations, or 0.0 if none were recorded.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Merges another mean into this one (used when aggregating per-node
    /// statistics into machine-level statistics).
    pub fn merge(&mut self, other: &RunningMean) {
        self.sum += other.sum;
        self.count += other.count;
    }
}

/// Geometric mean of a slice of positive ratios.
///
/// The paper reports average speedups; for normalized ratios the geometric
/// mean is the conventional aggregate, and it is what the bench harness
/// prints alongside the arithmetic mean.
///
/// Returns 0.0 for an empty slice. Non-positive entries are clamped to a
/// tiny epsilon so a single degenerate run cannot poison the aggregate.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|&v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean of a slice, 0.0 when empty.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::default();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert!((c.ratio_of(20) - 0.5).abs() < 1e-12);
        assert_eq!(c.ratio_of(0), 0.0);
        assert_eq!(c.to_string(), "10");
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(ratio(5, 0), 0.0);
        assert!((ratio(1, 4) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn running_mean_basics() {
        let mut m = RunningMean::default();
        assert_eq!(m.mean(), 0.0);
        m.record(2.0);
        m.record(4.0);
        assert!((m.mean() - 3.0).abs() < 1e-12);
        assert_eq!(m.count(), 2);
    }

    #[test]
    fn running_mean_merge() {
        let mut a = RunningMean::default();
        a.record(1.0);
        let mut b = RunningMean::default();
        b.record(3.0);
        a.merge(&b);
        assert!((a.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_of_reciprocals_is_one() {
        let v = [2.0, 0.5, 4.0, 0.25];
        assert!((geomean(&v) - 1.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn geomean_clamps_nonpositive() {
        let g = geomean(&[0.0, 1.0]);
        assert!(g > 0.0 && g < 1.0);
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }
}
