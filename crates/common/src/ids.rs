//! Strongly-typed identifiers for the hardware entities in the simulator.
//!
//! Using newtypes instead of bare `usize` prevents a whole class of
//! cross-wiring bugs (e.g. indexing the L2 slice vector with a core id)
//! while compiling down to plain integers.

use std::fmt;

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
        )]
        pub struct $name(pub usize);

        impl $name {
            /// Creates an identifier from a raw index.
            #[inline]
            pub const fn new(raw: usize) -> Self {
                $name(raw)
            }

            /// Returns the raw index, for container indexing.
            #[inline]
            pub const fn index(self) -> usize {
                self.0
            }
        }

        impl From<usize> for $name {
            fn from(raw: usize) -> Self {
                $name(raw)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// Identifies a GPU core (compute unit).
    CoreId,
    "core"
);
define_id!(
    /// Identifies a DC-L1 node (or, in the baseline, a per-core L1 cache).
    NodeId,
    "dcl1-"
);
define_id!(
    /// Identifies an L2 cache slice.
    SliceId,
    "l2-"
);
define_id!(
    /// Identifies a memory controller / memory partition.
    McId,
    "mc"
);
define_id!(
    /// Identifies a core/DC-L1 cluster in the clustered shared design.
    ClusterId,
    "cluster"
);
define_id!(
    /// Identifies a wavefront (warp) within a core.
    WavefrontId,
    "wf"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_types_with_display() {
        let c = CoreId::new(7);
        let n = NodeId::new(7);
        assert_eq!(c.index(), n.index());
        assert_eq!(c.to_string(), "core7");
        assert_eq!(n.to_string(), "dcl1-7");
        assert_eq!(SliceId::new(3).to_string(), "l2-3");
        assert_eq!(McId::new(1).to_string(), "mc1");
        assert_eq!(ClusterId::new(2).to_string(), "cluster2");
        assert_eq!(WavefrontId::new(0).to_string(), "wf0");
    }

    #[test]
    fn ids_order_by_index() {
        assert!(CoreId::new(1) < CoreId::new(2));
        assert_eq!(CoreId::from(4), CoreId::new(4));
    }
}
