//! A log-bucketed latency histogram.
//!
//! The paper's latency analysis (§VIII) argues about *distributions* —
//! added core↔DC-L1 latency vs reduced queueing — so the simulator records
//! round-trip times in a histogram cheap enough to update on every load:
//! power-of-two buckets with four linear sub-buckets each (HdrHistogram-
//! style, ~1.19× relative error), fixed memory, O(1) record.


const SUB_BITS: u32 = 2;
const SUB: usize = 1 << SUB_BITS; // linear sub-buckets per octave
const OCTAVES: usize = 40;
const BUCKETS: usize = OCTAVES * SUB;

/// Fixed-size log-bucketed histogram of `u64` samples.
///
/// # Examples
///
/// ```
/// use dcl1_common::hist::Histogram;
///
/// let mut h = Histogram::new();
/// for v in [10, 20, 30, 40, 1000] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 5);
/// assert!(h.percentile(0.5) >= 20 && h.percentile(0.5) <= 40);
/// ```
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram { buckets: vec![0; BUCKETS], count: 0, sum: 0, max: 0 }
    }

    #[inline]
    // Bit-math indices are < BUCKETS; octave < 64 fits everywhere.
    #[expect(clippy::cast_possible_truncation)]
    fn bucket_of(value: u64) -> usize {
        if value < SUB as u64 {
            return value as usize;
        }
        let octave = 63 - value.leading_zeros() as usize; // ≥ SUB_BITS
        let sub = (value >> (octave as u32 - SUB_BITS)) as usize & (SUB - 1);
        let idx = (octave - SUB_BITS as usize + 1) * SUB + sub;
        idx.min(BUCKETS - 1)
    }

    /// Lower bound of bucket `idx` (the value reported for percentiles).
    // idx < BUCKETS and sub < SUB: both far below any cast limit.
    #[expect(clippy::cast_possible_truncation)]
    fn bucket_floor(idx: usize) -> u64 {
        if idx < SUB {
            return idx as u64;
        }
        let octave = idx / SUB - 1 + SUB_BITS as usize;
        let sub = (idx % SUB) as u64;
        (1u64 << octave) + (sub << (octave as u32 - SUB_BITS))
    }

    /// Records one sample. The running sum saturates instead of wrapping,
    /// so extreme samples (up to `u64::MAX`) degrade the mean gracefully
    /// rather than corrupting it.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact arithmetic mean of all samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Exact maximum sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate `q`-quantile (`q` in `[0,1]`): the floor of the bucket
    /// containing the q-th sample (≤ ~19% relative error).
    ///
    /// Returns 0 for an empty histogram.
    // ceil of q*count (both finite, count a real sample total) fits u64.
    #[expect(clippy::cast_possible_truncation)]
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_floor(i).min(self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Clears all samples (end-of-warmup reset).
    pub fn reset(&mut self) {
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
        self.max = 0;
    }
}

#[cfg(test)]
#[allow(clippy::cast_possible_truncation)] // test values are tiny
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..4u64 {
            h.record(v);
        }
        assert_eq!(h.percentile(0.01), 0);
        assert_eq!(h.percentile(1.0), 3);
    }

    #[test]
    fn percentiles_are_order_correct() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let p50 = h.percentile(0.5);
        let p95 = h.percentile(0.95);
        let p99 = h.percentile(0.99);
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // Within the bucket resolution of the true quantiles.
        assert!((400..=500).contains(&p50), "p50 {p50}");
        assert!((768..=950).contains(&p95), "p95 {p95}");
        assert_eq!(h.mean(), 500.5);
        assert_eq!(h.max(), 1000);
    }

    #[test]
    fn merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in [3u64, 17, 130, 5000] {
            a.record(v);
            both.record(v);
        }
        for v in [9u64, 250, 100_000] {
            b.record(v);
            both.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), both.count());
        assert_eq!(a.mean(), both.mean());
        for q in [0.1, 0.5, 0.9, 0.99] {
            assert_eq!(a.percentile(q), both.percentile(q));
        }
    }

    #[test]
    fn reset_clears_everything() {
        let mut h = Histogram::new();
        h.record(42);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile(0.5), 0);
    }

    #[test]
    fn power_of_two_boundaries_start_new_octaves() {
        // Property: within the covered octave range, every exact power of
        // two maps to the first sub-bucket of its octave, its bucket floor
        // is the value itself, and `2^k - 1` lands in a strictly earlier
        // bucket. Beyond the last octave values saturate into the final
        // bucket instead of wrapping or panicking.
        let max_octave = OCTAVES + SUB_BITS as usize - 2; // last exact octave
        for k in SUB_BITS..=max_octave as u32 {
            let v = 1u64 << k;
            let idx = Histogram::bucket_of(v);
            assert_eq!(Histogram::bucket_floor(idx), v, "floor(bucket(2^{k}))");
            assert_eq!(idx % SUB, 0, "2^{k} not at an octave start");
            let below = Histogram::bucket_of(v - 1);
            assert!(below < idx, "2^{k}-1 shares a bucket with 2^{k}");
        }
        for k in (max_octave as u32 + 1)..64 {
            assert_eq!(Histogram::bucket_of(1u64 << k), BUCKETS - 1, "2^{k}");
        }
    }

    #[test]
    fn u64_max_saturates_without_overflow() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX); // sum would wrap without saturation
        h.record(3);
        assert_eq!(h.count(), 3);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(Histogram::bucket_of(u64::MAX), BUCKETS - 1);
        // p100 reports the floor of the saturated last bucket (clamped by max).
        assert_eq!(h.percentile(1.0), Histogram::bucket_floor(BUCKETS - 1));
        // Saturated sum: the mean stays a huge (not wrapped-tiny) value.
        assert!(h.mean() > 1e18);
        let mut other = Histogram::new();
        other.record(u64::MAX);
        h.merge(&other); // merge saturates too
        assert_eq!(h.count(), 4);
    }

    #[test]
    fn percentiles_monotone_in_q_property() {
        // Property: for any sample set, percentile(q) is monotone
        // non-decreasing in q and bounded by [percentile(0), max].
        let sample_sets: [&[u64]; 5] = [
            &[0],
            &[1, 1, 1, 1],
            &[3, 17, 130, 5000, 5000, 123_456_789],
            &[u64::MAX, 0, 42],
            &[7, 8, 9, 15, 16, 17, 31, 32, 33, 1 << 40],
        ];
        for set in sample_sets {
            let mut h = Histogram::new();
            for &v in set {
                h.record(v);
            }
            let mut prev = 0;
            for i in 0..=100 {
                let q = i as f64 / 100.0;
                let p = h.percentile(q);
                assert!(p >= prev, "percentile({q}) regressed: {p} < {prev}");
                assert!(p <= h.max());
                prev = p;
            }
        }
    }

    #[test]
    fn bucket_round_trip_monotone() {
        // Bucket floors are monotone and every value maps to a bucket
        // whose floor does not exceed it.
        let mut prev = 0;
        for idx in 0..BUCKETS {
            let f = Histogram::bucket_floor(idx);
            assert!(f >= prev, "floor not monotone at {idx}");
            prev = f;
        }
        for v in (0..20u64).chain([100, 1000, 12345, 1 << 30]) {
            let idx = Histogram::bucket_of(v);
            assert!(Histogram::bucket_floor(idx) <= v, "floor exceeds value {v}");
        }
    }
}
