//! Foundational types shared by every crate in the DC-L1 simulator workspace.
//!
//! This crate deliberately contains no simulation logic. It provides:
//!
//! * [`addr`] — byte addresses, cache-line addresses and sector arithmetic;
//! * [`checksum`] — stable FNV-1a content digests for crash-safe persistence;
//! * [`journal`] — append-only JSONL checkpoint records with per-line
//!   checksums, backing `--resume` on the bench binaries;
//! * [`ids`] — strongly-typed identifiers for cores, DC-L1 nodes, L2 slices,
//!   memory controllers and clusters;
//! * [`clock`] — cycle counting and rational frequency-domain ticking;
//! * [`flat`] — deterministic open-addressed maps/sets for hot-path state;
//! * [`invariant`] — conservation-law meters backing checked-sim mode;
//! * [`queue`] — bounded FIFO queues with occupancy/backpressure statistics;
//! * [`stats`] — counters, running means and utilization helpers;
//! * [`rng`] — a small deterministic RNG (SplitMix64) so simulations are
//!   reproducible without threading a `rand` generator everywhere.
//!
//! # Examples
//!
//! ```
//! use dcl1_common::addr::{Address, LineAddr, LINE_SIZE};
//!
//! let a = Address::new(0x1234);
//! let line = a.line();
//! assert_eq!(line.base().raw(), 0x1234 / LINE_SIZE as u64 * LINE_SIZE as u64);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addr;
pub mod checksum;
pub mod clock;
pub mod error;
pub mod journal;
pub mod flat;
pub mod hist;
pub mod ids;
pub mod invariant;
pub mod queue;
pub mod rng;
pub mod stats;

pub use addr::{Address, LineAddr, LINE_SIZE};
pub use clock::{ClockDomain, Cycle};
pub use error::ConfigError;
pub use flat::{FlatMap, FlatSet};
pub use hist::Histogram;
pub use ids::{ClusterId, CoreId, McId, NodeId, SliceId, WavefrontId};
pub use invariant::{FlowMeter, InvariantError, InvariantResult};
pub use queue::BoundedQueue;
pub use rng::SplitMix64;
