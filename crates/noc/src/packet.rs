//! The unit of NoC transfer.

use dcl1_common::addr::SECTOR_SIZE;

/// A packet traversing a [`Crossbar`](crate::Crossbar), generic over the
/// payload type carried end-to-end.
///
/// `flits` is the serialization length on a 32-byte link: one control flit
/// plus one flit per 32 data bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet<T> {
    /// Input port the packet enters through.
    pub src: usize,
    /// Output port the packet must leave through.
    pub dst: usize,
    /// Number of flits this packet occupies on a link (≥ 1).
    pub flits: u32,
    /// Caller-defined payload (the simulator carries memory transactions).
    pub payload: T,
}

impl<T> Packet<T> {
    /// Creates a packet carrying `data_bytes` of payload data.
    ///
    /// The flit count is one header/control flit plus ⌈data/32⌉ data flits,
    /// matching the paper's 32 B flit size. A pure control packet (read
    /// request, write ACK) has `data_bytes == 0` and occupies one flit.
    // SECTOR_SIZE (32) fits u32.
    #[expect(clippy::cast_possible_truncation)]
    pub fn new(src: usize, dst: usize, data_bytes: u32, payload: T) -> Self {
        let data_flits = data_bytes.div_ceil(SECTOR_SIZE as u32);
        Packet { src, dst, flits: 1 + data_flits, payload }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_count_includes_header() {
        assert_eq!(Packet::new(0, 0, 0, ()).flits, 1);
        assert_eq!(Packet::new(0, 0, 32, ()).flits, 2);
        assert_eq!(Packet::new(0, 0, 33, ()).flits, 3);
        assert_eq!(Packet::new(0, 0, 128, ()).flits, 5);
    }
}
