//! Input-queued crossbar switch with round-robin output arbitration.

use crate::Packet;
use dcl1_common::{BoundedQueue, ConfigError};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Structural parameters of a crossbar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CrossbarConfig {
    /// Number of input ports.
    pub inputs: usize,
    /// Number of output ports.
    pub outputs: usize,
    /// Capacity of each input (injection) queue, in packets.
    ///
    /// The paper's routers have 4 VCs × 4 flit buffers per port; this model
    /// abstracts them into one input FIFO per port.
    pub input_queue_capacity: usize,
    /// Router pipeline latency in ticks added to every traversal.
    pub router_latency: u32,
    /// Maximum packets parked in an ejection buffer before the switch stops
    /// scheduling new transfers to that output (downstream backpressure).
    pub eject_capacity: usize,
    /// How deep into each input queue the allocator looks for a packet to
    /// a free output. 1 = pure FIFO (full head-of-line blocking); the
    /// paper's 4-VC routers are modelled as a lookahead of 4. Packets of
    /// the same (src, dst) flow can never reorder: the scan takes the
    /// first match.
    pub vc_lookahead: usize,
}

impl CrossbarConfig {
    /// Creates a config with the simulator's default buffering (4-packet
    /// input queues, 2-tick router latency, 8-packet ejection buffers).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `inputs` or `outputs` is zero.
    pub fn new(inputs: usize, outputs: usize) -> Result<Self, ConfigError> {
        if inputs == 0 || outputs == 0 {
            return Err(ConfigError::new("crossbar must have nonzero ports"));
        }
        Ok(CrossbarConfig {
            inputs,
            outputs,
            input_queue_capacity: 8,
            router_latency: 2,
            eject_capacity: 8,
            vc_lookahead: 4,
        })
    }
}

/// Per-crossbar statistics used for utilization figures and dynamic power.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CrossbarStats {
    /// Ticks this crossbar has executed.
    pub ticks: u64,
    /// Flits transferred per output link.
    pub output_flits: Vec<u64>,
    /// Flits injected per input port.
    pub input_flits: Vec<u64>,
    /// Packets delivered.
    pub packets: u64,
}

impl CrossbarStats {
    /// Utilization of output link `port`: flits transferred / ticks.
    pub fn link_utilization(&self, port: usize) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.output_flits[port] as f64 / self.ticks as f64
        }
    }

    /// The highest output-link utilization across the crossbar.
    pub fn max_link_utilization(&self) -> f64 {
        (0..self.output_flits.len())
            .map(|p| self.link_utilization(p))
            .fold(0.0, f64::max)
    }

    /// Total flits moved through the switch (for dynamic power).
    pub fn total_flits(&self) -> u64 {
        self.output_flits.iter().sum()
    }
}

/// An in-progress packet transfer from one input to one output.
#[derive(Debug)]
struct Transfer<T> {
    packet: Packet<T>,
    remaining_flits: u32,
}

/// An input-queued crossbar switch.
///
/// Call [`try_inject`](Crossbar::try_inject) to enqueue packets,
/// [`tick`](Crossbar::tick) once per clock of the crossbar's frequency
/// domain, and [`pop_output`](Crossbar::pop_output) to drain delivered
/// packets.
///
/// # Examples
///
/// ```
/// use dcl1_noc::{Crossbar, CrossbarConfig, Packet};
///
/// let mut xbar: Crossbar<&str> = Crossbar::new(CrossbarConfig::new(2, 2)?);
/// xbar.try_inject(Packet::new(0, 1, 0, "hello")).unwrap();
/// for _ in 0..8 { xbar.tick(); }
/// assert_eq!(xbar.pop_output(1).map(|p| p.payload), Some("hello"));
/// # Ok::<(), dcl1_common::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct Crossbar<T> {
    config: CrossbarConfig,
    inputs: Vec<BoundedQueue<Packet<T>>>,
    /// Active transfer per input, if any (locks the input).
    active: Vec<Option<Transfer<T>>>,
    /// Which input each output is currently receiving from.
    output_busy: Vec<Option<usize>>,
    /// Delivered packets waiting behind the router pipeline:
    /// (ready_tick, packet), in ready order per output.
    eject: Vec<VecDeque<(u64, Packet<T>)>>,
    /// Round-robin arbiter pointer per output.
    rr: Vec<usize>,
    now: u64,
    stats: CrossbarStats,
}

impl<T> Crossbar<T> {
    /// Creates an idle crossbar.
    pub fn new(config: CrossbarConfig) -> Self {
        Crossbar {
            inputs: (0..config.inputs)
                .map(|_| BoundedQueue::new(config.input_queue_capacity))
                .collect(),
            active: (0..config.inputs).map(|_| None).collect(),
            output_busy: vec![None; config.outputs],
            eject: (0..config.outputs).map(|_| VecDeque::new()).collect(),
            rr: vec![0; config.outputs],
            now: 0,
            stats: CrossbarStats {
                ticks: 0,
                output_flits: vec![0; config.outputs],
                input_flits: vec![0; config.inputs],
                packets: 0,
            },
            config,
        }
    }

    /// Returns the structural configuration.
    pub fn config(&self) -> &CrossbarConfig {
        &self.config
    }

    /// Returns accumulated statistics.
    pub fn stats(&self) -> &CrossbarStats {
        &self.stats
    }

    /// Zeroes the statistics (end-of-warmup measurement reset); in-flight
    /// packets and queue contents are untouched.
    pub fn reset_stats(&mut self) {
        self.stats = CrossbarStats {
            ticks: 0,
            output_flits: vec![0; self.config.outputs],
            input_flits: vec![0; self.config.inputs],
            packets: 0,
        };
    }

    /// Attempts to enqueue `packet` at its input port.
    ///
    /// # Errors
    ///
    /// Returns `Err(packet)` when the input queue is full (backpressure).
    ///
    /// # Panics
    ///
    /// Panics if `packet.src` or `packet.dst` is out of range.
    pub fn try_inject(&mut self, packet: Packet<T>) -> Result<(), Packet<T>> {
        assert!(packet.src < self.config.inputs, "input port out of range");
        assert!(packet.dst < self.config.outputs, "output port out of range");
        let flits = packet.flits as u64;
        let src = packet.src;
        self.inputs[src].try_push(packet)?;
        self.stats.input_flits[src] += flits;
        Ok(())
    }

    /// Whether input `port`'s injection queue has room.
    pub fn can_inject(&self, port: usize) -> bool {
        !self.inputs[port].is_full()
    }

    /// Advances the switch by one tick of its clock domain: transfers one
    /// flit on every active link, completes transfers, and arbitrates new
    /// ones.
    pub fn tick(&mut self) {
        self.now += 1;
        self.stats.ticks += 1;

        // Arbitration first: each free output picks the next requesting
        // input in round-robin order, so a granted packet moves its first
        // flit this very tick. An input with an active transfer can't start
        // another (head-of-line blocking).
        for out in 0..self.config.outputs {
            if self.output_busy[out].is_some() {
                continue;
            }
            if self.eject[out].len() >= self.config.eject_capacity {
                continue; // downstream backpressure
            }
            let start = self.rr[out];
            for k in 0..self.config.inputs {
                let input = (start + k) % self.config.inputs;
                if self.active[input].is_some() {
                    continue;
                }
                // VC-style allocation: the first packet for this output
                // within the lookahead window wins (same-flow order is
                // preserved because the scan takes the first match).
                let pos = self.inputs[input]
                    .iter()
                    .take(self.config.vc_lookahead)
                    .position(|p| p.dst == out);
                if let Some(pos) = pos {
                    let packet =
                        self.inputs[input].remove_at(pos).expect("position from scan");
                    let flits = packet.flits;
                    self.active[input] = Some(Transfer { packet, remaining_flits: flits });
                    self.output_busy[out] = Some(input);
                    self.rr[out] = (input + 1) % self.config.inputs;
                    break;
                }
            }
        }

        // Move one flit per active transfer; complete finished ones.
        for input in 0..self.config.inputs {
            if let Some(tr) = &mut self.active[input] {
                let dst = tr.packet.dst;
                tr.remaining_flits -= 1;
                self.stats.output_flits[dst] += 1;
                if tr.remaining_flits == 0 {
                    let tr = self.active[input].take().expect("just matched Some");
                    self.output_busy[dst] = None;
                    let ready = self.now + self.config.router_latency as u64;
                    self.eject[dst].push_back((ready, tr.packet));
                    self.stats.packets += 1;
                }
            }
        }
    }

    /// Removes and returns the oldest packet delivered at output `port`, if
    /// its router-pipeline delay has elapsed.
    pub fn pop_output(&mut self, port: usize) -> Option<Packet<T>> {
        match self.eject[port].front() {
            Some((ready, _)) if *ready <= self.now => self.eject[port].pop_front().map(|(_, p)| p),
            _ => None,
        }
    }

    /// Peeks the oldest deliverable packet at output `port` without
    /// removing it.
    pub fn peek_output(&self, port: usize) -> Option<&Packet<T>> {
        match self.eject[port].front() {
            Some((ready, p)) if *ready <= self.now => Some(p),
            _ => None,
        }
    }

    /// Whether any packet is queued, in flight, or awaiting ejection.
    pub fn is_idle(&self) -> bool {
        self.inputs.iter().all(|q| q.is_empty())
            && self.active.iter().all(|t| t.is_none())
            && self.eject.iter().all(|q| q.is_empty())
    }

    /// Total packets currently inside the switch.
    pub fn in_flight(&self) -> usize {
        self.inputs.iter().map(|q| q.len()).sum::<usize>()
            + self.active.iter().filter(|t| t.is_some()).count()
            + self.eject.iter().map(|q| q.len()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(i: usize, o: usize) -> CrossbarConfig {
        CrossbarConfig::new(i, o).unwrap()
    }

    #[test]
    fn single_packet_traverses_with_latency() {
        let mut x: Crossbar<u32> = Crossbar::new(cfg(1, 1));
        x.try_inject(Packet::new(0, 0, 0, 7)).unwrap();
        // 1 flit + 2-cycle router latency: arbitrated on tick 1 and
        // transferred, ready at tick 3.
        x.tick();
        assert!(x.pop_output(0).is_none());
        x.tick();
        assert!(x.pop_output(0).is_none());
        x.tick();
        assert_eq!(x.pop_output(0).map(|p| p.payload), Some(7));
        assert!(x.is_idle());
    }

    #[test]
    fn multi_flit_packet_serializes() {
        let mut x: Crossbar<()> = Crossbar::new(cfg(1, 1));
        // 128 B data → 5 flits; ready at tick 5 + 2 latency.
        x.try_inject(Packet::new(0, 0, 128, ())).unwrap();
        for t in 1..=6 {
            x.tick();
            assert!(x.pop_output(0).is_none(), "delivered too early at tick {t}");
        }
        x.tick();
        assert!(x.pop_output(0).is_some());
        assert_eq!(x.stats().output_flits[0], 5);
    }

    #[test]
    fn output_contention_is_round_robin_fair() {
        let mut x: Crossbar<usize> = Crossbar::new(cfg(4, 1));
        for src in 0..4 {
            x.try_inject(Packet::new(src, 0, 0, src)).unwrap();
            x.try_inject(Packet::new(src, 0, 0, src)).unwrap();
        }
        let mut order = Vec::new();
        for _ in 0..40 {
            x.tick();
            if let Some(p) = x.pop_output(0) {
                order.push(p.payload);
            }
        }
        assert_eq!(order.len(), 8);
        // Every input served once before any is served twice.
        let first_four: std::collections::BTreeSet<_> = order[..4].iter().copied().collect();
        assert_eq!(first_four.len(), 4, "unfair arbitration: {order:?}");
    }

    #[test]
    fn injection_backpressure() {
        let mut x: Crossbar<u8> = Crossbar::new(cfg(1, 1));
        let cap = x.config().input_queue_capacity as u8;
        for i in 0..cap {
            x.try_inject(Packet::new(0, 0, 0, i)).unwrap();
        }
        assert!(!x.can_inject(0));
        let p = Packet::new(0, 0, 0, 99);
        assert!(x.try_inject(p).is_err());
    }

    #[test]
    fn head_of_line_blocking() {
        // With pure FIFO inputs (lookahead 1): input 0 has a packet for
        // output 0 (busy) in front of one for output 1 (free): the second
        // must wait.
        let mut x: Crossbar<char> =
            Crossbar::new(CrossbarConfig { vc_lookahead: 1, ..cfg(2, 2) });
        x.try_inject(Packet::new(1, 0, 128, 'a')).unwrap(); // long transfer on out 0
        x.tick(); // 'a' wins output 0
        x.try_inject(Packet::new(0, 0, 0, 'b')).unwrap();
        x.try_inject(Packet::new(0, 1, 0, 'c')).unwrap();
        for _ in 0..3 {
            x.tick();
            assert!(x.pop_output(1).is_none(), "'c' must be HoL-blocked behind 'b'");
        }
    }

    #[test]
    fn vc_lookahead_bypasses_blocked_head() {
        // Same scenario as the HoL test, but with the default lookahead
        // the packet to the free output proceeds past the blocked head.
        let mut x: Crossbar<char> = Crossbar::new(cfg(2, 2));
        x.try_inject(Packet::new(1, 0, 128, 'a')).unwrap(); // long transfer on out 0
        x.tick(); // 'a' wins output 0
        x.try_inject(Packet::new(0, 0, 0, 'b')).unwrap();
        x.try_inject(Packet::new(0, 1, 0, 'c')).unwrap();
        let mut got_c = false;
        for _ in 0..4 {
            x.tick();
            if x.pop_output(1).map(|p| p.payload) == Some('c') {
                got_c = true;
            }
        }
        assert!(got_c, "'c' must bypass the blocked head via VC lookahead");
    }

    #[test]
    fn same_flow_packets_never_reorder_past_lookahead() {
        // Two packets of the same (src,dst) flow: the scan must always
        // pick the older one first.
        let mut x: Crossbar<u8> = Crossbar::new(cfg(1, 1));
        x.try_inject(Packet::new(0, 0, 0, 1)).unwrap();
        x.try_inject(Packet::new(0, 0, 0, 2)).unwrap();
        let mut order = Vec::new();
        for _ in 0..10 {
            x.tick();
            while let Some(p) = x.pop_output(0) {
                order.push(p.payload);
            }
        }
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn distinct_outputs_transfer_in_parallel() {
        let mut x: Crossbar<u8> = Crossbar::new(cfg(2, 2));
        x.try_inject(Packet::new(0, 0, 0, 1)).unwrap();
        x.try_inject(Packet::new(1, 1, 0, 2)).unwrap();
        for _ in 0..4 {
            x.tick();
        }
        assert!(x.pop_output(0).is_some());
        assert!(x.pop_output(1).is_some());
    }

    #[test]
    fn utilization_statistics() {
        let mut x: Crossbar<()> = Crossbar::new(cfg(1, 1));
        x.try_inject(Packet::new(0, 0, 96, ())).unwrap(); // 4 flits
        for _ in 0..8 {
            x.tick();
        }
        assert_eq!(x.stats().ticks, 8);
        assert!((x.stats().link_utilization(0) - 0.5).abs() < 1e-12);
        assert!((x.stats().max_link_utilization() - 0.5).abs() < 1e-12);
        assert_eq!(x.stats().total_flits(), 4);
        assert_eq!(x.stats().packets, 1);
    }

    #[test]
    fn ejection_backpressure_stalls_switch() {
        let mut x: Crossbar<u32> = Crossbar::new(CrossbarConfig {
            eject_capacity: 1,
            ..cfg(1, 1)
        });
        x.try_inject(Packet::new(0, 0, 0, 1)).unwrap();
        x.try_inject(Packet::new(0, 0, 0, 2)).unwrap();
        for _ in 0..10 {
            x.tick();
        }
        // The first packet sits in the full ejection buffer; the second is
        // stalled in the input queue behind the backpressure.
        assert_eq!(x.in_flight(), 2);
        assert_eq!(x.pop_output(0).map(|p| p.payload), Some(1));
        for _ in 0..5 {
            x.tick();
        }
        assert_eq!(x.pop_output(0).map(|p| p.payload), Some(2));
    }

    #[test]
    #[should_panic(expected = "output port out of range")]
    fn inject_invalid_port_panics() {
        let mut x: Crossbar<()> = Crossbar::new(cfg(2, 2));
        let _ = x.try_inject(Packet::new(0, 5, 0, ()));
    }
}
