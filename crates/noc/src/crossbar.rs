//! Input-queued crossbar switch with round-robin output arbitration.

use crate::Packet;
use dcl1_common::invariant::{InvariantError, InvariantResult};
use dcl1_common::{BoundedQueue, ConfigError};
use std::collections::VecDeque;

/// Structural parameters of a crossbar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrossbarConfig {
    /// Number of input ports.
    pub inputs: usize,
    /// Number of output ports.
    pub outputs: usize,
    /// Capacity of each input (injection) queue, in packets.
    ///
    /// The paper's routers have 4 VCs × 4 flit buffers per port; this model
    /// abstracts them into one input FIFO per port.
    pub input_queue_capacity: usize,
    /// Router pipeline latency in ticks added to every traversal.
    pub router_latency: u32,
    /// Maximum packets parked in an ejection buffer before the switch stops
    /// scheduling new transfers to that output (downstream backpressure).
    pub eject_capacity: usize,
    /// How deep into each input queue the allocator looks for a packet to
    /// a free output. 1 = pure FIFO (full head-of-line blocking); the
    /// paper's 4-VC routers are modelled as a lookahead of 4. Packets of
    /// the same (src, dst) flow can never reorder: the scan takes the
    /// first match.
    pub vc_lookahead: usize,
}

impl CrossbarConfig {
    /// Creates a config with the simulator's default buffering (4-packet
    /// input queues, 2-tick router latency, 8-packet ejection buffers).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `inputs` or `outputs` is zero.
    pub fn new(inputs: usize, outputs: usize) -> Result<Self, ConfigError> {
        if inputs == 0 || outputs == 0 {
            return Err(ConfigError::new("crossbar must have nonzero ports"));
        }
        Ok(CrossbarConfig {
            inputs,
            outputs,
            input_queue_capacity: 8,
            router_latency: 2,
            eject_capacity: 8,
            vc_lookahead: 4,
        })
    }
}

/// Per-crossbar statistics used for utilization figures and dynamic power.
#[derive(Debug, Clone, Default)]
pub struct CrossbarStats {
    /// Ticks this crossbar has executed.
    pub ticks: u64,
    /// Flits transferred per output link.
    pub output_flits: Vec<u64>,
    /// Flits injected per input port.
    pub input_flits: Vec<u64>,
    /// Packets delivered.
    pub packets: u64,
}

impl CrossbarStats {
    /// Utilization of output link `port`: flits transferred / ticks.
    pub fn link_utilization(&self, port: usize) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.output_flits[port] as f64 / self.ticks as f64
        }
    }

    /// The highest output-link utilization across the crossbar.
    pub fn max_link_utilization(&self) -> f64 {
        (0..self.output_flits.len())
            .map(|p| self.link_utilization(p))
            .fold(0.0, f64::max)
    }

    /// Total flits moved through the switch (for dynamic power).
    pub fn total_flits(&self) -> u64 {
        self.output_flits.iter().sum()
    }
}

/// An in-progress packet transfer from one input to one output.
#[derive(Debug)]
struct Transfer<T> {
    packet: Packet<T>,
    remaining_flits: u32,
}

/// An input-queued crossbar switch.
///
/// Call [`try_inject`](Crossbar::try_inject) to enqueue packets,
/// [`tick`](Crossbar::tick) once per clock of the crossbar's frequency
/// domain, and [`pop_output`](Crossbar::pop_output) to drain delivered
/// packets.
///
/// # Examples
///
/// ```
/// use dcl1_noc::{Crossbar, CrossbarConfig, Packet};
///
/// let mut xbar: Crossbar<&str> = Crossbar::new(CrossbarConfig::new(2, 2)?);
/// xbar.try_inject(Packet::new(0, 1, 0, "hello")).unwrap();
/// for _ in 0..8 { xbar.tick(); }
/// assert_eq!(xbar.pop_output(1).map(|p| p.payload), Some("hello"));
/// # Ok::<(), dcl1_common::ConfigError>(())
/// ```
#[derive(Debug)]
pub struct Crossbar<T> {
    config: CrossbarConfig,
    inputs: Vec<BoundedQueue<Packet<T>>>,
    /// Active transfer per input, if any (locks the input).
    active: Vec<Option<Transfer<T>>>,
    /// Indices of inputs with an active transfer, unordered. Iteration
    /// order does not matter: every active transfer owns a distinct
    /// output, so per-output effects never interleave.
    active_inputs: Vec<usize>,
    /// Which input each output is currently receiving from.
    output_busy: Vec<Option<usize>>,
    /// Delivered packets waiting behind the router pipeline:
    /// (ready_tick, packet), in ready order per output.
    eject: Vec<VecDeque<(u64, Packet<T>)>>,
    /// Round-robin arbiter pointer per output.
    rr: Vec<usize>,
    /// Queued (not yet granted) packets per destination output, so
    /// arbitration can skip outputs nobody is requesting.
    pending: Vec<usize>,
    /// Per-input bitset of the destinations present in the first
    /// `vc_lookahead` queue entries — the only packets arbitration can
    /// see. Lets the allocator reject an (output, input) pair in O(1)
    /// instead of scanning the window. All-ones when the switch has more
    /// than 128 outputs (scan always runs; correctness is unaffected).
    window_dsts: Vec<u128>,
    /// Transpose of `window_dsts`: per-output bitset of inputs with a
    /// packet for that output inside the lookahead window. Maintained
    /// only when [`masks_exact`](Crossbar::masks_exact) — it turns the
    /// round-robin input scan into two bit operations.
    requesters: Vec<u128>,
    /// Bitset of inputs with an active transfer (only meaningful when
    /// [`masks_exact`](Crossbar::masks_exact)).
    active_mask: u128,
    /// Total packets across the input queues (Σ `pending`).
    queued: usize,
    /// Inputs with an active transfer.
    active_count: usize,
    /// Packets parked across the ejection buffers.
    ejected: usize,
    now: u64,
    stats: CrossbarStats,
    /// Lifetime packets accepted by `try_inject`. Unlike `stats`, the
    /// lifetime counters survive `reset_stats` — they exist to prove
    /// conservation over the whole run, not to measure a window.
    lifetime_injected_packets: u64,
    /// Lifetime packets handed out by `pop_output`.
    lifetime_delivered_packets: u64,
    /// Lifetime flits accepted at the inputs.
    lifetime_injected_flits: u64,
    /// Lifetime flits moved across the switch fabric.
    lifetime_moved_flits: u64,
}

impl<T> Crossbar<T> {
    /// Creates an idle crossbar.
    pub fn new(config: CrossbarConfig) -> Self {
        Crossbar {
            inputs: (0..config.inputs)
                .map(|_| BoundedQueue::new(config.input_queue_capacity))
                .collect(),
            active: (0..config.inputs).map(|_| None).collect(),
            active_inputs: Vec::with_capacity(config.inputs),
            output_busy: vec![None; config.outputs],
            eject: (0..config.outputs).map(|_| VecDeque::new()).collect(),
            rr: vec![0; config.outputs],
            pending: vec![0; config.outputs],
            window_dsts: vec![0; config.inputs],
            requesters: vec![0; config.outputs],
            active_mask: 0,
            queued: 0,
            active_count: 0,
            ejected: 0,
            now: 0,
            stats: CrossbarStats {
                ticks: 0,
                output_flits: vec![0; config.outputs],
                input_flits: vec![0; config.inputs],
                packets: 0,
            },
            lifetime_injected_packets: 0,
            lifetime_delivered_packets: 0,
            lifetime_injected_flits: 0,
            lifetime_moved_flits: 0,
            config,
        }
    }

    /// Returns the structural configuration.
    pub fn config(&self) -> &CrossbarConfig {
        &self.config
    }

    /// Returns accumulated statistics.
    pub fn stats(&self) -> &CrossbarStats {
        &self.stats
    }

    /// Zeroes the statistics (end-of-warmup measurement reset); in-flight
    /// packets and queue contents are untouched.
    pub fn reset_stats(&mut self) {
        self.stats = CrossbarStats {
            ticks: 0,
            output_flits: vec![0; self.config.outputs],
            input_flits: vec![0; self.config.inputs],
            packets: 0,
        };
    }

    /// Attempts to enqueue `packet` at its input port.
    ///
    /// # Errors
    ///
    /// Returns `Err(packet)` when the input queue is full (backpressure).
    ///
    /// # Panics
    ///
    /// Panics if `packet.src` or `packet.dst` is out of range.
    pub fn try_inject(&mut self, packet: Packet<T>) -> Result<(), Packet<T>> {
        assert!(packet.src < self.config.inputs, "input port out of range");
        assert!(packet.dst < self.config.outputs, "output port out of range");
        let flits = packet.flits as u64;
        let src = packet.src;
        let dst = packet.dst;
        let pos = self.inputs[src].len();
        self.inputs[src].try_push(packet)?;
        if pos < self.config.vc_lookahead {
            self.set_window(src, self.window_dsts[src] | Self::dst_bit(dst));
        }
        self.stats.input_flits[src] += flits;
        self.lifetime_injected_packets += 1;
        self.lifetime_injected_flits += flits;
        self.pending[dst] += 1;
        self.queued += 1;
        Ok(())
    }

    /// Whether the port counts fit the 128-bit masks, making
    /// `window_dsts`/`requesters` exact rather than conservative.
    fn masks_exact(&self) -> bool {
        self.config.inputs <= 128 && self.config.outputs <= 128
    }

    /// Bit for `dst` in a [`window_dsts`](Crossbar::window_dsts) mask; the
    /// all-ones fallback for >128-output switches only forces the precise
    /// scan, never skips it.
    fn dst_bit(dst: usize) -> u128 {
        if dst < 128 {
            1u128 << dst
        } else {
            u128::MAX
        }
    }

    /// Updates input `port`'s window bitset and, when the masks are exact,
    /// mirrors the change into the per-output `requesters` transpose.
    fn set_window(&mut self, port: usize, new: u128) {
        let old = self.window_dsts[port];
        self.window_dsts[port] = new;
        if old == new || !self.masks_exact() {
            return;
        }
        let bit = 1u128 << port;
        let mut added = new & !old;
        while added != 0 {
            self.requesters[added.trailing_zeros() as usize] |= bit;
            added &= added - 1;
        }
        let mut removed = old & !new;
        while removed != 0 {
            self.requesters[removed.trailing_zeros() as usize] &= !bit;
            removed &= removed - 1;
        }
    }

    /// Recomputes input `port`'s lookahead-window destination bitset after
    /// a removal shifted the window.
    fn recompute_window(&mut self, port: usize) {
        let mut mask = 0u128;
        for p in self.inputs[port].iter().take(self.config.vc_lookahead) {
            mask |= Self::dst_bit(p.dst);
        }
        self.set_window(port, mask);
    }

    /// Whether input `port`'s injection queue has room.
    pub fn can_inject(&self, port: usize) -> bool {
        !self.inputs[port].is_full()
    }

    /// Advances the switch by one tick of its clock domain: transfers one
    /// flit on every active link, completes transfers, and arbitrates new
    /// ones.
    pub fn tick(&mut self) {
        self.now += 1;
        self.stats.ticks += 1;

        // Fast path: nothing queued and nothing in flight means arbitration
        // and flit movement are both no-ops (ejection buffers only wait for
        // `now` to advance). `ticks` still counts — it is the denominator of
        // every link-utilization figure.
        if self.queued == 0 && self.active_count == 0 {
            return;
        }

        // Arbitration first: each free output picks the next requesting
        // input in round-robin order, so a granted packet moves its first
        // flit this very tick. An input with an active transfer can't start
        // another (head-of-line blocking). Outputs with no queued requester
        // (`pending`) are skipped outright — the inner scan could never
        // grant them anything.
        if self.queued > 0 {
            let exact = self.masks_exact();
            for out in 0..self.config.outputs {
                if self.pending[out] == 0 {
                    continue;
                }
                if self.output_busy[out].is_some() {
                    continue;
                }
                if self.eject[out].len() >= self.config.eject_capacity {
                    continue; // downstream backpressure
                }
                let start = self.rr[out];
                if exact {
                    // Exact masks: the free inputs requesting `out` are one
                    // bit-and away, and the round-robin pick from `start`
                    // is a pair of trailing-zeros scans — equivalent to
                    // (and replacing) the rotating input scan below.
                    let mask = self.requesters[out] & !self.active_mask;
                    if mask == 0 {
                        continue;
                    }
                    let above = mask >> start;
                    let input = if above != 0 {
                        start + above.trailing_zeros() as usize
                    } else {
                        mask.trailing_zeros() as usize
                    };
                    self.grant(out, input);
                    continue;
                }
                for k in 0..self.config.inputs {
                    let input = (start + k) % self.config.inputs;
                    if self.active[input].is_some() {
                        continue;
                    }
                    // Conservative pre-filter (wide switches): the window
                    // bitset can have false positives, so the position
                    // scan below stays authoritative.
                    if self.window_dsts[input] & Self::dst_bit(out) == 0 {
                        continue;
                    }
                    let pos = self.inputs[input]
                        .iter()
                        .take(self.config.vc_lookahead)
                        .position(|p| p.dst == out);
                    if pos.is_some() {
                        self.grant(out, input);
                        break;
                    }
                }
            }
        }

        self.move_flits();
    }

    /// Starts the transfer of input `input`'s oldest windowed packet for
    /// output `out` (VC-style allocation: the first match in the lookahead
    /// window wins, so same-flow packets never reorder).
    fn grant(&mut self, out: usize, input: usize) {
        let pos = self.inputs[input]
            .iter()
            .take(self.config.vc_lookahead)
            .position(|p| p.dst == out)
            .expect("granted input has a windowed packet for the output");
        let packet = self.inputs[input].remove_at(pos).expect("position from scan");
        let flits = packet.flits;
        self.active[input] = Some(Transfer { packet, remaining_flits: flits });
        self.output_busy[out] = Some(input);
        self.rr[out] = (input + 1) % self.config.inputs;
        self.pending[out] -= 1;
        self.queued -= 1;
        self.active_count += 1;
        self.active_inputs.push(input);
        self.active_mask |= 1u128 << (input & 127);
        self.recompute_window(input);
    }

    fn move_flits(&mut self) {
        // Move one flit per active transfer; complete finished ones. Only
        // the inputs on the active list are touched (each owns a distinct
        // output, so visiting them out of input order changes nothing).
        let mut i = 0;
        while i < self.active_inputs.len() {
            let input = self.active_inputs[i];
            let tr = self.active[input].as_mut().expect("active list entry has a transfer");
            let dst = tr.packet.dst;
            tr.remaining_flits -= 1;
            self.stats.output_flits[dst] += 1;
            self.lifetime_moved_flits += 1;
            if tr.remaining_flits == 0 {
                let tr = self.active[input].take().expect("just matched Some");
                self.output_busy[dst] = None;
                let ready = self.now + self.config.router_latency as u64;
                self.eject[dst].push_back((ready, tr.packet));
                self.stats.packets += 1;
                self.active_count -= 1;
                self.ejected += 1;
                self.active_mask &= !(1u128 << (input & 127));
                self.active_inputs.swap_remove(i);
            } else {
                i += 1;
            }
        }
    }

    /// Advances the clock by `n` ticks at once — exactly equivalent to `n`
    /// calls to [`tick`](Crossbar::tick) on an empty switch, in O(1). Used
    /// by whole-machine idle fast-forward.
    ///
    /// # Panics
    ///
    /// Debug-panics if the switch is not completely empty.
    pub fn skip_idle_ticks(&mut self, n: u64) {
        debug_assert!(self.is_idle(), "skip_idle_ticks on a non-idle crossbar");
        self.now += n;
        self.stats.ticks += n;
    }

    /// Removes and returns the oldest packet delivered at output `port`, if
    /// its router-pipeline delay has elapsed.
    pub fn pop_output(&mut self, port: usize) -> Option<Packet<T>> {
        match self.eject[port].front() {
            Some((ready, _)) if *ready <= self.now => {
                self.ejected -= 1;
                self.lifetime_delivered_packets += 1;
                debug_assert!(
                    self.lifetime_delivered_packets <= self.lifetime_injected_packets,
                    "crossbar delivered a packet it never accepted"
                );
                self.eject[port].pop_front().map(|(_, p)| p)
            }
            _ => None,
        }
    }

    /// Peeks the oldest deliverable packet at output `port` without
    /// removing it.
    pub fn peek_output(&self, port: usize) -> Option<&Packet<T>> {
        match self.eject[port].front() {
            Some((ready, p)) if *ready <= self.now => Some(p),
            _ => None,
        }
    }

    /// Whether any packet is waiting in an output queue. O(1); lets callers
    /// skip per-port ejection scans on quiet switches.
    pub fn has_output(&self) -> bool {
        self.ejected > 0
    }

    /// Whether any packet is queued, in flight, or awaiting ejection. O(1).
    pub fn is_idle(&self) -> bool {
        self.queued == 0 && self.active_count == 0 && self.ejected == 0
    }

    /// Total packets currently inside the switch. O(1).
    pub fn in_flight(&self) -> usize {
        self.queued + self.active_count + self.ejected
    }

    /// Lifetime packets accepted at the inputs (survives `reset_stats`).
    pub fn lifetime_injected_packets(&self) -> u64 {
        self.lifetime_injected_packets
    }

    /// Lifetime packets handed out by `pop_output` (survives `reset_stats`).
    pub fn lifetime_delivered_packets(&self) -> u64 {
        self.lifetime_delivered_packets
    }

    /// Checks every conservation law the switch must obey, recomputing the
    /// O(1) occupancy counters from the ground truth they summarize:
    ///
    /// * `queued`/`active_count`/`ejected`/`pending` match the queues they
    ///   mirror, and each input queue conserves its own items;
    /// * packets: lifetime injected == lifetime delivered + in flight;
    /// * flits: lifetime injected == lifetime moved + flits still held in
    ///   input queues and partial transfers.
    ///
    /// `site` names this crossbar in the error report. O(ports + queued),
    /// intended for per-epoch checked-sim use, not the per-tick hot path.
    ///
    /// # Errors
    ///
    /// Returns the first violated law with its counter values.
    pub fn check_conservation(&self, site: &str) -> InvariantResult {
        let mut queued = 0usize;
        let mut held_flits = 0u64;
        let mut pending = vec![0usize; self.config.outputs];
        for (port, q) in self.inputs.iter().enumerate() {
            q.check_conservation(&format!("{site}.input{port}"))?;
            queued += q.len();
            for p in q.iter() {
                pending[p.dst] += 1;
                held_flits += p.flits as u64;
            }
        }
        if queued != self.queued {
            return Err(InvariantError::new(
                site,
                format!("queued counter {} != recount {}", self.queued, queued),
            ));
        }
        if pending != self.pending {
            return Err(InvariantError::new(
                site,
                format!("pending counters {:?} != recount {:?}", self.pending, pending),
            ));
        }
        let active = self.active.iter().flatten().count();
        if active != self.active_count || active != self.active_inputs.len() {
            return Err(InvariantError::new(
                site,
                format!(
                    "active counter {} / list {} != recount {}",
                    self.active_count,
                    self.active_inputs.len(),
                    active
                ),
            ));
        }
        for tr in self.active.iter().flatten() {
            held_flits += tr.remaining_flits as u64;
        }
        let ejected: usize = self.eject.iter().map(VecDeque::len).sum();
        if ejected != self.ejected {
            return Err(InvariantError::new(
                site,
                format!("ejected counter {} != recount {}", self.ejected, ejected),
            ));
        }
        let in_flight = self.in_flight() as u64;
        if self.lifetime_injected_packets != self.lifetime_delivered_packets + in_flight {
            return Err(InvariantError::new(
                site,
                format!(
                    "packet leak: injected {} != delivered {} + in-flight {}",
                    self.lifetime_injected_packets, self.lifetime_delivered_packets, in_flight
                ),
            ));
        }
        if self.lifetime_injected_flits != self.lifetime_moved_flits + held_flits {
            return Err(InvariantError::new(
                site,
                format!(
                    "flit leak: injected {} != moved {} + held {}",
                    self.lifetime_injected_flits, self.lifetime_moved_flits, held_flits
                ),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::cast_possible_truncation)] // test values are tiny
mod tests {
    use super::*;

    fn cfg(i: usize, o: usize) -> CrossbarConfig {
        CrossbarConfig::new(i, o).unwrap()
    }

    #[test]
    fn single_packet_traverses_with_latency() {
        let mut x: Crossbar<u32> = Crossbar::new(cfg(1, 1));
        x.try_inject(Packet::new(0, 0, 0, 7)).unwrap();
        // 1 flit + 2-cycle router latency: arbitrated on tick 1 and
        // transferred, ready at tick 3.
        x.tick();
        assert!(x.pop_output(0).is_none());
        x.tick();
        assert!(x.pop_output(0).is_none());
        x.tick();
        assert_eq!(x.pop_output(0).map(|p| p.payload), Some(7));
        assert!(x.is_idle());
    }

    #[test]
    fn multi_flit_packet_serializes() {
        let mut x: Crossbar<()> = Crossbar::new(cfg(1, 1));
        // 128 B data → 5 flits; ready at tick 5 + 2 latency.
        x.try_inject(Packet::new(0, 0, 128, ())).unwrap();
        for t in 1..=6 {
            x.tick();
            assert!(x.pop_output(0).is_none(), "delivered too early at tick {t}");
        }
        x.tick();
        assert!(x.pop_output(0).is_some());
        assert_eq!(x.stats().output_flits[0], 5);
    }

    #[test]
    fn output_contention_is_round_robin_fair() {
        let mut x: Crossbar<usize> = Crossbar::new(cfg(4, 1));
        for src in 0..4 {
            x.try_inject(Packet::new(src, 0, 0, src)).unwrap();
            x.try_inject(Packet::new(src, 0, 0, src)).unwrap();
        }
        let mut order = Vec::new();
        for _ in 0..40 {
            x.tick();
            if let Some(p) = x.pop_output(0) {
                order.push(p.payload);
            }
        }
        assert_eq!(order.len(), 8);
        // Every input served once before any is served twice.
        let first_four: std::collections::BTreeSet<_> = order[..4].iter().copied().collect();
        assert_eq!(first_four.len(), 4, "unfair arbitration: {order:?}");
    }

    #[test]
    fn injection_backpressure() {
        let mut x: Crossbar<u8> = Crossbar::new(cfg(1, 1));
        let cap = x.config().input_queue_capacity as u8;
        for i in 0..cap {
            x.try_inject(Packet::new(0, 0, 0, i)).unwrap();
        }
        assert!(!x.can_inject(0));
        let p = Packet::new(0, 0, 0, 99);
        assert!(x.try_inject(p).is_err());
    }

    #[test]
    fn head_of_line_blocking() {
        // With pure FIFO inputs (lookahead 1): input 0 has a packet for
        // output 0 (busy) in front of one for output 1 (free): the second
        // must wait.
        let mut x: Crossbar<char> =
            Crossbar::new(CrossbarConfig { vc_lookahead: 1, ..cfg(2, 2) });
        x.try_inject(Packet::new(1, 0, 128, 'a')).unwrap(); // long transfer on out 0
        x.tick(); // 'a' wins output 0
        x.try_inject(Packet::new(0, 0, 0, 'b')).unwrap();
        x.try_inject(Packet::new(0, 1, 0, 'c')).unwrap();
        for _ in 0..3 {
            x.tick();
            assert!(x.pop_output(1).is_none(), "'c' must be HoL-blocked behind 'b'");
        }
    }

    #[test]
    fn vc_lookahead_bypasses_blocked_head() {
        // Same scenario as the HoL test, but with the default lookahead
        // the packet to the free output proceeds past the blocked head.
        let mut x: Crossbar<char> = Crossbar::new(cfg(2, 2));
        x.try_inject(Packet::new(1, 0, 128, 'a')).unwrap(); // long transfer on out 0
        x.tick(); // 'a' wins output 0
        x.try_inject(Packet::new(0, 0, 0, 'b')).unwrap();
        x.try_inject(Packet::new(0, 1, 0, 'c')).unwrap();
        let mut got_c = false;
        for _ in 0..4 {
            x.tick();
            if x.pop_output(1).map(|p| p.payload) == Some('c') {
                got_c = true;
            }
        }
        assert!(got_c, "'c' must bypass the blocked head via VC lookahead");
    }

    #[test]
    fn same_flow_packets_never_reorder_past_lookahead() {
        // Two packets of the same (src,dst) flow: the scan must always
        // pick the older one first.
        let mut x: Crossbar<u8> = Crossbar::new(cfg(1, 1));
        x.try_inject(Packet::new(0, 0, 0, 1)).unwrap();
        x.try_inject(Packet::new(0, 0, 0, 2)).unwrap();
        let mut order = Vec::new();
        for _ in 0..10 {
            x.tick();
            while let Some(p) = x.pop_output(0) {
                order.push(p.payload);
            }
        }
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn distinct_outputs_transfer_in_parallel() {
        let mut x: Crossbar<u8> = Crossbar::new(cfg(2, 2));
        x.try_inject(Packet::new(0, 0, 0, 1)).unwrap();
        x.try_inject(Packet::new(1, 1, 0, 2)).unwrap();
        for _ in 0..4 {
            x.tick();
        }
        assert!(x.pop_output(0).is_some());
        assert!(x.pop_output(1).is_some());
    }

    #[test]
    fn utilization_statistics() {
        let mut x: Crossbar<()> = Crossbar::new(cfg(1, 1));
        x.try_inject(Packet::new(0, 0, 96, ())).unwrap(); // 4 flits
        for _ in 0..8 {
            x.tick();
        }
        assert_eq!(x.stats().ticks, 8);
        assert!((x.stats().link_utilization(0) - 0.5).abs() < 1e-12);
        assert!((x.stats().max_link_utilization() - 0.5).abs() < 1e-12);
        assert_eq!(x.stats().total_flits(), 4);
        assert_eq!(x.stats().packets, 1);
    }

    #[test]
    fn ejection_backpressure_stalls_switch() {
        let mut x: Crossbar<u32> = Crossbar::new(CrossbarConfig {
            eject_capacity: 1,
            ..cfg(1, 1)
        });
        x.try_inject(Packet::new(0, 0, 0, 1)).unwrap();
        x.try_inject(Packet::new(0, 0, 0, 2)).unwrap();
        for _ in 0..10 {
            x.tick();
        }
        // The first packet sits in the full ejection buffer; the second is
        // stalled in the input queue behind the backpressure.
        assert_eq!(x.in_flight(), 2);
        assert_eq!(x.pop_output(0).map(|p| p.payload), Some(1));
        for _ in 0..5 {
            x.tick();
        }
        assert_eq!(x.pop_output(0).map(|p| p.payload), Some(2));
    }

    #[test]
    #[should_panic(expected = "output port out of range")]
    fn inject_invalid_port_panics() {
        let mut x: Crossbar<()> = Crossbar::new(cfg(2, 2));
        let _ = x.try_inject(Packet::new(0, 5, 0, ()));
    }

    #[test]
    fn idle_tick_changes_nothing_but_ticks() {
        let mut x: Crossbar<u32> = Crossbar::new(cfg(4, 3));
        // Exercise the switch first so the stats are non-trivial.
        x.try_inject(Packet::new(2, 1, 64, 5)).unwrap();
        for _ in 0..10 {
            x.tick();
        }
        assert_eq!(x.pop_output(1).map(|p| p.payload), Some(5));
        assert!(x.is_idle());

        let stats_before = x.stats().clone();
        let rr_before = x.rr.clone();
        let pending_before = x.pending.clone();
        for _ in 0..1000 {
            x.tick();
        }
        let stats_after = x.stats();
        assert_eq!(stats_after.ticks, stats_before.ticks + 1000);
        assert_eq!(stats_after.output_flits, stats_before.output_flits);
        assert_eq!(stats_after.input_flits, stats_before.input_flits);
        assert_eq!(stats_after.packets, stats_before.packets);
        assert_eq!(x.rr, rr_before);
        assert_eq!(x.pending, pending_before);
        assert!(x.is_idle());
        assert_eq!(x.in_flight(), 0);
    }

    #[test]
    fn skip_idle_ticks_matches_repeated_ticks() {
        let mut a: Crossbar<u8> = Crossbar::new(cfg(2, 2));
        let mut b: Crossbar<u8> = Crossbar::new(cfg(2, 2));
        for _ in 0..37 {
            a.tick();
        }
        b.skip_idle_ticks(37);
        assert_eq!(a.now, b.now);
        assert_eq!(a.stats().ticks, b.stats().ticks);
        // Behaviour after the skip is identical too.
        a.try_inject(Packet::new(0, 1, 0, 9)).unwrap();
        b.try_inject(Packet::new(0, 1, 0, 9)).unwrap();
        for _ in 0..5 {
            a.tick();
            b.tick();
            assert_eq!(
                a.pop_output(1).map(|p| p.payload),
                b.pop_output(1).map(|p| p.payload)
            );
        }
    }

    #[test]
    fn occupancy_counters_track_packet_lifecycle() {
        let mut x: Crossbar<u8> = Crossbar::new(cfg(2, 2));
        assert!(x.is_idle());
        x.try_inject(Packet::new(0, 1, 0, 1)).unwrap();
        assert!(!x.is_idle());
        assert_eq!(x.in_flight(), 1);
        for _ in 0..5 {
            x.tick();
        }
        assert_eq!(x.in_flight(), 1); // parked in the ejection buffer
        assert!(!x.is_idle());
        assert!(x.pop_output(1).is_some());
        assert!(x.is_idle());
        assert_eq!(x.in_flight(), 0);
    }
}
