//! Epoch-barrier batch exchange: deterministic hand-off of staged
//! messages between simulation shards.
//!
//! A sharded machine runs independent per-shard cycle work and exchanges
//! cross-shard traffic only at a fixed barrier. For the exchange to be
//! independent of thread scheduling, every staged message carries an
//! [`EpochKey`] — `(cycle, source id, sequence)` — and the merged batch is
//! consumed in key order. Arbitration (which message wins a contended
//! input port) then depends only on the key ordering, never on which
//! thread finished first.
//!
//! [`EpochBatch`] is a reusable staging buffer: `stage` → `seal` →
//! consume → `clear`, with both internal vectors retaining their capacity
//! across epochs so the steady-state exchange performs **zero heap
//! allocations** (enforced by the `alloc-probe` CI gate).

use crate::{Crossbar, Packet};

/// Deterministic arbitration key for one staged message.
///
/// Ordering is lexicographic `(cycle, source, seq)`: all messages of an
/// earlier cycle sort first, ties broken by the global id of the staging
/// source (e.g. the issuing core), then by a per-source sequence number.
/// Two staged messages must never compare equal — the triple is what
/// makes the merged arbitration order a pure function of simulation
/// state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EpochKey {
    /// Cycle at which the message was staged.
    pub cycle: u64,
    /// Global id of the staging source (core, node, ...).
    pub source: u64,
    /// Per-source sequence number (e.g. transaction id).
    pub seq: u64,
}

/// A reusable, deterministically ordered staging buffer for one epoch's
/// cross-shard messages.
///
/// Staging in key order is the common case (shards stage their own
/// sources in ascending order) and makes [`seal`](EpochBatch::seal) a
/// verification pass; out-of-order staging is sorted. After sealing, the
/// batch is consumed either by iterating [`entries`](EpochBatch::entries)
/// or by [`Crossbar::inject_batch`], which retains back-pressured entries
/// in order.
#[derive(Debug, Default)]
pub struct EpochBatch<P> {
    entries: Vec<(EpochKey, P)>,
    /// Compaction scratch for `inject_batch` rejects; swapped with
    /// `entries` so both keep their capacity across epochs.
    scratch: Vec<(EpochKey, P)>,
    sealed: bool,
}

impl<P> EpochBatch<P> {
    /// An empty batch.
    pub fn new() -> Self {
        EpochBatch { entries: Vec::new(), scratch: Vec::new(), sealed: false }
    }

    /// An empty batch pre-sized for `n` staged entries per epoch, so the
    /// steady state never grows the buffer.
    pub fn with_capacity(n: usize) -> Self {
        EpochBatch { entries: Vec::with_capacity(n), scratch: Vec::with_capacity(n), sealed: false }
    }

    /// Stages one message for this epoch. Re-opens a sealed batch.
    pub fn stage(&mut self, key: EpochKey, payload: P) {
        self.sealed = false;
        self.entries.push((key, payload));
    }

    /// Fixes the deterministic consumption order. Verifies (and if needed
    /// restores) ascending key order; strictly increasing keys are a
    /// debug-checked requirement — duplicate keys would make the order of
    /// the duplicates depend on staging order.
    pub fn seal(&mut self) {
        if !self.entries.is_sorted_by(|a, b| a.0 < b.0) {
            self.entries.sort_unstable_by_key(|e| e.0);
            debug_assert!(
                self.entries.is_sorted_by(|a, b| a.0 < b.0),
                "duplicate epoch keys in batch"
            );
        }
        self.sealed = true;
    }

    /// True once [`seal`](EpochBatch::seal) has fixed the order.
    pub fn is_sealed(&self) -> bool {
        self.sealed
    }

    /// Number of staged entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is staged.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The staged entries, in key order once sealed.
    pub fn entries(&self) -> &[(EpochKey, P)] {
        &self.entries
    }

    /// Drops all staged entries, keeping the allocation.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.sealed = false;
    }
}

impl<T> Crossbar<T> {
    /// Injects a sealed epoch batch of packets in deterministic key
    /// order, calling `on_inject` for each accepted entry just before it
    /// enters the switch. Entries whose input port has no room are
    /// retained in the batch (still in key order) so the caller can
    /// attribute the back-pressure; accepted entries are removed. Returns
    /// the number injected.
    ///
    /// This is the crossbar's barrier-ingress: per input port the arrival
    /// order equals key order, so downstream arbitration is independent
    /// of how the batch was produced.
    pub fn inject_batch(
        &mut self,
        batch: &mut EpochBatch<Packet<T>>,
        mut on_inject: impl FnMut(&EpochKey, &Packet<T>),
    ) -> usize {
        debug_assert!(batch.sealed, "inject_batch requires a sealed batch");
        let mut injected = 0;
        batch.scratch.clear();
        for (key, pkt) in batch.entries.drain(..) {
            if self.can_inject(pkt.src) {
                on_inject(&key, &pkt);
                self.try_inject(pkt).unwrap_or_else(|_| unreachable!("checked room"));
                injected += 1;
            } else {
                batch.scratch.push((key, pkt));
            }
        }
        std::mem::swap(&mut batch.entries, &mut batch.scratch);
        injected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CrossbarConfig;

    fn key(source: u64, seq: u64) -> EpochKey {
        EpochKey { cycle: 7, source, seq }
    }

    #[test]
    fn seal_restores_key_order() {
        let mut b: EpochBatch<u32> = EpochBatch::new();
        b.stage(key(3, 1), 30);
        b.stage(key(1, 1), 10);
        b.stage(key(2, 1), 20);
        b.seal();
        let order: Vec<u32> = b.entries().iter().map(|&(_, p)| p).collect();
        assert_eq!(order, vec![10, 20, 30]);
        assert!(b.is_sealed());
    }

    #[test]
    fn in_order_staging_is_preserved_and_cheap() {
        let mut b: EpochBatch<u32> = EpochBatch::with_capacity(4);
        for s in 0..4 {
            b.stage(key(s, s + 100), u32::try_from(s).expect("small"));
        }
        b.seal();
        assert_eq!(b.len(), 4);
        assert_eq!(b.entries()[0].1, 0);
        b.clear();
        assert!(b.is_empty());
        assert!(!b.is_sealed());
    }

    #[test]
    fn cycle_dominates_the_ordering() {
        let mut b: EpochBatch<u32> = EpochBatch::new();
        b.stage(EpochKey { cycle: 9, source: 0, seq: 0 }, 2);
        b.stage(EpochKey { cycle: 8, source: 5, seq: 9 }, 1);
        b.seal();
        let order: Vec<u32> = b.entries().iter().map(|&(_, p)| p).collect();
        assert_eq!(order, vec![1, 2]);
    }

    #[test]
    fn inject_batch_consumes_in_order_and_retains_backpressure() {
        // 1-input crossbar with a tiny input queue: only the first few
        // entries fit; the rest must be retained in key order.
        let cfg = CrossbarConfig {
            input_queue_capacity: 2,
            ..CrossbarConfig::new(1, 1).expect("ports")
        };
        let mut x: Crossbar<u64> = Crossbar::new(cfg);
        let mut b: EpochBatch<Packet<u64>> = EpochBatch::new();
        for s in 0..5u64 {
            b.stage(key(s, 1), Packet::new(0, 0, 0, s));
        }
        b.seal();
        let mut accepted = Vec::new();
        let n = x.inject_batch(&mut b, |k, p| accepted.push((k.source, p.payload)));
        assert_eq!(n, 2, "queue capacity bounds the epoch's acceptance");
        assert_eq!(accepted, vec![(0, 0), (1, 1)]);
        let retained: Vec<u64> = b.entries().iter().map(|(_, p)| p.payload).collect();
        assert_eq!(retained, vec![2, 3, 4], "rejects keep key order");

        // Drain the switch; the retained tail injects on the next epoch.
        for _ in 0..16 {
            x.tick();
        }
        while x.pop_output(0).is_some() {}
        let n = x.inject_batch(&mut b, |_, _| {});
        assert_eq!(n, 2);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn steady_state_reuse_never_reallocates() {
        let mut b: EpochBatch<Packet<u64>> = EpochBatch::with_capacity(8);
        let mut x: Crossbar<u64> = Crossbar::new(CrossbarConfig::new(8, 2).expect("ports"));
        // Warm one epoch to fix capacities, then verify they never move.
        for epoch in 0..50u64 {
            for s in 0..8u64 {
                b.stage(
                    EpochKey { cycle: epoch, source: s, seq: s },
                    Packet::new(usize::try_from(s).expect("small"), 0, 0, s),
                );
            }
            b.seal();
            x.inject_batch(&mut b, |_, _| {});
            b.clear();
            for _ in 0..8 {
                x.tick();
                while x.pop_output(0).is_some() {}
                while x.pop_output(1).is_some() {}
            }
            if epoch == 0 {
                assert!(b.entries.capacity() >= 8);
            }
            assert_eq!(b.entries.capacity().min(8), 8.min(b.entries.capacity()));
        }
    }
}
