//! `noc.*` registry namespace: flit and packet traffic per network level.
//!
//! The machine sums [`CrossbarStats`] over each level's crossbars (in
//! global instance order, so the totals are partition-independent) and
//! hands the [`FlitTotals`] here; these counters are the registry face of
//! the paper's NoC-traversal figures.

use crate::CrossbarStats;
use dcl1_obs::registry::{CounterId, Registry};

/// Flit/packet totals for one network level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlitTotals {
    /// Flits moved through the switches (sum of output-link counts).
    pub flits: u64,
    /// Packets delivered.
    pub packets: u64,
}

/// Sums one network level's crossbar statistics.
pub fn totals<'a>(stats: impl Iterator<Item = &'a CrossbarStats>) -> FlitTotals {
    let mut t = FlitTotals::default();
    for s in stats {
        t.flits += s.total_flits();
        t.packets += s.packets;
    }
    t
}

/// Registered ids for every `noc.*` metric.
#[derive(Debug, Clone, Copy)]
pub struct NocMetrics {
    noc1_flits: CounterId,
    noc1_packets: CounterId,
    noc2_flits: CounterId,
    noc2_packets: CounterId,
}

impl NocMetrics {
    /// Registers the `noc.*` namespace.
    pub fn register(reg: &mut Registry) -> NocMetrics {
        NocMetrics {
            noc1_flits: reg.counter("noc.noc1_flits"),
            noc1_packets: reg.counter("noc.noc1_packets"),
            noc2_flits: reg.counter("noc.noc2_flits"),
            noc2_packets: reg.counter("noc.noc2_packets"),
        }
    }

    /// Snapshots both levels' totals.
    pub fn record(self, reg: &mut Registry, noc1: FlitTotals, noc2: FlitTotals) {
        reg.set_counter(self.noc1_flits, noc1.flits);
        reg.set_counter(self.noc1_packets, noc1.packets);
        reg.set_counter(self.noc2_flits, noc2.flits);
        reg.set_counter(self.noc2_packets, noc2.packets);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_sum_output_links_and_packets() {
        let a = CrossbarStats {
            ticks: 10,
            output_flits: vec![3, 4],
            input_flits: vec![7, 0],
            packets: 2,
        };
        let b = CrossbarStats {
            ticks: 10,
            output_flits: vec![5],
            input_flits: vec![5],
            packets: 1,
        };
        let t = totals([&a, &b].into_iter());
        assert_eq!(t, FlitTotals { flits: 12, packets: 3 });
    }

    #[test]
    fn records_both_levels() {
        let mut reg = Registry::new();
        let ids = NocMetrics::register(&mut reg);
        ids.record(
            &mut reg,
            FlitTotals { flits: 100, packets: 25 },
            FlitTotals { flits: 40, packets: 10 },
        );
        assert_eq!(reg.get("noc.noc1_flits"), Some(100));
        assert_eq!(reg.get("noc.noc1_packets"), Some(25));
        assert_eq!(reg.get("noc.noc2_flits"), Some(40));
        assert_eq!(reg.get("noc.noc2_packets"), Some(10));
    }
}
