//! Crossbar network-on-chip model.
//!
//! Every network in the paper — the baseline 80×32 crossbar, the per-node
//! N×1 crossbars of the private DC-L1 designs, the 80×40 crossbar of the
//! fully-shared design, the small 8×4 / 10×8 crossbars of the clustered
//! design, and both stages of the hierarchical CDXBar comparator — is an
//! instance of [`Crossbar`].
//!
//! The model is flit-accurate at the level the paper's arguments need:
//!
//! * packets serialize over 32-byte-flit links, one flit per output per
//!   tick, so a 128 B data reply occupies a link for 4+ ticks;
//! * each input feeds at most one output at a time and vice versa
//!   (head-of-line blocking included);
//! * arbitration is per-output round-robin (a single-iteration
//!   iSLIP-style allocator);
//! * injection buffers are bounded and push backpressure to producers;
//! * per-link flit counts feed the utilization figures (paper Figs 2, 17)
//!   and the dynamic-power model.
//!
//! Frequency domains are handled by the *caller*: a crossbar has no clock
//! of its own and is simply ticked the right number of times per core
//! cycle (twice for the `+Boost` NoC#1, once per two core cycles for the
//! 700 MHz NoC#2).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod crossbar;
mod epoch;
pub mod metrics;
mod packet;

pub use crossbar::{Crossbar, CrossbarConfig, CrossbarStats};
pub use epoch::{EpochBatch, EpochKey};
pub use packet::Packet;
