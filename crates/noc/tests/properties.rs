//! Property tests: the crossbar conserves packets, preserves per-flow
//! ordering, and never exceeds link bandwidth.

use dcl1_noc::{Crossbar, CrossbarConfig, Packet};
use proptest::prelude::*;

proptest! {
    /// Every injected packet is eventually delivered exactly once, at the
    /// correct output, and per (src,dst) flow order is preserved.
    #[test]
    fn conservation_and_flow_order(
        packets in proptest::collection::vec((0usize..4, 0usize..3, 0u32..129), 1..60)
    ) {
        let mut x: Crossbar<usize> = Crossbar::new(CrossbarConfig::new(4, 3).unwrap());
        let mut pending: Vec<(usize, usize, usize)> = Vec::new(); // (src,dst,serial)
        let mut next = packets.iter();
        let mut serial = 0usize;
        let mut delivered: Vec<(usize, usize, usize)> = Vec::new();
        let mut head: Option<(usize, usize, u32)> = None;

        // Drive the switch until everything injected is delivered.
        let mut idle_ticks = 0;
        loop {
            // Try to inject the next packet (retrying under backpressure).
            if head.is_none() {
                head = next.next().copied();
            }
            if let Some((src, dst, bytes)) = head {
                let p = Packet::new(src, dst, bytes, serial);
                if let Ok(()) = x.try_inject(p) {
                    pending.push((src, dst, serial));
                    serial += 1;
                    head = None;
                }
            }
            x.tick();
            for out in 0..3 {
                while let Some(p) = x.pop_output(out) {
                    delivered.push((p.src, out, p.payload));
                }
            }
            if head.is_none() && x.is_idle() && next.len() == 0 {
                break;
            }
            idle_ticks += 1;
            prop_assert!(idle_ticks < 100_000, "switch livelocked");
        }

        prop_assert_eq!(delivered.len(), pending.len());
        // Exactly-once delivery with correct output port.
        let mut d = delivered.clone();
        let mut p = pending.clone();
        d.sort_unstable();
        p.sort_unstable();
        prop_assert_eq!(d, p);
        // Per-flow FIFO order.
        for src in 0..4 {
            for dst in 0..3 {
                let sent: Vec<usize> = pending.iter()
                    .filter(|(s, t, _)| *s == src && *t == dst)
                    .map(|&(_, _, n)| n).collect();
                let got: Vec<usize> = delivered.iter()
                    .filter(|(s, t, _)| *s == src && *t == dst)
                    .map(|&(_, _, n)| n).collect();
                prop_assert_eq!(sent, got, "flow ({},{}) reordered", src, dst);
            }
        }
    }

    /// Output links never move more than one flit per tick.
    #[test]
    fn link_bandwidth_bounded(
        packets in proptest::collection::vec((0usize..6, 0u32..129), 1..40)
    ) {
        let mut x: Crossbar<()> = Crossbar::new(CrossbarConfig::new(6, 2).unwrap());
        let mut queue: Vec<Packet<()>> =
            packets.into_iter().map(|(s, b)| Packet::new(s, s % 2, b, ())).collect();
        let mut last = [0u64; 2];
        for _ in 0..5_000 {
            let mut remaining = Vec::new();
            for p in queue.drain(..) {
                if let Err(p) = x.try_inject(p) {
                    remaining.push(p);
                }
            }
            queue = remaining;
            x.tick();
            #[allow(clippy::needless_range_loop)] // `out` is also a port id
            for out in 0..2 {
                let now = x.stats().output_flits[out];
                prop_assert!(now - last[out] <= 1, "more than one flit per tick");
                last[out] = now;
                let _ = x.pop_output(out);
            }
            if x.is_idle() && queue.is_empty() { break; }
        }
    }
}

/// Non-proptest integration check: aggregate throughput of an N×1 crossbar
/// is one flit per tick once saturated (the private DC-L1 port bottleneck
/// from paper Table I).
#[test]
fn n_to_one_crossbar_saturates_at_one_flit_per_tick() {
    let mut x: Crossbar<usize> = Crossbar::new(CrossbarConfig::new(8, 1).unwrap());
    let mut injected = 0usize;
    let mut delivered = 0usize;
    for _ in 0..1_000 {
        for src in 0..8 {
            if x.can_inject(src) {
                x.try_inject(Packet::new(src, 0, 0, injected)).unwrap();
                injected += 1;
            }
        }
        x.tick();
        while x.pop_output(0).is_some() {
            delivered += 1;
        }
    }
    // One single-flit packet per tick is the ceiling; allow pipeline slack.
    assert!(delivered > 900, "delivered {delivered}");
    assert!(delivered <= 1_000);
}
