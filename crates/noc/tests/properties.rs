//! Randomized-but-deterministic tests: the crossbar conserves packets,
//! preserves per-flow ordering, and never exceeds link bandwidth.

#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use dcl1_common::SplitMix64;
use dcl1_noc::{Crossbar, CrossbarConfig, Packet};

/// Every injected packet is eventually delivered exactly once, at the
/// correct output, and per (src,dst) flow order is preserved.
#[test]
fn conservation_and_flow_order() {
    for seed in 0..48u64 {
        let mut rng = SplitMix64::new(0x0C0 ^ seed.wrapping_mul(0x1234_5678));
        let packets: Vec<(usize, usize, u32)> = (0..1 + rng.next_below(60))
            .map(|_| {
                (rng.next_below(4) as usize, rng.next_below(3) as usize, rng.next_below(129) as u32)
            })
            .collect();
        let mut x: Crossbar<usize> = Crossbar::new(CrossbarConfig::new(4, 3).unwrap());
        let mut pending: Vec<(usize, usize, usize)> = Vec::new(); // (src,dst,serial)
        let mut next = packets.iter();
        let mut serial = 0usize;
        let mut delivered: Vec<(usize, usize, usize)> = Vec::new();
        let mut head: Option<(usize, usize, u32)> = None;

        // Drive the switch until everything injected is delivered.
        let mut idle_ticks = 0;
        loop {
            // Try to inject the next packet (retrying under backpressure).
            if head.is_none() {
                head = next.next().copied();
            }
            if let Some((src, dst, bytes)) = head {
                let p = Packet::new(src, dst, bytes, serial);
                if x.try_inject(p).is_ok() {
                    pending.push((src, dst, serial));
                    serial += 1;
                    head = None;
                }
            }
            x.tick();
            for out in 0..3 {
                while let Some(p) = x.pop_output(out) {
                    delivered.push((p.src, out, p.payload));
                }
            }
            if head.is_none() && x.is_idle() && next.len() == 0 {
                break;
            }
            idle_ticks += 1;
            assert!(idle_ticks < 100_000, "switch livelocked (seed {seed})");
        }

        assert_eq!(delivered.len(), pending.len());
        // Exactly-once delivery with correct output port.
        let mut d = delivered.clone();
        let mut p = pending.clone();
        d.sort_unstable();
        p.sort_unstable();
        assert_eq!(d, p);
        // Per-flow FIFO order.
        for src in 0..4 {
            for dst in 0..3 {
                let sent: Vec<usize> = pending
                    .iter()
                    .filter(|(s, t, _)| *s == src && *t == dst)
                    .map(|&(_, _, n)| n)
                    .collect();
                let got: Vec<usize> = delivered
                    .iter()
                    .filter(|(s, t, _)| *s == src && *t == dst)
                    .map(|&(_, _, n)| n)
                    .collect();
                assert_eq!(sent, got, "flow ({src},{dst}) reordered (seed {seed})");
            }
        }
    }
}

/// Output links never move more than one flit per tick.
#[test]
fn link_bandwidth_bounded() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::new(0xB0 ^ seed.wrapping_mul(0x55AA));
        let mut x: Crossbar<()> = Crossbar::new(CrossbarConfig::new(6, 2).unwrap());
        let mut queue: Vec<Packet<()>> = (0..1 + rng.next_below(40))
            .map(|_| {
                let s = rng.next_below(6) as usize;
                Packet::new(s, s % 2, rng.next_below(129) as u32, ())
            })
            .collect();
        let mut last = [0u64; 2];
        for _ in 0..5_000 {
            let mut remaining = Vec::new();
            for p in queue.drain(..) {
                if let Err(p) = x.try_inject(p) {
                    remaining.push(p);
                }
            }
            queue = remaining;
            x.tick();
            #[allow(clippy::needless_range_loop)] // `out` is also a port id
            for out in 0..2 {
                let now = x.stats().output_flits[out];
                assert!(now - last[out] <= 1, "more than one flit per tick (seed {seed})");
                last[out] = now;
                let _ = x.pop_output(out);
            }
            if x.is_idle() && queue.is_empty() {
                break;
            }
        }
    }
}

/// Aggregate throughput of an N×1 crossbar is one flit per tick once
/// saturated (the private DC-L1 port bottleneck from paper Table I).
#[test]
fn n_to_one_crossbar_saturates_at_one_flit_per_tick() {
    let mut x: Crossbar<usize> = Crossbar::new(CrossbarConfig::new(8, 1).unwrap());
    let mut injected = 0usize;
    let mut delivered = 0usize;
    for _ in 0..1_000 {
        for src in 0..8 {
            if x.can_inject(src) {
                x.try_inject(Packet::new(src, 0, 0, injected)).unwrap();
                injected += 1;
            }
        }
        x.tick();
        while x.pop_output(0).is_some() {
            delivered += 1;
        }
    }
    // One single-flit packet per tick is the ceiling; allow pipeline slack.
    assert!(delivered > 900, "delivered {delivered}");
    assert!(delivered <= 1_000);
}
