//! Streaming progress layer: JSONL lifecycle events per sweep point.
//!
//! A [`ProgressSink`] serializes [`ProgressEvent`]s — one JSON object per
//! line, flushed immediately — so an external consumer (the future
//! `dcl1d` service, a CI tail, a human with `tail -f`) can watch a sweep
//! live: points queueing, starting, reporting percent-complete and
//! simulation KHz, retrying, being quarantined, and completing. PR 5's
//! supervision events are funneled into the same stream, so one file
//! tells the whole recovery story.
//!
//! Event schema (stable; CI validates it):
//!
//! ```json
//! {"seq": 12, "t_ms": 1754700000000, "event": "progress",
//!  "point": "T-AlexNet/Sh16", "pct": 40, "khz": 92.1, "cycles": 81920}
//! ```
//!
//! `seq` increases strictly within one sink; `t_ms` is Unix wall time in
//! milliseconds (diagnostic only — never fed back into simulation);
//! optional fields (`attempt`, `pct`, `khz`, `cycles`, `source`,
//! `detail`, `tenant`) appear only when meaningful for the event.

use crate::json;
use std::fmt::Write as _;
use std::io::Write;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// Lifecycle stage of a sweep point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgressStage {
    /// Point admitted to the sweep, not yet running.
    Queued,
    /// Simulation (or memo lookup) started.
    Started,
    /// Periodic in-flight update (`pct`, `khz`, `cycles`).
    Progress,
    /// Supervised retry after a recoverable failure.
    Retry,
    /// Point abandoned after exhausting its retry budget.
    Quarantined,
    /// Point finished; `source` says how (simulated / memo / disk).
    Completed,
}

impl ProgressStage {
    /// Stable event name used in the JSONL stream.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ProgressStage::Queued => "queued",
            ProgressStage::Started => "started",
            ProgressStage::Progress => "progress",
            ProgressStage::Retry => "retry",
            ProgressStage::Quarantined => "quarantined",
            ProgressStage::Completed => "completed",
        }
    }
}

/// One lifecycle event. Construct with the builder-style helpers; only
/// fields set appear in the serialized line.
#[derive(Debug, Clone, Copy)]
pub struct ProgressEvent<'a> {
    /// Lifecycle stage.
    pub stage: ProgressStage,
    /// Sweep point name, e.g. `"T-AlexNet/Sh16"`.
    pub point: &'a str,
    /// Retry attempt number (retry events).
    pub attempt: Option<u32>,
    /// Estimated percent complete, 0..=100 (progress events).
    pub pct: Option<u64>,
    /// Simulation throughput in KHz (progress / completed events).
    pub khz: Option<f64>,
    /// Simulated cycles so far (progress / completed events).
    pub cycles: Option<u64>,
    /// Result provenance for completed events: `simulated`, `memo`, `disk`.
    pub source: Option<&'a str>,
    /// Free-form context (error class, quarantine reason).
    pub detail: Option<&'a str>,
    /// Owning tenant in multi-tenant streams (`dcl1d` job events).
    pub tenant: Option<&'a str>,
}

impl<'a> ProgressEvent<'a> {
    /// A bare event with every optional field unset.
    #[must_use]
    pub fn new(stage: ProgressStage, point: &'a str) -> ProgressEvent<'a> {
        ProgressEvent {
            stage,
            point,
            attempt: None,
            pct: None,
            khz: None,
            cycles: None,
            source: None,
            detail: None,
            tenant: None,
        }
    }

    /// Sets the retry attempt number.
    #[must_use]
    pub fn attempt(mut self, attempt: u32) -> ProgressEvent<'a> {
        self.attempt = Some(attempt);
        self
    }

    /// Sets percent complete (clamped to 100).
    #[must_use]
    pub fn pct(mut self, pct: u64) -> ProgressEvent<'a> {
        self.pct = Some(pct.min(100));
        self
    }

    /// Sets simulation throughput in KHz.
    #[must_use]
    pub fn khz(mut self, khz: f64) -> ProgressEvent<'a> {
        self.khz = Some(khz);
        self
    }

    /// Sets simulated cycles.
    #[must_use]
    pub fn cycles(mut self, cycles: u64) -> ProgressEvent<'a> {
        self.cycles = Some(cycles);
        self
    }

    /// Sets result provenance.
    #[must_use]
    pub fn source(mut self, source: &'a str) -> ProgressEvent<'a> {
        self.source = Some(source);
        self
    }

    /// Sets free-form detail.
    #[must_use]
    pub fn detail(mut self, detail: &'a str) -> ProgressEvent<'a> {
        self.detail = Some(detail);
        self
    }

    /// Sets the owning tenant (multi-tenant daemon streams).
    #[must_use]
    pub fn tenant(mut self, tenant: &'a str) -> ProgressEvent<'a> {
        self.tenant = Some(tenant);
        self
    }
}

struct SinkInner {
    out: Box<dyn Write + Send>,
    seq: u64,
    buf: String,
}

/// Thread-safe JSONL event sink. Sweep workers on different threads emit
/// through one shared sink; the internal mutex keeps lines whole and the
/// sequence strictly increasing.
pub struct ProgressSink {
    inner: Mutex<SinkInner>,
}

impl std::fmt::Debug for ProgressSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressSink").finish_non_exhaustive()
    }
}

impl ProgressSink {
    /// A sink writing JSONL to `out`. Each event is flushed immediately so
    /// a tailing consumer sees it without waiting for buffer pressure.
    #[must_use]
    pub fn new(out: Box<dyn Write + Send>) -> ProgressSink {
        ProgressSink {
            inner: Mutex::new(SinkInner { out, seq: 0, buf: String::with_capacity(256) }),
        }
    }

    /// Serializes and writes one event. IO errors are swallowed: progress
    /// reporting must never abort a sweep.
    pub fn emit(&self, ev: &ProgressEvent<'_>) {
        // Wall time is diagnostic stream metadata, never simulation input.
        let t_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis())
            .unwrap_or(0);
        let Ok(mut inner) = self.inner.lock() else { return };
        let inner = &mut *inner;
        inner.seq += 1;
        let seq = inner.seq;
        let buf = &mut inner.buf;
        buf.clear();
        let _ = write!(
            buf,
            "{{\"seq\": {seq}, \"t_ms\": {t_ms}, \"event\": \"{}\", \"point\": \"{}\"",
            ev.stage.as_str(),
            json::escape(ev.point)
        );
        if let Some(a) = ev.attempt {
            let _ = write!(buf, ", \"attempt\": {a}");
        }
        if let Some(p) = ev.pct {
            let _ = write!(buf, ", \"pct\": {p}");
        }
        if let Some(k) = ev.khz {
            if k.is_finite() {
                let _ = write!(buf, ", \"khz\": {k:.3}");
            }
        }
        if let Some(c) = ev.cycles {
            let _ = write!(buf, ", \"cycles\": {c}");
        }
        if let Some(s) = ev.source {
            let _ = write!(buf, ", \"source\": \"{}\"", json::escape(s));
        }
        if let Some(d) = ev.detail {
            let _ = write!(buf, ", \"detail\": \"{}\"", json::escape(d));
        }
        if let Some(t) = ev.tenant {
            let _ = write!(buf, ", \"tenant\": \"{}\"", json::escape(t));
        }
        buf.push_str("}\n");
        let _ = inner.out.write_all(buf.as_bytes());
        let _ = inner.out.flush();
    }

    /// Number of events emitted so far.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.inner.lock().map(|i| i.seq).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use std::sync::Arc;

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, data: &[u8]) -> std::io::Result<usize> {
            self.0.lock().expect("buf lock").extend_from_slice(data);
            Ok(data.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn lines(buf: &SharedBuf) -> Vec<String> {
        let data = buf.0.lock().expect("buf lock");
        String::from_utf8(data.clone())
            .expect("utf8")
            .lines()
            .map(str::to_owned)
            .collect()
    }

    #[test]
    fn emits_parseable_jsonl_with_increasing_seq() {
        let buf = SharedBuf::default();
        let sink = ProgressSink::new(Box::new(buf.clone()));
        sink.emit(&ProgressEvent::new(ProgressStage::Queued, "A/D1"));
        sink.emit(&ProgressEvent::new(ProgressStage::Started, "A/D1"));
        sink.emit(
            &ProgressEvent::new(ProgressStage::Progress, "A/D1").pct(50).khz(91.25).cycles(4096),
        );
        sink.emit(
            &ProgressEvent::new(ProgressStage::Completed, "A/D1")
                .source("simulated")
                .khz(90.0)
                .cycles(8192),
        );
        assert_eq!(sink.emitted(), 4);
        let lines = lines(&buf);
        assert_eq!(lines.len(), 4);
        let mut prev_seq = 0.0;
        for line in &lines {
            let doc = Json::parse(line).expect("line parses");
            let seq = doc.get("seq").unwrap().as_f64().unwrap();
            assert!(seq > prev_seq, "seq strictly increasing");
            prev_seq = seq;
            assert!(doc.get("t_ms").unwrap().as_f64().is_some());
            assert!(doc.get("event").unwrap().as_str().is_some());
            assert_eq!(doc.get("point").unwrap().as_str(), Some("A/D1"));
        }
        let prog = Json::parse(&lines[2]).unwrap();
        assert_eq!(prog.get("event").unwrap().as_str(), Some("progress"));
        assert_eq!(prog.get("pct").unwrap().as_f64(), Some(50.0));
        assert_eq!(prog.get("cycles").unwrap().as_f64(), Some(4096.0));
        let done = Json::parse(&lines[3]).unwrap();
        assert_eq!(done.get("source").unwrap().as_str(), Some("simulated"));
    }

    #[test]
    fn optional_fields_are_omitted_when_unset() {
        let buf = SharedBuf::default();
        let sink = ProgressSink::new(Box::new(buf.clone()));
        sink.emit(&ProgressEvent::new(ProgressStage::Queued, "p/d"));
        let line = lines(&buf).pop().unwrap();
        for absent in ["attempt", "pct", "khz", "cycles", "source", "detail", "tenant"] {
            assert!(!line.contains(absent), "{absent} must be absent: {line}");
        }
    }

    #[test]
    fn tenant_field_round_trips() {
        let buf = SharedBuf::default();
        let sink = ProgressSink::new(Box::new(buf.clone()));
        sink.emit(&ProgressEvent::new(ProgressStage::Queued, "p/d").tenant("team-a"));
        let line = lines(&buf).pop().unwrap();
        let doc = Json::parse(&line).expect("tenant line parses");
        assert_eq!(doc.get("tenant").unwrap().as_str(), Some("team-a"));
    }

    #[test]
    fn point_names_are_escaped() {
        let buf = SharedBuf::default();
        let sink = ProgressSink::new(Box::new(buf.clone()));
        sink.emit(&ProgressEvent::new(ProgressStage::Queued, "we\"ird\\name"));
        let line = lines(&buf).pop().unwrap();
        let doc = Json::parse(&line).expect("escaped line parses");
        assert_eq!(doc.get("point").unwrap().as_str(), Some("we\"ird\\name"));
    }

    #[test]
    fn retry_and_quarantine_carry_context() {
        let buf = SharedBuf::default();
        let sink = ProgressSink::new(Box::new(buf.clone()));
        sink.emit(
            &ProgressEvent::new(ProgressStage::Retry, "p/d").attempt(2).detail("livelock"),
        );
        sink.emit(
            &ProgressEvent::new(ProgressStage::Quarantined, "p/d").attempt(3).detail("panic"),
        );
        let lines = lines(&buf);
        let retry = Json::parse(&lines[0]).unwrap();
        assert_eq!(retry.get("attempt").unwrap().as_f64(), Some(2.0));
        assert_eq!(retry.get("detail").unwrap().as_str(), Some("livelock"));
        let quar = Json::parse(&lines[1]).unwrap();
        assert_eq!(quar.get("event").unwrap().as_str(), Some("quarantined"));
    }

    #[test]
    fn pct_is_clamped() {
        let ev = ProgressEvent::new(ProgressStage::Progress, "p").pct(250);
        assert_eq!(ev.pct, Some(100));
    }
}
