//! Observability substrate for the DC-L1 simulator.
//!
//! Three capabilities behind one [`Observer`] facade:
//!
//! 1. **Transaction-lifecycle tracing** ([`trace::TxnTracer`]) — sampled
//!    memory transactions emit one Chrome trace-event span per hop
//!    (coalesce → NoC#1 → DC-L1 outcome → NoC#2 → L2 → reply), loadable
//!    in Perfetto.
//! 2. **Time-series metrics** ([`metrics::MetricsWriter`]) — a periodic
//!    sampler snapshots queue depths, link utilization, MSHR occupancy and
//!    wavefront counts into JSONL or CSV.
//! 3. **Stall attribution** lives in `dcl1-gpu`'s core model; this crate
//!    only defines the sinks.
//! 4. **Recovery telemetry** ([`recovery::RecoveryLog`]) — the supervision
//!    layer's ledger of retries, quarantines, watchdog firings, cache
//!    corruptions, and journal resumes, embedded in sweep reports.
//! 5. **Counter registry** ([`registry::Registry`]) — zero-alloc typed
//!    counters/gauges/histograms under `subsystem.name` namespaces,
//!    pull-snapshotted at epoch barriers and merged partition-independently.
//! 6. **Phase profiler** ([`profiler::PhaseProfiler`]) — wall-time
//!    attribution across Issue/NoC/Mem regions, barrier waits, and
//!    memo-cache / journal IO.
//! 7. **Progress stream** ([`progress::ProgressSink`]) — JSONL lifecycle
//!    events per sweep point (queued/started/progress/retry/quarantined/
//!    completed, live KHz), the substrate for `dcl1d`.
//!
//! The disabled observer is two `None` options: every hook is an `#[inline]`
//! early return, so a machine built without observability runs the same hot
//! path and produces byte-identical statistics.
//!
//! # Examples
//!
//! ```
//! use dcl1_obs::Observer;
//!
//! let mut obs = Observer::disabled();
//! assert!(obs.is_off());
//! // Hooks are free no-ops when disabled.
//! obs.trace_hop(42, "l2", 100);
//! ```

pub mod json;
pub mod metrics;
pub mod profiler;
pub mod progress;
pub mod recovery;
pub mod registry;
pub mod trace;

use metrics::{MetricsFormat, MetricsSample, MetricsWriter};
use std::io::{self, Write};
use trace::TxnTracer;

/// The machine's handle on all observability sinks.
///
/// Constructed once per run and attached to the machine; the machine calls
/// the hook methods from its pipeline stages. With both sinks `None`
/// (the default) every hook returns immediately.
#[derive(Debug, Default)]
pub struct Observer {
    trace: Option<Box<TxnTracer>>,
    metrics: Option<Box<MetricsWriter>>,
}

impl Observer {
    /// An observer with every sink disabled — the hot-path default.
    pub fn disabled() -> Observer {
        Observer::default()
    }

    /// Adds a transaction tracer writing Chrome trace JSON to `sink`,
    /// sampling every `sample_every`-th transaction.
    pub fn with_trace(
        mut self,
        sink: Box<dyn Write + Send>,
        sample_every: u64,
    ) -> io::Result<Observer> {
        self.trace = Some(Box::new(TxnTracer::new(sink, sample_every)?));
        Ok(self)
    }

    /// Adds a metrics sampler writing to `sink` every `interval` cycles.
    pub fn with_metrics(
        mut self,
        sink: Box<dyn Write + Send>,
        interval: u64,
        format: MetricsFormat,
    ) -> Observer {
        self.metrics = Some(Box::new(MetricsWriter::new(sink, interval, format)));
        self
    }

    /// True when no sink is attached (the hot-path fast case).
    #[inline]
    pub fn is_off(&self) -> bool {
        self.trace.is_none() && self.metrics.is_none()
    }

    /// True when transaction tracing is attached.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Whether `id` would be recorded by the attached tracer.
    #[inline]
    pub fn trace_sampled(&self, id: u64) -> bool {
        self.trace.as_ref().is_some_and(|t| t.sampled(id))
    }

    /// Opens the first span of transaction `id` (no-op when not tracing).
    #[inline]
    pub fn trace_begin(
        &mut self,
        id: u64,
        now: u64,
        core: u64,
        kind: &'static str,
        line: u64,
    ) {
        if let Some(t) = &mut self.trace {
            t.begin(id, "coalesce", now, core, kind, line);
        }
    }

    /// Closes the current span of `id` and opens `phase`.
    #[inline]
    pub fn trace_hop(&mut self, id: u64, phase: &'static str, now: u64) {
        if let Some(t) = &mut self.trace {
            t.hop(id, phase, now);
        }
    }

    /// Closes the final span of `id`.
    #[inline]
    pub fn trace_end(&mut self, id: u64, now: u64) {
        if let Some(t) = &mut self.trace {
            t.end(id, now);
        }
    }

    /// The metrics sampling interval, or `None` when metrics are off.
    /// The machine uses this both to decide when to sample and to clamp
    /// idle fast-forward so no sampling boundary is jumped over.
    #[inline]
    pub fn metrics_interval(&self) -> Option<u64> {
        self.metrics.as_ref().map(|m| m.interval())
    }

    /// Appends one metrics sample (no-op when metrics are off).
    #[inline]
    pub fn record_metrics(&mut self, sample: &MetricsSample) {
        if let Some(m) = &mut self.metrics {
            m.record(sample);
        }
    }

    /// Finalizes all sinks: closes dangling trace spans at `now`, writes
    /// the trace's closing bracket, flushes metrics. Idempotent.
    pub fn finish(&mut self, now: u64) -> io::Result<()> {
        if let Some(t) = &mut self.trace {
            t.finish(now)?;
        }
        if let Some(m) = &mut self.metrics {
            m.finish()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn disabled_observer_is_off_and_inert() {
        let mut obs = Observer::disabled();
        assert!(obs.is_off());
        assert!(!obs.tracing());
        assert!(!obs.trace_sampled(0));
        assert_eq!(obs.metrics_interval(), None);
        obs.trace_begin(1, 0, 0, "load", 64);
        obs.trace_hop(1, "l2", 5);
        obs.trace_end(1, 9);
        obs.record_metrics(&MetricsSample::default());
        obs.finish(10).unwrap();
    }

    #[test]
    fn full_observer_reports_configuration() {
        let trace_buf = SharedBuf::default();
        let metrics_buf = SharedBuf::default();
        let mut obs = Observer::disabled()
            .with_trace(Box::new(trace_buf.clone()), 2)
            .unwrap()
            .with_metrics(Box::new(metrics_buf.clone()), 128, MetricsFormat::Jsonl);
        assert!(!obs.is_off());
        assert!(obs.tracing());
        assert!(obs.trace_sampled(0) && !obs.trace_sampled(1));
        assert_eq!(obs.metrics_interval(), Some(128));
        obs.trace_begin(0, 0, 3, "load", 256);
        obs.trace_hop(0, "reply", 7);
        obs.trace_end(0, 11);
        obs.record_metrics(&MetricsSample { cycle: 128, ..Default::default() });
        obs.finish(11).unwrap();
        let trace = String::from_utf8(trace_buf.0.lock().unwrap().clone()).unwrap();
        let doc = json::Json::parse(&trace).unwrap();
        assert_eq!(doc.get("traceEvents").unwrap().as_arr().unwrap().len(), 2);
        let metrics = String::from_utf8(metrics_buf.0.lock().unwrap().clone()).unwrap();
        assert_eq!(metrics.lines().count(), 1);
    }
}

