//! Minimal JSON support: string escaping for the writers and a small
//! recursive-descent parser used by tests to validate emitted output.
//!
//! The workspace is std-only by policy, so the trace and metrics writers
//! hand-roll their JSON; this module keeps the escaping rules in one place
//! and provides just enough of a parser to assert that what we wrote is
//! well-formed and has the expected shape.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes `s` for embedding inside a JSON string literal (no quotes added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value. Object keys are sorted (BTreeMap) — fine for
/// validation, which never depends on key order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses a complete JSON document, rejecting trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Looks up a key in an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", b as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogate pairs are not produced by our writers.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one UTF-8 character, not one byte.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().expect("Some(_) arm guarantees a byte");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let doc = r#"{"displayTimeUnit":"ms","traceEvents":[
            {"name":"dcl1_hit","ph":"X","ts":12,"dur":3,"pid":0,"tid":64,
             "args":{"core":0,"line":4096,"kind":"load"}}]}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("displayTimeUnit").unwrap().as_str(), Some("ms"));
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("dcl1_hit"));
        assert_eq!(events[0].get("ts").unwrap().as_f64(), Some(12.0));
        let args = events[0].get("args").unwrap();
        assert_eq!(args.get("line").unwrap().as_f64(), Some(4096.0));
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,2,]").is_err());
        assert!(Json::parse("{\"a\":1} trailing").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("-2.5e3").unwrap(), Json::Num(-2500.0));
        assert_eq!(
            Json::parse("\"\\u0041\"").unwrap(),
            Json::Str("A".to_string())
        );
    }
}
