//! Periodic time-series metrics: one machine-wide snapshot per sampling
//! interval, streamed as JSONL (one JSON object per line) or CSV.
//!
//! The field list lives in one table ([`MetricsSample::FIELDS`]) so the
//! JSONL keys, the CSV header, and the CSV row order can never drift apart.

use std::fmt;
use std::io::{self, Write};

/// One snapshot of machine occupancy at a sampling boundary.
///
/// All gauges are summed across instances (e.g. `node_q1` is the total
/// Q1 depth over all DC-L1 nodes); `*_flits` and `instructions` are
/// cumulative counters, useful for differencing between samples.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSample {
    /// Simulated cycle at which the snapshot was taken.
    pub cycle: u64,
    /// Total pending transactions in per-core outboxes.
    pub outbox_depth: u64,
    /// DC-L1 request input queues (Q1), summed over nodes.
    pub node_q1: u64,
    /// DC-L1 reply output queues (Q2), summed over nodes.
    pub node_q2: u64,
    /// DC-L1 miss/L2-bound queues (Q3), summed over nodes.
    pub node_q3: u64,
    /// DC-L1 fill input queues (Q4), summed over nodes.
    pub node_q4: u64,
    /// Occupied MSHR entries, summed over nodes.
    pub node_mshr: u64,
    /// Hits in flight inside node hit pipelines.
    pub node_hit_pipe: u64,
    /// Requests in flight inside the core→L1 crossbar.
    pub noc1_req_inflight: u64,
    /// Replies in flight inside the L1→core crossbar.
    pub noc1_rep_inflight: u64,
    /// Requests in flight inside the L1→L2 interconnect.
    pub noc2_req_inflight: u64,
    /// Replies in flight inside the L2→L1 interconnect.
    pub noc2_rep_inflight: u64,
    /// Cumulative flits moved by NoC#1 (both directions).
    pub noc1_flits: u64,
    /// Cumulative flits moved by NoC#2 (both directions).
    pub noc2_flits: u64,
    /// L2 slice input queue depth, summed over slices.
    pub l2_input: u64,
    /// Occupied L2 MSHR entries, summed over slices.
    pub l2_mshr: u64,
    /// L2 replies waiting to be picked up, summed over slices.
    pub l2_replies: u64,
    /// DRAM controller command queue depth, summed over channels.
    pub dram_queue: u64,
    /// DRAM replies waiting to be picked up, summed over channels.
    pub dram_replies: u64,
    /// Wavefronts currently resident and not retired, summed over cores.
    pub active_wavefronts: u64,
    /// Wavefronts blocked on outstanding memory, summed over cores.
    pub waiting_wavefronts: u64,
    /// Cumulative instructions issued, summed over cores.
    pub instructions: u64,
    /// Execution domains the machine is partitioned into (1 = sequential).
    pub shards: u64,
    /// Cumulative wall nanoseconds the coordinator spent waiting at epoch
    /// barriers (0 when regions run inline). Wall-clock derived: useful
    /// for scaling diagnostics, never fed back into simulation state.
    pub barrier_wait_nanos: u64,
    /// Largest cumulative per-shard region execution time, wall
    /// nanoseconds (load-imbalance numerator).
    pub shard_busy_max_nanos: u64,
    /// Smallest cumulative per-shard region execution time, wall
    /// nanoseconds (load-imbalance denominator).
    pub shard_busy_min_nanos: u64,
}

/// One named accessor in [`MetricsSample::FIELDS`].
pub type FieldAccessor = (&'static str, fn(&MetricsSample) -> u64);

impl MetricsSample {
    /// Field table shared by the JSONL and CSV encoders.
    pub const FIELDS: &'static [FieldAccessor] = &[
        ("cycle", |s| s.cycle),
        ("outbox_depth", |s| s.outbox_depth),
        ("node_q1", |s| s.node_q1),
        ("node_q2", |s| s.node_q2),
        ("node_q3", |s| s.node_q3),
        ("node_q4", |s| s.node_q4),
        ("node_mshr", |s| s.node_mshr),
        ("node_hit_pipe", |s| s.node_hit_pipe),
        ("noc1_req_inflight", |s| s.noc1_req_inflight),
        ("noc1_rep_inflight", |s| s.noc1_rep_inflight),
        ("noc2_req_inflight", |s| s.noc2_req_inflight),
        ("noc2_rep_inflight", |s| s.noc2_rep_inflight),
        ("noc1_flits", |s| s.noc1_flits),
        ("noc2_flits", |s| s.noc2_flits),
        ("l2_input", |s| s.l2_input),
        ("l2_mshr", |s| s.l2_mshr),
        ("l2_replies", |s| s.l2_replies),
        ("dram_queue", |s| s.dram_queue),
        ("dram_replies", |s| s.dram_replies),
        ("active_wavefronts", |s| s.active_wavefronts),
        ("waiting_wavefronts", |s| s.waiting_wavefronts),
        ("instructions", |s| s.instructions),
        ("shards", |s| s.shards),
        ("barrier_wait_nanos", |s| s.barrier_wait_nanos),
        ("shard_busy_max_nanos", |s| s.shard_busy_max_nanos),
        ("shard_busy_min_nanos", |s| s.shard_busy_min_nanos),
    ];
}

/// Escapes one CSV field per RFC 4180: fields containing commas, double
/// quotes, or line breaks are wrapped in double quotes with embedded
/// quotes doubled; everything else passes through unchanged.
#[must_use]
pub fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        let mut out = String::with_capacity(field.len() + 2);
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        field.to_owned()
    }
}

/// Output encoding for the metrics stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// One JSON object per line.
    Jsonl,
    /// Header row then one comma-separated row per sample.
    Csv,
}

/// Streams [`MetricsSample`]s to a sink at a fixed cycle interval.
pub struct MetricsWriter {
    interval: u64,
    format: MetricsFormat,
    out: io::BufWriter<Box<dyn Write + Send>>,
    wrote_header: bool,
    samples: u64,
    /// Sweep-point label stamped on every row; names may contain commas
    /// and quotes (e.g. a hypothetical `App,v2/Design"X"`), so the CSV
    /// encoder escapes it per RFC 4180. Always the last column, so the
    /// numeric field prefix of the header never moves.
    point: Option<String>,
}

impl fmt::Debug for MetricsWriter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricsWriter")
            .field("interval", &self.interval)
            .field("format", &self.format)
            .field("samples", &self.samples)
            .finish()
    }
}

impl MetricsWriter {
    /// Creates a writer sampling every `interval` cycles (0 is clamped to 1).
    pub fn new(sink: Box<dyn Write + Send>, interval: u64, format: MetricsFormat) -> MetricsWriter {
        MetricsWriter {
            interval: interval.max(1),
            format,
            out: io::BufWriter::new(sink),
            wrote_header: false,
            samples: 0,
            point: None,
        }
    }

    /// Labels every subsequent row with a sweep-point name. Must be set
    /// before the first `record` so the CSV header (which gains a final
    /// `point` column) matches the rows.
    #[must_use]
    pub fn with_point(mut self, point: &str) -> MetricsWriter {
        self.point = Some(point.to_owned());
        self
    }

    /// Sampling interval in cycles.
    pub fn interval(&self) -> u64 {
        self.interval
    }

    /// Number of samples written so far.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Appends one sample in the configured format.
    pub fn record(&mut self, sample: &MetricsSample) {
        match self.format {
            MetricsFormat::Jsonl => {
                let mut line = String::with_capacity(256);
                line.push('{');
                for (i, (name, get)) in MetricsSample::FIELDS.iter().enumerate() {
                    if i > 0 {
                        line.push(',');
                    }
                    line.push('"');
                    line.push_str(name);
                    line.push_str("\":");
                    line.push_str(&get(sample).to_string());
                }
                if let Some(point) = &self.point {
                    line.push_str(",\"point\":\"");
                    line.push_str(&crate::json::escape(point));
                    line.push('"');
                }
                line.push_str("}\n");
                let _ = self.out.write_all(line.as_bytes());
            }
            MetricsFormat::Csv => {
                if !self.wrote_header {
                    let mut header: Vec<&str> =
                        MetricsSample::FIELDS.iter().map(|(n, _)| *n).collect();
                    if self.point.is_some() {
                        header.push("point");
                    }
                    let _ = writeln!(self.out, "{}", header.join(","));
                    self.wrote_header = true;
                }
                let mut row: Vec<String> =
                    MetricsSample::FIELDS.iter().map(|(_, get)| get(sample).to_string()).collect();
                if let Some(point) = &self.point {
                    row.push(csv_escape(point));
                }
                let _ = writeln!(self.out, "{}", row.join(","));
            }
        }
        self.samples += 1;
    }

    /// Flushes the sink.
    pub fn finish(&mut self) -> io::Result<()> {
        self.out.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use std::sync::{Arc, Mutex};

    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn sample(cycle: u64) -> MetricsSample {
        MetricsSample {
            cycle,
            node_q1: 3,
            node_mshr: 17,
            instructions: 1000 + cycle,
            ..Default::default()
        }
    }

    #[test]
    fn jsonl_lines_parse_and_carry_all_fields() {
        let buf = SharedBuf::default();
        let mut w = MetricsWriter::new(Box::new(buf.clone()), 512, MetricsFormat::Jsonl);
        w.record(&sample(0));
        w.record(&sample(512));
        w.finish().unwrap();
        assert_eq!(w.samples(), 2);
        drop(w);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for (i, line) in lines.iter().enumerate() {
            let doc = Json::parse(line).unwrap();
            assert_eq!(doc.get("cycle").unwrap().as_f64(), Some(512.0 * i as f64));
            assert_eq!(doc.get("node_mshr").unwrap().as_f64(), Some(17.0));
            for (name, _) in MetricsSample::FIELDS {
                assert!(doc.get(name).is_some(), "missing field {name}");
            }
        }
    }

    #[test]
    fn csv_header_matches_rows() {
        let buf = SharedBuf::default();
        let mut w = MetricsWriter::new(Box::new(buf.clone()), 256, MetricsFormat::Csv);
        w.record(&sample(256));
        w.finish().unwrap();
        drop(w);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let header: Vec<&str> = lines[0].split(',').collect();
        let row: Vec<&str> = lines[1].split(',').collect();
        assert_eq!(header.len(), MetricsSample::FIELDS.len());
        assert_eq!(header.len(), row.len());
        assert_eq!(header[0], "cycle");
        assert_eq!(row[0], "256");
        let mshr_col = header.iter().position(|&h| h == "node_mshr").unwrap();
        assert_eq!(row[mshr_col], "17");
    }

    #[test]
    fn csv_escape_follows_rfc4180() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("he said \"hi\""), "\"he said \"\"hi\"\"\"");
        assert_eq!(csv_escape("line\nbreak"), "\"line\nbreak\"");
        assert_eq!(csv_escape(""), "");
    }

    #[test]
    fn csv_point_column_is_escaped_and_header_stable() {
        let buf = SharedBuf::default();
        let mut w = MetricsWriter::new(Box::new(buf.clone()), 256, MetricsFormat::Csv)
            .with_point("App,v2/\"X\"");
        w.record(&sample(256));
        w.record(&sample(512));
        w.finish().unwrap();
        drop(w);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        // Numeric prefix of the header is unchanged; point is last.
        let header: Vec<&str> = lines[0].split(',').collect();
        assert_eq!(header.len(), MetricsSample::FIELDS.len() + 1);
        assert_eq!(header[0], "cycle");
        assert_eq!(*header.last().unwrap(), "point");
        for row in &lines[1..] {
            assert!(
                row.ends_with("\"App,v2/\"\"X\"\"\""),
                "point field must be RFC 4180 escaped: {row}"
            );
        }
    }

    #[test]
    fn jsonl_point_key_roundtrips() {
        let buf = SharedBuf::default();
        let mut w = MetricsWriter::new(Box::new(buf.clone()), 256, MetricsFormat::Jsonl)
            .with_point("A/\"D\"");
        w.record(&sample(0));
        w.finish().unwrap();
        drop(w);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let doc = Json::parse(text.lines().next().unwrap()).unwrap();
        assert_eq!(doc.get("point").unwrap().as_str(), Some("A/\"D\""));
    }

    #[test]
    fn zero_interval_is_clamped() {
        let w = MetricsWriter::new(Box::new(SharedBuf::default()), 0, MetricsFormat::Jsonl);
        assert_eq!(w.interval(), 1);
    }
}
