//! Transaction-lifecycle tracing in Chrome trace-event format.
//!
//! Each sampled memory transaction produces a chain of `"X"` (complete)
//! events, one per hop through the machine — coalesce, NoC#1 request,
//! DC-L1 lookup outcome, NoC#2, L2, reply — so the whole lifetime renders
//! as a contiguous span track in Perfetto / `chrome://tracing`. Cycle
//! timestamps are written as microseconds (1 cycle = 1 µs) so the viewer's
//! time axis reads directly in cycles.

use crate::json::escape;
use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Write};

/// The span currently open for one sampled transaction.
struct OpenSpan {
    phase: &'static str,
    since: u64,
    core: u64,
    kind: &'static str,
    line: u64,
}

/// Streaming Chrome trace-event writer with every-Nth-transaction sampling.
///
/// Spans are emitted as they close; the file is valid JSON only after
/// [`finish`](TxnTracer::finish) writes the closing bracket.
pub struct TxnTracer {
    sample_every: u64,
    out: io::BufWriter<Box<dyn Write + Send>>,
    // BTreeMap so `finish` closes dangling spans in ascending id order —
    // the trace file is byte-stable regardless of hasher state.
    open: BTreeMap<u64, OpenSpan>,
    wrote_any: bool,
    finished: bool,
    events: u64,
}

impl fmt::Debug for TxnTracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TxnTracer")
            .field("sample_every", &self.sample_every)
            .field("open", &self.open.len())
            .field("events", &self.events)
            .field("finished", &self.finished)
            .finish()
    }
}

impl TxnTracer {
    /// Creates a tracer writing to `sink`, sampling every `sample_every`-th
    /// transaction id (0 is treated as 1 = trace everything).
    pub fn new(sink: Box<dyn Write + Send>, sample_every: u64) -> io::Result<TxnTracer> {
        let mut out = io::BufWriter::new(sink);
        out.write_all(b"{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
        Ok(TxnTracer {
            sample_every: sample_every.max(1),
            out,
            open: BTreeMap::new(),
            wrote_any: false,
            finished: false,
            events: 0,
        })
    }

    /// Whether this transaction id is in the sample.
    #[inline]
    pub fn sampled(&self, id: u64) -> bool {
        id.is_multiple_of(self.sample_every)
    }

    /// Number of span events emitted so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Opens the first span of a sampled transaction's lifetime.
    pub fn begin(
        &mut self,
        id: u64,
        phase: &'static str,
        now: u64,
        core: u64,
        kind: &'static str,
        line: u64,
    ) {
        if !self.sampled(id) {
            return;
        }
        self.open.insert(id, OpenSpan { phase, since: now, core, kind, line });
    }

    /// Closes the current span of `id` (emitting it) and opens `phase`.
    /// No-ops for unsampled or unknown ids, so callers never check first.
    pub fn hop(&mut self, id: u64, phase: &'static str, now: u64) {
        let Some(span) = self.open.get_mut(&id) else { return };
        let done = OpenSpan { phase, since: now, ..*span };
        let prev = std::mem::replace(span, done);
        self.emit(id, &prev, now);
    }

    /// Closes the final span of `id`, ending its track.
    pub fn end(&mut self, id: u64, now: u64) {
        let Some(span) = self.open.remove(&id) else { return };
        self.emit(id, &span, now);
    }

    fn emit(&mut self, id: u64, span: &OpenSpan, now: u64) {
        let dur = now.saturating_sub(span.since).max(1);
        let sep = if self.wrote_any { "," } else { "" };
        let _ = write!(
            self.out,
            "{sep}\n{{\"name\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":{},\"tid\":{},\"args\":{{\"core\":{},\"line\":{},\"kind\":\"{}\"}}}}",
            escape(span.phase),
            span.since,
            dur,
            span.core,
            id,
            span.core,
            span.line,
            escape(span.kind),
        );
        self.wrote_any = true;
        self.events += 1;
    }

    /// Closes any still-open spans at `now`, writes the closing bracket and
    /// flushes. Must be called exactly once before dropping for the file to
    /// be valid JSON.
    pub fn finish(&mut self, now: u64) -> io::Result<()> {
        if self.finished {
            return Ok(());
        }
        let ids: Vec<u64> = self.open.keys().copied().collect();
        for id in ids {
            self.end(id, now);
        }
        self.out.write_all(b"\n]}\n")?;
        self.out.flush()?;
        self.finished = true;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use std::sync::{Arc, Mutex};

    /// An in-memory sink the test can read back after the tracer is done.
    #[derive(Clone, Default)]
    struct SharedBuf(Arc<Mutex<Vec<u8>>>);

    impl Write for SharedBuf {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    fn trace_to_string(f: impl FnOnce(&mut TxnTracer)) -> String {
        let buf = SharedBuf::default();
        let mut t = TxnTracer::new(Box::new(buf.clone()), 1).unwrap();
        f(&mut t);
        t.finish(100).unwrap();
        drop(t);
        let bytes = buf.0.lock().unwrap().clone();
        String::from_utf8(bytes).unwrap()
    }

    #[test]
    fn lifecycle_emits_one_event_per_hop() {
        let text = trace_to_string(|t| {
            t.begin(0, "coalesce", 5, 2, "load", 4096);
            t.hop(0, "l1_queue", 8);
            t.hop(0, "dcl1_miss", 12);
            t.hop(0, "reply", 40);
            t.end(0, 55);
        });
        let doc = Json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 4);
        let names: Vec<&str> =
            events.iter().map(|e| e.get("name").unwrap().as_str().unwrap()).collect();
        assert_eq!(names, ["coalesce", "l1_queue", "dcl1_miss", "reply"]);
        // Spans tile the lifetime: each starts where the previous ended.
        let mut prev_end = None;
        for e in events {
            let ts = e.get("ts").unwrap().as_f64().unwrap();
            let dur = e.get("dur").unwrap().as_f64().unwrap();
            if let Some(p) = prev_end {
                assert_eq!(ts, p);
            }
            prev_end = Some(ts + dur);
            assert_eq!(e.get("pid").unwrap().as_f64(), Some(2.0));
            assert_eq!(e.get("args").unwrap().get("line").unwrap().as_f64(), Some(4096.0));
        }
        assert_eq!(prev_end, Some(55.0));
    }

    #[test]
    fn sampling_skips_unselected_ids() {
        let buf = SharedBuf::default();
        let mut t = TxnTracer::new(Box::new(buf.clone()), 4).unwrap();
        for id in 0..8u64 {
            t.begin(id, "coalesce", 0, 0, "load", 64);
            t.hop(id, "reply", 10);
            t.end(id, 20);
        }
        assert_eq!(t.events(), 4); // ids 0 and 4, two spans each
        t.finish(20).unwrap();
        drop(t);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let doc = Json::parse(&text).unwrap();
        assert_eq!(doc.get("traceEvents").unwrap().as_arr().unwrap().len(), 4);
    }

    #[test]
    fn finish_closes_dangling_spans_and_is_idempotent() {
        let buf = SharedBuf::default();
        let mut t = TxnTracer::new(Box::new(buf.clone()), 1).unwrap();
        t.begin(7, "coalesce", 3, 1, "store", 128);
        t.finish(9).unwrap();
        t.finish(9).unwrap(); // second call is a no-op
        drop(t);
        let text = String::from_utf8(buf.0.lock().unwrap().clone()).unwrap();
        let doc = Json::parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].get("name").unwrap().as_str(), Some("coalesce"));
    }

    #[test]
    fn empty_trace_is_valid_json() {
        let text = trace_to_string(|_| {});
        let doc = Json::parse(&text).unwrap();
        assert_eq!(doc.get("traceEvents").unwrap().as_arr().unwrap().len(), 0);
    }

    #[test]
    fn hops_on_unknown_ids_are_ignored() {
        let text = trace_to_string(|t| {
            t.hop(99, "l2", 10);
            t.end(99, 20);
        });
        let doc = Json::parse(&text).unwrap();
        assert_eq!(doc.get("traceEvents").unwrap().as_arr().unwrap().len(), 0);
    }
}
