//! Recovery telemetry for supervised sweeps.
//!
//! The supervision layer (retry, quarantine, watchdog, crash-safe cache,
//! checkpoint journal) must be *observable*: a sweep that silently retried
//! its way past a flaky point looks identical to a clean one unless the
//! recovery events are counted and reported. [`RecoveryLog`] is that
//! ledger — a plain tally plus an optional bounded event trail, rendered
//! into the sweep report so CI can assert both "every fault recovered" and
//! "no fault fired at all" (chaos off must be a no-op).

use std::fmt::Write as _;

/// Cap on retained event lines; older events are dropped first. Recovery
/// is rare by construction, so the cap only matters under chaos.
const MAX_EVENTS: usize = 256;

/// Counters plus a bounded trail of recovery events observed in one sweep.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryLog {
    /// Attempts that failed and were retried.
    pub retries: u64,
    /// Points abandoned after exhausting their retry budget.
    pub quarantines: u64,
    /// Cache entries rejected by checksum or shape and quarantined.
    pub cache_corruptions: u64,
    /// Watchdog livelock reports (each consumed one attempt).
    pub livelocks: u64,
    /// Wall-clock deadline reports (each consumed one attempt).
    pub deadlines: u64,
    /// Points restored from a checkpoint journal instead of simulated.
    pub resumed_points: u64,
    /// Human-readable event lines, oldest first, capped at [`MAX_EVENTS`].
    events: Vec<String>,
}

impl RecoveryLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> RecoveryLog {
        RecoveryLog::default()
    }

    /// Records one event line (and bumps no counter — callers bump the
    /// specific counter for the class they observed).
    pub fn note(&mut self, line: impl Into<String>) {
        if self.events.len() == MAX_EVENTS {
            self.events.remove(0);
        }
        self.events.push(line.into());
    }

    /// The retained event lines, oldest first.
    #[must_use]
    pub fn events(&self) -> &[String] {
        &self.events
    }

    /// Total recovery actions of any class. Zero means the sweep ran
    /// exactly as an unsupervised one would have.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.retries
            + self.quarantines
            + self.cache_corruptions
            + self.livelocks
            + self.deadlines
            + self.resumed_points
    }

    /// True when no recovery action of any kind was taken.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }

    /// Merges another log into this one (order: `self`'s events first).
    pub fn absorb(&mut self, other: &RecoveryLog) {
        self.retries += other.retries;
        self.quarantines += other.quarantines;
        self.cache_corruptions += other.cache_corruptions;
        self.livelocks += other.livelocks;
        self.deadlines += other.deadlines;
        self.resumed_points += other.resumed_points;
        for e in &other.events {
            self.note(e.clone());
        }
    }

    /// The counters as a JSON object fragment (no surrounding braces), in
    /// a fixed key order, for embedding in sweep reports.
    #[must_use]
    pub fn json_fields(&self) -> String {
        let mut s = String::new();
        write!(
            s,
            "\"retries\": {}, \"quarantines\": {}, \"cache_corruptions\": {}, \
             \"livelocks\": {}, \"deadlines\": {}, \"resumed_points\": {}",
            self.retries,
            self.quarantines,
            self.cache_corruptions,
            self.livelocks,
            self.deadlines,
            self.resumed_points
        )
        .expect("write! to String cannot fail");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_log_is_clean() {
        let log = RecoveryLog::new();
        assert!(log.is_clean());
        assert_eq!(log.total(), 0);
        assert!(log.events().is_empty());
    }

    #[test]
    fn absorb_sums_counters_and_appends_events() {
        let mut a = RecoveryLog::new();
        a.retries = 2;
        a.note("retry A/B");
        let mut b = RecoveryLog::new();
        b.quarantines = 1;
        b.livelocks = 3;
        b.note("quarantine C/D");
        a.absorb(&b);
        assert_eq!(a.retries, 2);
        assert_eq!(a.quarantines, 1);
        assert_eq!(a.livelocks, 3);
        assert_eq!(a.total(), 6);
        assert_eq!(a.events(), ["retry A/B", "quarantine C/D"]);
    }

    #[test]
    fn event_trail_is_bounded() {
        let mut log = RecoveryLog::new();
        for i in 0..(MAX_EVENTS + 10) {
            log.note(format!("e{i}"));
        }
        assert_eq!(log.events().len(), MAX_EVENTS);
        assert_eq!(log.events()[0], "e10", "oldest events dropped first");
    }

    #[test]
    fn json_fields_have_fixed_order() {
        let mut log = RecoveryLog::new();
        log.cache_corruptions = 4;
        let json = log.json_fields();
        assert!(json.starts_with("\"retries\": 0"));
        assert!(json.contains("\"cache_corruptions\": 4"));
        assert!(json.ends_with("\"resumed_points\": 0"));
    }
}
