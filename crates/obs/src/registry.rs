//! Workspace-wide typed metric registry: counters, gauges, and log2
//! histograms, registered once per subsystem under `subsystem.name`
//! namespaces and updated through integer-indexed ids.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Every value is a `u64` (float-derived statistics
//!    enter as fixed-point micros via [`f64_to_micros`]), snapshots render
//!    in sorted name order, and [`Registry::absorb`] combines registries
//!    with commutative, associative per-kind semantics (counters and
//!    histogram buckets sum; gauges take the maximum) — so a sweep-level
//!    registry built from per-point registries is independent of the order
//!    points complete in, and a machine-level registry populated by a
//!    global-component-order walk is independent of the shard partition.
//! 2. **Zero steady-state allocations.** Registration allocates; `add` /
//!    `set` / `observe` are array index operations, and
//!    [`Registry::render_into`] reuses the caller's buffer. The
//!    `alloc-probe` binary gates this.
//! 3. **Pull, not push.** The simulator's hot loops never carry metric
//!    ids; subsystem `record` functions copy already-maintained component
//!    statistics into the registry at epoch boundaries. The registry can
//!    therefore never perturb simulation results.
//!
//! Metric names must be unique, snake_case, and `subsystem.name`-shaped —
//! enforced at registration (panic) and statically by `simcheck`'s
//! `metric_names` rule.

use std::fmt::Write as _;

/// Buckets per histogram: bucket `i` counts values `v` with
/// `floor(log2(v)) + 1 == i` (bucket 0 holds zeros), saturating at the
/// last bucket.
pub const HIST_BUCKETS: usize = 32;

/// Handle to a registered counter (monotonic within one collection window).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(u32);

/// Handle to a registered gauge (point-in-time level; merges by maximum).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(u32);

/// Handle to a registered log2 histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(u32);

/// The kind of a registered metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonic count; [`Registry::absorb`] sums.
    Counter,
    /// Level; [`Registry::absorb`] takes the maximum.
    Gauge,
    /// Log2-bucketed distribution; [`Registry::absorb`] sums buckets.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// Marker for a scalar slot's absent histogram storage.
const NO_HIST: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Slot {
    name: &'static str,
    kind: MetricKind,
    /// Counter/gauge value; for histograms, the total observation count.
    value: u64,
    /// Index into `hists`, or [`NO_HIST`] for scalar slots.
    hist: u32,
}

/// A typed metric registry. See the module docs for the contract.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    slots: Vec<Slot>,
    hists: Vec<[u64; HIST_BUCKETS]>,
    /// Slot indices in ascending name order (maintained at registration).
    order: Vec<u32>,
}

/// True when `name` is a legal metric name: exactly one `.`, both
/// segments nonempty snake_case starting with a lowercase letter.
#[must_use]
pub fn valid_name(name: &str) -> bool {
    let Some((subsystem, metric)) = name.split_once('.') else { return false };
    let seg_ok = |s: &str| {
        s.starts_with(|c: char| c.is_ascii_lowercase())
            && s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    };
    seg_ok(subsystem) && seg_ok(metric) && !metric.contains('.')
}

/// Converts a non-negative finite float statistic to fixed-point micros
/// (rounded), the registry's representation for float-derived values.
/// Non-finite or negative inputs map to 0.
#[must_use]
pub fn f64_to_micros(x: f64) -> u64 {
    if !x.is_finite() || x <= 0.0 {
        return 0;
    }
    let scaled = (x * 1e6).round();
    // Bounded above before the cast, so the truncation is unreachable.
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    if scaled >= u64::MAX as f64 {
        u64::MAX
    } else {
        scaled as u64
    }
}

/// The bucket index for one observed value.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Number of registered metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when nothing has been registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    fn register(&mut self, name: &'static str, kind: MetricKind, hist: u32) -> u32 {
        assert!(
            valid_name(name),
            "metric name {name:?} must be snake_case subsystem.name"
        );
        let pos = match self.order.binary_search_by(|&i| self.slots[i as usize].name.cmp(name)) {
            Ok(_) => panic!("metric {name:?} registered twice"),
            Err(pos) => pos,
        };
        let id = u32::try_from(self.slots.len()).expect("metric count fits u32");
        self.slots.push(Slot { name, kind, value: 0, hist });
        self.order.insert(pos, id);
        id
    }

    /// Registers a counter. Panics on a duplicate or malformed name.
    pub fn counter(&mut self, name: &'static str) -> CounterId {
        CounterId(self.register(name, MetricKind::Counter, NO_HIST))
    }

    /// Registers a gauge. Panics on a duplicate or malformed name.
    pub fn gauge(&mut self, name: &'static str) -> GaugeId {
        GaugeId(self.register(name, MetricKind::Gauge, NO_HIST))
    }

    /// Registers a histogram. Panics on a duplicate or malformed name.
    pub fn histogram(&mut self, name: &'static str) -> HistogramId {
        let hist = u32::try_from(self.hists.len()).expect("histogram count fits u32");
        self.hists.push([0; HIST_BUCKETS]);
        HistogramId(self.register(name, MetricKind::Histogram, hist))
    }

    /// Adds `v` to a counter.
    #[inline]
    pub fn add(&mut self, id: CounterId, v: u64) {
        self.slots[id.0 as usize].value += v;
    }

    /// Increments a counter by one.
    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.add(id, 1);
    }

    /// Overwrites a counter with a snapshot of an externally-maintained
    /// cumulative count (the pull-model `record` path).
    #[inline]
    pub fn set_counter(&mut self, id: CounterId, v: u64) {
        self.slots[id.0 as usize].value = v;
    }

    /// Sets a gauge.
    #[inline]
    pub fn set(&mut self, id: GaugeId, v: u64) {
        self.slots[id.0 as usize].value = v;
    }

    /// Records one observation into a histogram.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, v: u64) {
        let slot = &mut self.slots[id.0 as usize];
        slot.value += 1;
        self.hists[slot.hist as usize][bucket_of(v)] += 1;
    }

    /// Zeroes a histogram's buckets and count, keeping the registration
    /// (pull-model `record` paths rebuild distributions from scratch).
    pub fn clear_histogram(&mut self, id: HistogramId) {
        let slot = &mut self.slots[id.0 as usize];
        slot.value = 0;
        self.hists[slot.hist as usize] = [0; HIST_BUCKETS];
    }

    /// Zeroes every value, keeping all registrations.
    pub fn reset_values(&mut self) {
        for s in &mut self.slots {
            s.value = 0;
        }
        for h in &mut self.hists {
            *h = [0; HIST_BUCKETS];
        }
    }

    /// The scalar value (or histogram observation count) of `name`.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<u64> {
        self.order
            .binary_search_by(|&i| self.slots[i as usize].name.cmp(name))
            .ok()
            .map(|pos| self.slots[self.order[pos] as usize].value)
    }

    /// The bucket array of histogram `name`.
    #[must_use]
    pub fn buckets(&self, name: &str) -> Option<&[u64; HIST_BUCKETS]> {
        let pos = self
            .order
            .binary_search_by(|&i| self.slots[i as usize].name.cmp(name))
            .ok()?;
        let slot = &self.slots[self.order[pos] as usize];
        (slot.hist != NO_HIST).then(|| &self.hists[slot.hist as usize])
    }

    /// Registered names in sorted order.
    pub fn names(&self) -> impl Iterator<Item = &'static str> + '_ {
        self.order.iter().map(|&i| self.slots[i as usize].name)
    }

    /// Renders a deterministic plain-text snapshot into `out` (reused
    /// buffer: allocation-free once `out` has grown to the working size).
    /// One `name kind value` line per metric in sorted name order;
    /// histograms append their bucket array.
    pub fn render_into(&self, out: &mut String) {
        out.clear();
        for &i in &self.order {
            let s = &self.slots[i as usize];
            let _ = write!(out, "{} {} {}", s.name, s.kind.as_str(), s.value);
            if s.hist != NO_HIST {
                out.push_str(" [");
                for (b, v) in self.hists[s.hist as usize].iter().enumerate() {
                    if b > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{v}");
                }
                out.push(']');
            }
            out.push('\n');
        }
    }

    /// Renders the snapshot as a JSON object fragment: sorted
    /// `"name": value` members (histograms become
    /// `{"count": N, "buckets": [...]}` with trailing zero buckets kept
    /// for a stable shape). No surrounding braces.
    pub fn render_json_into(&self, out: &mut String) {
        for (k, &i) in self.order.iter().enumerate() {
            let s = &self.slots[i as usize];
            if k > 0 {
                out.push_str(", ");
            }
            if s.hist == NO_HIST {
                let _ = write!(out, "\"{}\": {}", s.name, s.value);
            } else {
                let _ = write!(out, "\"{}\": {{\"count\": {}, \"buckets\": [", s.name, s.value);
                for (b, v) in self.hists[s.hist as usize].iter().enumerate() {
                    if b > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{v}");
                }
                out.push_str("]}");
            }
        }
    }

    /// Renders the snapshot as a complete JSON object — braces included —
    /// for embedding as a member value (`dcl1d` per-tenant counter
    /// fragments in status replies).
    pub fn render_json_object_into(&self, out: &mut String) {
        out.push('{');
        self.render_json_into(out);
        out.push('}');
    }

    /// Merges `other` into `self` by name with commutative semantics:
    /// counters and histogram buckets sum, gauges take the maximum. Names
    /// absent from `self` are registered with `other`'s kind; a name
    /// present in both with different kinds panics (a registration bug).
    pub fn absorb(&mut self, other: &Registry) {
        for &oi in &other.order {
            let os = &other.slots[oi as usize];
            let pos =
                self.order.binary_search_by(|&i| self.slots[i as usize].name.cmp(os.name));
            let id = match pos {
                Ok(p) => {
                    let id = self.order[p] as usize;
                    assert_eq!(
                        self.slots[id].kind, os.kind,
                        "metric {:?} registered with two kinds",
                        os.name
                    );
                    id
                }
                Err(_) => {
                    let hist = if os.hist == NO_HIST {
                        NO_HIST
                    } else {
                        let h = u32::try_from(self.hists.len()).expect("hist count fits u32");
                        self.hists.push([0; HIST_BUCKETS]);
                        h
                    };
                    self.register(os.name, os.kind, hist) as usize
                }
            };
            let slot = &mut self.slots[id];
            match slot.kind {
                MetricKind::Counter | MetricKind::Histogram => slot.value += os.value,
                MetricKind::Gauge => slot.value = slot.value.max(os.value),
            }
            if slot.hist != NO_HIST {
                let dst = slot.hist as usize;
                let src = &other.hists[os.hist as usize];
                for (d, s) in self.hists[dst].iter_mut().zip(src.iter()) {
                    *d += s;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_validation() {
        assert!(valid_name("gpu.instructions"));
        assert!(valid_name("memo.disk_hits"));
        assert!(valid_name("shard.busy2"));
        assert!(!valid_name("instructions"), "missing namespace");
        assert!(!valid_name("gpu.l1.hits"), "two dots");
        assert!(!valid_name("Gpu.hits"), "uppercase");
        assert!(!valid_name("gpu.Hits"), "uppercase metric");
        assert!(!valid_name("gpu."), "empty metric");
        assert!(!valid_name(".hits"), "empty subsystem");
        assert!(!valid_name("gpu.2hits"), "digit-leading metric");
        assert!(!valid_name("gpu.hit-rate"), "dash");
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let mut r = Registry::new();
        r.counter("a.dup");
        r.counter("a.dup");
    }

    #[test]
    #[should_panic(expected = "snake_case")]
    fn malformed_name_panics() {
        let mut r = Registry::new();
        r.counter("NotSnake");
    }

    #[test]
    fn scalar_ops_and_lookup() {
        let mut r = Registry::new();
        let c = r.counter("a.count");
        let g = r.gauge("a.level");
        r.add(c, 5);
        r.inc(c);
        r.set(g, 9);
        assert_eq!(r.get("a.count"), Some(6));
        assert_eq!(r.get("a.level"), Some(9));
        assert_eq!(r.get("a.missing"), None);
        r.set_counter(c, 100);
        assert_eq!(r.get("a.count"), Some(100));
        r.reset_values();
        assert_eq!(r.get("a.count"), Some(0));
    }

    #[test]
    fn histogram_buckets_are_log2() {
        let mut r = Registry::new();
        let h = r.histogram("a.dist");
        for v in [0, 1, 2, 3, 4, 7, 8, u64::MAX] {
            r.observe(h, v);
        }
        let b = r.buckets("a.dist").unwrap();
        assert_eq!(r.get("a.dist"), Some(8), "count tracks observations");
        assert_eq!(b[0], 1, "zeros");
        assert_eq!(b[1], 1, "v=1");
        assert_eq!(b[2], 2, "v=2,3");
        assert_eq!(b[3], 2, "v=4,7");
        assert_eq!(b[4], 1, "v=8");
        assert_eq!(b[HIST_BUCKETS - 1], 1, "saturates at the top bucket");
        r.clear_histogram(h);
        assert_eq!(r.get("a.dist"), Some(0));
        assert!(r.buckets("a.dist").unwrap().iter().all(|&v| v == 0));
    }

    #[test]
    fn render_is_sorted_and_deterministic() {
        let mut r = Registry::new();
        let b = r.counter("z.beta");
        let a = r.counter("a.alpha");
        r.add(a, 1);
        r.add(b, 2);
        let mut out = String::new();
        r.render_into(&mut out);
        assert_eq!(out, "a.alpha counter 1\nz.beta counter 2\n");
        let mut again = String::new();
        r.render_into(&mut again);
        assert_eq!(out, again);
    }

    #[test]
    fn render_json_fragment_parses() {
        let mut r = Registry::new();
        let c = r.counter("a.count");
        let h = r.histogram("a.dist");
        r.add(c, 3);
        r.observe(h, 5);
        let mut out = String::from("{");
        r.render_json_into(&mut out);
        out.push('}');
        let doc = crate::json::Json::parse(&out).unwrap();
        assert_eq!(doc.get("a.count").unwrap().as_f64(), Some(3.0));
        let dist = doc.get("a.dist").unwrap();
        assert_eq!(dist.get("count").unwrap().as_f64(), Some(1.0));
        assert_eq!(dist.get("buckets").unwrap().as_arr().unwrap().len(), HIST_BUCKETS);
    }

    #[test]
    fn absorb_is_commutative() {
        let build = |c1: u64, g1: u64, hv: u64| {
            let mut r = Registry::new();
            let c = r.counter("s.count");
            let g = r.gauge("s.level");
            let h = r.histogram("s.dist");
            r.add(c, c1);
            r.set(g, g1);
            r.observe(h, hv);
            r
        };
        let a = build(3, 10, 4);
        let b = build(5, 7, 100);
        let mut ab = Registry::new();
        ab.absorb(&a);
        ab.absorb(&b);
        let mut ba = Registry::new();
        ba.absorb(&b);
        ba.absorb(&a);
        let (mut ra, mut rb) = (String::new(), String::new());
        ab.render_into(&mut ra);
        ba.render_into(&mut rb);
        assert_eq!(ra, rb, "absorb order changed the merged snapshot");
        assert_eq!(ab.get("s.count"), Some(8), "counters sum");
        assert_eq!(ab.get("s.level"), Some(10), "gauges take the max");
        assert_eq!(ab.get("s.dist"), Some(2), "histogram counts sum");
    }

    #[test]
    fn absorb_registers_missing_names() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        let c = b.counter("late.arrival");
        b.add(c, 7);
        a.absorb(&b);
        assert_eq!(a.get("late.arrival"), Some(7));
    }

    #[test]
    fn fixed_point_micros() {
        assert_eq!(f64_to_micros(0.0), 0);
        assert_eq!(f64_to_micros(1.5), 1_500_000);
        assert_eq!(f64_to_micros(f64::NAN), 0);
        assert_eq!(f64_to_micros(-2.0), 0);
        assert_eq!(f64_to_micros(1e300), u64::MAX);
    }

    #[test]
    fn render_into_reuses_buffer_without_growth() {
        let mut r = Registry::new();
        let c = r.counter("a.count");
        r.add(c, u64::MAX);
        let mut out = String::new();
        r.render_into(&mut out);
        let cap = out.capacity();
        for v in 0..100 {
            r.set_counter(c, v);
            r.render_into(&mut out);
        }
        assert_eq!(out.capacity(), cap, "steady-state render must not grow the buffer");
    }
}
