//! Hierarchical phase profiler: wall-time attribution for the machine's
//! per-cycle regions (Issue / NoC#1 / Mem / epoch exchange), shard
//! barrier waits, and the runner's memo-cache and journal IO.
//!
//! The profiler is a plain accumulator — a fixed array of nanosecond
//! totals and lap counts indexed by [`Phase`] — so enabling it costs two
//! monotonic-clock reads per timed region and zero allocations. It is
//! diagnostic-only: phase times never feed back into simulation state,
//! so profiled and unprofiled runs produce byte-identical statistics.
//! [`PhaseProfiler::absorb`] folds per-point profiles into a sweep-level
//! breakdown for `BENCH_sweep.json` and the `--compare` regression gate.

use std::fmt::Write as _;

/// A timed region of the simulate-one-point pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// CTA dispatch plus the core-side Issue region.
    Issue,
    /// NoC#1 / NoC#2 region: cluster crossbars, slice networks, DRAM clocks.
    Noc1,
    /// Memory region: DC-L1 node ticks, L2, DRAM, reply drains.
    Mem,
    /// Epoch-barrier work: outbox exchange, presence replay, memory mail.
    Exchange,
    /// Time shard workers spent blocked on the epoch barrier.
    BarrierWait,
    /// Memo-cache local-disk IO (load, store, checksum verification).
    CacheIo,
    /// Memo-cache shared-tier IO (read-through probes and write-back) —
    /// split from [`Phase::CacheIo`] because a shared tier usually sits
    /// on a network mount whose latency must be attributable on its own.
    SharedIo,
    /// Checkpoint-journal appends.
    JournalWrite,
}

/// Number of [`Phase`] variants (array dimension for the accumulator).
pub const PHASE_COUNT: usize = 8;

impl Phase {
    /// Every phase, in rendering order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Issue,
        Phase::Noc1,
        Phase::Mem,
        Phase::Exchange,
        Phase::BarrierWait,
        Phase::CacheIo,
        Phase::SharedIo,
        Phase::JournalWrite,
    ];

    /// Stable snake_case name used in JSON output.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Issue => "issue",
            Phase::Noc1 => "noc1",
            Phase::Mem => "mem",
            Phase::Exchange => "exchange",
            Phase::BarrierWait => "barrier_wait",
            Phase::CacheIo => "cache_io",
            Phase::SharedIo => "shared_io",
            Phase::JournalWrite => "journal_write",
        }
    }

    #[inline]
    fn index(self) -> usize {
        match self {
            Phase::Issue => 0,
            Phase::Noc1 => 1,
            Phase::Mem => 2,
            Phase::Exchange => 3,
            Phase::BarrierWait => 4,
            Phase::CacheIo => 5,
            Phase::SharedIo => 6,
            Phase::JournalWrite => 7,
        }
    }
}

/// Fixed-size per-phase accumulator of elapsed nanoseconds and lap counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseProfiler {
    nanos: [u64; PHASE_COUNT],
    counts: [u64; PHASE_COUNT],
}

impl PhaseProfiler {
    /// An empty profile.
    #[must_use]
    pub fn new() -> PhaseProfiler {
        PhaseProfiler::default()
    }

    /// Adds one lap of `nanos` to `phase`.
    #[inline]
    pub fn add(&mut self, phase: Phase, nanos: u64) {
        self.nanos[phase.index()] += nanos;
        self.counts[phase.index()] += 1;
    }

    /// Total nanoseconds attributed to `phase`.
    #[must_use]
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.nanos[phase.index()]
    }

    /// Number of laps recorded for `phase`.
    #[must_use]
    pub fn count(&self, phase: Phase) -> u64 {
        self.counts[phase.index()]
    }

    /// Sum of all phase totals.
    #[must_use]
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// `phase`'s fraction of the profiled total, or 0 for an empty profile.
    #[must_use]
    pub fn share(&self, phase: Phase) -> f64 {
        let total = self.total_nanos();
        if total == 0 {
            0.0
        } else {
            // Phase totals are bounded by the run's wall time; the
            // precision loss of u64→f64 is irrelevant for a share.
            #[allow(clippy::cast_precision_loss)]
            {
                self.nanos(phase) as f64 / total as f64
            }
        }
    }

    /// Folds another profile into this one (sums nanos and counts).
    pub fn absorb(&mut self, other: &PhaseProfiler) {
        for i in 0..PHASE_COUNT {
            self.nanos[i] += other.nanos[i];
            self.counts[i] += other.counts[i];
        }
    }

    /// Zeroes the profile.
    pub fn reset(&mut self) {
        *self = PhaseProfiler::default();
    }

    /// Appends the profile as a JSON array of
    /// `{"phase": name, "nanos": N, "count": N}` objects in
    /// [`Phase::ALL`] order.
    pub fn render_json_into(&self, out: &mut String) {
        out.push('[');
        for (i, p) in Phase::ALL.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"phase\": \"{}\", \"nanos\": {}, \"count\": {}}}",
                p.name(),
                self.nanos(*p),
                self.count(*p)
            );
        }
        out.push(']');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_matches_all_order() {
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i, "Phase::ALL and index() disagree at {i}");
        }
    }

    #[test]
    fn add_and_share() {
        let mut p = PhaseProfiler::new();
        p.add(Phase::Issue, 300);
        p.add(Phase::Mem, 100);
        p.add(Phase::Mem, 100);
        assert_eq!(p.nanos(Phase::Issue), 300);
        assert_eq!(p.count(Phase::Mem), 2);
        assert_eq!(p.total_nanos(), 500);
        assert!((p.share(Phase::Issue) - 0.6).abs() < 1e-12);
        assert!((p.share(Phase::Noc1)).abs() < 1e-12);
        assert!(PhaseProfiler::new().share(Phase::Issue).abs() < 1e-12, "empty profile");
    }

    #[test]
    fn absorb_sums() {
        let mut a = PhaseProfiler::new();
        a.add(Phase::CacheIo, 10);
        let mut b = PhaseProfiler::new();
        b.add(Phase::CacheIo, 5);
        b.add(Phase::JournalWrite, 7);
        a.absorb(&b);
        assert_eq!(a.nanos(Phase::CacheIo), 15);
        assert_eq!(a.count(Phase::CacheIo), 2);
        assert_eq!(a.nanos(Phase::JournalWrite), 7);
        a.reset();
        assert_eq!(a.total_nanos(), 0);
    }

    #[test]
    fn json_lists_every_phase() {
        let mut p = PhaseProfiler::new();
        p.add(Phase::BarrierWait, 42);
        let mut out = String::new();
        p.render_json_into(&mut out);
        let doc = crate::json::Json::parse(&out).unwrap();
        let arr = doc.as_arr().unwrap();
        assert_eq!(arr.len(), PHASE_COUNT);
        let bw = arr
            .iter()
            .find(|e| e.get("phase").and_then(crate::json::Json::as_str) == Some("barrier_wait"))
            .expect("barrier_wait present");
        assert_eq!(bw.get("nanos").unwrap().as_f64(), Some(42.0));
        assert_eq!(bw.get("count").unwrap().as_f64(), Some(1.0));
    }
}
