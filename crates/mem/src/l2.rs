//! One address-sliced L2 cache bank.

use dcl1_cache::{CacheGeometry, LookupResult, Mshr, MshrAllocation, SetAssocCache, SetIndexing};
use dcl1_common::{BoundedQueue, ConfigError, Cycle, FlatSet, LineAddr};
use std::collections::VecDeque;

/// What a memory access wants from the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemAccessKind {
    /// Read a line (data load, or an instruction/texture/constant fetch).
    Read,
    /// Write (the L1s are write-evict, so writes always reach the L2).
    Write,
    /// Atomic read-modify-write, executed at the L2 (paper Section III).
    Atomic,
}

/// A request entering an L2 slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct L2Request<T> {
    /// Line being accessed.
    pub line: LineAddr,
    /// Access kind.
    pub kind: MemAccessKind,
    /// Caller payload, returned verbatim in the reply.
    pub payload: T,
}

/// A reply leaving an L2 slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct L2Reply<T> {
    /// Line that was accessed.
    pub line: LineAddr,
    /// Access kind of the original request (a `Write` reply is the ACK).
    pub kind: MemAccessKind,
    /// Whether the access hit in the L2.
    pub hit: bool,
    /// Caller payload from the request.
    pub payload: T,
}

/// Service-level statistics for one L2 slice.
///
/// Counted when a request is actually serviced (dequeued), so structural
/// retry lookups never inflate them — unlike the raw tag-array counters.
#[derive(Debug, Clone, Copy, Default)]
pub struct L2Stats {
    /// Requests serviced.
    pub accesses: dcl1_common::stats::Counter,
    /// Serviced requests that hit.
    pub hits: dcl1_common::stats::Counter,
    /// Serviced requests that missed (or merged into a pending miss).
    pub misses: dcl1_common::stats::Counter,
}

impl L2Stats {
    /// Miss rate over serviced requests.
    pub fn miss_rate(&self) -> f64 {
        self.misses.ratio_of(self.accesses.get())
    }
}

/// Configuration of one L2 slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct L2Config {
    /// Capacity of this slice in bytes (paper: 128 KB × 32 slices = 4 MB).
    pub size_bytes: usize,
    /// Associativity (paper: 8).
    pub assoc: usize,
    /// Line size in bytes (128).
    pub line_size: usize,
    /// Access latency in core cycles.
    pub latency: u32,
    /// MSHR entries.
    pub mshr_entries: usize,
    /// Merges per MSHR entry.
    pub mshr_merges: usize,
    /// Input queue depth.
    pub input_queue: usize,
    /// Extra latency for atomics (read-modify-write turnaround).
    pub atomic_extra_latency: u32,
}

impl Default for L2Config {
    fn default() -> Self {
        L2Config {
            size_bytes: 128 * 1024,
            assoc: 8,
            line_size: 128,
            latency: 32,
            mshr_entries: 64,
            mshr_merges: 8,
            input_queue: 16,
            atomic_extra_latency: 4,
        }
    }
}

/// A request the slice wants to send to its memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramAccess {
    /// Line to read or write.
    pub line: LineAddr,
    /// True for a write-back, false for a fill read.
    pub is_write: bool,
}

/// One L2 slice. Drive it with [`try_enqueue`](L2Slice::try_enqueue),
/// tick it once per core cycle, feed DRAM read completions back through
/// [`dram_fill`](L2Slice::dram_fill), and drain replies and DRAM requests
/// from [`pop_reply`](L2Slice::pop_reply) / [`pop_dram`](L2Slice::pop_dram).
#[derive(Debug)]
pub struct L2Slice<T> {
    cache: SetAssocCache,
    mshr: Mshr<(MemAccessKind, T)>,
    input: BoundedQueue<L2Request<T>>,
    /// Replies waiting out the access latency: ready-time ordered.
    pending_replies: VecDeque<(Cycle, L2Reply<T>)>,
    dram_out: VecDeque<DramAccess>,
    // Deterministic open-addressed set: membership-only today, but any
    // future iteration (e.g. a flush phase) must be hasher-independent —
    // FlatSet::sorted_keys provides that on demand.
    dirty: FlatSet,
    /// Scratch buffer for MSHR completions, reused across fills so the
    /// fan-out never allocates in steady state.
    fill_scratch: Vec<(MemAccessKind, T)>,
    config: L2Config,
    stats: L2Stats,
    now: Cycle,
}

impl<T> L2Slice<T> {
    /// Creates an empty slice.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the cache geometry is invalid.
    pub fn new(config: L2Config) -> Result<Self, ConfigError> {
        // Hashed set indexing, as GPU L2 banks use (set camping would
        // otherwise shadow the slice-level camping the paper studies).
        let geom = CacheGeometry::new(config.size_bytes, config.assoc, config.line_size)?
            .with_indexing(SetIndexing::Hashed);
        Ok(L2Slice {
            cache: SetAssocCache::new(geom),
            mshr: Mshr::new(config.mshr_entries, config.mshr_merges),
            input: BoundedQueue::new(config.input_queue),
            pending_replies: VecDeque::new(),
            dram_out: VecDeque::new(),
            // Dirty lines are resident lines, so sizing the set at the
            // slice's line capacity means it never re-hashes.
            dirty: FlatSet::with_capacity(config.size_bytes / config.line_size),
            fill_scratch: Vec::new(),
            config,
            stats: L2Stats::default(),
            now: 0,
        })
    }

    /// Accepts a request if the input queue has room.
    ///
    /// # Errors
    ///
    /// Returns `Err(request)` under backpressure.
    pub fn try_enqueue(&mut self, request: L2Request<T>) -> Result<(), L2Request<T>> {
        self.input.try_push(request)
    }

    /// Whether the input queue can accept another request.
    pub fn can_accept(&self) -> bool {
        !self.input.is_full()
    }

    /// Advances one core cycle: services at most one request from the
    /// input queue (single tag port).
    pub fn tick(&mut self) {
        self.now += 1;

        let Some(req) = self.input.front() else { return };
        let line = req.line;
        let kind = req.kind;

        match kind {
            MemAccessKind::Read => {
                // A read that merges into a pending fill must not consume
                // a new MSHR entry; a read that needs a new entry may stall
                // if the MSHR is full. Either way, never pop a request the
                // MSHR cannot accept — it would be lost.
                if self.mshr.is_pending(line) {
                    if !self.mshr.can_accept(line) {
                        return; // merge list full: stall the head
                    }
                    let req = self.input.pop().expect("front was Some");
                    self.stats.accesses.inc();
                    self.stats.misses.inc();
                    let merged = self.mshr.try_allocate(line, (kind, req.payload));
                    debug_assert!(merged.is_ok());
                    return;
                }
                match self.cache.lookup(line) {
                    LookupResult::Hit => {
                        let req = self.input.pop().expect("front was Some");
                        self.stats.accesses.inc();
                        self.stats.hits.inc();
                        self.queue_reply(line, kind, true, req.payload, self.config.latency);
                    }
                    LookupResult::Miss => {
                        if self.mshr.is_full() {
                            return; // structural stall; retry next cycle
                        }
                        let req = self.input.pop().expect("front was Some");
                        self.stats.accesses.inc();
                        self.stats.misses.inc();
                        let alloc = self
                            .mshr
                            .try_allocate(line, (kind, req.payload))
                            .unwrap_or_else(|_| unreachable!("checked not full and not pending"));
                        debug_assert_eq!(alloc, MshrAllocation::Allocated);
                        self.dram_out.push_back(DramAccess { line, is_write: false });
                    }
                }
            }
            MemAccessKind::Write => {
                // Write-allocate without fetch: install the line, mark it
                // dirty, ACK after the access latency. Evicted dirty lines
                // write back to DRAM.
                let req = self.input.pop().expect("front was Some");
                let hit = self.cache.lookup(line) == LookupResult::Hit;
                self.stats.accesses.inc();
                if hit { self.stats.hits.inc() } else { self.stats.misses.inc() }
                if let Some(evicted) = self.cache.fill(line) {
                    if self.dirty.remove(evicted.raw()) {
                        self.dram_out.push_back(DramAccess { line: evicted, is_write: true });
                    }
                }
                self.dirty.insert(line.raw());
                self.queue_reply(line, kind, hit, req.payload, self.config.latency);
            }
            MemAccessKind::Atomic => {
                // Executed at the L2 (paper Section III): behaves like a
                // read (fetching on miss) plus a local modify, then ACKs.
                if self.mshr.is_pending(line) {
                    if !self.mshr.can_accept(line) {
                        return; // merge list full: stall the head
                    }
                    let req = self.input.pop().expect("front was Some");
                    let merged = self.mshr.try_allocate(line, (kind, req.payload));
                    debug_assert!(merged.is_ok());
                    return;
                }
                match self.cache.lookup(line) {
                    LookupResult::Hit => {
                        let req = self.input.pop().expect("front was Some");
                        self.dirty.insert(line.raw());
                        self.queue_reply(
                            line,
                            kind,
                            true,
                            req.payload,
                            self.config.latency + self.config.atomic_extra_latency,
                        );
                    }
                    LookupResult::Miss => {
                        if self.mshr.is_full() {
                            return;
                        }
                        let req = self.input.pop().expect("front was Some");
                        self.stats.accesses.inc();
                        self.stats.misses.inc();
                        let _ = self.mshr.try_allocate(line, (kind, req.payload));
                        self.dram_out.push_back(DramAccess { line, is_write: false });
                    }
                }
            }
        }
    }

    fn queue_reply(&mut self, line: LineAddr, kind: MemAccessKind, hit: bool, payload: T, lat: u32) {
        self.pending_replies.push_back((
            self.now + lat as Cycle,
            L2Reply { line, kind, hit, payload },
        ));
    }

    /// Completes a DRAM fill for `line`: installs it and wakes all merged
    /// requesters.
    pub fn dram_fill(&mut self, line: LineAddr) {
        if let Some(evicted) = self.cache.fill(line) {
            if self.dirty.remove(evicted.raw()) {
                self.dram_out.push_back(DramAccess { line: evicted, is_write: true });
            }
        }
        // Drain the waiters through the reusable scratch buffer (taken out
        // of `self` so `queue_reply` can borrow `&mut self`), keeping its
        // capacity for the next fill.
        let mut woken = std::mem::take(&mut self.fill_scratch);
        woken.clear();
        self.mshr.complete_into(line, &mut woken);
        for (kind, payload) in woken.drain(..) {
            if kind == MemAccessKind::Atomic {
                self.dirty.insert(line.raw());
            }
            self.queue_reply(line, kind, false, payload, self.config.latency);
        }
        self.fill_scratch = woken;
    }

    /// Pops the oldest reply whose latency has elapsed.
    ///
    /// Replies are released in ready-time order; call until `None` each
    /// cycle.
    pub fn pop_reply(&mut self) -> Option<L2Reply<T>> {
        match self.pending_replies.front() {
            Some((ready, _)) if *ready <= self.now => {
                self.pending_replies.pop_front().map(|(_, r)| r)
            }
            _ => None,
        }
    }

    /// Pops the next request destined for this slice's memory controller.
    pub fn pop_dram(&mut self) -> Option<DramAccess> {
        self.dram_out.pop_front()
    }

    /// Read-only view of the underlying cache (occupancy, raw tag stats).
    pub fn cache(&self) -> &SetAssocCache {
        &self.cache
    }

    /// Service-level statistics (retry-free accesses / hits / misses).
    pub fn stats(&self) -> &L2Stats {
        &self.stats
    }

    /// Zeroes the service statistics (end-of-warmup measurement reset).
    pub fn reset_stats(&mut self) {
        self.stats = L2Stats::default();
    }

    /// Outstanding MSHR entries (diagnostics).
    pub fn mshr_len(&self) -> usize {
        self.mshr.len()
    }

    /// Requests waiting for the memory controller (diagnostics).
    pub fn dram_out_len(&self) -> usize {
        self.dram_out.len()
    }

    /// Requests waiting in the input queue (diagnostics).
    pub fn input_len(&self) -> usize {
        self.input.len()
    }

    /// Replies waiting out the access latency (diagnostics).
    pub fn replies_pending(&self) -> usize {
        self.pending_replies.len()
    }

    /// If ticking this slice does no work, returns how many more ticks the
    /// head pending reply needs before [`pop_reply`](L2Slice::pop_reply)
    /// releases it (0 = poppable now, `u64::MAX` = no reply brewing;
    /// outstanding MSHR fills wake the slice externally via
    /// [`dram_fill`](L2Slice::dram_fill)). Returns `None` while the input
    /// queue or the DRAM-out queue holds work.
    pub fn quiescent_horizon(&self) -> Option<u64> {
        if !self.input.is_empty() || !self.dram_out.is_empty() {
            return None;
        }
        match self.pending_replies.front() {
            Some((ready, _)) => Some(ready.saturating_sub(self.now)),
            None => Some(u64::MAX),
        }
    }

    /// Advances the slice clock by `cycles` without ticking. Exactly
    /// equivalent to `cycles` ticks with an empty input queue (such a tick
    /// only increments the clock); callers must not jump past the cycle
    /// where the head pending reply becomes poppable.
    pub fn skip_idle_cycles(&mut self, cycles: u64) {
        debug_assert!(self.quiescent_horizon().is_some_and(|h| h >= cycles));
        self.now += cycles;
    }

    /// Whether all queues and MSHRs are drained.
    pub fn is_idle(&self) -> bool {
        self.input.is_empty()
            && self.pending_replies.is_empty()
            && self.dram_out.is_empty()
            && self.mshr.is_empty()
    }

    /// Checks the slice's conservation laws: the input queue conserves its
    /// items and stays within bounds, and the MSHR file neither leaks
    /// entries nor loses waiters. (Pending-reply ready times are *not*
    /// required to be monotone — atomics carry extra latency and release
    /// is in order of service, not readiness.) `site` names this slice in
    /// the error report.
    ///
    /// # Errors
    ///
    /// Returns the first violated law with its counter values.
    pub fn check_invariants(&self, site: &str) -> dcl1_common::InvariantResult {
        self.input.check_conservation(&format!("{site}.input"))?;
        self.mshr.check_conservation(&format!("{site}.mshr"))
    }
}

#[cfg(test)]
#[allow(clippy::cast_possible_truncation)] // test values are tiny
mod tests {
    use super::*;

    fn slice() -> L2Slice<u32> {
        L2Slice::new(L2Config { latency: 4, ..L2Config::default() }).unwrap()
    }

    fn drive_until_reply(s: &mut L2Slice<u32>, max: u32) -> Option<L2Reply<u32>> {
        for _ in 0..max {
            s.tick();
            if let Some(r) = s.pop_reply() {
                return Some(r);
            }
        }
        None
    }

    #[test]
    fn read_miss_goes_to_dram_then_replies() {
        let mut s = slice();
        let line = LineAddr::new(64);
        s.try_enqueue(L2Request { line, kind: MemAccessKind::Read, payload: 1 }).unwrap();
        s.tick();
        let d = s.pop_dram().expect("miss must fetch");
        assert_eq!(d.line, line);
        assert!(!d.is_write);
        assert!(s.pop_reply().is_none());
        s.dram_fill(line);
        let r = drive_until_reply(&mut s, 10).expect("reply after fill");
        assert_eq!(r.payload, 1);
        assert!(!r.hit);
    }

    #[test]
    fn read_hit_replies_after_latency() {
        let mut s = slice();
        let line = LineAddr::new(64);
        s.try_enqueue(L2Request { line, kind: MemAccessKind::Read, payload: 1 }).unwrap();
        s.tick();
        assert!(s.pop_dram().is_some(), "initial miss fetches");
        s.dram_fill(line);
        drive_until_reply(&mut s, 10).unwrap();
        // Second read: hit.
        s.try_enqueue(L2Request { line, kind: MemAccessKind::Read, payload: 2 }).unwrap();
        s.tick(); // serviced at now; ready at now+4
        assert!(s.pop_reply().is_none());
        let r = drive_until_reply(&mut s, 5).unwrap();
        assert!(r.hit);
        assert!(s.pop_dram().is_none(), "hit must not touch DRAM");
    }

    #[test]
    fn concurrent_reads_merge_into_one_fill() {
        let mut s = slice();
        let line = LineAddr::new(7);
        for p in 0..3 {
            s.try_enqueue(L2Request { line, kind: MemAccessKind::Read, payload: p }).unwrap();
        }
        for _ in 0..3 {
            s.tick();
        }
        assert!(s.pop_dram().is_some());
        assert!(s.pop_dram().is_none(), "merged misses must share one fill");
        s.dram_fill(line);
        let mut got = Vec::new();
        for _ in 0..20 {
            s.tick();
            while let Some(r) = s.pop_reply() {
                got.push(r.payload);
            }
        }
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn write_acks_and_dirty_eviction_writes_back() {
        let cfg = L2Config {
            size_bytes: 2 * 2 * 128, // 2 sets × 2 ways
            assoc: 2,
            latency: 1,
            ..L2Config::default()
        };
        let mut s: L2Slice<u32> = L2Slice::new(cfg).unwrap();
        // Write three lines mapping to the same set: the first gets evicted
        // dirty and must write back.
        for (i, l) in [0u64, 2, 4].iter().enumerate() {
            s.try_enqueue(L2Request {
                line: LineAddr::new(*l),
                kind: MemAccessKind::Write,
                payload: i as u32,
            })
            .unwrap();
        }
        let mut acks = 0;
        let mut writebacks = Vec::new();
        for _ in 0..20 {
            s.tick();
            while s.pop_reply().is_some() {
                acks += 1;
            }
            while let Some(d) = s.pop_dram() {
                assert!(d.is_write);
                writebacks.push(d.line.raw());
            }
        }
        assert_eq!(acks, 3);
        assert_eq!(writebacks, vec![0]);
    }

    #[test]
    fn atomic_miss_fetches_and_marks_dirty() {
        let mut s = slice();
        let line = LineAddr::new(3);
        s.try_enqueue(L2Request { line, kind: MemAccessKind::Atomic, payload: 9 }).unwrap();
        s.tick();
        assert!(s.pop_dram().is_some());
        s.dram_fill(line);
        let r = drive_until_reply(&mut s, 10).unwrap();
        assert_eq!(r.kind, MemAccessKind::Atomic);
        assert_eq!(r.payload, 9);
        assert!(s.is_idle());
    }

    #[test]
    fn input_backpressure() {
        let mut s: L2Slice<u32> =
            L2Slice::new(L2Config { input_queue: 2, ..L2Config::default() }).unwrap();
        let mk = |p| L2Request { line: LineAddr::new(p as u64), kind: MemAccessKind::Read, payload: p };
        s.try_enqueue(mk(0)).unwrap();
        s.try_enqueue(mk(1)).unwrap();
        assert!(!s.can_accept());
        assert!(s.try_enqueue(mk(2)).is_err());
    }

    #[test]
    fn mshr_full_stalls_head_without_loss() {
        let cfg = L2Config { mshr_entries: 1, ..L2Config::default() };
        let mut s: L2Slice<u32> = L2Slice::new(cfg).unwrap();
        s.try_enqueue(L2Request { line: LineAddr::new(1), kind: MemAccessKind::Read, payload: 1 })
            .unwrap();
        s.try_enqueue(L2Request { line: LineAddr::new(2), kind: MemAccessKind::Read, payload: 2 })
            .unwrap();
        for _ in 0..5 {
            s.tick();
        }
        // Only the first miss could allocate.
        assert!(s.pop_dram().is_some());
        assert!(s.pop_dram().is_none());
        s.dram_fill(LineAddr::new(1));
        for _ in 0..5 {
            s.tick();
        }
        // The stalled head proceeds once the entry frees.
        assert!(s.pop_dram().is_some());
    }
}
