//! `mem.*` registry namespace: L2 service and DRAM channel counters.
//!
//! Snapshot semantics match the other subsystem namespaces: the machine
//! supplies per-instance statistics in global slice/channel order and the
//! sums land in the registry, so merged snapshots are independent of the
//! shard partition.

use crate::{DramStats, L2Stats};
use dcl1_obs::registry::{CounterId, Registry};

/// Registered ids for every `mem.*` metric.
#[derive(Debug, Clone, Copy)]
pub struct MemMetrics {
    l2_accesses: CounterId,
    l2_hits: CounterId,
    l2_misses: CounterId,
    dram_reads: CounterId,
    dram_writes: CounterId,
    dram_row_hits: CounterId,
    dram_bus_busy_ticks: CounterId,
}

impl MemMetrics {
    /// Registers the `mem.*` namespace.
    pub fn register(reg: &mut Registry) -> MemMetrics {
        MemMetrics {
            l2_accesses: reg.counter("mem.l2_accesses"),
            l2_hits: reg.counter("mem.l2_hits"),
            l2_misses: reg.counter("mem.l2_misses"),
            dram_reads: reg.counter("mem.dram_reads"),
            dram_writes: reg.counter("mem.dram_writes"),
            dram_row_hits: reg.counter("mem.dram_row_hits"),
            dram_bus_busy_ticks: reg.counter("mem.dram_bus_busy_ticks"),
        }
    }

    /// Snapshots the sums over all L2 slices and DRAM channels.
    pub fn record(
        self,
        reg: &mut Registry,
        l2: impl Iterator<Item = L2Stats>,
        dram: impl Iterator<Item = DramStats>,
    ) {
        let mut accesses = 0;
        let mut hits = 0;
        let mut misses = 0;
        for s in l2 {
            accesses += s.accesses.get();
            hits += s.hits.get();
            misses += s.misses.get();
        }
        let mut reads = 0;
        let mut writes = 0;
        let mut row_hits = 0;
        let mut bus_busy = 0;
        for d in dram {
            reads += d.reads.get();
            writes += d.writes.get();
            row_hits += d.row_hits.get();
            bus_busy += d.bus_busy_ticks.get();
        }
        reg.set_counter(self.l2_accesses, accesses);
        reg.set_counter(self.l2_hits, hits);
        reg.set_counter(self.l2_misses, misses);
        reg.set_counter(self.dram_reads, reads);
        reg.set_counter(self.dram_writes, writes);
        reg.set_counter(self.dram_row_hits, row_hits);
        reg.set_counter(self.dram_bus_busy_ticks, bus_busy);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_l2_and_dram_sums() {
        let mut reg = Registry::new();
        let ids = MemMetrics::register(&mut reg);
        let mut l2a = L2Stats::default();
        l2a.accesses.add(8);
        l2a.hits.add(6);
        l2a.misses.add(2);
        let mut l2b = L2Stats::default();
        l2b.accesses.add(2);
        l2b.misses.add(2);
        let mut d = DramStats::default();
        d.reads.add(4);
        d.writes.add(1);
        d.row_hits.add(3);
        d.bus_busy_ticks.add(20);
        ids.record(&mut reg, [l2a, l2b].into_iter(), [d].into_iter());
        assert_eq!(reg.get("mem.l2_accesses"), Some(10));
        assert_eq!(reg.get("mem.l2_hits"), Some(6));
        assert_eq!(reg.get("mem.l2_misses"), Some(4));
        assert_eq!(reg.get("mem.dram_reads"), Some(4));
        assert_eq!(reg.get("mem.dram_row_hits"), Some(3));
        assert_eq!(reg.get("mem.dram_bus_busy_ticks"), Some(20));
    }
}
