//! Memory-side model: address-sliced L2 cache banks and GDDR5-like memory
//! controllers.
//!
//! The paper keeps the L2 and memory system **unchanged** across all DC-L1
//! designs (Table II): 32 address-sliced L2 banks in front of 16 GDDR5
//! memory controllers with FR-FCFS scheduling. This crate provides both:
//!
//! * [`L2Slice`] — one banked L2 slice: an input queue, a set-associative
//!   tag array, MSHRs, a fixed access latency, dirty-line tracking with
//!   write-back on eviction, and a DRAM request port;
//! * [`MemoryController`] — one GDDR5 channel: per-bank row state,
//!   first-ready first-come-first-served (FR-FCFS) scheduling, and a
//!   shared data bus, clocked in its own 924 MHz domain by the caller.
//!
//! Both components are generic over a payload type `T` that rides along
//! with each request and returns with its reply, so the full-system
//! simulator can route replies without global tables.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod dram;
mod l2;
pub mod metrics;

pub use dram::{DramConfig, DramStats, MemoryController};
pub use l2::{DramAccess, L2Config, L2Reply, L2Request, L2Slice, L2Stats, MemAccessKind};
