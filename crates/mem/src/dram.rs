//! GDDR5-like memory controller with FR-FCFS scheduling.
//!
//! One [`MemoryController`] models one memory channel: a request queue, a
//! set of banks with open-row state, and a shared data bus. Scheduling is
//! first-ready first-come-first-served (paper Table II): among queued
//! requests whose bank is ready, row hits win; ties break by age.
//!
//! The controller runs in the 924 MHz memory clock domain — callers tick
//! it through a [`ClockDomain`](dcl1_common::ClockDomain). All timing
//! constants below are in memory-clock ticks.

use dcl1_common::stats::Counter;
use dcl1_common::LineAddr;
use std::collections::VecDeque;

/// Timing and geometry of one GDDR5-like channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DramConfig {
    /// Banks per channel (paper: 16 banks, 4 bank groups).
    pub banks: usize,
    /// Bank groups per channel (GDDR5: column commands to the *same*
    /// group must be spaced tCCD_L apart; different groups only tCCD_S).
    pub bank_groups: usize,
    /// Row (page) size in bytes; consecutive lines share a row.
    pub row_bytes: usize,
    /// Activate-to-read delay (tRCD), memory ticks.
    pub t_rcd: u64,
    /// Precharge delay (tRP), memory ticks.
    pub t_rp: u64,
    /// Read/write CAS latency (tCL/tCWL), memory ticks.
    pub t_cas: u64,
    /// Data burst length on the bus for one 128 B line, memory ticks.
    pub t_burst: u64,
    /// Column-to-column delay within one bank group, memory ticks.
    pub t_ccd_l: u64,
    /// Column-to-column delay across bank groups, memory ticks.
    pub t_ccd_s: u64,
    /// Request queue depth.
    pub queue_depth: usize,
    /// Starvation cap in memory ticks: once the oldest request has waited
    /// this long, first-come-first-served overrides row-hit priority
    /// (real FR-FCFS controllers age-cap exactly this way).
    pub t_starvation: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        // Hynix GDDR5-flavoured timings at 924 MHz command clock.
        DramConfig {
            banks: 16,
            bank_groups: 4,
            row_bytes: 2048,
            t_rcd: 12,
            t_rp: 12,
            t_cas: 12,
            t_burst: 4,
            t_ccd_l: 6,
            t_ccd_s: 4,
            queue_depth: 32,
            t_starvation: 64,
        }
    }
}

/// Statistics for one channel.
#[derive(Debug, Clone, Copy, Default)]
pub struct DramStats {
    /// Reads serviced.
    pub reads: Counter,
    /// Writes serviced.
    pub writes: Counter,
    /// Row-buffer hits among all serviced requests.
    pub row_hits: Counter,
    /// Ticks the data bus was busy.
    pub bus_busy_ticks: Counter,
}

impl DramStats {
    /// Row-hit rate over all serviced requests.
    pub fn row_hit_rate(&self) -> f64 {
        self.row_hits.ratio_of(self.reads.get() + self.writes.get())
    }
}

#[derive(Debug, Clone, Copy)]
struct BankState {
    open_row: Option<u64>,
    ready_at: u64,
}

#[derive(Debug, Clone)]
struct Pending<T> {
    line: LineAddr,
    is_write: bool,
    payload: Option<T>,
    arrived: u64,
}

/// One memory channel. Enqueue with
/// [`try_enqueue`](MemoryController::try_enqueue), tick once per *memory*
/// clock, and drain read completions with
/// [`pop_reply`](MemoryController::pop_reply) (writes complete silently).
#[derive(Debug)]
pub struct MemoryController<T> {
    config: DramConfig,
    banks: Vec<BankState>,
    queue: VecDeque<Pending<T>>,
    /// Read completions: (ready_tick, line, payload), kept sorted by
    /// ready time (pushes are monotone per bus reservation).
    replies: VecDeque<(u64, LineAddr, T)>,
    bus_free_at: u64,
    /// Tick of the last column command and its bank group (tCCD gating).
    last_col: u64,
    last_group: Option<usize>,
    now: u64,
    stats: DramStats,
}

impl<T> MemoryController<T> {
    /// Creates an idle channel.
    pub fn new(config: DramConfig) -> Self {
        MemoryController {
            banks: vec![BankState { open_row: None, ready_at: 0 }; config.banks],
            queue: VecDeque::with_capacity(config.queue_depth),
            replies: VecDeque::new(),
            bus_free_at: 0,
            last_col: 0,
            last_group: None,
            now: 0,
            stats: DramStats::default(),
            config,
        }
    }

    /// Returns channel statistics.
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Zeroes the statistics (end-of-warmup measurement reset).
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }

    /// Whether the request queue has room.
    pub fn can_accept(&self) -> bool {
        self.queue.len() < self.config.queue_depth
    }

    /// Enqueues a read (with `payload` to return) or a write
    /// (`payload = None`).
    ///
    /// # Errors
    ///
    /// Returns `Err(payload)` when the queue is full.
    pub fn try_enqueue(
        &mut self,
        line: LineAddr,
        is_write: bool,
        payload: Option<T>,
    ) -> Result<(), Option<T>> {
        if !self.can_accept() {
            return Err(payload);
        }
        self.queue.push_back(Pending { line, is_write, payload, arrived: self.now });
        Ok(())
    }

    fn row_of(&self, line: LineAddr) -> u64 {
        line.base().raw() / self.config.row_bytes as u64
    }

    // Bank index is reduced mod `banks` (< usize).
    #[expect(clippy::cast_possible_truncation)]
    fn bank_of(&self, line: LineAddr) -> usize {
        (self.row_of(line) as usize) % self.config.banks
    }

    /// Advances one memory-clock tick: FR-FCFS selects at most one request
    /// to issue.
    pub fn tick(&mut self) {
        self.now += 1;
        if self.queue.is_empty() {
            return;
        }

        // FR-FCFS: first pass looks for the oldest row hit on a ready
        // bank; second pass takes the oldest request on a ready bank.
        // Once the oldest request has starved past the age cap, skip the
        // row-hit pass so it cannot be bypassed forever.
        let starved = self
            .queue
            .front()
            .is_some_and(|r| self.now.saturating_sub(r.arrived) > self.config.t_starvation);
        let mut choice: Option<usize> = None;
        let first_pass = if starved { 1 } else { 0 };
        for pass in first_pass..2 {
            for (i, req) in self.queue.iter().enumerate() {
                let bank = self.bank_of(req.line);
                let st = &self.banks[bank];
                if st.ready_at > self.now {
                    continue;
                }
                let row_hit = st.open_row == Some(self.row_of(req.line));
                if pass == 0 && !row_hit {
                    continue;
                }
                choice = Some(i);
                break;
            }
            if choice.is_some() {
                break;
            }
        }
        let Some(idx) = choice else { return };
        let req = self.queue.remove(idx).expect("index from scan");
        let bank = self.bank_of(req.line);
        let row = self.row_of(req.line);

        let st = &mut self.banks[bank];
        let mut access_ready = self.now;
        match st.open_row {
            Some(open) if open == row => {
                self.stats.row_hits.inc();
            }
            Some(_) => {
                access_ready += self.config.t_rp + self.config.t_rcd;
            }
            None => {
                access_ready += self.config.t_rcd;
            }
        }
        st.open_row = Some(row);

        // CAS, then the burst occupies the shared data bus. Column
        // commands are additionally gated by tCCD_L within a bank group
        // and tCCD_S across groups (GDDR5 bank-group architecture).
        let group = bank / (self.config.banks / self.config.bank_groups).max(1);
        let ccd = if self.last_group == Some(group) {
            self.config.t_ccd_l
        } else {
            self.config.t_ccd_s
        };
        let col_gate = self.last_col + ccd;
        let data_start =
            (access_ready + self.config.t_cas).max(self.bus_free_at).max(col_gate);
        self.last_col = data_start;
        self.last_group = Some(group);
        let done = data_start + self.config.t_burst;
        self.bus_free_at = done;
        st.ready_at = access_ready + self.config.t_burst; // bank busy through the burst
        self.stats.bus_busy_ticks.add(self.config.t_burst);

        if req.is_write {
            self.stats.writes.inc();
        } else {
            self.stats.reads.inc();
            let payload = req.payload.expect("reads carry a payload");
            // Keep replies sorted by completion time.
            let pos = self.replies.partition_point(|(t, _, _)| *t <= done);
            self.replies.insert(pos, (done, req.line, payload));
        }
    }

    /// Pops the next completed read, if its data burst has finished.
    pub fn pop_reply(&mut self) -> Option<(LineAddr, T)> {
        match self.replies.front() {
            Some((ready, _, _)) if *ready <= self.now => {
                self.replies.pop_front().map(|(_, l, p)| (l, p))
            }
            _ => None,
        }
    }

    /// If ticking this channel does no work, returns how many more memory
    /// ticks the head completion needs before
    /// [`pop_reply`](MemoryController::pop_reply) releases it (0 = poppable
    /// now, `u64::MAX` = nothing in flight). Returns `None` while requests
    /// are queued, i.e. while ticking still schedules commands.
    pub fn quiescent_horizon(&self) -> Option<u64> {
        if !self.queue.is_empty() {
            return None;
        }
        match self.replies.front() {
            Some((ready, _, _)) => Some(ready.saturating_sub(self.now)),
            None => Some(u64::MAX),
        }
    }

    /// Advances the channel clock by `ticks` without scheduling. Exactly
    /// equivalent to `ticks` calls to [`tick`](MemoryController::tick) with
    /// an empty request queue (such a tick only increments the clock);
    /// callers must not jump past the tick where the head completion
    /// becomes poppable.
    pub fn skip_idle_ticks(&mut self, ticks: u64) {
        debug_assert!(self.quiescent_horizon().is_some_and(|h| h >= ticks));
        self.now += ticks;
    }

    /// Whether the channel has no queued or in-flight work.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty() && self.replies.is_empty()
    }

    /// Requests currently queued (diagnostics).
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Read completions awaiting pickup (diagnostics).
    pub fn replies_pending(&self) -> usize {
        self.replies.len()
    }

    /// Achieved data bandwidth in bytes per memory tick so far.
    pub fn bandwidth_bytes_per_tick(&self, line_bytes: usize) -> f64 {
        if self.now == 0 {
            return 0.0;
        }
        let serviced = self.stats.reads.get() + self.stats.writes.get();
        (serviced * line_bytes as u64) as f64 / self.now as f64
    }
}

#[cfg(test)]
#[allow(clippy::cast_possible_truncation)] // test values are tiny
mod tests {
    use super::*;

    fn mc() -> MemoryController<u32> {
        MemoryController::new(DramConfig::default())
    }

    fn run_until_reply(m: &mut MemoryController<u32>, max: u64) -> Option<(LineAddr, u32)> {
        for _ in 0..max {
            m.tick();
            if let Some(r) = m.pop_reply() {
                return Some(r);
            }
        }
        None
    }

    #[test]
    fn read_completes_with_closed_row_latency() {
        let mut m = mc();
        m.try_enqueue(LineAddr::new(0), false, Some(7)).unwrap();
        // Issue on tick 1; tRCD 12 + tCAS 12 + burst 4 → done at 29.
        let r = run_until_reply(&mut m, 100).expect("read completes");
        assert_eq!(r.1, 7);
        assert_eq!(m.stats().reads.get(), 1);
        assert_eq!(m.stats().row_hits.get(), 0);
        assert!(m.is_idle());
    }

    #[test]
    fn row_hits_are_faster_than_conflicts() {
        // Two reads in the same row vs two in conflicting rows of the same
        // bank: the former must finish sooner.
        let cfg = DramConfig::default();
        let lines_per_row = (cfg.row_bytes / 128) as u64;

        let mut same = mc();
        same.try_enqueue(LineAddr::new(0), false, Some(0)).unwrap();
        same.try_enqueue(LineAddr::new(1), false, Some(1)).unwrap();
        let mut t_same = 0u64;
        let mut done = 0;
        while done < 2 {
            same.tick();
            t_same += 1;
            while same.pop_reply().is_some() {
                done += 1;
            }
            assert!(t_same < 1000);
        }

        let mut conflict = mc();
        // Same bank: rows r and r+banks.
        conflict.try_enqueue(LineAddr::new(0), false, Some(0)).unwrap();
        conflict
            .try_enqueue(LineAddr::new(lines_per_row * cfg.banks as u64), false, Some(1))
            .unwrap();
        let mut t_conf = 0u64;
        done = 0;
        while done < 2 {
            conflict.tick();
            t_conf += 1;
            while conflict.pop_reply().is_some() {
                done += 1;
            }
            assert!(t_conf < 1000);
        }
        assert!(t_same < t_conf, "row hit {t_same} !< conflict {t_conf}");
        assert_eq!(same.stats().row_hits.get(), 1);
        assert_eq!(conflict.stats().row_hits.get(), 0);
    }

    #[test]
    fn frfcfs_prefers_row_hit_over_older_conflict() {
        let cfg = DramConfig::default();
        let lines_per_row = (cfg.row_bytes / 128) as u64;
        let mut m = mc();
        // Open row 0 in bank 0.
        m.try_enqueue(LineAddr::new(0), false, Some(0)).unwrap();
        let _ = run_until_reply(&mut m, 100).unwrap();
        // Older conflicting request to bank 0, then a younger row hit.
        m.try_enqueue(LineAddr::new(lines_per_row * cfg.banks as u64), false, Some(1)).unwrap();
        m.try_enqueue(LineAddr::new(1), false, Some(2)).unwrap();
        let first = run_until_reply(&mut m, 200).unwrap();
        assert_eq!(first.1, 2, "row hit must be serviced first");
        let second = run_until_reply(&mut m, 200).unwrap();
        assert_eq!(second.1, 1);
    }

    #[test]
    fn writes_complete_without_reply() {
        let mut m = mc();
        m.try_enqueue(LineAddr::new(5), true, None).unwrap();
        for _ in 0..100 {
            m.tick();
            assert!(m.pop_reply().is_none());
        }
        assert_eq!(m.stats().writes.get(), 1);
    }

    #[test]
    fn queue_backpressure() {
        let mut m: MemoryController<u32> =
            MemoryController::new(DramConfig { queue_depth: 2, ..DramConfig::default() });
        m.try_enqueue(LineAddr::new(0), false, Some(0)).unwrap();
        m.try_enqueue(LineAddr::new(1), false, Some(1)).unwrap();
        assert!(!m.can_accept());
        assert!(m.try_enqueue(LineAddr::new(2), false, Some(2)).is_err());
    }

    #[test]
    fn same_bank_group_column_commands_are_slower() {
        // Back-to-back row hits: alternating bank groups should finish
        // sooner than hammering one group (tCCD_S < tCCD_L).
        let cfg = DramConfig::default();
        let lines_per_row = (cfg.row_bytes / 128) as u64;
        let banks_per_group = (cfg.banks / cfg.bank_groups) as u64;

        let run = |lines: Vec<u64>| -> u64 {
            let mut m: MemoryController<u32> = MemoryController::new(cfg);
            for (i, l) in lines.iter().enumerate() {
                m.try_enqueue(LineAddr::new(*l), false, Some(i as u32)).unwrap();
            }
            let mut done = 0;
            let mut t = 0;
            while done < lines.len() {
                m.tick();
                t += 1;
                while m.pop_reply().is_some() {
                    done += 1;
                }
                assert!(t < 10_000);
            }
            t
        };
        // 8 requests to banks 0 and 1 (same group 0) vs banks 0 and
        // `banks_per_group` (groups 0 and 1), all distinct rows warmed by
        // padding with row hits... keep it simple: single access each to
        // alternating banks, many times over the same rows (row hits).
        let same_group: Vec<u64> = (0..8)
            .map(|i| (i % 2) * lines_per_row + i / 2)
            .collect();
        let cross_group: Vec<u64> = (0..8)
            .map(|i| (i % 2) * banks_per_group * lines_per_row + i / 2)
            .collect();
        let t_same = run(same_group);
        let t_cross = run(cross_group);
        assert!(
            t_cross <= t_same,
            "cross-group ({t_cross}) should not be slower than same-group ({t_same})"
        );
    }

    #[test]
    fn starvation_cap_bounds_row_miss_wait() {
        // A continuous row-hit stream must not starve a row-miss request
        // beyond the age cap.
        let cfg = DramConfig::default();
        let lines_per_row = (cfg.row_bytes / 128) as u64;
        let mut m = mc();
        // Open row 0, then keep row-hitting it while a conflicting
        // request (same bank, different row) waits.
        m.try_enqueue(LineAddr::new(0), false, Some(0)).unwrap();
        let _ = run_until_reply(&mut m, 100).unwrap();
        m.try_enqueue(LineAddr::new(lines_per_row * cfg.banks as u64), false, Some(99)).unwrap();
        let mut hits = 1u64;
        let mut got_victim_at = None;
        for t in 0..3_000u64 {
            // Keep feeding row hits to row 0.
            if m.can_accept() {
                m.try_enqueue(LineAddr::new(hits % lines_per_row), false, Some(1)).unwrap();
                hits += 1;
            }
            m.tick();
            while let Some((_, p)) = m.pop_reply() {
                if p == 99 {
                    got_victim_at = Some(t);
                }
            }
            if got_victim_at.is_some() {
                break;
            }
        }
        let t = got_victim_at.expect("victim starved forever");
        assert!(t < 500, "victim waited {t} ticks despite the age cap");
    }

    #[test]
    fn bus_serializes_bursts_across_banks() {
        // Saturate with row hits across different banks: throughput is
        // bounded by the shared bus at one line per t_burst ticks.
        let mut m = mc();
        let cfg = DramConfig::default();
        let lines_per_row = (cfg.row_bytes / 128) as u64;
        let mut issued = 0u32;
        let mut done = 0u32;
        for t in 0..2_000u64 {
            if t % 2 == 0 && m.can_accept() && issued < 200 {
                // Spread across banks.
                let bank = (issued as u64) % cfg.banks as u64;
                let line = bank * lines_per_row + (issued as u64 / cfg.banks as u64);
                m.try_enqueue(LineAddr::new(line), false, Some(issued)).unwrap();
                issued += 1;
            }
            m.tick();
            while m.pop_reply().is_some() {
                done += 1;
            }
        }
        assert_eq!(done, 200);
        // 200 lines × 4-tick bursts = 800 busy ticks minimum.
        assert!(m.stats().bus_busy_ticks.get() >= 800);
        let bw = m.bandwidth_bytes_per_tick(128);
        assert!(bw <= 32.0 + 1e-9, "bus overdriven: {bw} B/tick");
    }
}
