//! A minimal `dcl1d` client: submit a small sweep, watch the progress
//! stream, then print the tenant's status.
//!
//! ```text
//! cargo run --example dcl1_client -- 127.0.0.1:4411 my-tenant
//! ```

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;

fn send_line(stream: &mut TcpStream, line: &str) -> std::io::Result<String> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut reply = String::new();
    reader.read_line(&mut reply)?;
    Ok(reply.trim_end().to_string())
}

fn main() -> std::io::Result<()> {
    // simcheck: allow(wall_clock): CLI argument parsing, not sim state
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = args.first().map_or("127.0.0.1:4411", String::as_str);
    let tenant = args.get(1).map_or("example", String::as_str);

    // A second connection subscribed to the event stream: the daemon
    // fans every runner and scheduler progress line out to it.
    let mut events = TcpStream::connect(addr)?;
    let ack = send_line(&mut events, "{\"cmd\":\"subscribe\"}")?;
    println!("subscribe -> {ack}");

    let mut ctl = TcpStream::connect(addr)?;
    let submit = format!(
        "{{\"cmd\":\"submit\",\"tenant\":\"{tenant}\",\"grid\":true,\
         \"only\":[\"C-BLK\"],\"priority\":1}}"
    );
    println!("submit -> {}", send_line(&mut ctl, &submit)?);

    // Read events until the sweep's four points have completed.
    let mut done = 0;
    let reader = BufReader::new(events.try_clone()?);
    for line in reader.lines() {
        let line = line?;
        println!("event  <- {line}");
        if line.contains("\"completed\"") || line.contains("\"quarantined\"") {
            done += 1;
            if done >= 4 {
                break;
            }
        }
    }

    let status = format!("{{\"cmd\":\"status\",\"tenant\":\"{tenant}\"}}");
    println!("status -> {}", send_line(&mut ctl, &status)?);
    Ok(())
}
