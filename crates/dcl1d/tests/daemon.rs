//! End-to-end daemon acceptance against the real `dcl1d` binary.
//!
//! Two service guarantees are proven here at smoke scale:
//!
//! 1. **Tenant isolation under chaos**: three tenants sweep the same
//!    point subset concurrently, one of them with fault injection armed.
//!    The chaotic tenant's persistent panics end in quarantine records
//!    scoped to that tenant; the other two complete fully and produce
//!    byte-identical digests.
//! 2. **Crash-safe queueing**: `kill -9` mid-sweep, restart with
//!    `--resume`, and every accepted job is completed exactly once —
//!    with the resumed work served from the warm result cache, not
//!    recomputed (`memo.simulated == 0` in the restarted process).

use dcl1_bench::{grid, runner};
use dcl1_obs::json::Json;
use dcl1_resilience::Chaos;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dcl1d-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Spawns the daemon on an ephemeral port and waits for its port file.
fn start_daemon(dir: &Path, tag: &str, extra: &[String]) -> (Child, String) {
    let port_file = dir.join(format!("port-{tag}"));
    let _ = std::fs::remove_file(&port_file);
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dcl1d"));
    cmd.arg("--addr=127.0.0.1:0")
        .arg(format!("--port-file={}", port_file.display()))
        .args(extra)
        .env("DCL1_SCALE", "smoke")
        .env("DCL1_CACHE_DIR", dir.join("cache"))
        .current_dir(dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    let child = cmd.spawn().expect("spawn dcl1d");
    let deadline = Instant::now() + Duration::from_secs(60);
    let addr = loop {
        if let Ok(s) = std::fs::read_to_string(&port_file) {
            if !s.is_empty() {
                break s;
            }
        }
        assert!(Instant::now() < deadline, "daemon never wrote its port file");
        std::thread::sleep(Duration::from_millis(5));
    };
    (child, addr)
}

/// Sends one request line and reads one reply line.
fn roundtrip(stream: &mut TcpStream, line: &str) -> String {
    stream.write_all(line.as_bytes()).expect("send request");
    stream.write_all(b"\n").expect("send newline");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read reply");
    assert!(!reply.is_empty(), "daemon closed the connection on: {line}");
    reply.trim_end().to_string()
}

fn connect(addr: &str) -> TcpStream {
    TcpStream::connect(addr).expect("connect to daemon")
}

/// The `--only` subset both tests sweep: 2 apps × 4 default designs.
const ONLY: [&str; 2] = ["C-BLK", "C-RAY"];

/// The point labels the subset produces, exactly as the runner (and
/// therefore the chaos engine) names them.
fn subset_labels() -> Vec<String> {
    let cfg = dcl1::GpuConfig::default();
    let only: Vec<String> = ONLY.iter().map(|s| (*s).to_string()).collect();
    grid::build_grid(&grid::default_designs(&cfg), &only, &cfg, dcl1::SimOptions::default())
        .iter()
        .map(runner::point_label)
        .collect()
}

fn submit_line(tenant: &str, chaos: Option<u64>) -> String {
    let chaos = chaos.map_or(String::new(), |s| format!(",\"chaos\":{s}"));
    format!(
        "{{\"cmd\":\"submit\",\"tenant\":\"{tenant}\",\"grid\":true,\
         \"only\":[\"C-BLK\",\"C-RAY\"]{chaos}}}"
    )
}

fn tenant_field<'a>(status: &'a Json, tenant: &str, field: &str) -> &'a Json {
    status
        .get("tenants")
        .and_then(|t| t.get(tenant))
        .and_then(|t| t.get(field))
        .unwrap_or_else(|| panic!("status missing tenants.{tenant}.{field}"))
}

fn count(status: &Json, tenant: &str, field: &str) -> u64 {
    let v = tenant_field(status, tenant, field)
        .as_f64()
        .unwrap_or_else(|| panic!("tenants.{tenant}.{field} is not a number"));
    #[expect(clippy::cast_possible_truncation, clippy::cast_sign_loss)] // small counts
    {
        v as u64
    }
}

#[test]
fn tenants_are_isolated_under_chaos() {
    let labels = subset_labels();
    assert_eq!(labels.len(), 8, "subset is 2 apps x 4 default designs");
    // A seed whose persistent panics hit at least one point of the
    // subset: the chaotic tenant must visibly quarantine work while the
    // others stay untouched.
    let seed = (0..300_000u64)
        .find(|&s| Chaos::new(s).census(&labels).persistent_panics >= 1)
        .expect("no persistent-panic seed in range");
    let expected_quarantines = Chaos::new(seed).census(&labels).persistent_panics;

    let dir = scratch("isolation");
    let (mut child, addr) = start_daemon(&dir, "iso", &["--workers=3".to_string()]);

    let mut ctl = connect(&addr);
    for (tenant, chaos) in [("alice", None), ("bob", None), ("mallory", Some(seed))] {
        let reply = roundtrip(&mut ctl, &submit_line(tenant, chaos));
        assert!(
            reply.contains("\"accepted\":8"),
            "{tenant} submit not fully accepted: {reply}"
        );
    }

    // `status` must answer while the sweep runs (graceful-degradation
    // contract: status is never starved by load).
    let live = roundtrip(&mut ctl, "{\"cmd\":\"status\"}");
    assert!(live.contains("\"ok\":true"), "status wedged during sweep: {live}");

    // Drain blocks until every queued and in-flight job resolves.
    let final_status = roundtrip(&mut ctl, "{\"cmd\":\"drain\"}");
    let doc = Json::parse(&final_status).expect("final status parses");

    for tenant in ["alice", "bob"] {
        assert_eq!(count(&doc, tenant, "completed"), 8, "{tenant} lost work:\n{final_status}");
        let quarantined = tenant_field(&doc, tenant, "quarantined")
            .as_arr()
            .expect("quarantined is a list");
        assert!(
            quarantined.is_empty(),
            "{tenant} caught mallory's faults:\n{final_status}"
        );
    }
    let alice = tenant_field(&doc, "alice", "digest").as_str().expect("alice digest");
    let bob = tenant_field(&doc, "bob", "digest").as_str().expect("bob digest");
    assert_eq!(alice, bob, "fault-free tenants diverged:\n{final_status}");

    let mallory_q = tenant_field(&doc, "mallory", "quarantined")
        .as_arr()
        .expect("mallory quarantined list");
    assert_eq!(
        mallory_q.len(),
        expected_quarantines,
        "seed {seed}: quarantine count off:\n{final_status}"
    );
    assert_eq!(
        usize::try_from(count(&doc, "mallory", "completed")).expect("count fits usize"),
        8 - expected_quarantines,
        "mallory's recoverable faults did not recover:\n{final_status}"
    );

    child.wait().expect("daemon exits after drain");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn kill9_resume_completes_exactly_once_from_cache() {
    let dir = scratch("resume");
    let journal = dir.join("queue.jsonl");

    // Phase 1: warm the result cache — a tenant completes the whole
    // subset, then the daemon drains cleanly.
    let (mut warm, addr) = start_daemon(
        &dir,
        "warm",
        &["--workers=2".to_string(), format!("--journal={}", dir.join("warm.jsonl").display())],
    );
    let mut ctl = connect(&addr);
    let reply = roundtrip(&mut ctl, &submit_line("warmup", None));
    assert!(reply.contains("\"accepted\":8"), "warmup submit failed: {reply}");
    let status = roundtrip(&mut ctl, "{\"cmd\":\"drain\"}");
    assert!(status.contains("\"completed\":8"), "warmup incomplete: {status}");
    warm.wait().expect("warm daemon exits");

    // Phase 2: same cache, fresh journal. Kill -9 as soon as the journal
    // shows the first completion, leaving accepted-but-unfinished jobs
    // behind. (If the daemon finishes everything before the kill lands,
    // the resume set is empty and the contract below still holds.)
    let (mut victim, addr) = start_daemon(
        &dir,
        "victim",
        &["--workers=1".to_string(), format!("--journal={}", journal.display())],
    );
    let mut ctl = connect(&addr);
    let reply = roundtrip(&mut ctl, &submit_line("dora", None));
    assert!(reply.contains("\"accepted\":8"), "victim submit failed: {reply}");
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let (records, _) = dcl1d::qjournal::read_records(&journal);
        let done = records.iter().filter(|r| r.op == dcl1d::qjournal::QueueOp::Done).count();
        if done >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "victim never completed a job");
        std::thread::sleep(Duration::from_millis(1));
    }
    victim.kill().expect("kill -9 the victim");
    victim.wait().expect("reap the victim");

    let (records, _) = dcl1d::qjournal::read_records(&journal);
    let done_before = records
        .iter()
        .filter(|r| r.op == dcl1d::qjournal::QueueOp::Done)
        .count() as u64;
    assert!(done_before >= 1, "journal lost the completion that triggered the kill");

    // Phase 3: restart with --resume. Exactly the unfinished jobs run
    // again, all served from the warm cache: zero recomputation.
    let (mut revived, addr) = start_daemon(
        &dir,
        "revived",
        &[
            "--workers=2".to_string(),
            format!("--journal={}", journal.display()),
            "--resume".to_string(),
        ],
    );
    let mut ctl = connect(&addr);
    let final_status = roundtrip(&mut ctl, "{\"cmd\":\"drain\"}");
    let doc = Json::parse(&final_status).expect("final status parses");

    let resume = doc
        .get("daemon")
        .and_then(|d| d.get("resume"))
        .expect("resume summary present");
    let pending = resume.get("pending").and_then(Json::as_f64).expect("pending count");
    assert_eq!(
        resume.get("done").and_then(Json::as_f64),
        Some(done_before as f64),
        "resume summary disagrees with the journal:\n{final_status}"
    );

    // Exactly-once: jobs finished before the kill are not re-enqueued,
    // jobs accepted but unfinished all complete now.
    let completed_after = if pending > 0.0 { count(&doc, "dora", "completed") } else { 0 };
    assert_eq!(
        done_before + completed_after,
        8,
        "accepted jobs not completed exactly once:\n{final_status}"
    );

    // No duplicate compute: every resumed job is a cache hit (the cache
    // was fully warmed in phase 1), so the revived process simulated
    // nothing.
    let simulated = doc
        .get("daemon")
        .and_then(|d| d.get("memo"))
        .and_then(|m| m.get("memo.simulated"))
        .and_then(Json::as_f64)
        .expect("memo.simulated counter");
    assert_eq!(simulated, 0.0, "resume recomputed cached work:\n{final_status}");

    revived.wait().expect("revived daemon exits after drain");
    let _ = std::fs::remove_dir_all(&dir);
}
