//! Satellite: queue-journal torn-write recovery.
//!
//! A `kill -9` can cut the queue journal at *any* byte. The daemon must
//! treat every possible truncation the same way: keep the intact prefix,
//! skip the torn record, and accept the lost job again on resubmission —
//! never crash, never double-accept, never resurrect a finished job.

use dcl1d::qjournal::{render_record, replay, QueueOp};
use dcl1d::queue::{JobSpec, Quotas, Verdict};
use dcl1d::scheduler::{Daemon, DaemonConfig};
use std::path::PathBuf;

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dcl1d-torn-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn spec(tenant: &str, app: &str) -> JobSpec {
    JobSpec {
        tenant: tenant.to_string(),
        app: app.to_string(),
        design: "baseline".to_string(),
        priority: 2,
        deadline_secs: None,
        chaos: None,
    }
}

/// Truncate the journal at every byte boundary of its final record and
/// replay each prefix. The intact prefix must always survive, the torn
/// tail must always be skipped, and the pending set must flip from
/// "lost" to "recovered" exactly when the record's last brace is on
/// disk (the trailing newline is not part of the record's integrity).
#[test]
fn replay_recovers_at_every_truncation_boundary() {
    let dir = scratch("boundaries");
    let path = dir.join("queue.jsonl");

    let prefix = format!(
        "{}{}",
        render_record(QueueOp::Accept, 1, &spec("t", "C-BLK").encode()),
        render_record(QueueOp::Done, 1, "completed"),
    );
    let last = render_record(QueueOp::Accept, 2, &spec("t", "C-BFS").encode());

    // The record is recoverable once every field — crucially the
    // crc-guarded payload, whose closing quote is the line's last one —
    // is on disk; the trailing `}` and newline are framing only.
    let intact_from = last.rfind('"').expect("record has a payload quote") + 1;

    for cut in 0..=last.len() {
        std::fs::write(&path, format!("{prefix}{}", &last[..cut])).expect("write journal");
        let plan = replay(&path);

        // The intact prefix always survives, whatever happened to the tail.
        assert_eq!(plan.done, 1, "cut={cut}");
        assert!(plan.accepted >= 1, "cut={cut}");

        if cut >= intact_from {
            // Recovered — and byte-exact, never a mangled spec.
            assert_eq!(plan.torn, 0, "cut={cut}");
            assert_eq!(plan.pending, vec![(2, spec("t", "C-BFS"))], "cut={cut}");
            assert_eq!(plan.next_id, 3, "cut={cut}");
        } else {
            // Torn — skipped entirely, never resurrected in part.
            assert_eq!(plan.torn, usize::from(cut > 0), "cut={cut}");
            assert!(plan.pending.is_empty(), "cut={cut}: torn record must not resurrect");
            assert_eq!(plan.next_id, 2, "cut={cut}");
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// End-to-end over the scheduler: restart on a torn journal, then
/// re-submit the lost job. The daemon must come up cleanly, report the
/// torn line in its resume summary, accept the job again (exactly once),
/// and run it to completion.
#[test]
fn daemon_restarts_on_torn_journal_and_reaccepts() {
    let dir = scratch("daemon");
    // Isolate this process's result cache; the one job this test runs is
    // a single smoke-scale point.
    std::env::set_var("DCL1_CACHE_DIR", dir.join("cache"));
    let path = dir.join("queue.jsonl");

    // Journal: job 1 accepted and finished; job 2's accept torn mid-line.
    let torn = render_record(QueueOp::Accept, 2, &spec("t", "C-BFS").encode());
    std::fs::write(
        &path,
        format!(
            "{}{}{}",
            render_record(QueueOp::Accept, 1, &spec("t", "C-BLK").encode()),
            render_record(QueueOp::Done, 1, "completed"),
            &torn[..torn.len() / 2],
        ),
    )
    .expect("write journal");

    let cfg = DaemonConfig {
        workers: 1,
        scale: dcl1_bench::Scale::Smoke,
        quotas: Quotas::default(),
        journal: Some(path.clone()),
        resume: true,
    };
    let daemon = Daemon::launch(cfg, None).expect("daemon launches on torn journal");

    let status = daemon.status_json(None);
    assert!(status.contains("\"resume\":{\"accepted\":1,\"done\":1,\"cancelled\":0,\"pending\":0,\"torn\":1}"),
        "unexpected resume summary in {status}");

    // Re-submit the lost job: accepted exactly once, under a fresh id
    // that does not collide with any journaled id.
    let verdicts = daemon.submit_jobs(vec![spec("t", "C-BFS")]);
    let [Verdict::Accepted { id }] = verdicts.as_slice() else {
        panic!("expected one accept, got {verdicts:?}");
    };
    assert!(*id >= 2, "fresh id {id} collides with journaled history");

    let final_status = daemon.handle_drain();
    assert!(
        final_status.contains("\"completed\":1"),
        "re-accepted job did not complete: {final_status}"
    );

    // The journal now records the re-accept and its completion: a second
    // restart has nothing left to resume.
    let plan = replay(&path);
    assert!(plan.pending.is_empty(), "resume after clean drain must be empty: {plan:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
