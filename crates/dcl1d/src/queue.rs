//! Multi-tenant job queue: admission control, deterministic priority
//! aging, and graceful shedding under overload.
//!
//! The queue is pure bookkeeping — no I/O, no clocks. Time is a logical
//! tick that advances once per dispatch decision, so aging (and therefore
//! starvation-freedom) is a deterministic function of the request
//! sequence, not of host scheduling. All containers are `BTreeMap`s so
//! every scan and report iterates in one reproducible order.

use std::collections::BTreeMap;

/// Dispatch decisions per one-step priority promotion: a queued job's
/// effective priority improves by one class every `AGING_PERIOD` picks,
/// so even the lowest class reaches top priority after a bounded wait —
/// no tenant starves behind a high-priority flood.
pub const AGING_PERIOD: u64 = 8;

/// Everything needed to (re)run one job — small enough to journal, rich
/// enough to rebuild the simulation request after a restart.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Owning tenant.
    pub tenant: String,
    /// Workload name (`dcl1_workloads::by_name`).
    pub app: String,
    /// Design name (`Design::from_str`; `Design::name()` round-trips).
    pub design: String,
    /// Base priority class: 0 is most urgent. Defaults to 2.
    pub priority: u8,
    /// Per-job wall-clock deadline in seconds, if any.
    pub deadline_secs: Option<u64>,
    /// Tenant-scoped chaos seed, if fault injection was requested.
    pub chaos: Option<u64>,
}

impl JobSpec {
    /// The `APP/DESIGN` point label this job simulates.
    #[must_use]
    pub fn label(&self) -> String {
        format!("{}/{}", self.app, self.design)
    }

    /// Serializes the spec for the queue journal: six newline-separated
    /// fields (`-` marks an unset option). The journal hex-encodes the
    /// payload, so embedded newlines are safe.
    #[must_use]
    pub fn encode(&self) -> String {
        format!(
            "{}\n{}\n{}\n{}\n{}\n{}",
            self.tenant,
            self.app,
            self.design,
            self.priority,
            self.deadline_secs.map_or_else(|| "-".to_string(), |d| d.to_string()),
            self.chaos.map_or_else(|| "-".to_string(), |c| c.to_string()),
        )
    }

    /// Parses [`JobSpec::encode`] output; `None` on any malformed field.
    #[must_use]
    pub fn decode(text: &str) -> Option<JobSpec> {
        let mut it = text.split('\n');
        let tenant = it.next()?.to_string();
        let app = it.next()?.to_string();
        let design = it.next()?.to_string();
        let priority = it.next()?.parse().ok()?;
        let opt = |f: &str| -> Option<Option<u64>> {
            if f == "-" {
                Some(None)
            } else {
                f.parse().ok().map(Some)
            }
        };
        let deadline_secs = opt(it.next()?)?;
        let chaos = opt(it.next()?)?;
        if it.next().is_some() || tenant.is_empty() || app.is_empty() || design.is_empty() {
            return None;
        }
        Some(JobSpec { tenant, app, design, priority, deadline_secs, chaos })
    }
}

/// One accepted, not-yet-dispatched job.
#[derive(Debug, Clone)]
pub struct Job {
    /// Daemon-wide id, also the journal key. Monotonic, never reused.
    pub id: u64,
    /// The job spec.
    pub spec: JobSpec,
    /// Logical tick at which the job entered the queue (for aging).
    pub enqueue_tick: u64,
}

impl Job {
    /// Effective priority after aging at logical time `tick`: the base
    /// class improves (numerically drops) one step per [`AGING_PERIOD`]
    /// dispatch decisions spent waiting.
    #[must_use]
    pub fn effective_priority(&self, tick: u64) -> u8 {
        let waited = tick.saturating_sub(self.enqueue_tick) / AGING_PERIOD;
        self.spec.priority.saturating_sub(u8::try_from(waited.min(255)).unwrap_or(255))
    }
}

/// Admission quotas. The global cap bounds daemon memory; the per-tenant
/// caps stop one tenant from monopolizing the queue or the worker pool.
#[derive(Debug, Clone, Copy)]
pub struct Quotas {
    /// Total queued jobs across every tenant.
    pub max_queued: usize,
    /// Queued jobs per tenant.
    pub tenant_queued: usize,
    /// Concurrently running jobs per tenant.
    pub tenant_inflight: usize,
}

impl Default for Quotas {
    fn default() -> Quotas {
        Quotas { max_queued: 1024, tenant_queued: 512, tenant_inflight: 2 }
    }
}

/// Outcome of offering one job to the queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Verdict {
    /// Admitted under quota.
    Accepted {
        /// The new job's id.
        id: u64,
    },
    /// Admitted by shedding a lower-priority queued job (overload path).
    Shed {
        /// The new job's id.
        id: u64,
        /// The job evicted to make room.
        shed_id: u64,
        /// The evicted job's tenant (for accounting and events).
        shed_tenant: String,
    },
    /// Refused; the client should retry after the hint.
    Rejected {
        /// Deterministic backpressure hint, derived from queue depth.
        retry_after_ms: u64,
        /// Which quota refused the job.
        reason: String,
    },
}

/// Deterministic backpressure hint: deeper queue, longer suggested wait.
/// Pure function of depth — no wall clock anywhere near the daemon core.
#[must_use]
pub fn backpressure_retry_ms(depth: usize) -> u64 {
    100 + 25 * (depth as u64).min(4000)
}

/// The queue proper. Jobs are keyed by id (insertion order); picking
/// scans for the best `(effective_priority, id)` pair, which is O(n) but
/// deterministic and cheap at the quota-bounded sizes involved.
#[derive(Debug, Default)]
pub struct JobQueue {
    jobs: BTreeMap<u64, Job>,
    queued_by_tenant: BTreeMap<String, usize>,
    next_id: u64,
    clock: u64,
}

impl JobQueue {
    /// An empty queue; ids start at 1.
    #[must_use]
    pub fn fresh() -> JobQueue {
        JobQueue { next_id: 1, ..JobQueue::default() }
    }

    /// Total queued jobs.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.jobs.len()
    }

    /// Queued jobs owned by `tenant`.
    #[must_use]
    pub fn tenant_depth(&self, tenant: &str) -> usize {
        self.queued_by_tenant.get(tenant).copied().unwrap_or(0)
    }

    /// The current logical tick (advances once per successful pick).
    #[must_use]
    pub fn logical_now(&self) -> u64 {
        self.clock
    }

    /// Offers one job. Per-tenant quota violations always reject; when
    /// only the global cap is hit, a strictly lower-priority queued job
    /// is shed to make room (graceful degradation: the queue sheds the
    /// least important work first, and never grows without bound).
    pub fn offer(&mut self, spec: JobSpec, quotas: &Quotas) -> Verdict {
        if self.tenant_depth(&spec.tenant) >= quotas.tenant_queued {
            return Verdict::Rejected {
                retry_after_ms: backpressure_retry_ms(self.depth()),
                reason: format!("tenant {} queue quota ({})", spec.tenant, quotas.tenant_queued),
            };
        }
        if self.depth() >= quotas.max_queued {
            // Overload: shed the worst queued job only if the incoming
            // one genuinely outranks it.
            let victim = self
                .jobs
                .values()
                .max_by_key(|j| (j.effective_priority(self.clock), j.id))
                .map(|j| (j.id, j.effective_priority(self.clock), j.spec.tenant.clone()));
            match victim {
                Some((vid, vprio, vtenant)) if spec.priority < vprio => {
                    self.unlink(vid);
                    let id = self.link(spec);
                    return Verdict::Shed { id, shed_id: vid, shed_tenant: vtenant };
                }
                _ => {
                    return Verdict::Rejected {
                        retry_after_ms: backpressure_retry_ms(self.depth()),
                        reason: format!("queue full ({})", quotas.max_queued),
                    }
                }
            }
        }
        let id = self.link(spec);
        Verdict::Accepted { id }
    }

    /// Advances the id allocator past every id the journal has ever
    /// issued, so fresh accepts never collide with journaled history —
    /// even when the replayed jobs all finished before the crash.
    pub fn reserve_ids(&mut self, next_id: u64) {
        self.next_id = self.next_id.max(next_id);
    }

    /// Re-enqueues a journal-recovered job under its *original* id, so a
    /// restart resumes exactly the accepted set (ids stay stable across
    /// the crash and `next_id` never collides with a replayed id).
    pub fn restore(&mut self, id: u64, spec: JobSpec) {
        self.next_id = self.next_id.max(id + 1);
        *self.queued_by_tenant.entry(spec.tenant.clone()).or_default() += 1;
        self.jobs.insert(id, Job { id, spec, enqueue_tick: self.clock });
    }

    /// Dispatches the best runnable job: minimal `(effective_priority,
    /// id)` among jobs whose tenant `may_run` (inflight quota not
    /// exhausted). Advances the logical clock on success.
    pub fn take_next_job(&mut self, may_run: impl Fn(&str) -> bool) -> Option<Job> {
        let best = self
            .jobs
            .values()
            .filter(|j| may_run(&j.spec.tenant))
            .min_by_key(|j| (j.effective_priority(self.clock), j.id))
            .map(|j| j.id)?;
        self.clock += 1;
        self.unlink(best)
    }

    /// Removes `job` (or every queued job) belonging to `tenant`,
    /// returning the withdrawn jobs in id order.
    pub fn withdraw(&mut self, tenant: &str, job: Option<u64>) -> Vec<Job> {
        let victims: Vec<u64> = self
            .jobs
            .values()
            .filter(|j| j.spec.tenant == tenant && job.is_none_or(|id| j.id == id))
            .map(|j| j.id)
            .collect();
        victims.into_iter().filter_map(|id| self.unlink(id)).collect()
    }

    fn link(&mut self, spec: JobSpec) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        *self.queued_by_tenant.entry(spec.tenant.clone()).or_default() += 1;
        self.jobs.insert(id, Job { id, spec, enqueue_tick: self.clock });
        id
    }

    fn unlink(&mut self, id: u64) -> Option<Job> {
        let job = self.jobs.remove(&id)?;
        if let Some(n) = self.queued_by_tenant.get_mut(&job.spec.tenant) {
            *n = n.saturating_sub(1);
        }
        Some(job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(tenant: &str, prio: u8) -> JobSpec {
        JobSpec {
            tenant: tenant.to_string(),
            app: "C-BLK".to_string(),
            design: "Pr4".to_string(),
            priority: prio,
            deadline_secs: None,
            chaos: None,
        }
    }

    #[test]
    fn spec_encode_round_trips() {
        let s = JobSpec {
            tenant: "team-a".into(),
            app: "T-AlexNet".into(),
            design: "Sh20+C10+Boost".into(),
            priority: 1,
            deadline_secs: Some(30),
            chaos: Some(7),
        };
        assert_eq!(JobSpec::decode(&s.encode()), Some(s.clone()));
        let bare = spec("b", 2);
        assert_eq!(JobSpec::decode(&bare.encode()), Some(bare));
        assert_eq!(JobSpec::decode("only\ntwo"), None);
    }

    #[test]
    fn per_tenant_quota_rejects_before_global() {
        let mut q = JobQueue::fresh();
        let quotas = Quotas { max_queued: 100, tenant_queued: 2, tenant_inflight: 1 };
        assert!(matches!(q.offer(spec("a", 2), &quotas), Verdict::Accepted { .. }));
        assert!(matches!(q.offer(spec("a", 2), &quotas), Verdict::Accepted { .. }));
        let v = q.offer(spec("a", 0), &quotas);
        let Verdict::Rejected { retry_after_ms, reason } = v else {
            panic!("expected rejection, got {v:?}");
        };
        assert!(reason.contains("tenant a"), "{reason}");
        assert_eq!(retry_after_ms, backpressure_retry_ms(2));
        // Another tenant is unaffected.
        assert!(matches!(q.offer(spec("b", 2), &quotas), Verdict::Accepted { .. }));
    }

    #[test]
    fn overload_sheds_lowest_priority_first_and_rejects_equal() {
        let mut q = JobQueue::fresh();
        let quotas = Quotas { max_queued: 2, tenant_queued: 10, tenant_inflight: 1 };
        let Verdict::Accepted { id: low } = q.offer(spec("a", 3), &quotas) else { panic!() };
        assert!(matches!(q.offer(spec("b", 1), &quotas), Verdict::Accepted { .. }));
        // Equal priority to the worst queued job: reject, don't churn.
        assert!(matches!(q.offer(spec("c", 3), &quotas), Verdict::Rejected { .. }));
        // Strictly better: the lowest-priority job is shed.
        match q.offer(spec("c", 0), &quotas) {
            Verdict::Shed { shed_id, shed_tenant, .. } => {
                assert_eq!(shed_id, low);
                assert_eq!(shed_tenant, "a");
            }
            v => panic!("expected shed, got {v:?}"),
        }
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn aging_prevents_starvation() {
        let mut q = JobQueue::fresh();
        let quotas = Quotas::default();
        let Verdict::Accepted { id: old_low } = q.offer(spec("slow", 3), &quotas) else {
            panic!()
        };
        // A stream of urgent work arrives; after enough dispatches the old
        // low-priority job ages to the front.
        let mut picked_old = None;
        for round in 0..40u64 {
            assert!(matches!(q.offer(spec("fast", 0), &quotas), Verdict::Accepted { .. }));
            let job = q.take_next_job(|_| true).expect("queue not empty");
            if job.id == old_low {
                picked_old = Some(round);
                break;
            }
        }
        let round = picked_old.expect("aged job never dispatched: starvation");
        // Three classes of deficit × AGING_PERIOD picks per class.
        assert!(round <= 3 * AGING_PERIOD + 1, "aged too slowly: round {round}");
    }

    #[test]
    fn pick_respects_inflight_gate_and_orders_by_priority_then_id() {
        let mut q = JobQueue::fresh();
        let quotas = Quotas::default();
        let Verdict::Accepted { id: a1 } = q.offer(spec("a", 1), &quotas) else { panic!() };
        let Verdict::Accepted { id: b0 } = q.offer(spec("b", 0), &quotas) else { panic!() };
        let Verdict::Accepted { id: a0 } = q.offer(spec("a", 0), &quotas) else { panic!() };
        // b is saturated: best among a's jobs is the priority-0 one.
        let j = q.take_next_job(|t| t != "b").expect("job");
        assert_eq!(j.id, a0);
        // Now everyone may run: b's 0 beats a's 1; id breaks the next tie.
        assert_eq!(q.take_next_job(|_| true).expect("job").id, b0);
        assert_eq!(q.take_next_job(|_| true).expect("job").id, a1);
        assert!(q.take_next_job(|_| true).is_none());
    }

    #[test]
    fn withdraw_and_restore_keep_counts_consistent() {
        let mut q = JobQueue::fresh();
        let quotas = Quotas::default();
        q.offer(spec("a", 2), &quotas);
        q.offer(spec("a", 2), &quotas);
        q.offer(spec("b", 2), &quotas);
        assert_eq!(q.withdraw("a", None).len(), 2);
        assert_eq!(q.tenant_depth("a"), 0);
        assert_eq!(q.depth(), 1);

        q.restore(77, spec("c", 1));
        assert_eq!(q.tenant_depth("c"), 1);
        // New ids never collide with a restored id.
        let Verdict::Accepted { id } = q.offer(spec("c", 1), &quotas) else { panic!() };
        assert!(id > 77, "id {id} collides with restored id space");
    }
}
