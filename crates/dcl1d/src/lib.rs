//! `dcl1d` — a fault-isolated, multi-tenant simulation daemon.
//!
//! The robustness primitives the workspace grew for batch sweeps —
//! supervised retry with panic quarantine, cycle-level livelock
//! watchdogs, per-point deadlines, chaos injection, the tiered
//! single-flight result store, and crc-guarded append-only journals —
//! become *service guarantees* here:
//!
//! - **Admission control** ([`queue`]): per-tenant quotas on queued and
//!   in-flight work, deterministic priority aging so no tenant starves,
//!   bounded queues with explicit `retry_after_ms` backpressure, and
//!   shed-lowest-priority-first degradation under overload.
//! - **Fault isolation** ([`scheduler`]): every job runs under the full
//!   supervision stack with its tenant's chaos seed and deadline armed
//!   as thread-scoped overrides — one tenant's persistently-crashing
//!   point is quarantined without touching the worker pool or any other
//!   tenant's results.
//! - **Crash-safe queueing** ([`qjournal`]): accepts are journaled
//!   before acknowledgement; `kill -9` the daemon and a `--resume`
//!   restart re-enqueues exactly the unfinished set, served from the
//!   result-store tiers instead of recomputed.
//! - **Observability** ([`server`]): `status` always answers;
//!   `subscribe` streams the runner's JSONL progress events with
//!   per-tenant attribution, and per-tenant counter registries ride the
//!   same snapshot machinery as the sweep metrics.
//!
//! The wire protocol ([`proto`]) is line-delimited JSON over TCP — see
//! the README's "Running `dcl1d`" section for the command reference.

pub mod proto;
pub mod qjournal;
pub mod queue;
pub mod scheduler;
pub mod server;
