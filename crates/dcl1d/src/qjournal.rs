//! Crash-safe queue journal: the daemon's exactly-once accept log.
//!
//! Every queue state transition is appended as one crc-guarded JSON line
//! *before* the daemon acknowledges it to the client, so a `kill -9` at
//! any instant loses at most a record the client never saw accepted.
//! Replay reconstructs the accepted-but-unfinished job set: `accept`
//! minus `done` minus `cancel`, keyed by job id. Completed jobs are never
//! re-run (their results live in the result-store tiers and the sweep
//! checkpoint journal); pending jobs are re-enqueued under their original
//! ids, and re-running them hits the disk cache rather than recomputing.
//!
//! Line shape (same framing discipline as `dcl1_common::journal`, with an
//! `op` discriminator instead of a memo key):
//!
//! ```json
//! {"v":1,"op":"accept","id":7,"crc":"<16 hex>","payload":"<hex>"}
//! ```

use crate::queue::JobSpec;
use dcl1_common::checksum;
use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// A queue state transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueOp {
    /// Job admitted; payload is the encoded [`JobSpec`].
    Accept,
    /// Job finished (completed or quarantined); payload is the outcome.
    Done,
    /// Job withdrawn by its tenant before running; payload is empty.
    Cancel,
}

impl QueueOp {
    fn tag(self) -> &'static str {
        match self {
            QueueOp::Accept => "accept",
            QueueOp::Done => "done",
            QueueOp::Cancel => "cancel",
        }
    }

    fn from_tag(tag: &str) -> Option<QueueOp> {
        match tag {
            "accept" => Some(QueueOp::Accept),
            "done" => Some(QueueOp::Done),
            "cancel" => Some(QueueOp::Cancel),
            _ => None,
        }
    }
}

/// One intact journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueRecord {
    /// The transition.
    pub op: QueueOp,
    /// The job id the transition applies to.
    pub id: u64,
    /// Op-specific payload (spec encoding, outcome tag, or empty).
    pub payload: String,
}

/// Appends queue transitions, flushing each line so an acknowledged
/// accept survives any subsequent crash.
#[derive(Debug)]
pub struct QueueJournal {
    file: File,
}

impl QueueJournal {
    /// Opens `path` for appending, creating it if absent.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the file cannot be opened.
    pub fn open_append(path: &Path) -> io::Result<QueueJournal> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(QueueJournal { file })
    }

    /// Appends one record and flushes it to the OS.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error on a failed write.
    pub fn append_record(&mut self, op: QueueOp, id: u64, payload: &str) -> io::Result<()> {
        let line = render_record(op, id, payload);
        self.file.write_all(line.as_bytes())?;
        self.file.flush()
    }
}

/// Renders one journal line (exposed for tests and tooling).
#[must_use]
pub fn render_record(op: QueueOp, id: u64, payload: &str) -> String {
    let crc = checksum::fnv64_hex(payload.as_bytes());
    let hex = hex_encode(payload.as_bytes());
    format!("{{\"v\":1,\"op\":\"{}\",\"id\":{id},\"crc\":\"{crc}\",\"payload\":\"{hex}\"}}\n", op.tag())
}

/// Parses one line; `None` when the line is malformed, unversioned, has
/// an unknown op, or fails its checksum.
#[must_use]
pub fn parse_record(line: &str) -> Option<QueueRecord> {
    if field(line, "v")? != "1" {
        return None;
    }
    let op = QueueOp::from_tag(&field(line, "op")?)?;
    let id = field(line, "id")?.parse().ok()?;
    let crc = field(line, "crc")?;
    let payload_bytes = hex_decode(&field(line, "payload")?)?;
    if !checksum::verify_hex(&payload_bytes, &crc) {
        return None;
    }
    let payload = String::from_utf8(payload_bytes).ok()?;
    Some(QueueRecord { op, id, payload })
}

/// Reads every intact record from `path`, skipping torn or corrupt lines.
/// Returns the records plus the number of lines skipped; a missing file
/// is an empty journal, not an error.
#[must_use]
pub fn read_records(path: &Path) -> (Vec<QueueRecord>, usize) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return (Vec::new(), 0);
    };
    let mut out = Vec::new();
    let mut skipped = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_record(line) {
            Some(r) => out.push(r),
            None => skipped += 1,
        }
    }
    (out, skipped)
}

/// The queue state a journal replay reconstructs.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ResumePlan {
    /// Accepted jobs with no matching `done`/`cancel`, in id order, ready
    /// to re-enqueue under their original ids.
    pub pending: Vec<(u64, JobSpec)>,
    /// Accepted records seen (intact lines only).
    pub accepted: usize,
    /// Jobs that finished before the crash — never re-run.
    pub done: usize,
    /// Jobs cancelled before the crash.
    pub cancelled: usize,
    /// Torn or corrupt lines skipped during replay.
    pub torn: usize,
    /// One past the highest job id seen, so fresh ids never collide.
    pub next_id: u64,
}

/// Replays the journal at `path` into a [`ResumePlan`]. `accept` records
/// whose payload fails to decode as a [`JobSpec`] count as torn — they
/// cannot be re-run, and counting them keeps the skip visible.
#[must_use]
pub fn replay(path: &Path) -> ResumePlan {
    let (records, skipped) = read_records(path);
    let mut plan = ResumePlan { torn: skipped, next_id: 1, ..ResumePlan::default() };
    let mut open: BTreeMap<u64, JobSpec> = BTreeMap::new();
    for rec in records {
        plan.next_id = plan.next_id.max(rec.id + 1);
        match rec.op {
            QueueOp::Accept => match JobSpec::decode(&rec.payload) {
                Some(spec) => {
                    plan.accepted += 1;
                    open.insert(rec.id, spec);
                }
                None => plan.torn += 1,
            },
            QueueOp::Done => {
                plan.done += 1;
                open.remove(&rec.id);
            }
            QueueOp::Cancel => {
                plan.cancelled += 1;
                open.remove(&rec.id);
            }
        }
    }
    plan.pending = open.into_iter().collect();
    plan
}

// `dcl1_common::journal` keeps its hex helpers private (deliberately —
// each journal format owns its full framing), so this module carries its
// own pair.

fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit(u32::from(b >> 4), 16).unwrap_or('0'));
        s.push(char::from_digit(u32::from(b & 0xf), 16).unwrap_or('0'));
    }
    s
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    for pair in s.as_bytes().chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        #[expect(clippy::cast_possible_truncation)] // two hex digits fit u8
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

/// Extracts the value of `"name":...` from a flat JSON object of
/// string/number fields; sufficient for this module's own format.
fn field(line: &str, name: &str) -> Option<String> {
    let tag = format!("\"{name}\":");
    let at = line.find(&tag)? + tag.len();
    let rest = &line[at..];
    if let Some(s) = rest.strip_prefix('"') {
        Some(s[..s.find('"')?].to_string())
    } else {
        let end = rest.find([',', '}'])?;
        Some(rest[..end].trim().to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(tenant: &str) -> JobSpec {
        JobSpec {
            tenant: tenant.to_string(),
            app: "C-BLK".to_string(),
            design: "baseline".to_string(),
            priority: 2,
            deadline_secs: None,
            chaos: None,
        }
    }

    fn scratch(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("dcl1d-qj-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn record_round_trips_all_ops() {
        for (op, payload) in [
            (QueueOp::Accept, spec("a").encode()),
            (QueueOp::Done, "completed".to_string()),
            (QueueOp::Cancel, String::new()),
        ] {
            let line = render_record(op, 42, &payload);
            let rec = parse_record(line.trim_end()).expect("intact line parses");
            assert_eq!(rec, QueueRecord { op, id: 42, payload: payload.clone() });
        }
        assert!(parse_record("{\"v\":2,\"op\":\"accept\",\"id\":1,\"crc\":\"0\",\"payload\":\"\"}")
            .is_none());
        assert!(parse_record("{\"v\":1,\"op\":\"defer\",\"id\":1,\"crc\":\"0\",\"payload\":\"\"}")
            .is_none());
    }

    #[test]
    fn replay_reconstructs_pending_set() {
        let dir = scratch("replay");
        let path = dir.join("queue.jsonl");
        let _ = std::fs::remove_file(&path);
        let mut j = QueueJournal::open_append(&path).unwrap();
        j.append_record(QueueOp::Accept, 1, &spec("a").encode()).unwrap();
        j.append_record(QueueOp::Accept, 2, &spec("b").encode()).unwrap();
        j.append_record(QueueOp::Accept, 3, &spec("a").encode()).unwrap();
        j.append_record(QueueOp::Done, 1, "completed").unwrap();
        j.append_record(QueueOp::Cancel, 3, "").unwrap();
        drop(j);

        let plan = replay(&path);
        assert_eq!(plan.accepted, 3);
        assert_eq!(plan.done, 1);
        assert_eq!(plan.cancelled, 1);
        assert_eq!(plan.torn, 0);
        assert_eq!(plan.next_id, 4);
        assert_eq!(plan.pending, vec![(2, spec("b"))]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_skipped_not_fatal() {
        let dir = scratch("torn");
        let path = dir.join("queue.jsonl");
        let good = format!(
            "{}{}",
            render_record(QueueOp::Accept, 1, &spec("a").encode()),
            render_record(QueueOp::Done, 1, "completed"),
        );
        let torn = render_record(QueueOp::Accept, 2, &spec("b").encode());
        std::fs::write(&path, format!("{good}{}", &torn[..torn.len() - 7])).unwrap();

        let plan = replay(&path);
        assert_eq!(plan.torn, 1);
        assert!(plan.pending.is_empty());
        assert_eq!(plan.done, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_journal_is_empty_plan() {
        let plan = replay(Path::new("/nonexistent/queue.jsonl"));
        assert_eq!(plan, ResumePlan { next_id: 1, ..ResumePlan::default() });
    }
}
