//! The line-delimited JSON wire protocol.
//!
//! One request per line, one reply per line. Five commands:
//!
//! | cmd         | fields                                                        |
//! |-------------|---------------------------------------------------------------|
//! | `submit`    | `tenant`, and `grid`/`only`/`designs` or explicit `points`;   |
//! |             | optional `priority`, `deadline_secs`, `chaos`                 |
//! | `status`    | optional `tenant` filter                                      |
//! | `cancel`    | `tenant`, optional `job` id                                   |
//! | `subscribe` | — (the connection becomes a progress-event stream)            |
//! | `drain`     | — (finish queued work, refuse new work, then shut down)       |
//!
//! Parsing rides the workspace's own JSON reader (`dcl1_obs::json`);
//! malformed requests produce an error reply, never a dropped
//! connection.

use crate::queue::JobSpec;
use dcl1::GpuConfig;
use dcl1::SimOptions;
use dcl1_bench::grid;
use dcl1_obs::json::Json;
use dcl1_workloads::by_name;

/// A submit command, before expansion into concrete jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct Submit {
    /// Owning tenant (required, non-empty).
    pub tenant: String,
    /// Base priority class, 0 most urgent. Defaults to 2.
    pub priority: u8,
    /// Submit the full default sweep grid.
    pub grid: bool,
    /// Label substring filters applied to the grid.
    pub only: Vec<String>,
    /// Design names for the grid (empty → the default four).
    pub designs: Vec<String>,
    /// Explicit `(app, design)` points, alternative to `grid`.
    pub points: Vec<(String, String)>,
    /// Per-job deadline in seconds.
    pub deadline_secs: Option<u64>,
    /// Tenant-scoped chaos seed.
    pub chaos: Option<u64>,
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Enqueue jobs.
    Submit(Submit),
    /// Report daemon and tenant state.
    Status {
        /// Restrict the reply to one tenant.
        tenant: Option<String>,
    },
    /// Withdraw queued jobs.
    Cancel {
        /// Whose jobs to withdraw.
        tenant: String,
        /// A specific job id, or every queued job when `None`.
        job: Option<u64>,
    },
    /// Turn this connection into a progress-event stream.
    Subscribe,
    /// Drain the queue and shut down.
    Drain,
}

fn str_field(doc: &Json, key: &str) -> Option<String> {
    doc.get(key).and_then(Json::as_str).map(String::from)
}

fn u64_field(doc: &Json, key: &str) -> Option<u64> {
    let v = doc.get(key)?.as_f64()?;
    if v.is_finite() && v >= 0.0 {
        #[expect(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        // checked non-negative; ids and seconds are far below 2^53
        Some(v as u64)
    } else {
        None
    }
}

fn str_list(doc: &Json, key: &str) -> Vec<String> {
    doc.get(key)
        .and_then(Json::as_arr)
        .map(|a| a.iter().filter_map(Json::as_str).map(String::from).collect())
        .unwrap_or_default()
}

/// Parses one request line.
///
/// # Errors
///
/// Returns a human-readable message for malformed JSON, a missing or
/// unknown `cmd`, or missing required fields.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let doc = Json::parse(line).map_err(|e| format!("bad json: {e}"))?;
    let cmd = str_field(&doc, "cmd").ok_or("missing cmd")?;
    match cmd.as_str() {
        "submit" => {
            let tenant = str_field(&doc, "tenant").filter(|t| !t.is_empty());
            let tenant = tenant.ok_or("submit requires a non-empty tenant")?;
            let grid = matches!(doc.get("grid"), Some(Json::Bool(true)));
            let points = doc
                .get("points")
                .and_then(Json::as_arr)
                .map(|arr| {
                    arr.iter()
                        .filter_map(|p| {
                            let app = p.get("app").and_then(Json::as_str)?;
                            let design = p.get("design").and_then(Json::as_str)?;
                            Some((app.to_string(), design.to_string()))
                        })
                        .collect()
                })
                .unwrap_or_default();
            let priority =
                u8::try_from(u64_field(&doc, "priority").unwrap_or(2).min(255)).unwrap_or(255);
            Ok(Request::Submit(Submit {
                tenant,
                priority,
                grid,
                only: str_list(&doc, "only"),
                designs: str_list(&doc, "designs"),
                points,
                deadline_secs: u64_field(&doc, "deadline_secs"),
                chaos: u64_field(&doc, "chaos"),
            }))
        }
        "status" => Ok(Request::Status { tenant: str_field(&doc, "tenant") }),
        "cancel" => {
            let tenant = str_field(&doc, "tenant").ok_or("cancel requires a tenant")?;
            Ok(Request::Cancel { tenant, job: u64_field(&doc, "job") })
        }
        "subscribe" => Ok(Request::Subscribe),
        "drain" => Ok(Request::Drain),
        other => Err(format!("unknown cmd {other:?}")),
    }
}

/// Expands a submit into concrete job specs, validating every workload
/// and design name up front so a bad point is refused at the door
/// instead of quarantining later.
///
/// # Errors
///
/// Returns a message naming the first unknown workload or design, or
/// complaining when the submit names no work at all.
pub fn expand_submit(sub: &Submit) -> Result<Vec<JobSpec>, String> {
    let mut specs = Vec::new();
    let job = |app: &str, design: &str| JobSpec {
        tenant: sub.tenant.clone(),
        app: app.to_string(),
        design: design.to_string(),
        priority: sub.priority,
        deadline_secs: sub.deadline_secs,
        chaos: sub.chaos,
    };
    if sub.grid {
        let cfg = GpuConfig::default();
        let designs = grid::parse_designs(&sub.designs, &cfg)?;
        for req in grid::build_grid(&designs, &sub.only, &cfg, SimOptions::default()) {
            specs.push(job(req.app.name, &req.design.name()));
        }
    }
    for (app, design) in &sub.points {
        if by_name(app).is_none() {
            return Err(format!("unknown workload {app:?}"));
        }
        if design.parse::<dcl1::Design>().is_err() {
            return Err(format!("unknown design {design:?}"));
        }
        specs.push(job(app, design));
    }
    if specs.is_empty() {
        return Err("submit names no jobs (set grid:true or points:[...])".to_string());
    }
    Ok(specs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcl1_workloads::all_apps;

    #[test]
    fn parses_each_command() {
        let r = parse_request(
            "{\"cmd\":\"submit\",\"tenant\":\"a\",\"grid\":true,\"only\":[\"C-BLK\"],\
             \"priority\":1,\"deadline_secs\":30,\"chaos\":7}",
        )
        .expect("submit parses");
        let Request::Submit(s) = r else { panic!("not a submit") };
        assert_eq!(s.tenant, "a");
        assert!(s.grid);
        assert_eq!(s.only, vec!["C-BLK"]);
        assert_eq!(s.priority, 1);
        assert_eq!(s.deadline_secs, Some(30));
        assert_eq!(s.chaos, Some(7));

        assert_eq!(
            parse_request("{\"cmd\":\"status\",\"tenant\":\"b\"}"),
            Ok(Request::Status { tenant: Some("b".to_string()) })
        );
        assert_eq!(
            parse_request("{\"cmd\":\"cancel\",\"tenant\":\"b\",\"job\":9}"),
            Ok(Request::Cancel { tenant: "b".to_string(), job: Some(9) })
        );
        assert_eq!(parse_request("{\"cmd\":\"subscribe\"}"), Ok(Request::Subscribe));
        assert_eq!(parse_request("{\"cmd\":\"drain\"}"), Ok(Request::Drain));
    }

    #[test]
    fn rejects_malformed_requests() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"cmd\":\"fly\"}").is_err());
        assert!(parse_request("{\"cmd\":\"submit\"}").is_err(), "tenant required");
        assert!(parse_request("{\"cmd\":\"submit\",\"tenant\":\"\"}").is_err());
        assert!(parse_request("{\"cmd\":\"cancel\"}").is_err());
    }

    fn bare_submit(tenant: &str) -> Submit {
        Submit {
            tenant: tenant.to_string(),
            priority: 2,
            grid: false,
            only: Vec::new(),
            designs: Vec::new(),
            points: Vec::new(),
            deadline_secs: None,
            chaos: None,
        }
    }

    #[test]
    fn grid_submit_expands_to_the_full_sweep() {
        let sub = Submit { grid: true, ..bare_submit("a") };
        let specs = expand_submit(&sub).expect("grid expands");
        assert_eq!(specs.len(), all_apps().len() * 4);
        assert!(specs.iter().all(|s| s.tenant == "a"));
        // Design names written into specs must round-trip back to designs.
        for s in &specs {
            assert!(s.design.parse::<dcl1::Design>().is_ok(), "bad name {:?}", s.design);
        }
    }

    #[test]
    fn explicit_points_are_validated_at_the_door() {
        let mut sub = bare_submit("a");
        sub.points = vec![("C-BLK".to_string(), "pr4".to_string())];
        assert_eq!(expand_submit(&sub).expect("valid point").len(), 1);

        sub.points = vec![("NO-SUCH-APP".to_string(), "pr4".to_string())];
        assert!(expand_submit(&sub).is_err());
        sub.points = vec![("C-BLK".to_string(), "warp-drive".to_string())];
        assert!(expand_submit(&sub).is_err());
        assert!(expand_submit(&bare_submit("a")).is_err(), "no work named");
    }
}
