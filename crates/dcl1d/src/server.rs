//! TCP front end: line-delimited JSON over per-connection threads.
//!
//! Each connection gets its own thread; a wedged or malicious client
//! therefore blocks only itself, and the daemon core (behind its own
//! mutex) keeps answering everyone else — `status` stays responsive even
//! under full queue overload. `subscribe` upgrades a connection into a
//! live JSONL progress stream fed by a fan-out writer shared with the
//! sweep runner's progress sink, so point-level runner events and the
//! daemon's own tenant-level job events interleave on one channel.

use crate::proto::{self, Request};
use crate::scheduler::{Daemon, DaemonConfig};
use dcl1_bench::runner;
use dcl1_obs::json::escape;
use dcl1_obs::progress::ProgressSink;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};

/// The shared subscriber list: progress lines fan out to every stream.
type SubscriberList = Arc<Mutex<Vec<TcpStream>>>;

/// An `io::Write` that duplicates every buffer to all live subscribers
/// and silently drops the dead ones. `ProgressSink` writes one complete
/// JSON line per call, so each subscriber sees whole lines.
pub struct FanoutWriter {
    // simcheck: allow(shard_shared_state): subscriber list is connection state, never simulator state
    subs: SubscriberList,
}

impl Write for FanoutWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if let Ok(mut subs) = self.subs.lock() {
            subs.retain_mut(|s| s.write_all(buf).is_ok());
        }
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        if let Ok(mut subs) = self.subs.lock() {
            subs.retain_mut(|s| s.flush().is_ok());
        }
        Ok(())
    }
}

/// A bound, running daemon front end.
pub struct Server {
    listener: TcpListener,
    daemon: Arc<Daemon>,
    // simcheck: allow(shard_shared_state): subscriber list is connection state, never simulator state
    subs: SubscriberList,
}

impl Server {
    /// Builds the full daemon stack: fan-out progress sink (installed as
    /// the sweep runner's sink so point events share the stream), the
    /// scheduler with its worker pool, and the TCP listener.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the address cannot be bound
    /// or the queue journal cannot be opened.
    pub fn launch(addr: &str, cfg: DaemonConfig) -> io::Result<Server> {
        let subs: SubscriberList = Arc::new(Mutex::new(Vec::new()));
        let sink =
            Arc::new(ProgressSink::new(Box::new(FanoutWriter { subs: Arc::clone(&subs) })));
        runner::set_progress_sink(Some(Arc::clone(&sink)));
        let daemon = Daemon::launch(cfg, Some(sink))?;
        let listener = TcpListener::bind(addr)?;
        Ok(Server { listener, daemon, subs })
    }

    /// The bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the socket is gone.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Accepts connections until a `drain` completes. Each connection is
    /// served on its own thread.
    pub fn serve(&self) {
        let addr = self.local_addr().ok();
        for conn in self.listener.incoming() {
            if self.daemon.is_shutdown() {
                break;
            }
            let Ok(stream) = conn else { continue };
            let daemon = Arc::clone(&self.daemon);
            let subs = Arc::clone(&self.subs);
            let _ = std::thread::Builder::new()
                .name("dcl1d-conn".to_string())
                .spawn(move || serve_connection(stream, &daemon, &subs, addr));
        }
    }
}

/// One reply line for an error.
fn error_reply(msg: &str) -> String {
    format!("{{\"ok\":false,\"error\":\"{}\"}}\n", escape(msg))
}

fn handle_request(
    req: Request,
    daemon: &Daemon,
    stream: &TcpStream,
    subs: &SubscriberList,
    addr: Option<SocketAddr>,
) -> Option<String> {
    match req {
        Request::Submit(sub) => Some(match proto::expand_submit(&sub) {
            Ok(specs) => render_verdicts(&daemon.submit_jobs(specs)),
            Err(e) => error_reply(&e),
        }),
        Request::Status { tenant } => {
            let mut line = daemon.status_json(tenant.as_deref());
            line.push('\n');
            Some(line)
        }
        Request::Cancel { tenant, job } => {
            let n = daemon.cancel_tenant(&tenant, job);
            Some(format!("{{\"ok\":true,\"cancelled\":{n}}}\n"))
        }
        Request::Subscribe => {
            if let (Ok(clone), Ok(mut subs)) = (stream.try_clone(), subs.lock()) {
                subs.push(clone);
                Some("{\"ok\":true,\"subscribed\":true}\n".to_string())
            } else {
                Some(error_reply("subscribe failed"))
            }
        }
        Request::Drain => {
            let mut line = daemon.handle_drain();
            line.push('\n');
            // Deliver the summary BEFORE poking the accept loop awake:
            // the poke lets `serve()` observe shutdown and the process
            // exit, which would race the reply onto a dying socket.
            let mut w = stream;
            let _ = w.write_all(line.as_bytes()).and_then(|()| w.flush());
            if let Some(a) = addr {
                let _ = TcpStream::connect(a);
            }
            None
        }
    }
}

fn serve_connection(
    stream: TcpStream,
    daemon: &Daemon,
    subs: &SubscriberList,
    addr: Option<SocketAddr>,
) {
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = &stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        if line.trim().is_empty() {
            continue;
        }
        let reply = match proto::parse_request(line.trim_end()) {
            Ok(req) => handle_request(req, daemon, &stream, subs, addr),
            Err(e) => Some(error_reply(&e)),
        };
        if let Some(reply) = reply {
            if writer.write_all(reply.as_bytes()).is_err() || writer.flush().is_err() {
                return;
            }
        }
    }
}

/// Renders the submit reply: per-batch verdict counts, the accepted job
/// ids, and the largest retry-after hint among any rejections.
fn render_verdicts(verdicts: &[crate::queue::Verdict]) -> String {
    use crate::queue::Verdict;
    let mut ids = Vec::new();
    let (mut shed, mut rejected) = (0usize, 0usize);
    let mut retry_after_ms = 0u64;
    let mut reason = String::new();
    for v in verdicts {
        match v {
            Verdict::Accepted { id } => ids.push(*id),
            Verdict::Shed { id, .. } => {
                ids.push(*id);
                shed += 1;
            }
            Verdict::Rejected { retry_after_ms: r, reason: why } => {
                rejected += 1;
                if *r >= retry_after_ms {
                    retry_after_ms = *r;
                    reason.clone_from(why);
                }
            }
        }
    }
    let mut out = format!(
        "{{\"ok\":true,\"accepted\":{},\"shed\":{shed},\"rejected\":{rejected}",
        ids.len()
    );
    if rejected > 0 {
        out.push_str(&format!(
            ",\"retry_after_ms\":{retry_after_ms},\"reason\":\"{}\"",
            escape(&reason)
        ));
    }
    out.push_str(",\"ids\":[");
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&id.to_string());
    }
    out.push_str("]}\n");
    out
}
