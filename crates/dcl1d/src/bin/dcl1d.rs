//! The `dcl1d` daemon binary.
//!
//! ```text
//! dcl1d [--addr=HOST:PORT] [--port-file=PATH] [--workers=N]
//!       [--journal=PATH] [--resume]
//!       [--max-queued=N] [--tenant-queued=N] [--tenant-inflight=N]
//! ```
//!
//! `--addr=127.0.0.1:0` binds an ephemeral port; `--port-file` writes
//! the bound address for scripts to discover. `--journal` enables the
//! crash-safe queue journal, and `--resume` replays it at startup,
//! re-enqueueing every accepted-but-unfinished job. Scale and cache
//! placement come from the usual `DCL1_SCALE` / `DCL1_CACHE_DIR`
//! environment, read inside the library layers.

use dcl1d::queue::Quotas;
use dcl1d::scheduler::DaemonConfig;
use dcl1d::server::Server;
use std::path::PathBuf;

fn flag_value(args: &[String], name: &str) -> Option<String> {
    let tag = format!("--{name}=");
    args.iter().find_map(|a| a.strip_prefix(&tag)).map(String::from)
}

fn usize_flag(args: &[String], name: &str, default: usize) -> usize {
    flag_value(args, name).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    // simcheck: allow(wall_clock): CLI argument parsing, not sim state
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "dcl1d [--addr=HOST:PORT] [--port-file=PATH] [--workers=N] \
             [--journal=PATH] [--resume] [--max-queued=N] [--tenant-queued=N] \
             [--tenant-inflight=N]"
        );
        return;
    }

    let defaults = Quotas::default();
    let cfg = DaemonConfig {
        workers: usize_flag(&args, "workers", 2).max(1),
        quotas: Quotas {
            max_queued: usize_flag(&args, "max-queued", defaults.max_queued),
            tenant_queued: usize_flag(&args, "tenant-queued", defaults.tenant_queued),
            tenant_inflight: usize_flag(&args, "tenant-inflight", defaults.tenant_inflight).max(1),
        },
        journal: flag_value(&args, "journal").map(PathBuf::from),
        resume: args.iter().any(|a| a == "--resume"),
        ..DaemonConfig::default()
    };

    let addr = flag_value(&args, "addr").unwrap_or_else(|| "127.0.0.1:4411".to_string());
    let server = match Server::launch(&addr, cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dcl1d: failed to launch on {addr}: {e}");
            std::process::exit(1);
        }
    };

    match server.local_addr() {
        Ok(bound) => {
            if let Some(path) = flag_value(&args, "port-file") {
                if let Err(e) = std::fs::write(&path, bound.to_string()) {
                    eprintln!("dcl1d: cannot write port file {path}: {e}");
                    std::process::exit(1);
                }
            }
            eprintln!("dcl1d: listening on {bound}");
        }
        Err(e) => {
            eprintln!("dcl1d: listener lost: {e}");
            std::process::exit(1);
        }
    }

    server.serve();
    eprintln!("dcl1d: drained, shutting down");
}
