//! The daemon core: a worker pool over the multi-tenant job queue.
//!
//! Fault isolation is the organizing principle. Each job runs under the
//! full supervision stack (`dcl1_resilience::supervise` via
//! `runner::run_point_supervised`) *on the worker's own thread*, with the
//! owning tenant's chaos seed and deadline armed as thread-scoped
//! overrides — so one tenant's injected faults, livelocks, or persistent
//! panics are contained to that tenant's jobs and can never leak into
//! another tenant's runs or take a worker down. Workers survive
//! quarantines: a job that exhausts its retry budget is recorded against
//! its tenant and the worker moves on.
//!
//! Every accept is journaled before it is acknowledged, so a `kill -9`
//! resumes exactly the accepted-but-unfinished set on restart; re-run
//! jobs are served from the result-store tiers rather than recomputed.

use crate::qjournal::{self, QueueJournal, QueueOp};
use crate::queue::{JobQueue, JobSpec, Quotas, Verdict};
use dcl1::{Design, GpuConfig, RunStats, SimOptions};
use dcl1_bench::runner::{self, RunRequest};
use dcl1_bench::Scale;
use dcl1_obs::json::escape;
use dcl1_obs::progress::{ProgressEvent, ProgressSink, ProgressStage};
use dcl1_obs::registry::{CounterId, GaugeId, Registry};
use dcl1_resilience::QuarantineRecord;
use dcl1_workloads::by_name;
use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Daemon configuration, fixed at launch.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Simulation scale every job runs at.
    pub scale: Scale,
    /// Admission quotas.
    pub quotas: Quotas,
    /// Queue-journal path; `None` disables crash-safe queueing.
    pub journal: Option<PathBuf>,
    /// Replay the journal at launch and re-enqueue unfinished jobs.
    pub resume: bool,
}

impl Default for DaemonConfig {
    fn default() -> DaemonConfig {
        DaemonConfig {
            workers: 2,
            scale: Scale::from_env(),
            quotas: Quotas::default(),
            journal: None,
            resume: false,
        }
    }
}

/// What a journal replay recovered, surfaced in `status` replies.
#[derive(Debug, Default, Clone)]
pub struct ResumeSummary {
    /// Intact accept records seen.
    pub accepted: usize,
    /// Jobs that had already finished — not re-run.
    pub done: usize,
    /// Jobs cancelled before the crash.
    pub cancelled: usize,
    /// Jobs re-enqueued for execution.
    pub pending: usize,
    /// Torn or corrupt journal lines skipped.
    pub torn: usize,
}

/// Per-tenant counter ids in the tenant's private [`Registry`].
struct TenantCounters {
    completed: CounterId,
    quarantined: CounterId,
    simulated: CounterId,
    mem_hits: CounterId,
    disk_hits: CounterId,
    shared_hits: CounterId,
    shed: CounterId,
    rejected: CounterId,
    cancelled: CounterId,
    resumed: CounterId,
    queued: GaugeId,
    inflight: GaugeId,
}

/// Everything the daemon tracks about one tenant. Registries are
/// per-tenant so counter namespaces cannot bleed across tenants.
struct TenantState {
    registry: Registry,
    ids: TenantCounters,
    completed: Vec<(String, RunStats)>,
    quarantined: Vec<QuarantineRecord>,
    inflight: usize,
}

impl TenantState {
    fn fresh() -> TenantState {
        let mut registry = Registry::new();
        let ids = TenantCounters {
            completed: registry.counter("tenant.completed"),
            quarantined: registry.counter("tenant.quarantined"),
            simulated: registry.counter("tenant.simulated"),
            mem_hits: registry.counter("tenant.mem_hits"),
            disk_hits: registry.counter("tenant.disk_hits"),
            shared_hits: registry.counter("tenant.shared_hits"),
            shed: registry.counter("tenant.shed"),
            rejected: registry.counter("tenant.rejected"),
            cancelled: registry.counter("tenant.cancelled"),
            resumed: registry.counter("tenant.resumed"),
            queued: registry.gauge("tenant.queued"),
            inflight: registry.gauge("tenant.inflight"),
        };
        TenantState { registry, ids, completed: Vec::new(), quarantined: Vec::new(), inflight: 0 }
    }
}

/// Mutable daemon state, guarded by the core mutex.
struct Core {
    queue: JobQueue,
    tenants: BTreeMap<String, TenantState>,
    inflight_total: usize,
    accepted_total: u64,
    draining: bool,
    shutdown: bool,
    journal: Option<QueueJournal>,
    resume: ResumeSummary,
}

impl Core {
    fn tenant_mut(&mut self, name: &str) -> &mut TenantState {
        self.tenants.entry(name.to_string()).or_insert_with(TenantState::fresh)
    }

    fn log(&mut self, op: QueueOp, id: u64, payload: &str) {
        if let Some(j) = &mut self.journal {
            // An unwritable journal must not wedge the queue; the loss is
            // only of crash-resume fidelity, and the daemon keeps serving.
            let _ = j.append_record(op, id, payload);
        }
    }

    fn refresh_gauges(&mut self, tenant: &str) {
        let depth = self.queue.tenant_depth(tenant);
        let state = self.tenant_mut(tenant);
        let (q, f) = (state.ids.queued, state.ids.inflight);
        state.registry.set(q, depth as u64);
        state.registry.set(f, state.inflight as u64);
    }
}

/// The daemon: shared core behind a mutex, plus the two condition
/// variables that sequence dispatch (`work_ready`) and drain
/// (`all_idle`).
pub struct Daemon {
    // simcheck: allow(shard_shared_state): daemon control plane (job queue, tenant accounting), never simulator state
    core: Mutex<Core>,
    work_ready: Condvar,
    all_idle: Condvar,
    cfg: DaemonConfig,
    sink: Option<Arc<ProgressSink>>,
}

impl Daemon {
    /// Builds the daemon, replays the journal when resuming, and spawns
    /// the worker pool (detached threads; they exit on shutdown).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error when the journal cannot be
    /// opened for appending.
    pub fn launch(cfg: DaemonConfig, sink: Option<Arc<ProgressSink>>) -> io::Result<Arc<Daemon>> {
        let mut queue = JobQueue::fresh();
        let mut tenants: BTreeMap<String, TenantState> = BTreeMap::new();
        let mut resume = ResumeSummary::default();

        if let (Some(path), true) = (&cfg.journal, cfg.resume) {
            let plan = qjournal::replay(path);
            resume = ResumeSummary {
                accepted: plan.accepted,
                done: plan.done,
                cancelled: plan.cancelled,
                pending: plan.pending.len(),
                torn: plan.torn,
            };
            queue.reserve_ids(plan.next_id);
            for (id, spec) in plan.pending {
                let state = tenants.entry(spec.tenant.clone()).or_insert_with(TenantState::fresh);
                let resumed = state.ids.resumed;
                state.registry.inc(resumed);
                queue.restore(id, spec);
            }
        }
        let journal = match &cfg.journal {
            Some(path) => Some(QueueJournal::open_append(path)?),
            None => None,
        };

        let core = Core {
            queue,
            tenants,
            inflight_total: 0,
            accepted_total: 0,
            draining: false,
            shutdown: false,
            journal,
            resume,
        };
        let daemon = Arc::new(Daemon {
            core: Mutex::new(core),
            work_ready: Condvar::new(),
            all_idle: Condvar::new(),
            cfg,
            sink,
        });
        for n in 0..daemon.cfg.workers.max(1) {
            let d = Arc::clone(&daemon);
            std::thread::Builder::new()
                .name(format!("dcl1d-worker-{n}"))
                .spawn(move || worker_loop(&d))?;
        }
        Ok(daemon)
    }

    fn lock_core(&self) -> MutexGuard<'_, Core> {
        // Sim panics are contained by `supervise`'s catch_unwind before
        // they can unwind through a lock-holding frame, so poisoning here
        // means a daemon bug, not a tenant fault.
        self.core.lock().expect("daemon core lock poisoned")
    }

    /// Offers a batch of jobs, journaling each accept before it is
    /// acknowledged. Returns one verdict per spec, input order.
    pub fn submit_jobs(&self, specs: Vec<JobSpec>) -> Vec<Verdict> {
        let mut core = self.lock_core();
        let mut verdicts = Vec::with_capacity(specs.len());
        for spec in specs {
            if core.draining || core.shutdown {
                verdicts.push(Verdict::Rejected {
                    retry_after_ms: crate::queue::backpressure_retry_ms(core.queue.depth()),
                    reason: "daemon draining".to_string(),
                });
                continue;
            }
            let tenant = spec.tenant.clone();
            let encoded = spec.encode();
            let verdict = core.queue.offer(spec, &self.cfg.quotas);
            match &verdict {
                Verdict::Accepted { id } => {
                    core.accepted_total += 1;
                    core.log(QueueOp::Accept, *id, &encoded);
                }
                Verdict::Shed { id, shed_id, shed_tenant } => {
                    core.accepted_total += 1;
                    let (shed_id, shed_tenant) = (*shed_id, shed_tenant.clone());
                    core.log(QueueOp::Accept, *id, &encoded);
                    core.log(QueueOp::Cancel, shed_id, "shed");
                    let victim = core.tenant_mut(&shed_tenant);
                    let c = victim.ids.shed;
                    victim.registry.inc(c);
                    core.refresh_gauges(&shed_tenant);
                }
                Verdict::Rejected { .. } => {
                    let state = core.tenant_mut(&tenant);
                    let c = state.ids.rejected;
                    state.registry.inc(c);
                }
            }
            core.refresh_gauges(&tenant);
            verdicts.push(verdict);
        }
        drop(core);
        self.work_ready.notify_all();
        verdicts
    }

    /// Withdraws `job` (or every queued job) belonging to `tenant`.
    /// Returns the number of jobs cancelled. In-flight jobs are not
    /// interrupted — supervision owns them until they resolve.
    pub fn cancel_tenant(&self, tenant: &str, job: Option<u64>) -> usize {
        let mut core = self.lock_core();
        let withdrawn = core.queue.withdraw(tenant, job);
        for j in &withdrawn {
            core.log(QueueOp::Cancel, j.id, "");
        }
        let n = withdrawn.len();
        let state = core.tenant_mut(tenant);
        let c = state.ids.cancelled;
        state.registry.add(c, n as u64);
        core.refresh_gauges(tenant);
        drop(core);
        self.all_idle.notify_all();
        n
    }

    /// Renders a status reply: global queue/drain state, the resume
    /// summary, and a per-tenant block (counters, digest, quarantines) —
    /// optionally filtered to one tenant. Status is a lock acquisition
    /// and some string formatting; it answers even under full overload.
    #[must_use]
    pub fn status_json(&self, tenant: Option<&str>) -> String {
        let core = self.lock_core();
        let mut out = String::from("{\"ok\":true,\"daemon\":{");
        out.push_str(&format!(
            "\"queued\":{},\"inflight\":{},\"accepted_total\":{},\"draining\":{},\"workers\":{}",
            core.queue.depth(),
            core.inflight_total,
            core.accepted_total,
            core.draining,
            self.cfg.workers,
        ));
        let r = &core.resume;
        out.push_str(&format!(
            ",\"resume\":{{\"accepted\":{},\"done\":{},\"cancelled\":{},\"pending\":{},\"torn\":{}}}",
            r.accepted, r.done, r.cancelled, r.pending, r.torn
        ));
        out.push_str(",\"memo\":");
        runner::sweep_registry_snapshot().render_json_object_into(&mut out);
        out.push_str("},\"tenants\":{");
        let mut first = true;
        for (name, state) in &core.tenants {
            if tenant.is_some_and(|t| t != name) {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":{{", escape(name)));
            out.push_str(&format!(
                "\"queued\":{},\"inflight\":{},\"completed\":{},\"quarantined\":[",
                core.queue.tenant_depth(name),
                state.inflight,
                state.completed.len(),
            ));
            for (i, q) in state.quarantined.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"point\":\"{}\",\"class\":\"{}\",\"attempts\":{}}}",
                    escape(&q.point),
                    escape(&q.class),
                    q.attempts
                ));
            }
            out.push_str(&format!(
                "],\"digest\":\"{}\",\"counters\":",
                runner::stats_digest(&state.completed)
            ));
            state.registry.render_json_object_into(&mut out);
            out.push('}');
        }
        out.push_str("}}");
        out
    }

    /// Blocks until the queue is empty and no job is in flight, then
    /// shuts the worker pool down. Returns the final status reply.
    /// Submissions arriving during the drain are rejected with a
    /// retry-after hint.
    pub fn handle_drain(&self) -> String {
        {
            let mut core = self.lock_core();
            core.draining = true;
            while core.queue.depth() > 0 || core.inflight_total > 0 {
                core = self.all_idle.wait(core).expect("daemon core lock poisoned");
            }
            core.shutdown = true;
        }
        self.work_ready.notify_all();
        self.status_json(None)
    }

    /// True once drain has completed and workers are exiting.
    #[must_use]
    pub fn is_shutdown(&self) -> bool {
        self.lock_core().shutdown
    }

    fn emit(&self, ev: &ProgressEvent<'_>) {
        if let Some(sink) = &self.sink {
            sink.emit(ev);
        }
    }
}

/// Builds the simulation request for a job spec. Failure here (a spec
/// replayed from an old journal naming a workload or design this build
/// no longer has) quarantines the job with class `config` instead of
/// killing the worker.
fn build_request(spec: &JobSpec) -> Result<RunRequest, QuarantineRecord> {
    let bad = |what: &str| QuarantineRecord {
        point: spec.label(),
        attempts: 0,
        class: "config".to_string(),
        error: format!("unknown {what}"),
    };
    let app = by_name(&spec.app).ok_or_else(|| bad("workload"))?;
    let design: Design = spec.design.parse().map_err(|_| bad("design"))?;
    // Match `perf_sweep`'s defaults exactly: the memo key covers config
    // and options, so any divergence would fork the cache namespace and
    // the isolation proof's digest comparison.
    let opts = SimOptions { fast_forward: true, ..SimOptions::default() };
    Ok(RunRequest { app, design, cfg: GpuConfig::default(), opts })
}

/// One worker: pick → arm tenant fault scope → run supervised → record.
fn worker_loop(daemon: &Daemon) {
    loop {
        let job = {
            let mut core = daemon.lock_core();
            loop {
                if core.shutdown {
                    return;
                }
                let c = &mut *core;
                let (queue, tenants) = (&mut c.queue, &c.tenants);
                let cap = daemon.cfg.quotas.tenant_inflight;
                let pick = queue
                    .take_next_job(|t| tenants.get(t).map_or(0, |s| s.inflight) < cap);
                if let Some(job) = pick {
                    core.inflight_total += 1;
                    let state = core.tenant_mut(&job.spec.tenant);
                    state.inflight += 1;
                    core.refresh_gauges(&job.spec.tenant);
                    break job;
                }
                core = daemon.work_ready.wait(core).expect("daemon core lock poisoned");
            }
        };

        let tenant = job.spec.tenant.clone();
        let label = job.spec.label();
        self_contained_run(daemon, &job.spec, &label, &tenant, job.id);
    }
}

/// Runs one dispatched job start-to-finish on the current thread and
/// records its outcome. Split from the loop so the arm/run/disarm
/// sequence reads as one unit.
fn self_contained_run(daemon: &Daemon, spec: &JobSpec, label: &str, tenant: &str, id: u64) {
    // Arm the tenant's fault scope on *this* thread: the chaos seed and
    // deadline travel with the job, not the process, so faults injected
    // for one tenant cannot reach another tenant's runs.
    runner::set_thread_chaos(spec.chaos);
    runner::set_thread_deadline_secs(spec.deadline_secs);
    let outcome = match build_request(spec) {
        Ok(req) => runner::run_point_supervised(&req, daemon.cfg.scale),
        Err(rec) => Err(rec),
    };
    runner::set_thread_chaos(None);
    runner::set_thread_deadline_secs(None);
    let source = runner::take_last_source();

    let mut core = daemon.lock_core();
    match outcome {
        Ok(stats) => {
            core.log(QueueOp::Done, id, "completed");
            let state = core.tenant_mut(tenant);
            let c = state.ids.completed;
            state.registry.inc(c);
            let provenance = match source {
                Some("memo") => Some(state.ids.mem_hits),
                Some("disk") => Some(state.ids.disk_hits),
                Some("shared") => Some(state.ids.shared_hits),
                Some("simulated") => Some(state.ids.simulated),
                _ => None,
            };
            if let Some(cid) = provenance {
                state.registry.inc(cid);
            }
            state.completed.push((label.to_string(), stats));
            drop(core);
            let mut ev = ProgressEvent::new(ProgressStage::Completed, label).tenant(tenant);
            if let Some(s) = source {
                ev = ev.source(s);
            }
            daemon.emit(&ev);
        }
        Err(rec) => {
            core.log(QueueOp::Done, id, &format!("quarantined:{}", rec.class));
            let state = core.tenant_mut(tenant);
            let c = state.ids.quarantined;
            state.registry.inc(c);
            let class = rec.class.clone();
            state.quarantined.push(rec);
            drop(core);
            daemon.emit(
                &ProgressEvent::new(ProgressStage::Quarantined, label)
                    .tenant(tenant)
                    .detail(&class),
            );
        }
    }
    let mut core = daemon.lock_core();
    core.inflight_total -= 1;
    let state = core.tenant_mut(tenant);
    state.inflight -= 1;
    core.refresh_gauges(tenant);
    drop(core);
    // A finished job may unblock its tenant's next queued job, and may
    // have been the last thing a drain was waiting on.
    daemon.work_ready.notify_all();
    daemon.all_idle.notify_all();
}
