//! Cache geometry: size, associativity and derived set count.

use dcl1_common::{ConfigError, LineAddr};

/// How line addresses map to sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetIndexing {
    /// Plain modulo (low line bits). Strided address patterns conflict.
    Modulo,
    /// Hashed (bit-mixed) indexing, as real GPU caches use to spread
    /// power-of-two strides across sets. With hashing, pathological
    /// workload strides camp only on *home/slice* interleaving — the
    /// paper's partition camping — rather than on cache sets.
    Hashed,
}

/// The physical shape of a set-associative cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    size_bytes: usize,
    assoc: usize,
    line_size: usize,
    sets: usize,
    indexing: SetIndexing,
}

impl CacheGeometry {
    /// Creates a geometry from total size, associativity and line size.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any parameter is zero or the size is not
    /// an exact multiple of `assoc * line_size`. Set counts need not be a
    /// power of two: indexing falls back to modulo for the odd geometries
    /// the aggregation studies produce (e.g. one 1.28 MB 4-way cache).
    ///
    /// # Examples
    ///
    /// ```
    /// use dcl1_cache::CacheGeometry;
    /// let g = CacheGeometry::new(16 * 1024, 4, 128)?;
    /// assert_eq!(g.sets(), 32);
    /// # Ok::<(), dcl1_common::ConfigError>(())
    /// ```
    pub fn new(size_bytes: usize, assoc: usize, line_size: usize) -> Result<Self, ConfigError> {
        if size_bytes == 0 || assoc == 0 || line_size == 0 {
            return Err(ConfigError::new("cache size, associativity and line size must be nonzero"));
        }
        let way_bytes = assoc * line_size;
        if !size_bytes.is_multiple_of(way_bytes) {
            return Err(ConfigError::new(format!(
                "cache size {size_bytes} is not a multiple of assoc*line ({way_bytes})"
            )));
        }
        let sets = size_bytes / way_bytes;
        Ok(CacheGeometry { size_bytes, assoc, line_size, sets, indexing: SetIndexing::Modulo })
    }

    /// Returns this geometry with the given set-indexing function.
    pub fn with_indexing(mut self, indexing: SetIndexing) -> Self {
        self.indexing = indexing;
        self
    }

    /// The active set-indexing function.
    pub fn indexing(&self) -> SetIndexing {
        self.indexing
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> usize {
        self.size_bytes
    }

    /// Associativity (ways per set).
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// Line size in bytes.
    pub fn line_size(&self) -> usize {
        self.line_size
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Number of lines the cache can hold.
    pub fn lines(&self) -> usize {
        self.sets * self.assoc
    }

    /// Returns the set index for a line address.
    #[inline]
    // Set index is masked/reduced mod `sets` (< usize) either way.
    #[expect(clippy::cast_possible_truncation)]
    pub fn set_of(&self, line: LineAddr) -> usize {
        let v = match self.indexing {
            SetIndexing::Modulo => line.raw(),
            SetIndexing::Hashed => mix(line.raw()),
        };
        if self.sets.is_power_of_two() {
            (v as usize) & (self.sets - 1)
        } else {
            (v % self.sets as u64) as usize
        }
    }

    /// Returns the tag for a line address.
    ///
    /// Hashed indexing stores the full line number as the tag (the set
    /// index is not recoverable from a hash), trading a few tag bits for
    /// conflict resistance, as hashed-index hardware does.
    #[inline]
    pub fn tag_of(&self, line: LineAddr) -> u64 {
        match self.indexing {
            SetIndexing::Modulo => line.raw() / self.sets as u64,
            SetIndexing::Hashed => line.raw(),
        }
    }

    /// Reconstructs a line address from its tag and set index.
    #[inline]
    pub fn line_of(&self, tag: u64, set: usize) -> LineAddr {
        match self.indexing {
            SetIndexing::Modulo => LineAddr::new(tag * self.sets as u64 + set as u64),
            SetIndexing::Hashed => LineAddr::new(tag),
        }
    }

    /// Returns a geometry with `factor`× the capacity at the same
    /// associativity and line size (used when aggregating DC-L1s and for the
    /// paper's 16×-capacity motivation study).
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] if the scaled size is invalid.
    pub fn scaled(&self, factor: usize) -> Result<Self, ConfigError> {
        CacheGeometry::new(self.size_bytes * factor, self.assoc, self.line_size)
    }
}

/// SplitMix-style bit mixer for hashed set indexing.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derives_sets_tags() {
        let g = CacheGeometry::new(16 * 1024, 4, 128).unwrap();
        assert_eq!(g.sets(), 32);
        assert_eq!(g.lines(), 128);
        let line = LineAddr::new(0b1011_00101);
        assert_eq!(g.set_of(line), 0b00101);
        assert_eq!(g.tag_of(line), 0b1011);
    }

    #[test]
    fn rejects_zero_params() {
        assert!(CacheGeometry::new(0, 4, 128).is_err());
        assert!(CacheGeometry::new(1024, 0, 128).is_err());
        assert!(CacheGeometry::new(1024, 4, 0).is_err());
    }

    #[test]
    fn rejects_non_multiple_size() {
        assert!(CacheGeometry::new(1000, 4, 128).is_err());
    }

    #[test]
    fn non_power_of_two_sets_index_by_modulo() {
        // 3 sets of 4 ways x 128 B.
        let g = CacheGeometry::new(3 * 4 * 128, 4, 128).unwrap();
        assert_eq!(g.sets(), 3);
        for i in 0..30u64 {
            let l = LineAddr::new(i);
            assert_eq!(g.set_of(l), (i % 3) as usize);
            assert_eq!(g.line_of(g.tag_of(l), g.set_of(l)), l, "round trip {i}");
        }
    }

    #[test]
    fn scaled_multiplies_capacity() {
        let g = CacheGeometry::new(16 * 1024, 4, 128).unwrap();
        let big = g.scaled(16).unwrap();
        assert_eq!(big.size_bytes(), 256 * 1024);
        assert_eq!(big.assoc(), 4);
        assert_eq!(big.sets(), 512);
    }

    #[test]
    fn hashed_indexing_round_trips_and_spreads_strides() {
        let g = CacheGeometry::new(16 * 1024, 4, 128)
            .unwrap()
            .with_indexing(SetIndexing::Hashed);
        // Round trip.
        for i in 0..100u64 {
            let l = LineAddr::new(i * 320 + 7);
            assert_eq!(g.line_of(g.tag_of(l), g.set_of(l)), l);
        }
        // A stride-320 pattern (multiple of the 32-set modulus) lands in
        // one set under modulo indexing but spreads under hashing.
        let modulo = CacheGeometry::new(16 * 1024, 4, 128).unwrap();
        let mod_sets: std::collections::HashSet<usize> =
            (0..64u64).map(|i| modulo.set_of(LineAddr::new(i * 320 + 7))).collect();
        assert_eq!(mod_sets.len(), 1, "stride 320 camps one modulo set");
        let hash_sets: std::collections::HashSet<usize> =
            (0..64u64).map(|i| g.set_of(LineAddr::new(i * 320 + 7))).collect();
        assert!(hash_sets.len() > 16, "hashing must spread sets, got {}", hash_sets.len());
    }

    #[test]
    fn distinct_lines_same_set_have_distinct_tags() {
        let g = CacheGeometry::new(16 * 1024, 4, 128).unwrap();
        let a = LineAddr::new(5);
        let b = LineAddr::new(5 + g.sets() as u64);
        assert_eq!(g.set_of(a), g.set_of(b));
        assert_ne!(g.tag_of(a), g.tag_of(b));
    }
}
