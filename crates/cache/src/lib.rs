//! Cache models for the DC-L1 simulator.
//!
//! Two building blocks live here:
//!
//! * [`SetAssocCache`] — a tag-only set-associative cache with true-LRU
//!   replacement. Both the (DC-)L1 data caches and the L2 slices are
//!   instances of it; data payloads are never simulated, only presence.
//! * [`Mshr`] — miss status holding registers, merging concurrent misses to
//!   the same line so only one fill request travels down the hierarchy.
//!
//! Write policy (the paper's L1s are write-evict + no-write-allocate, the
//! L2 is write-back-ish at the granularity this model needs) is enforced by
//! the *caller*: the cache exposes `lookup`, `fill`, and `invalidate`, and
//! the L1/DC-L1/L2 controllers compose them.
//!
//! # Examples
//!
//! ```
//! use dcl1_cache::{CacheGeometry, SetAssocCache, LookupResult};
//! use dcl1_common::LineAddr;
//!
//! let geom = CacheGeometry::new(16 * 1024, 4, 128).unwrap();
//! let mut cache = SetAssocCache::new(geom);
//! assert_eq!(cache.lookup(LineAddr::new(1)), LookupResult::Miss);
//! cache.fill(LineAddr::new(1));
//! assert_eq!(cache.lookup(LineAddr::new(1)), LookupResult::Hit);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod geometry;
pub mod metrics;
mod mshr;
mod set_assoc;

pub use geometry::{CacheGeometry, SetIndexing};
pub use mshr::{Mshr, MshrAllocation};
pub use set_assoc::{CacheStats, LookupResult, SetAssocCache};
