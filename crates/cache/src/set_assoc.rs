//! Tag-only set-associative cache with true-LRU replacement.

use crate::CacheGeometry;
use dcl1_common::stats::Counter;
use dcl1_common::LineAddr;

/// Outcome of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LookupResult {
    /// The line is present.
    Hit,
    /// The line is absent.
    Miss,
}

/// Aggregate statistics for one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the line.
    pub hits: Counter,
    /// Lookups that missed.
    pub misses: Counter,
    /// Fills that displaced a valid line.
    pub evictions: Counter,
    /// Total fills.
    pub fills: Counter,
    /// Explicit invalidations that found a line (write-evict removals).
    pub invalidations: Counter,
}

impl CacheStats {
    /// Total lookups (hits + misses).
    pub fn accesses(&self) -> u64 {
        self.hits.get() + self.misses.get()
    }

    /// Miss rate over all lookups, 0.0 when no lookups happened.
    pub fn miss_rate(&self) -> f64 {
        self.misses.ratio_of(self.accesses())
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    tag: u64,
    valid: bool,
    last_use: u64,
}

/// A set-associative cache storing line presence only (no data payloads).
///
/// Replacement is true LRU via a monotonically increasing use stamp.
/// See the [crate root](crate) for an example.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geom: CacheGeometry,
    ways: Vec<Way>,
    stamp: u64,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        SetAssocCache {
            geom,
            ways: vec![Way::default(); geom.lines()],
            stamp: 0,
            stats: CacheStats::default(),
        }
    }

    /// Returns the geometry this cache was built with.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Returns accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    #[inline]
    fn set_range(&self, line: LineAddr) -> std::ops::Range<usize> {
        let set = self.geom.set_of(line);
        let base = set * self.geom.assoc();
        base..base + self.geom.assoc()
    }

    /// Looks up `line`, updating LRU state and hit/miss statistics.
    pub fn lookup(&mut self, line: LineAddr) -> LookupResult {
        self.stamp += 1;
        let tag = self.geom.tag_of(line);
        let range = self.set_range(line);
        for way in &mut self.ways[range] {
            if way.valid && way.tag == tag {
                way.last_use = self.stamp;
                self.stats.hits.inc();
                return LookupResult::Hit;
            }
        }
        self.stats.misses.inc();
        LookupResult::Miss
    }

    /// Checks presence without perturbing LRU state or statistics.
    ///
    /// Used by the replication instrumentation, which probes *other* caches
    /// at the same level on a miss (paper Section II-A) and must not alter
    /// their behaviour.
    pub fn probe(&self, line: LineAddr) -> bool {
        let tag = self.geom.tag_of(line);
        self.ways[self.set_range(line)].iter().any(|w| w.valid && w.tag == tag)
    }

    /// Installs `line`, evicting the LRU way if the set is full.
    ///
    /// Returns the evicted line, if any. Filling a line that is already
    /// present refreshes its LRU position and evicts nothing.
    pub fn fill(&mut self, line: LineAddr) -> Option<LineAddr> {
        self.stamp += 1;
        self.stats.fills.inc();
        let tag = self.geom.tag_of(line);
        let set = self.geom.set_of(line);
        let range = self.set_range(line);

        // Already present → refresh.
        if let Some(way) = self.ways[range.clone()].iter_mut().find(|w| w.valid && w.tag == tag) {
            way.last_use = self.stamp;
            return None;
        }

        // Prefer an invalid way.
        let stamp = self.stamp;
        if let Some(way) = self.ways[range.clone()].iter_mut().find(|w| !w.valid) {
            *way = Way { tag, valid: true, last_use: stamp };
            return None;
        }

        // Evict the LRU way.
        let victim_idx = {
            let slice = &self.ways[range.clone()];
            let local = slice
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.last_use)
                .expect("associativity is nonzero")
                .0;
            range.start + local
        };
        let victim = &mut self.ways[victim_idx];
        let evicted_tag = victim.tag;
        *victim = Way { tag, valid: true, last_use: stamp };
        self.stats.evictions.inc();
        Some(self.geom.line_of(evicted_tag, set))
    }

    /// Removes `line` if present (write-evict policy), returning whether it
    /// was found.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        let tag = self.geom.tag_of(line);
        let range = self.set_range(line);
        for way in &mut self.ways[range] {
            if way.valid && way.tag == tag {
                way.valid = false;
                self.stats.invalidations.inc();
                return true;
            }
        }
        false
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> usize {
        self.ways.iter().filter(|w| w.valid).count()
    }

    /// Iterates over all resident lines (used by replica-count sampling).
    pub fn resident_lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        let assoc = self.geom.assoc();
        self.ways.iter().enumerate().filter(|(_, w)| w.valid).map(move |(i, w)| {
            let set = i / assoc;
            self.geom.line_of(w.tag, set)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 2 sets x 2 ways x 128 B lines.
        SetAssocCache::new(CacheGeometry::new(2 * 2 * 128, 2, 128).unwrap())
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut c = small();
        let l = LineAddr::new(4);
        assert_eq!(c.lookup(l), LookupResult::Miss);
        assert_eq!(c.fill(l), None);
        assert_eq!(c.lookup(l), LookupResult::Hit);
        assert_eq!(c.stats().hits.get(), 1);
        assert_eq!(c.stats().misses.get(), 1);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Lines 0, 2, 4 all map to set 0 (2 sets).
        let (a, b, d) = (LineAddr::new(0), LineAddr::new(2), LineAddr::new(4));
        c.fill(a);
        c.fill(b);
        c.lookup(a); // a is now MRU
        let evicted = c.fill(d);
        assert_eq!(evicted, Some(b));
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn refill_refreshes_without_eviction() {
        let mut c = small();
        let (a, b) = (LineAddr::new(0), LineAddr::new(2));
        c.fill(a);
        c.fill(b);
        assert_eq!(c.fill(a), None); // refresh
        let evicted = c.fill(LineAddr::new(4));
        assert_eq!(evicted, Some(b)); // b was LRU after a's refresh
    }

    #[test]
    fn probe_does_not_affect_lru_or_stats() {
        let mut c = small();
        let (a, b) = (LineAddr::new(0), LineAddr::new(2));
        c.fill(a);
        c.fill(b);
        for _ in 0..10 {
            assert!(c.probe(a));
        }
        // a was filled first and probes don't refresh, so a is evicted.
        let evicted = c.fill(LineAddr::new(4));
        assert_eq!(evicted, Some(a));
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn invalidate_removes_line() {
        let mut c = small();
        let l = LineAddr::new(6);
        c.fill(l);
        assert!(c.invalidate(l));
        assert!(!c.invalidate(l));
        assert!(!c.probe(l));
        assert_eq!(c.stats().invalidations.get(), 1);
        assert_eq!(c.occupancy(), 0);
    }

    #[test]
    fn evicted_line_address_round_trips() {
        let geom = CacheGeometry::new(16 * 1024, 4, 128).unwrap();
        let mut c = SetAssocCache::new(geom);
        // Fill one set beyond capacity and confirm the evicted address is
        // one of the originally inserted lines.
        let sets = geom.sets() as u64;
        let lines: Vec<LineAddr> = (0..5).map(|i| LineAddr::new(7 + i * sets)).collect();
        let mut evicted = Vec::new();
        for &l in &lines {
            if let Some(e) = c.fill(l) {
                evicted.push(e);
            }
        }
        assert_eq!(evicted, vec![lines[0]]);
    }

    #[test]
    fn resident_lines_reports_contents() {
        let mut c = small();
        let l1 = LineAddr::new(1);
        let l2 = LineAddr::new(2);
        c.fill(l1);
        c.fill(l2);
        let mut resident: Vec<u64> = c.resident_lines().map(|l| l.raw()).collect();
        resident.sort_unstable();
        assert_eq!(resident, vec![1, 2]);
    }

    #[test]
    fn occupancy_saturates_at_capacity() {
        let mut c = small();
        for i in 0..100 {
            c.fill(LineAddr::new(i));
        }
        assert_eq!(c.occupancy(), 4);
    }
}
