//! `cache.*` registry namespace: tag-array and MSHR activity summed over
//! every L1/DC-L1 cache instance.
//!
//! The caller (the machine) walks cache instances in global node order
//! and supplies their [`CacheStats`] plus the MSHR alloc/free totals, so
//! the snapshot is independent of the shard partition.

use crate::CacheStats;
use dcl1_obs::registry::{CounterId, Registry};

/// Registered ids for every `cache.*` metric.
#[derive(Debug, Clone, Copy)]
pub struct CacheMetrics {
    hits: CounterId,
    misses: CounterId,
    evictions: CounterId,
    fills: CounterId,
    invalidations: CounterId,
    mshr_allocs: CounterId,
    mshr_frees: CounterId,
}

impl CacheMetrics {
    /// Registers the `cache.*` namespace.
    pub fn register(reg: &mut Registry) -> CacheMetrics {
        CacheMetrics {
            hits: reg.counter("cache.hits"),
            misses: reg.counter("cache.misses"),
            evictions: reg.counter("cache.evictions"),
            fills: reg.counter("cache.fills"),
            invalidations: reg.counter("cache.invalidations"),
            mshr_allocs: reg.counter("cache.mshr_allocs"),
            mshr_frees: reg.counter("cache.mshr_frees"),
        }
    }

    /// Snapshots the sums over `caches` plus MSHR alloc/free totals.
    pub fn record(
        self,
        reg: &mut Registry,
        caches: impl Iterator<Item = CacheStats>,
        mshr_allocs: u64,
        mshr_frees: u64,
    ) {
        let mut hits = 0;
        let mut misses = 0;
        let mut evictions = 0;
        let mut fills = 0;
        let mut invalidations = 0;
        for c in caches {
            hits += c.hits.get();
            misses += c.misses.get();
            evictions += c.evictions.get();
            fills += c.fills.get();
            invalidations += c.invalidations.get();
        }
        reg.set_counter(self.hits, hits);
        reg.set_counter(self.misses, misses);
        reg.set_counter(self.evictions, evictions);
        reg.set_counter(self.fills, fills);
        reg.set_counter(self.invalidations, invalidations);
        reg.set_counter(self.mshr_allocs, mshr_allocs);
        reg.set_counter(self.mshr_frees, mshr_frees);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_cache_and_mshr_sums() {
        let mut reg = Registry::new();
        let ids = CacheMetrics::register(&mut reg);
        let mut a = CacheStats::default();
        a.hits.add(9);
        a.misses.add(1);
        a.fills.add(1);
        let mut b = CacheStats::default();
        b.hits.add(1);
        b.evictions.add(2);
        b.invalidations.add(3);
        ids.record(&mut reg, [a, b].into_iter(), 40, 38);
        assert_eq!(reg.get("cache.hits"), Some(10));
        assert_eq!(reg.get("cache.misses"), Some(1));
        assert_eq!(reg.get("cache.evictions"), Some(2));
        assert_eq!(reg.get("cache.fills"), Some(1));
        assert_eq!(reg.get("cache.invalidations"), Some(3));
        assert_eq!(reg.get("cache.mshr_allocs"), Some(40));
        assert_eq!(reg.get("cache.mshr_frees"), Some(38));
    }
}
