//! Miss status holding registers (MSHRs).
//!
//! An MSHR file tracks outstanding misses. Concurrent misses to the same
//! line *merge* into one entry so only a single fill request is sent down
//! the hierarchy; when the fill returns, every merged requester is woken.
//! The paper's lite cores drop the per-core L1 **and its MSHRs** — in the
//! DC-L1 designs the MSHR file lives in the DC-L1 node instead.
//!
//! # Representation
//!
//! The file is a *slab*: a flat `Vec` of `max_entries` slots allocated
//! once at construction, a free-list of slot indices, and a deterministic
//! FNV-keyed open-addressed index ([`dcl1_common::FlatMap`]) from line
//! address to slot. The per-transaction operations (`try_allocate`,
//! `is_pending`, `can_accept`, `complete_into`) are O(1) expected and
//! allocation-free in steady state: waiter vectors live inside their slot
//! and are drained, never dropped, so their capacity is reused across
//! allocations. Where ordered iteration over outstanding entries is
//! needed, [`lines_sorted`](Mshr::lines_sorted) sorts the ≤`max_entries`
//! live lines by address — the same guarantee the previous `BTreeMap`
//! representation provided implicitly, now paid for only on demand.

use dcl1_common::invariant::{InvariantError, InvariantResult};
use dcl1_common::stats::Counter;
use dcl1_common::{FlatMap, LineAddr};

/// Outcome of a successful MSHR allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrAllocation {
    /// A new entry was created: the caller must send a fill request.
    Allocated,
    /// The miss merged into an existing entry: no new fill request needed.
    Merged,
}

/// One slab slot. A slot is live iff its waiter list is non-empty (a live
/// MSHR entry always holds at least its first requester).
#[derive(Debug, Clone)]
struct Slot<T> {
    line: LineAddr,
    waiters: Vec<T>,
}

/// A file of miss status holding registers, generic over the requester
/// token type `T` (the simulator uses transaction ids).
///
/// # Examples
///
/// ```
/// use dcl1_cache::{Mshr, MshrAllocation};
/// use dcl1_common::LineAddr;
///
/// let mut mshr: Mshr<u32> = Mshr::new(2, 4);
/// let line = LineAddr::new(9);
/// assert_eq!(mshr.try_allocate(line, 100), Ok(MshrAllocation::Allocated));
/// assert_eq!(mshr.try_allocate(line, 101), Ok(MshrAllocation::Merged));
/// // Hot paths reuse a caller-owned scratch buffer…
/// let mut woken: Vec<u32> = Vec::new();
/// assert_eq!(mshr.complete_into(line, &mut woken), 2);
/// assert_eq!(woken, vec![100, 101]);
/// // …while the allocating convenience wrapper stays available.
/// assert_eq!(mshr.try_allocate(line, 102), Ok(MshrAllocation::Allocated));
/// assert_eq!(mshr.complete(line), vec![102]);
/// ```
#[derive(Debug, Clone)]
pub struct Mshr<T> {
    /// `max_entries` slots, allocated once; never grows.
    slots: Vec<Slot<T>>,
    /// Free slot indices (LIFO — recently drained slots, whose waiter
    /// vectors have warmed-up capacity, are reused first).
    free: Vec<usize>,
    /// Deterministic line→slot index; pre-sized so it never re-hashes.
    index: FlatMap<usize>,
    max_entries: usize,
    max_merges: usize,
    /// Lifetime entry allocations (first miss on a line).
    allocs: u64,
    /// Lifetime entry frees (fills completed for a live entry).
    frees: u64,
    /// Lifetime requester tokens parked (first miss + merges).
    waiters_in: u64,
    /// Lifetime requester tokens released by `complete`.
    waiters_out: u64,
    /// Allocation attempts rejected because all entries were in use.
    pub entry_stalls: Counter,
    /// Allocation attempts rejected because the target entry was merge-full.
    pub merge_stalls: Counter,
    /// Successful merges.
    pub merges: Counter,
}

impl<T> Mshr<T> {
    /// Creates an MSHR file with `max_entries` entries, each accepting up
    /// to `max_merges` requesters (including the first).
    ///
    /// # Panics
    ///
    /// Panics if either limit is zero.
    pub fn new(max_entries: usize, max_merges: usize) -> Self {
        assert!(max_entries > 0, "MSHR entry count must be nonzero");
        assert!(max_merges > 0, "MSHR merge limit must be nonzero");
        let mut slots = Vec::with_capacity(max_entries);
        slots.resize_with(max_entries, || Slot { line: LineAddr::new(0), waiters: Vec::new() });
        // LIFO free list popping from the back: seed it reversed so the
        // very first allocations hand out slots 0, 1, 2, …
        let free: Vec<usize> = (0..max_entries).rev().collect();
        Mshr {
            slots,
            free,
            index: FlatMap::with_capacity(max_entries),
            max_entries,
            max_merges,
            allocs: 0,
            frees: 0,
            waiters_in: 0,
            waiters_out: 0,
            entry_stalls: Counter::default(),
            merge_stalls: Counter::default(),
            merges: Counter::default(),
        }
    }

    /// Attempts to record a miss on `line` for requester `token`.
    ///
    /// # Errors
    ///
    /// Returns `Err(token)` — a structural stall, handing the token back —
    /// when no entry is free (new line) or the entry's merge list is full.
    pub fn try_allocate(&mut self, line: LineAddr, token: T) -> Result<MshrAllocation, T> {
        if let Some(&slot) = self.index.get(line.raw()) {
            let waiters = &mut self.slots[slot].waiters;
            if waiters.len() >= self.max_merges {
                self.merge_stalls.inc();
                return Err(token);
            }
            waiters.push(token);
            self.merges.inc();
            self.waiters_in += 1;
            return Ok(MshrAllocation::Merged);
        }
        let Some(slot) = self.free.pop() else {
            self.entry_stalls.inc();
            return Err(token);
        };
        debug_assert!(self.slots[slot].waiters.is_empty(), "free slot held waiters");
        self.slots[slot].line = line;
        self.slots[slot].waiters.push(token);
        self.index.insert(line.raw(), slot);
        self.allocs += 1;
        self.waiters_in += 1;
        Ok(MshrAllocation::Allocated)
    }

    /// Whether a fill for `line` is already outstanding.
    pub fn is_pending(&self, line: LineAddr) -> bool {
        self.index.contains_key(line.raw())
    }

    /// Whether `try_allocate(line, …)` would succeed right now — i.e. the
    /// line's entry has merge room, or a free entry exists. Callers that
    /// cannot afford to lose a request (FIFO heads) must check this
    /// *before* dequeuing it.
    pub fn can_accept(&self, line: LineAddr) -> bool {
        match self.index.get(line.raw()) {
            Some(&slot) => self.slots[slot].waiters.len() < self.max_merges,
            None => !self.free.is_empty(),
        }
    }

    /// Completes the fill for `line`, appending all waiting tokens to
    /// `out` in arrival order and returning how many were appended (zero
    /// if the line had no entry). The freed slot keeps its waiter
    /// vector's capacity, so a warmed-up file never allocates here.
    pub fn complete_into(&mut self, line: LineAddr, out: &mut Vec<T>) -> usize {
        let Some(slot) = self.index.remove(line.raw()) else {
            return 0;
        };
        debug_assert_eq!(self.slots[slot].line, line, "MSHR index points at wrong slot");
        let waiters = &mut self.slots[slot].waiters;
        let n = waiters.len();
        debug_assert!(n > 0, "indexed MSHR slot had no waiters");
        out.append(waiters);
        self.free.push(slot);
        self.frees += 1;
        self.waiters_out += n as u64;
        debug_assert!(self.frees <= self.allocs, "MSHR free without alloc");
        n
    }

    /// Completes the fill for `line`, returning all waiting tokens in
    /// arrival order (empty if the line had no entry). Convenience
    /// wrapper over [`complete_into`](Mshr::complete_into) that allocates
    /// the returned vector — hot paths should pass their own scratch
    /// buffer to `complete_into` instead.
    pub fn complete(&mut self, line: LineAddr) -> Vec<T> {
        let mut out = Vec::new();
        self.complete_into(line, &mut out);
        out
    }

    /// Number of entries currently in use.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether no entries are in use.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Whether every entry is in use.
    pub fn is_full(&self) -> bool {
        self.free.is_empty()
    }

    /// The configured entry capacity.
    pub fn max_entries(&self) -> usize {
        self.max_entries
    }

    /// Total requesters waiting across all entries (each entry counts its
    /// first requester plus merges) — the metrics sampler's occupancy
    /// gauge, finer-grained than [`len`](Mshr::len). Derived from the
    /// lifetime conservation counters, so it is O(1).
    pub fn total_waiters(&self) -> usize {
        #[expect(clippy::cast_possible_truncation)] // bounded by entries×merges
        let waiting = (self.waiters_in - self.waiters_out) as usize;
        waiting
    }

    /// Lines with outstanding fills, in ascending address order — the
    /// ordered-iteration guarantee the slab representation preserves from
    /// the previous `BTreeMap`. Allocates the returned vector; intended
    /// for reports and debugging, not per-cycle use.
    pub fn lines_sorted(&self) -> Vec<LineAddr> {
        self.index.sorted_keys().into_iter().map(LineAddr::new).collect()
    }

    /// Lifetime entry allocations.
    pub fn allocs(&self) -> u64 {
        self.allocs
    }

    /// Lifetime entry frees.
    pub fn frees(&self) -> u64 {
        self.frees
    }

    /// Checks the MSHR conservation laws: every allocated entry is either
    /// live or was freed exactly once (`allocs == frees + len`), every
    /// parked requester is either waiting or was released
    /// (`waiters_in == waiters_out + total_waiters`), and occupancy is
    /// within the configured entry bound. `site` names this MSHR file in
    /// the error report.
    ///
    /// # Errors
    ///
    /// Returns the first violated law with its counter values.
    pub fn check_conservation(&self, site: &str) -> InvariantResult {
        let live = self.index.len() as u64;
        if self.index.len() > self.max_entries {
            return Err(InvariantError::new(
                site,
                format!("{} live entries exceed capacity {}", live, self.max_entries),
            ));
        }
        if self.allocs != self.frees + live {
            return Err(InvariantError::new(
                site,
                format!(
                    "entry leak: allocs {} != frees {} + live {}",
                    self.allocs, self.frees, live
                ),
            ));
        }
        // Recount waiters from the slots themselves rather than trusting
        // the O(1) derived gauge — this is the checker, after all.
        let waiting: u64 = self.slots.iter().map(|s| s.waiters.len() as u64).sum();
        if self.waiters_in != self.waiters_out + waiting {
            return Err(InvariantError::new(
                site,
                format!(
                    "waiter leak: parked {} != released {} + waiting {}",
                    self.waiters_in, self.waiters_out, waiting
                ),
            ));
        }
        if self.index.len() + self.free.len() != self.max_entries {
            return Err(InvariantError::new(
                site,
                format!(
                    "slot leak: {} live + {} free != {} slots",
                    self.index.len(),
                    self.free.len(),
                    self.max_entries
                ),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_then_merge_then_complete() {
        let mut m: Mshr<u32> = Mshr::new(4, 4);
        let l = LineAddr::new(1);
        assert_eq!(m.try_allocate(l, 1), Ok(MshrAllocation::Allocated));
        assert!(m.is_pending(l));
        assert_eq!(m.try_allocate(l, 2), Ok(MshrAllocation::Merged));
        assert_eq!(m.total_waiters(), 2);
        assert_eq!(m.complete(l), vec![1, 2]);
        assert!(!m.is_pending(l));
        assert_eq!(m.total_waiters(), 0);
        assert_eq!(m.merges.get(), 1);
    }

    #[test]
    fn entry_exhaustion_stalls() {
        let mut m: Mshr<u8> = Mshr::new(2, 4);
        m.try_allocate(LineAddr::new(1), 0).unwrap();
        m.try_allocate(LineAddr::new(2), 0).unwrap();
        assert!(m.is_full());
        assert_eq!(m.try_allocate(LineAddr::new(3), 9), Err(9));
        assert_eq!(m.entry_stalls.get(), 1);
        // A merge to an existing line still succeeds when full.
        assert_eq!(m.try_allocate(LineAddr::new(1), 7), Ok(MshrAllocation::Merged));
    }

    #[test]
    fn merge_limit_stalls() {
        let mut m: Mshr<u8> = Mshr::new(4, 2);
        let l = LineAddr::new(5);
        m.try_allocate(l, 0).unwrap();
        m.try_allocate(l, 1).unwrap();
        assert_eq!(m.try_allocate(l, 2), Err(2));
        assert_eq!(m.merge_stalls.get(), 1);
        assert_eq!(m.complete(l), vec![0, 1]);
    }

    #[test]
    fn complete_unknown_line_is_empty() {
        let mut m: Mshr<u8> = Mshr::new(2, 2);
        assert!(m.complete(LineAddr::new(42)).is_empty());
        assert!(m.is_empty());
    }

    #[test]
    fn complete_into_appends_and_reuses_scratch() {
        let mut m: Mshr<u8> = Mshr::new(2, 2);
        let (a, b) = (LineAddr::new(1), LineAddr::new(2));
        m.try_allocate(a, 1).unwrap();
        m.try_allocate(b, 2).unwrap();
        let mut scratch = Vec::new();
        assert_eq!(m.complete_into(a, &mut scratch), 1);
        assert_eq!(m.complete_into(b, &mut scratch), 1);
        assert_eq!(scratch, vec![1, 2], "tokens append, not overwrite");
        assert_eq!(m.complete_into(a, &mut scratch), 0, "unknown line appends nothing");
    }

    #[test]
    fn freed_entry_is_reusable() {
        let mut m: Mshr<u8> = Mshr::new(1, 1);
        let (a, b) = (LineAddr::new(1), LineAddr::new(2));
        m.try_allocate(a, 0).unwrap();
        assert_eq!(m.try_allocate(b, 1), Err(1));
        m.complete(a);
        assert_eq!(m.try_allocate(b, 1), Ok(MshrAllocation::Allocated));
    }

    #[test]
    fn lines_sorted_is_address_ordered() {
        let mut m: Mshr<u8> = Mshr::new(4, 1);
        for raw in [7, 3, 11, 5] {
            m.try_allocate(LineAddr::new(raw), 0).unwrap();
        }
        let lines: Vec<u64> = m.lines_sorted().iter().map(|l| l.raw()).collect();
        assert_eq!(lines, vec![3, 5, 7, 11]);
    }
}
