//! Miss status holding registers (MSHRs).
//!
//! An MSHR file tracks outstanding misses. Concurrent misses to the same
//! line *merge* into one entry so only a single fill request is sent down
//! the hierarchy; when the fill returns, every merged requester is woken.
//! The paper's lite cores drop the per-core L1 **and its MSHRs** — in the
//! DC-L1 designs the MSHR file lives in the DC-L1 node instead.

use dcl1_common::stats::Counter;
use dcl1_common::LineAddr;
use std::collections::HashMap;

/// Outcome of a successful MSHR allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrAllocation {
    /// A new entry was created: the caller must send a fill request.
    Allocated,
    /// The miss merged into an existing entry: no new fill request needed.
    Merged,
}

/// A file of miss status holding registers, generic over the requester
/// token type `T` (the simulator uses transaction ids).
///
/// # Examples
///
/// ```
/// use dcl1_cache::{Mshr, MshrAllocation};
/// use dcl1_common::LineAddr;
///
/// let mut mshr: Mshr<u32> = Mshr::new(2, 4);
/// let line = LineAddr::new(9);
/// assert_eq!(mshr.try_allocate(line, 100), Ok(MshrAllocation::Allocated));
/// assert_eq!(mshr.try_allocate(line, 101), Ok(MshrAllocation::Merged));
/// assert_eq!(mshr.complete(line), vec![100, 101]);
/// ```
#[derive(Debug, Clone)]
pub struct Mshr<T> {
    entries: HashMap<LineAddr, Vec<T>>,
    max_entries: usize,
    max_merges: usize,
    /// Allocation attempts rejected because all entries were in use.
    pub entry_stalls: Counter,
    /// Allocation attempts rejected because the target entry was merge-full.
    pub merge_stalls: Counter,
    /// Successful merges.
    pub merges: Counter,
}

impl<T> Mshr<T> {
    /// Creates an MSHR file with `max_entries` entries, each accepting up
    /// to `max_merges` requesters (including the first).
    ///
    /// # Panics
    ///
    /// Panics if either limit is zero.
    pub fn new(max_entries: usize, max_merges: usize) -> Self {
        assert!(max_entries > 0, "MSHR entry count must be nonzero");
        assert!(max_merges > 0, "MSHR merge limit must be nonzero");
        Mshr {
            entries: HashMap::with_capacity(max_entries),
            max_entries,
            max_merges,
            entry_stalls: Counter::default(),
            merge_stalls: Counter::default(),
            merges: Counter::default(),
        }
    }

    /// Attempts to record a miss on `line` for requester `token`.
    ///
    /// # Errors
    ///
    /// Returns `Err(token)` — a structural stall, handing the token back —
    /// when no entry is free (new line) or the entry's merge list is full.
    pub fn try_allocate(&mut self, line: LineAddr, token: T) -> Result<MshrAllocation, T> {
        if let Some(waiters) = self.entries.get_mut(&line) {
            if waiters.len() >= self.max_merges {
                self.merge_stalls.inc();
                return Err(token);
            }
            waiters.push(token);
            self.merges.inc();
            return Ok(MshrAllocation::Merged);
        }
        if self.entries.len() >= self.max_entries {
            self.entry_stalls.inc();
            return Err(token);
        }
        self.entries.insert(line, vec![token]);
        Ok(MshrAllocation::Allocated)
    }

    /// Whether a fill for `line` is already outstanding.
    pub fn is_pending(&self, line: LineAddr) -> bool {
        self.entries.contains_key(&line)
    }

    /// Whether `try_allocate(line, …)` would succeed right now — i.e. the
    /// line's entry has merge room, or a free entry exists. Callers that
    /// cannot afford to lose a request (FIFO heads) must check this
    /// *before* dequeuing it.
    pub fn can_accept(&self, line: LineAddr) -> bool {
        match self.entries.get(&line) {
            Some(waiters) => waiters.len() < self.max_merges,
            None => self.entries.len() < self.max_entries,
        }
    }

    /// Completes the fill for `line`, returning all waiting tokens in
    /// arrival order (empty if the line had no entry).
    pub fn complete(&mut self, line: LineAddr) -> Vec<T> {
        self.entries.remove(&line).unwrap_or_default()
    }

    /// Number of entries currently in use.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are in use.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether every entry is in use.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.max_entries
    }

    /// The configured entry capacity.
    pub fn max_entries(&self) -> usize {
        self.max_entries
    }

    /// Total requesters waiting across all entries (each entry counts its
    /// first requester plus merges) — the metrics sampler's occupancy
    /// gauge, finer-grained than [`len`](Mshr::len).
    pub fn total_waiters(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_then_merge_then_complete() {
        let mut m: Mshr<u32> = Mshr::new(4, 4);
        let l = LineAddr::new(1);
        assert_eq!(m.try_allocate(l, 1), Ok(MshrAllocation::Allocated));
        assert!(m.is_pending(l));
        assert_eq!(m.try_allocate(l, 2), Ok(MshrAllocation::Merged));
        assert_eq!(m.total_waiters(), 2);
        assert_eq!(m.complete(l), vec![1, 2]);
        assert!(!m.is_pending(l));
        assert_eq!(m.total_waiters(), 0);
        assert_eq!(m.merges.get(), 1);
    }

    #[test]
    fn entry_exhaustion_stalls() {
        let mut m: Mshr<u8> = Mshr::new(2, 4);
        m.try_allocate(LineAddr::new(1), 0).unwrap();
        m.try_allocate(LineAddr::new(2), 0).unwrap();
        assert!(m.is_full());
        assert_eq!(m.try_allocate(LineAddr::new(3), 9), Err(9));
        assert_eq!(m.entry_stalls.get(), 1);
        // A merge to an existing line still succeeds when full.
        assert_eq!(m.try_allocate(LineAddr::new(1), 7), Ok(MshrAllocation::Merged));
    }

    #[test]
    fn merge_limit_stalls() {
        let mut m: Mshr<u8> = Mshr::new(4, 2);
        let l = LineAddr::new(5);
        m.try_allocate(l, 0).unwrap();
        m.try_allocate(l, 1).unwrap();
        assert_eq!(m.try_allocate(l, 2), Err(2));
        assert_eq!(m.merge_stalls.get(), 1);
        assert_eq!(m.complete(l), vec![0, 1]);
    }

    #[test]
    fn complete_unknown_line_is_empty() {
        let mut m: Mshr<u8> = Mshr::new(2, 2);
        assert!(m.complete(LineAddr::new(42)).is_empty());
        assert!(m.is_empty());
    }

    #[test]
    fn freed_entry_is_reusable() {
        let mut m: Mshr<u8> = Mshr::new(1, 1);
        let (a, b) = (LineAddr::new(1), LineAddr::new(2));
        m.try_allocate(a, 0).unwrap();
        assert_eq!(m.try_allocate(b, 1), Err(1));
        m.complete(a);
        assert_eq!(m.try_allocate(b, 1), Ok(MshrAllocation::Allocated));
    }
}
