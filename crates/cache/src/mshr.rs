//! Miss status holding registers (MSHRs).
//!
//! An MSHR file tracks outstanding misses. Concurrent misses to the same
//! line *merge* into one entry so only a single fill request is sent down
//! the hierarchy; when the fill returns, every merged requester is woken.
//! The paper's lite cores drop the per-core L1 **and its MSHRs** — in the
//! DC-L1 designs the MSHR file lives in the DC-L1 node instead.

use dcl1_common::invariant::{InvariantError, InvariantResult};
use dcl1_common::stats::Counter;
use dcl1_common::LineAddr;
use std::collections::BTreeMap;

/// Outcome of a successful MSHR allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MshrAllocation {
    /// A new entry was created: the caller must send a fill request.
    Allocated,
    /// The miss merged into an existing entry: no new fill request needed.
    Merged,
}

/// A file of miss status holding registers, generic over the requester
/// token type `T` (the simulator uses transaction ids).
///
/// # Examples
///
/// ```
/// use dcl1_cache::{Mshr, MshrAllocation};
/// use dcl1_common::LineAddr;
///
/// let mut mshr: Mshr<u32> = Mshr::new(2, 4);
/// let line = LineAddr::new(9);
/// assert_eq!(mshr.try_allocate(line, 100), Ok(MshrAllocation::Allocated));
/// assert_eq!(mshr.try_allocate(line, 101), Ok(MshrAllocation::Merged));
/// assert_eq!(mshr.complete(line), vec![100, 101]);
/// ```
#[derive(Debug, Clone)]
pub struct Mshr<T> {
    // A BTreeMap rather than HashMap so any future iteration over
    // outstanding entries is ordered by line address, independent of
    // hasher state — part of the simulator's determinism contract.
    entries: BTreeMap<LineAddr, Vec<T>>,
    max_entries: usize,
    max_merges: usize,
    /// Lifetime entry allocations (first miss on a line).
    allocs: u64,
    /// Lifetime entry frees (fills completed for a live entry).
    frees: u64,
    /// Lifetime requester tokens parked (first miss + merges).
    waiters_in: u64,
    /// Lifetime requester tokens released by `complete`.
    waiters_out: u64,
    /// Allocation attempts rejected because all entries were in use.
    pub entry_stalls: Counter,
    /// Allocation attempts rejected because the target entry was merge-full.
    pub merge_stalls: Counter,
    /// Successful merges.
    pub merges: Counter,
}

impl<T> Mshr<T> {
    /// Creates an MSHR file with `max_entries` entries, each accepting up
    /// to `max_merges` requesters (including the first).
    ///
    /// # Panics
    ///
    /// Panics if either limit is zero.
    pub fn new(max_entries: usize, max_merges: usize) -> Self {
        assert!(max_entries > 0, "MSHR entry count must be nonzero");
        assert!(max_merges > 0, "MSHR merge limit must be nonzero");
        Mshr {
            entries: BTreeMap::new(),
            max_entries,
            max_merges,
            allocs: 0,
            frees: 0,
            waiters_in: 0,
            waiters_out: 0,
            entry_stalls: Counter::default(),
            merge_stalls: Counter::default(),
            merges: Counter::default(),
        }
    }

    /// Attempts to record a miss on `line` for requester `token`.
    ///
    /// # Errors
    ///
    /// Returns `Err(token)` — a structural stall, handing the token back —
    /// when no entry is free (new line) or the entry's merge list is full.
    pub fn try_allocate(&mut self, line: LineAddr, token: T) -> Result<MshrAllocation, T> {
        if let Some(waiters) = self.entries.get_mut(&line) {
            if waiters.len() >= self.max_merges {
                self.merge_stalls.inc();
                return Err(token);
            }
            waiters.push(token);
            self.merges.inc();
            self.waiters_in += 1;
            return Ok(MshrAllocation::Merged);
        }
        if self.entries.len() >= self.max_entries {
            self.entry_stalls.inc();
            return Err(token);
        }
        self.entries.insert(line, vec![token]);
        self.allocs += 1;
        self.waiters_in += 1;
        Ok(MshrAllocation::Allocated)
    }

    /// Whether a fill for `line` is already outstanding.
    pub fn is_pending(&self, line: LineAddr) -> bool {
        self.entries.contains_key(&line)
    }

    /// Whether `try_allocate(line, …)` would succeed right now — i.e. the
    /// line's entry has merge room, or a free entry exists. Callers that
    /// cannot afford to lose a request (FIFO heads) must check this
    /// *before* dequeuing it.
    pub fn can_accept(&self, line: LineAddr) -> bool {
        match self.entries.get(&line) {
            Some(waiters) => waiters.len() < self.max_merges,
            None => self.entries.len() < self.max_entries,
        }
    }

    /// Completes the fill for `line`, returning all waiting tokens in
    /// arrival order (empty if the line had no entry).
    pub fn complete(&mut self, line: LineAddr) -> Vec<T> {
        let waiters = self.entries.remove(&line).unwrap_or_default();
        if !waiters.is_empty() {
            self.frees += 1;
            self.waiters_out += waiters.len() as u64;
            debug_assert!(self.frees <= self.allocs, "MSHR free without alloc");
        }
        waiters
    }

    /// Number of entries currently in use.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no entries are in use.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether every entry is in use.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.max_entries
    }

    /// The configured entry capacity.
    pub fn max_entries(&self) -> usize {
        self.max_entries
    }

    /// Total requesters waiting across all entries (each entry counts its
    /// first requester plus merges) — the metrics sampler's occupancy
    /// gauge, finer-grained than [`len`](Mshr::len).
    pub fn total_waiters(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// Lifetime entry allocations.
    pub fn allocs(&self) -> u64 {
        self.allocs
    }

    /// Lifetime entry frees.
    pub fn frees(&self) -> u64 {
        self.frees
    }

    /// Checks the MSHR conservation laws: every allocated entry is either
    /// live or was freed exactly once (`allocs == frees + len`), every
    /// parked requester is either waiting or was released
    /// (`waiters_in == waiters_out + total_waiters`), and occupancy is
    /// within the configured entry bound. `site` names this MSHR file in
    /// the error report.
    ///
    /// # Errors
    ///
    /// Returns the first violated law with its counter values.
    pub fn check_conservation(&self, site: &str) -> InvariantResult {
        let live = self.entries.len() as u64;
        if self.entries.len() > self.max_entries {
            return Err(InvariantError::new(
                site,
                format!("{} live entries exceed capacity {}", live, self.max_entries),
            ));
        }
        if self.allocs != self.frees + live {
            return Err(InvariantError::new(
                site,
                format!(
                    "entry leak: allocs {} != frees {} + live {}",
                    self.allocs, self.frees, live
                ),
            ));
        }
        let waiting = self.total_waiters() as u64;
        if self.waiters_in != self.waiters_out + waiting {
            return Err(InvariantError::new(
                site,
                format!(
                    "waiter leak: parked {} != released {} + waiting {}",
                    self.waiters_in, self.waiters_out, waiting
                ),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_then_merge_then_complete() {
        let mut m: Mshr<u32> = Mshr::new(4, 4);
        let l = LineAddr::new(1);
        assert_eq!(m.try_allocate(l, 1), Ok(MshrAllocation::Allocated));
        assert!(m.is_pending(l));
        assert_eq!(m.try_allocate(l, 2), Ok(MshrAllocation::Merged));
        assert_eq!(m.total_waiters(), 2);
        assert_eq!(m.complete(l), vec![1, 2]);
        assert!(!m.is_pending(l));
        assert_eq!(m.total_waiters(), 0);
        assert_eq!(m.merges.get(), 1);
    }

    #[test]
    fn entry_exhaustion_stalls() {
        let mut m: Mshr<u8> = Mshr::new(2, 4);
        m.try_allocate(LineAddr::new(1), 0).unwrap();
        m.try_allocate(LineAddr::new(2), 0).unwrap();
        assert!(m.is_full());
        assert_eq!(m.try_allocate(LineAddr::new(3), 9), Err(9));
        assert_eq!(m.entry_stalls.get(), 1);
        // A merge to an existing line still succeeds when full.
        assert_eq!(m.try_allocate(LineAddr::new(1), 7), Ok(MshrAllocation::Merged));
    }

    #[test]
    fn merge_limit_stalls() {
        let mut m: Mshr<u8> = Mshr::new(4, 2);
        let l = LineAddr::new(5);
        m.try_allocate(l, 0).unwrap();
        m.try_allocate(l, 1).unwrap();
        assert_eq!(m.try_allocate(l, 2), Err(2));
        assert_eq!(m.merge_stalls.get(), 1);
        assert_eq!(m.complete(l), vec![0, 1]);
    }

    #[test]
    fn complete_unknown_line_is_empty() {
        let mut m: Mshr<u8> = Mshr::new(2, 2);
        assert!(m.complete(LineAddr::new(42)).is_empty());
        assert!(m.is_empty());
    }

    #[test]
    fn freed_entry_is_reusable() {
        let mut m: Mshr<u8> = Mshr::new(1, 1);
        let (a, b) = (LineAddr::new(1), LineAddr::new(2));
        m.try_allocate(a, 0).unwrap();
        assert_eq!(m.try_allocate(b, 1), Err(1));
        m.complete(a);
        assert_eq!(m.try_allocate(b, 1), Ok(MshrAllocation::Allocated));
    }
}
