//! Property tests for the MSHR's alloc/free conservation instrumentation:
//! random allocate/merge/complete sequences against a model file, with
//! `check_conservation` — the hook the checked-sim harness sweeps every
//! epoch — holding after every operation, and every waiter handed back
//! exactly once.

#![allow(clippy::cast_possible_truncation)] // test values are tiny

use dcl1_cache::{Mshr, MshrAllocation};
use dcl1_common::{LineAddr, SplitMix64};
use std::collections::BTreeMap;

#[test]
fn random_alloc_free_sequences_conserve_entries_and_waiters() {
    for seed in 0..16u64 {
        let mut rng = SplitMix64::new(0xD1CE ^ (seed << 8));
        let entries = 1 + (rng.next_u64() % 6) as usize;
        let merges = 1 + (rng.next_u64() % 4) as usize;
        let mut m: Mshr<u64> = Mshr::new(entries, merges);
        let mut model: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        let mut token = 0u64;
        let mut handed_back = 0u64;
        let mut rejected = 0u64;
        for _ in 0..3000 {
            let line = rng.next_u64() % 8; // few lines => frequent merges
            if rng.next_u64() % 3 < 2 {
                token += 1;
                let admissible = m.can_accept(LineAddr::new(line));
                match m.try_allocate(LineAddr::new(line), token) {
                    Ok(MshrAllocation::Allocated) => {
                        assert!(admissible, "can_accept lied (allocate)");
                        assert!(model.insert(line, vec![token]).is_none(), "double allocate");
                    }
                    Ok(MshrAllocation::Merged) => {
                        assert!(admissible, "can_accept lied (merge)");
                        model.get_mut(&line).expect("merge without entry").push(token);
                    }
                    Err(t) => {
                        assert!(!admissible, "admission refused despite room");
                        assert_eq!(t, token, "token lost on structural stall");
                        rejected += 1;
                    }
                }
            } else {
                let waiters = m.complete(LineAddr::new(line));
                let expected = model.remove(&line).unwrap_or_default();
                assert_eq!(waiters, expected, "waiters out of arrival order");
                handed_back += waiters.len() as u64;
            }
            assert!(m.len() <= entries, "entry capacity exceeded");
            assert_eq!(m.allocs(), m.frees() + m.len() as u64, "alloc/free pairing broke");
            m.check_conservation("prop.mshr").expect("invariant check");
        }
        // Drain: every line completed, every waiter returned exactly once.
        for line in 0..8 {
            handed_back += m.complete(LineAddr::new(line)).len() as u64;
        }
        assert!(m.is_empty());
        assert_eq!(m.allocs(), m.frees(), "drained file must pair every alloc with a free");
        // Every issued token was either parked and later returned by a
        // complete(), or refused (structural stall) and handed straight
        // back — exactly once either way.
        assert_eq!(handed_back + rejected, token, "a waiter was lost or duplicated");
        m.check_conservation("prop.mshr.drained").expect("drained check");
    }
}
