//! Property tests for the MSHR's alloc/free conservation instrumentation:
//! random allocate/merge/complete sequences against a model file, with
//! `check_conservation` — the hook the checked-sim harness sweeps every
//! epoch — holding after every operation, and every waiter handed back
//! exactly once.

#![allow(clippy::cast_possible_truncation)] // test values are tiny

use dcl1_cache::{Mshr, MshrAllocation};
use dcl1_common::{LineAddr, SplitMix64};
use std::collections::BTreeMap;

#[test]
fn random_alloc_free_sequences_conserve_entries_and_waiters() {
    for seed in 0..16u64 {
        let mut rng = SplitMix64::new(0xD1CE ^ (seed << 8));
        let entries = 1 + (rng.next_u64() % 6) as usize;
        let merges = 1 + (rng.next_u64() % 4) as usize;
        let mut m: Mshr<u64> = Mshr::new(entries, merges);
        let mut model: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        let mut token = 0u64;
        let mut handed_back = 0u64;
        let mut rejected = 0u64;
        for _ in 0..3000 {
            let line = rng.next_u64() % 8; // few lines => frequent merges
            if rng.next_u64() % 3 < 2 {
                token += 1;
                let admissible = m.can_accept(LineAddr::new(line));
                match m.try_allocate(LineAddr::new(line), token) {
                    Ok(MshrAllocation::Allocated) => {
                        assert!(admissible, "can_accept lied (allocate)");
                        assert!(model.insert(line, vec![token]).is_none(), "double allocate");
                    }
                    Ok(MshrAllocation::Merged) => {
                        assert!(admissible, "can_accept lied (merge)");
                        model.get_mut(&line).expect("merge without entry").push(token);
                    }
                    Err(t) => {
                        assert!(!admissible, "admission refused despite room");
                        assert_eq!(t, token, "token lost on structural stall");
                        rejected += 1;
                    }
                }
            } else {
                let waiters = m.complete(LineAddr::new(line));
                let expected = model.remove(&line).unwrap_or_default();
                assert_eq!(waiters, expected, "waiters out of arrival order");
                handed_back += waiters.len() as u64;
            }
            assert!(m.len() <= entries, "entry capacity exceeded");
            assert_eq!(m.allocs(), m.frees() + m.len() as u64, "alloc/free pairing broke");
            m.check_conservation("prop.mshr").expect("invariant check");
        }
        // Drain: every line completed, every waiter returned exactly once.
        for line in 0..8 {
            handed_back += m.complete(LineAddr::new(line)).len() as u64;
        }
        assert!(m.is_empty());
        assert_eq!(m.allocs(), m.frees(), "drained file must pair every alloc with a free");
        // Every issued token was either parked and later returned by a
        // complete(), or refused (structural stall) and handed straight
        // back — exactly once either way.
        assert_eq!(handed_back + rejected, token, "a waiter was lost or duplicated");
        m.check_conservation("prop.mshr.drained").expect("drained check");
    }
}

/// Differential test of the slab MSHR against the old `BTreeMap`-backed
/// implementation as a reference model: the same random
/// allocate/merge/complete sequence must produce identical admission
/// decisions, stall counters, waiter hand-back order, and — the part the
/// slab must synthesize on demand — identical address-ordered line
/// iteration.
#[test]
fn slab_matches_btreemap_reference_model() {
    for seed in 0..12u64 {
        let mut rng = SplitMix64::new(0x5AB0_CAFE ^ (seed << 5));
        let entries = 1 + (rng.next_u64() % 5) as usize;
        let merges = 1 + (rng.next_u64() % 3) as usize;
        let mut m: Mshr<u64> = Mshr::new(entries, merges);
        let mut model: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        let mut model_entry_stalls = 0u64;
        let mut model_merge_stalls = 0u64;
        let mut model_merges = 0u64;
        let mut scratch: Vec<u64> = Vec::new();
        for step in 0..4000u64 {
            let line = rng.next_u64() % 10;
            if rng.next_u64() % 3 < 2 {
                // Reference admission: merge if present with room, else
                // allocate if an entry is free, else stall.
                let model_result = if let Some(w) = model.get_mut(&line) {
                    if w.len() < merges {
                        w.push(step);
                        model_merges += 1;
                        Ok(MshrAllocation::Merged)
                    } else {
                        model_merge_stalls += 1;
                        Err(step)
                    }
                } else if model.len() < entries {
                    model.insert(line, vec![step]);
                    Ok(MshrAllocation::Allocated)
                } else {
                    model_entry_stalls += 1;
                    Err(step)
                };
                assert_eq!(
                    m.try_allocate(LineAddr::new(line), step),
                    model_result,
                    "admission diverged at step {step}"
                );
            } else {
                scratch.clear();
                let n = m.complete_into(LineAddr::new(line), &mut scratch);
                let expected = model.remove(&line).unwrap_or_default();
                assert_eq!(scratch, expected, "waiter order diverged");
                assert_eq!(n, expected.len(), "waiter count diverged");
            }
            assert_eq!(m.len(), model.len(), "entry count diverged");
            assert_eq!(
                m.total_waiters(),
                model.values().map(Vec::len).sum::<usize>(),
                "waiter population diverged"
            );
            assert_eq!(m.entry_stalls.get(), model_entry_stalls, "entry stalls diverged");
            assert_eq!(m.merge_stalls.get(), model_merge_stalls, "merge stalls diverged");
            assert_eq!(m.merges.get(), model_merges, "merge count diverged");
            let sorted: Vec<u64> = m.lines_sorted().into_iter().map(LineAddr::raw).collect();
            let model_sorted: Vec<u64> = model.keys().copied().collect();
            assert_eq!(sorted, model_sorted, "ordered line iteration diverged");
            assert_eq!(m.is_pending(LineAddr::new(line)), model.contains_key(&line));
        }
    }
}
