//! Randomized-but-deterministic tests checking the set-associative cache
//! against a naive reference model, and MSHR structural invariants.
//!
//! Each test drives many seeded `SplitMix64` episodes, so coverage is
//! property-test-like while staying fully reproducible and dependency-free.

#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use dcl1_cache::{CacheGeometry, LookupResult, Mshr, SetAssocCache};
use dcl1_common::{LineAddr, SplitMix64};
use std::collections::HashMap;

/// A naive per-set LRU model: each set is a Vec ordered LRU→MRU.
#[derive(Debug, Default)]
struct RefModel {
    sets: HashMap<usize, Vec<u64>>,
    assoc: usize,
    nsets: usize,
}

impl RefModel {
    fn new(nsets: usize, assoc: usize) -> Self {
        RefModel { sets: HashMap::new(), assoc, nsets }
    }
    fn set_of(&self, line: u64) -> usize {
        (line as usize) % self.nsets
    }
    fn lookup(&mut self, line: u64) -> bool {
        let set = self.set_of(line);
        let v = self.sets.entry(set).or_default();
        if let Some(pos) = v.iter().position(|&l| l == line) {
            let l = v.remove(pos);
            v.push(l);
            true
        } else {
            false
        }
    }
    fn fill(&mut self, line: u64) -> Option<u64> {
        let assoc = self.assoc;
        let set = self.set_of(line);
        let v = self.sets.entry(set).or_default();
        if let Some(pos) = v.iter().position(|&l| l == line) {
            let l = v.remove(pos);
            v.push(l);
            return None;
        }
        let evicted = if v.len() >= assoc { Some(v.remove(0)) } else { None };
        v.push(line);
        evicted
    }
    fn invalidate(&mut self, line: u64) -> bool {
        let set = self.set_of(line);
        let v = self.sets.entry(set).or_default();
        if let Some(pos) = v.iter().position(|&l| l == line) {
            v.remove(pos);
            true
        } else {
            false
        }
    }
}

/// Random op sequences produce identical hit/miss/eviction behaviour in
/// the real cache and the reference model.
#[test]
fn cache_matches_reference_model() {
    for seed in 0..64u64 {
        let mut rng = SplitMix64::new(0xCAC4E ^ seed);
        let geom = CacheGeometry::new(4 * 2 * 128, 2, 128).unwrap(); // 4 sets x 2 ways
        let mut cache = SetAssocCache::new(geom);
        let mut model = RefModel::new(geom.sets(), geom.assoc());
        let ops = 1 + rng.next_below(400);
        for _ in 0..ops {
            let l = rng.next_below(64);
            match rng.next_below(3) {
                0 => {
                    let got = cache.lookup(LineAddr::new(l)) == LookupResult::Hit;
                    assert_eq!(got, model.lookup(l), "lookup mismatch (seed {seed}, line {l})");
                }
                1 => {
                    let got = cache.fill(LineAddr::new(l)).map(|e| e.raw());
                    assert_eq!(got, model.fill(l), "fill mismatch (seed {seed}, line {l})");
                }
                _ => {
                    assert_eq!(
                        cache.invalidate(LineAddr::new(l)),
                        model.invalidate(l),
                        "invalidate mismatch (seed {seed}, line {l})"
                    );
                }
            }
        }
    }
}

/// Occupancy never exceeds capacity and resident lines are unique.
#[test]
fn occupancy_bounded_and_lines_unique() {
    for seed in 0..32u64 {
        let mut rng = SplitMix64::new(0x0CC ^ seed.wrapping_mul(0x9E37));
        let geom = CacheGeometry::new(8 * 4 * 128, 4, 128).unwrap();
        let mut cache = SetAssocCache::new(geom);
        let fills = 1 + rng.next_below(600);
        for _ in 0..fills {
            cache.fill(LineAddr::new(rng.next_below(512)));
            assert!(cache.occupancy() <= geom.lines());
        }
        let mut lines: Vec<u64> = cache.resident_lines().map(|l| l.raw()).collect();
        let before = lines.len();
        lines.sort_unstable();
        lines.dedup();
        assert_eq!(lines.len(), before, "duplicate resident lines (seed {seed})");
        // Everything reported resident must probe as present.
        for l in lines {
            assert!(cache.probe(LineAddr::new(l)));
        }
    }
}

/// The MSHR never exceeds its entry budget, never loses a token, and
/// never delivers a token twice.
#[test]
fn mshr_conserves_tokens() {
    for seed in 0..48u64 {
        let mut rng = SplitMix64::new(0x517 ^ seed.wrapping_mul(0xABCD));
        let mut mshr: Mshr<u32> = Mshr::new(4, 3);
        let mut submitted = Vec::new();
        let mut delivered = Vec::new();
        let mut stalled = 0usize;
        let reqs = 1 + rng.next_below(300);
        for i in 0..reqs {
            let line = rng.next_below(16);
            let token = rng.next_below(1000) as u32;
            match mshr.try_allocate(LineAddr::new(line), token) {
                Ok(_) => submitted.push(token),
                Err(t) => {
                    assert_eq!(t, token, "stall must hand the token back");
                    stalled += 1;
                }
            }
            assert!(mshr.len() <= 4);
            // Occasionally complete a line.
            if i % 5 == 4 {
                let l = rng.next_below(16);
                delivered.extend(mshr.complete(LineAddr::new(l)));
            }
        }
        // Drain everything.
        for line in 0..16u64 {
            delivered.extend(mshr.complete(LineAddr::new(line)));
        }
        assert!(mshr.is_empty());
        submitted.sort_unstable();
        delivered.sort_unstable();
        assert_eq!(
            submitted, delivered,
            "tokens lost or duplicated (seed {seed}, stalled={stalled})"
        );
    }
}
