//! Property-based tests checking the set-associative cache against a naive
//! reference model, and MSHR structural invariants.

use dcl1_cache::{CacheGeometry, LookupResult, Mshr, SetAssocCache};
use dcl1_common::LineAddr;
use proptest::prelude::*;
use std::collections::HashMap;

/// A naive per-set LRU model: each set is a Vec ordered LRU→MRU.
#[derive(Debug, Default)]
struct RefModel {
    sets: HashMap<usize, Vec<u64>>,
    assoc: usize,
    nsets: usize,
}

impl RefModel {
    fn new(nsets: usize, assoc: usize) -> Self {
        RefModel { sets: HashMap::new(), assoc, nsets }
    }
    fn set_of(&self, line: u64) -> usize {
        (line as usize) % self.nsets
    }
    fn lookup(&mut self, line: u64) -> bool {
        let set = self.set_of(line);
        let v = self.sets.entry(set).or_default();
        if let Some(pos) = v.iter().position(|&l| l == line) {
            let l = v.remove(pos);
            v.push(l);
            true
        } else {
            false
        }
    }
    fn fill(&mut self, line: u64) -> Option<u64> {
        let assoc = self.assoc;
        let set = self.set_of(line);
        let v = self.sets.entry(set).or_default();
        if let Some(pos) = v.iter().position(|&l| l == line) {
            let l = v.remove(pos);
            v.push(l);
            return None;
        }
        let evicted = if v.len() >= assoc { Some(v.remove(0)) } else { None };
        v.push(line);
        evicted
    }
    fn invalidate(&mut self, line: u64) -> bool {
        let set = self.set_of(line);
        let v = self.sets.entry(set).or_default();
        if let Some(pos) = v.iter().position(|&l| l == line) {
            v.remove(pos);
            true
        } else {
            false
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    Lookup(u64),
    Fill(u64),
    Invalidate(u64),
}

fn op_strategy(max_line: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..max_line).prop_map(Op::Lookup),
        (0..max_line).prop_map(Op::Fill),
        (0..max_line).prop_map(Op::Invalidate),
    ]
}

proptest! {
    /// Random op sequences produce identical hit/miss/eviction behaviour in
    /// the real cache and the reference model.
    #[test]
    fn cache_matches_reference_model(ops in proptest::collection::vec(op_strategy(64), 1..400)) {
        let geom = CacheGeometry::new(4 * 2 * 128, 2, 128).unwrap(); // 4 sets x 2 ways
        let mut cache = SetAssocCache::new(geom);
        let mut model = RefModel::new(geom.sets(), geom.assoc());
        for op in ops {
            match op {
                Op::Lookup(l) => {
                    let got = cache.lookup(LineAddr::new(l)) == LookupResult::Hit;
                    prop_assert_eq!(got, model.lookup(l));
                }
                Op::Fill(l) => {
                    let got = cache.fill(LineAddr::new(l)).map(|e| e.raw());
                    prop_assert_eq!(got, model.fill(l));
                }
                Op::Invalidate(l) => {
                    prop_assert_eq!(cache.invalidate(LineAddr::new(l)), model.invalidate(l));
                }
            }
        }
    }

    /// Occupancy never exceeds capacity and resident lines are unique.
    #[test]
    fn occupancy_bounded_and_lines_unique(fills in proptest::collection::vec(0u64..512, 1..600)) {
        let geom = CacheGeometry::new(8 * 4 * 128, 4, 128).unwrap();
        let mut cache = SetAssocCache::new(geom);
        for l in fills {
            cache.fill(LineAddr::new(l));
            prop_assert!(cache.occupancy() <= geom.lines());
        }
        let mut lines: Vec<u64> = cache.resident_lines().map(|l| l.raw()).collect();
        let before = lines.len();
        lines.sort_unstable();
        lines.dedup();
        prop_assert_eq!(lines.len(), before, "duplicate resident lines");
        // Everything reported resident must probe as present.
        for l in lines {
            prop_assert!(cache.probe(LineAddr::new(l)));
        }
    }

    /// The MSHR never exceeds its entry budget, never loses a token, and
    /// never delivers a token twice.
    #[test]
    fn mshr_conserves_tokens(
        reqs in proptest::collection::vec((0u64..16, 0u32..1000), 1..300),
        completions in proptest::collection::vec(0u64..16, 0..100),
    ) {
        let mut mshr: Mshr<u32> = Mshr::new(4, 3);
        let mut submitted = Vec::new();
        let mut delivered = Vec::new();
        let mut stalled = 0usize;
        let mut comp_iter = completions.into_iter();
        for (i, (line, token)) in reqs.into_iter().enumerate() {
            match mshr.try_allocate(LineAddr::new(line), token) {
                Ok(_) => submitted.push(token),
                Err(t) => {
                    prop_assert_eq!(t, token, "stall must hand the token back");
                    stalled += 1;
                }
            }
            prop_assert!(mshr.len() <= 4);
            // Occasionally complete a line.
            if i % 5 == 4 {
                if let Some(l) = comp_iter.next() {
                    delivered.extend(mshr.complete(LineAddr::new(l)));
                }
            }
        }
        // Drain everything.
        for line in 0..16u64 {
            delivered.extend(mshr.complete(LineAddr::new(line)));
        }
        prop_assert!(mshr.is_empty());
        submitted.sort_unstable();
        delivered.sort_unstable();
        prop_assert_eq!(submitted, delivered, "tokens lost or duplicated (stalled={})", stalled);
    }
}
