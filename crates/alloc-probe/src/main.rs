//! Allocation smoke test for the simulator's hot paths.
//!
//! Installs a counting global allocator, warms each structure up, then
//! drives its steady-state loop with counting enabled:
//!
//! * **Component probes** — the slab MSHR (allocate / merge /
//!   `complete_into` with a caller scratch buffer), the open-addressed
//!   `PresenceMap` (fill / probe / evict / `mean_replicas`), and the
//!   `FlatMap` index behind both (insert / probe / remove at stable
//!   capacity). These must perform **exactly zero** heap allocations in
//!   steady state: that is the contract the allocation-free refactor
//!   established, and this binary is the tripwire that keeps it.
//!
//! * **System probe** — steps a full `GpuSystem` and reports allocations
//!   per cycle. The end-to-end loop is *not* zero-alloc by design (CTA
//!   dispatch boxes new wavefront traces; every generated memory
//!   instruction carries its coalesced-access `Vec`), so this probe
//!   asserts a generous per-cycle bound instead — enough headroom for
//!   trace generation, little enough that reintroducing a per-event
//!   tree-node or per-completion `Vec` trips it.
//!
//! Exits nonzero on any violation, so CI can run it as a plain step.
//! `--json=PATH` additionally writes the measurements as a JSON fragment
//! (`{"probes": [{"name", "allocs", "bytes"}...], "system": {"per_step"}}`)
//! that `perf_sweep --allocs=PATH` embeds in `BENCH_sweep.json`, where the
//! `--compare` gate holds them against the committed baseline.

use dcl1::{Design, GpuConfig, GpuSystem, PresenceMap, SimOptions};
use dcl1_obs::registry::Registry;
use dcl1_cache::Mshr;
use dcl1_common::{FlatMap, LineAddr};
use dcl1_workloads::by_name;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Global toggle: the shim only counts while a probe window is open, so
/// setup and reporting don't pollute the numbers.
static COUNTING: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

/// System allocator shim that counts allocations while enabled. Only
/// `alloc` and `dealloc` are implemented: the default `realloc` /
/// `alloc_zeroed` route through `alloc`, so growth is counted too.
struct CountingAlloc;

// The only unsafe in the workspace: two direct delegations to the system
// allocator, with the same layout contract the caller already upheld.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `f` with allocation counting enabled; returns (allocs, bytes).
fn count<R>(f: impl FnOnce() -> R) -> (u64, u64, R) {
    ALLOCS.store(0, Ordering::Relaxed);
    BYTES.store(0, Ordering::Relaxed);
    COUNTING.store(true, Ordering::Relaxed);
    let r = f();
    COUNTING.store(false, Ordering::Relaxed);
    (ALLOCS.load(Ordering::Relaxed), BYTES.load(Ordering::Relaxed), r)
}

/// Accumulated measurements, for the human report and the `--json` dump.
#[derive(Default)]
struct Report {
    failed: bool,
    /// `(slug, allocs, bytes)` per zero-alloc component probe.
    probes: Vec<(&'static str, u64, u64)>,
    /// Allocations per cycle for the system probes (worst of the two).
    per_step: f64,
}

impl Report {
    fn to_json(&self) -> String {
        let mut out = String::from("{\"probes\": [");
        for (i, (slug, allocs, bytes)) in self.probes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"name\": \"{slug}\", \"allocs\": {allocs}, \"bytes\": {bytes}}}"
            ));
        }
        out.push_str(&format!("], \"system\": {{\"per_step\": {:.4}}}}}\n", self.per_step));
        out
    }
}

/// Asserts a probe window allocated nothing; reports and flips `failed`
/// otherwise. `slug` is the stable machine name the `--json` dump (and
/// the `perf_sweep --compare` baseline) keys the probe by.
fn expect_zero(slug: &'static str, name: &str, allocs: u64, bytes: u64, report: &mut Report) {
    report.probes.push((slug, allocs, bytes));
    if allocs == 0 {
        println!("{name:<44} OK   (0 allocations)");
    } else {
        println!("{name:<44} FAIL ({allocs} allocations, {bytes} bytes)");
        report.failed = true;
    }
}

const STEADY_OPS: u64 = 1_000_000;

fn probe_mshr(report: &mut Report) {
    let mut mshr: Mshr<u64> = Mshr::new(64, 8);
    let mut scratch: Vec<u64> = Vec::new();
    let drive = |mshr: &mut Mshr<u64>, scratch: &mut Vec<u64>, iters: u64| {
        for i in 0..iters {
            let line = LineAddr::new(i % 48);
            let _ = mshr.try_allocate(line, i);
            let _ = mshr.try_allocate(line, i + 1);
            if i % 3 == 0 {
                scratch.clear();
                mshr.complete_into(line, scratch);
            }
        }
    };
    // Warm up: first-touch growth of waiter vectors and the scratch.
    drive(&mut mshr, &mut scratch, 10_000);
    let (allocs, bytes, ()) = count(|| drive(&mut mshr, &mut scratch, STEADY_OPS));
    expect_zero("mshr", "mshr slab (alloc/merge/complete_into)", allocs, bytes, report);
}

fn probe_presence(report: &mut Report) {
    const LINES: u64 = 4096;
    let mut p = PresenceMap::with_capacity(LINES as usize);
    let drive = |p: &mut PresenceMap, iters: u64| {
        let mut mean = 0.0;
        for i in 0..iters {
            let line = LineAddr::new(i % LINES);
            p.on_fill(line);
            if i % 2 == 0 {
                p.on_evict(line);
            }
            if i % 64 == 0 {
                mean = p.mean_replicas();
            }
        }
        mean
    };
    drive(&mut p, 2 * LINES);
    let (allocs, bytes, mean) = count(|| drive(&mut p, STEADY_OPS));
    assert!(mean >= 0.0, "mean_replicas must be defined");
    expect_zero("presence", "presence map (fill/evict/mean_replicas)", allocs, bytes, report);
}

fn probe_flatmap(report: &mut Report) {
    const KEYS: u64 = 4096;
    let mut map: FlatMap<u64> = FlatMap::with_capacity(KEYS as usize);
    let drive = |map: &mut FlatMap<u64>, iters: u64| {
        for i in 0..iters {
            let key = i % KEYS;
            map.insert(key, i);
            std::hint::black_box(map.get(key));
            if i % 2 == 1 {
                map.remove(key);
            }
        }
    };
    drive(&mut map, 2 * KEYS);
    let (allocs, bytes, ()) = count(|| drive(&mut map, STEADY_OPS));
    expect_zero("flatmap", "flat map (insert/probe/remove at capacity)", allocs, bytes, report);
}

fn probe_epoch_exchange(report: &mut Report) {
    use dcl1_noc::{Crossbar, CrossbarConfig, EpochBatch, EpochKey, Packet};
    // The epoch-barrier flit exchange the sharded machine runs every
    // cycle: stage in key order, seal, inject into a crossbar, clear
    // keeping the allocation. After the first cycle grows the batch to
    // its working set, the loop must be allocation-free — the barrier
    // sits on the critical path of every sharded cycle.
    let mut x: Crossbar<u64> = Crossbar::new(CrossbarConfig::new(8, 4).expect("valid shape"));
    let mut batch: EpochBatch<Packet<u64>> = EpochBatch::with_capacity(8);
    let drive = |x: &mut Crossbar<u64>, batch: &mut EpochBatch<Packet<u64>>, iters: u64| {
        for cycle in 1..=iters {
            for src in 0..8u64 {
                batch.stage(
                    EpochKey { cycle, source: src, seq: cycle * 8 + src },
                    Packet::new(src as usize, (src % 4) as usize, 2, src),
                );
            }
            batch.seal();
            x.inject_batch(batch, |_, _| {});
            batch.clear();
            x.tick();
            for out in 0..4 {
                while x.pop_output(out).is_some() {}
            }
        }
    };
    drive(&mut x, &mut batch, 10_000);
    let (allocs, bytes, ()) = count(|| drive(&mut x, &mut batch, STEADY_OPS / 8));
    expect_zero("epoch_exchange", "epoch exchange (stage/seal/inject/clear)", allocs, bytes, report);
}

fn probe_registry(report: &mut Report) {
    // The obs counter registry sits inside the measured cycle loop when
    // `--metrics`/the sweep enables it: every mutation must be index
    // arithmetic on preallocated slots, and a text snapshot into a reused
    // buffer must not grow it. Registration (the only allocating phase)
    // happens outside the counted window, as it does in the machine.
    let mut reg = Registry::new();
    let c = reg.counter("probe.events");
    let g = reg.gauge("probe.level");
    let h = reg.histogram("probe.latency");
    let mut out = String::new();
    let drive = |reg: &mut Registry, out: &mut String, iters: u64| {
        for i in 0..iters {
            reg.add(c, 3);
            reg.set(g, i % 4096);
            reg.observe(h, i % 100_000);
            if i % 1024 == 0 {
                out.clear();
                reg.render_into(out);
            }
        }
    };
    // Warm: drives values into their steady digit range and grows the
    // render buffer once; headroom for the counted loop's extra digits.
    drive(&mut reg, &mut out, STEADY_OPS);
    out.reserve(1024);
    let (allocs, bytes, ()) = count(|| drive(&mut reg, &mut out, STEADY_OPS));
    assert!(!out.is_empty(), "render must produce a snapshot");
    expect_zero("registry", "counter registry (add/set/observe/render)", allocs, bytes, report);
}

fn probe_store_mem_hit(report: &mut Report) {
    use dcl1_store::{Codec, ResultStore, StoreConfig};
    struct NumCodec;
    impl Codec<u64> for NumCodec {
        fn encode(&self, v: &u64) -> String {
            v.to_string()
        }
        fn decode(&self, body: &str) -> Option<u64> {
            body.parse().ok()
        }
    }
    // Memory-only store: the probe drives the production lookup path that
    // serves every warm-sweep point — shard lock, FlatMap probe, full-key
    // verify, LRU relink, Arc clone. The tiered-store contract is that
    // this path is allocation-free in steady state.
    let store: ResultStore<u64> = ResultStore::open(
        &StoreConfig {
            mem_budget_bytes: 1 << 20,
            mem_shards: 8,
            disk: None,
            shared: None,
            shared_writeback: false,
        },
        NumCodec,
    );
    const KEYS: u64 = 512;
    for k in 0..KEYS {
        // Spread the leading byte so every shard participates.
        let key = (u128::from(k) << 120) | u128::from(k);
        store.insert_mem_only(key, &k);
    }
    let mut corruptions = Vec::new();
    let drive = |store: &ResultStore<u64>, corr: &mut Vec<dcl1_store::Corruption>, iters: u64| {
        for i in 0..iters {
            let k = i % KEYS;
            let key = (u128::from(k) << 120) | u128::from(k);
            let l = store.lookup(key, corr);
            assert!(l.hit.is_some(), "probe key must stay resident");
        }
    };
    drive(&store, &mut corruptions, 10_000);
    let (allocs, bytes, ()) = count(|| drive(&store, &mut corruptions, STEADY_OPS));
    expect_zero("store_mem_hit", "result store (mem-tier lookup hit)", allocs, bytes, report);
}

fn probe_system(report: &mut Report) {
    // Generous tripwire, not a zero-alloc claim: trace generation
    // legitimately allocates (one access `Vec` per memory instruction,
    // CTA dispatch boxes wavefront traces). Reintroducing per-event heap
    // structures on the completion paths multiplies this figure.
    const MAX_ALLOCS_PER_STEP: f64 = 8.0;
    const WARMUP_STEPS: u64 = 20_000;
    const PROBE_STEPS: u64 = 20_000;
    let cfg = GpuConfig::default();
    let app = by_name("T-AlexNet").expect("known workload");
    let mut sys = GpuSystem::build(&cfg, &Design::flagship(&cfg), &app, SimOptions::default())
        .expect("flagship design builds");
    for _ in 0..WARMUP_STEPS {
        sys.step();
    }
    let (allocs, bytes, ()) = count(|| {
        for _ in 0..PROBE_STEPS {
            sys.step();
        }
    });
    let per_step = allocs as f64 / PROBE_STEPS as f64;
    let ok = per_step <= MAX_ALLOCS_PER_STEP;
    println!(
        "system step loop (bound {MAX_ALLOCS_PER_STEP}/cycle)          {} ({per_step:.2} allocs/cycle, {bytes} bytes over {PROBE_STEPS} cycles)",
        if ok { "OK  " } else { "FAIL" },
    );
    report.per_step = report.per_step.max(per_step);
    if !ok {
        report.failed = true;
    }
}

fn probe_sharded_system(report: &mut Report) {
    // The sharded step loop (worker pool off, so the probe measures the
    // partitioning machinery itself: mailbox swaps, per-cluster epoch
    // batches, presence-log replay) is held to the same per-cycle bound
    // as the sequential loop — sharding must not reintroduce per-event
    // heap traffic.
    const MAX_ALLOCS_PER_STEP: f64 = 8.0;
    const WARMUP_STEPS: u64 = 20_000;
    const PROBE_STEPS: u64 = 20_000;
    let cfg = GpuConfig::default();
    let app = by_name("T-AlexNet").expect("known workload");
    let mut sys = GpuSystem::build(&cfg, &Design::flagship(&cfg), &app, SimOptions::default())
        .expect("flagship design builds");
    sys.set_shards(2);
    sys.set_shard_threads(false);
    for _ in 0..WARMUP_STEPS {
        sys.step();
    }
    let (allocs, bytes, ()) = count(|| {
        for _ in 0..PROBE_STEPS {
            sys.step();
        }
    });
    let per_step = allocs as f64 / PROBE_STEPS as f64;
    let ok = per_step <= MAX_ALLOCS_PER_STEP;
    println!(
        "sharded step loop (bound {MAX_ALLOCS_PER_STEP}/cycle)         {} ({per_step:.2} allocs/cycle, {bytes} bytes over {PROBE_STEPS} cycles)",
        if ok { "OK  " } else { "FAIL" },
    );
    report.per_step = report.per_step.max(per_step);
    if !ok {
        report.failed = true;
    }
}

fn main() {
    let json_path = std::env::args().skip(1).find_map(|a| {
        a.strip_prefix("--json=").map(std::path::PathBuf::from)
    });
    println!("alloc-probe: steady-state allocation audit ({STEADY_OPS} ops per component)\n");
    let mut report = Report::default();
    probe_mshr(&mut report);
    probe_presence(&mut report);
    probe_flatmap(&mut report);
    probe_epoch_exchange(&mut report);
    probe_registry(&mut report);
    probe_store_mem_hit(&mut report);
    probe_system(&mut report);
    probe_sharded_system(&mut report);
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, report.to_json()) {
            eprintln!("alloc-probe: cannot write {}: {e}", path.display());
            std::process::exit(2);
        }
        println!("\nalloc-probe: measurements written to {}", path.display());
    }
    if report.failed {
        println!("\nalloc-probe: FAILED — a hot path allocated in steady state");
        std::process::exit(1);
    }
    println!("\nalloc-probe: all probes passed");
}
