//! Trace generation: [`AppSpec`] → deterministic per-wavefront
//! instruction streams.

use crate::spec::{AppSpec, STRIPE_LINES};
use dcl1_common::{LineAddr, SplitMix64};
use dcl1_gpu::{MemAccess, MemInstr, MemKind, TraceFactory, TraceSource, WavefrontInstr};

/// Line-number bases for the synthetic address-space layout. Regions are
/// far apart so they can never alias.
const SHARED_BASE: u64 = 0;
const ATOMIC_BASE: u64 = 1 << 22;
const AUX_BASE: u64 = 1 << 23;
/// Stripe-aligned so camped hot lines keep their residue class.
const HOT_BASE: u64 = 60_000 * STRIPE_LINES;
const STREAM_BASE: u64 = 1 << 28;

/// Residue class of the camped hot stripe.
const STRIPE_RESIDUE: u64 = 7;

/// One wavefront's instruction stream for an [`AppSpec`].
#[derive(Debug)]
pub struct AppTrace {
    spec: AppSpec,
    rng: SplitMix64,
    cta: u32,
    wf_uid: u64,
    remaining: u32,
    stream_cursor: u64,
}

impl AppTrace {
    /// Creates the trace of wavefront `wf` of CTA `cta`.
    pub fn new(spec: AppSpec, cta: u32, wf: u32) -> Self {
        let wf_uid = cta as u64 * spec.wavefronts_per_cta as u64 + wf as u64;
        AppTrace {
            rng: SplitMix64::new(0xA99_5EED).split(wf_uid),
            spec,
            cta,
            wf_uid,
            remaining: spec.instrs_for_cta(cta),
            stream_cursor: 0,
        }
    }

    fn shared_line(&mut self) -> u64 {
        let s = &self.spec;
        if s.home_skew > 0.0 && self.rng.chance(s.home_skew) {
            // Camped accesses: confined to one residue class mod STRIPE.
            // Few enough stripes that the camped set fits in every cache
            // (private L1s hit on their replicas; under the shared design
            // all cores hammer the single home node's port — the paper's
            // partition camping).
            const CAMPED_STRIPES: u64 = 16;
            SHARED_BASE + self.rng.next_below(CAMPED_STRIPES) * STRIPE_LINES + STRIPE_RESIDUE
        } else {
            SHARED_BASE + self.rng.next_below(s.shared_lines.max(1))
        }
    }

    fn private_hot_line(&mut self) -> u64 {
        let s = &self.spec;
        let idx = self.rng.next_below(s.private_hot_lines.max(1));
        // For striped apps, `home_skew` is the fraction of hot accesses
        // that land on the camped stripe; the rest use packed per-CTA
        // tiles (real kernels mix camped column walks with well-spread
        // row accesses).
        if s.striped_private && self.rng.chance(s.home_skew) {
            HOT_BASE + (self.cta as u64 * s.private_hot_lines + idx) * STRIPE_LINES + STRIPE_RESIDUE
        } else {
            HOT_BASE + self.cta as u64 * s.private_hot_lines + idx
        }
    }

    fn stream_line(&mut self) -> u64 {
        // Per-wavefront stream stride: prime, so stream bases spread over
        // every L2 slice and home-node residue instead of camping on the
        // aligned slot a power-of-two stride would hit.
        const STREAM_STRIDE: u64 = 8209;
        let line = STREAM_BASE + self.wf_uid * STREAM_STRIDE + self.stream_cursor;
        self.stream_cursor += 1;
        line
    }

    fn data_line(&mut self) -> u64 {
        let s = &self.spec;
        let r = self.rng.next_f64();
        if r < s.shared_fraction {
            self.shared_line()
        } else if r < s.shared_fraction + s.private_hot_fraction {
            self.private_hot_line()
        } else {
            self.stream_line()
        }
    }

    /// Stores target output data: the uncamped shared region (in place)
    /// or the write stream — never the camped/striped read tiles, which
    /// in the modelled kernels (GEMM operands, BVH nodes, weights) are
    /// read-only.
    fn store_line(&mut self) -> u64 {
        let s = &self.spec;
        if s.shared_fraction > 0.0 && self.rng.chance(s.shared_fraction) {
            SHARED_BASE + self.rng.next_below(s.shared_lines.max(1))
        } else {
            self.stream_line()
        }
    }
}

impl TraceSource for AppTrace {
    // access_span is a single-digit spec constant; the draw fits u32.
    #[expect(clippy::cast_possible_truncation)]
    fn next_instr(&mut self) -> WavefrontInstr {
        if self.remaining == 0 {
            return WavefrontInstr::Done;
        }
        self.remaining -= 1;

        if !self.rng.chance(self.spec.mem_fraction) {
            return WavefrontInstr::Alu { latency: self.spec.alu_latency };
        }

        // Pick the memory-instruction kind.
        let s = self.spec;
        let k = self.rng.next_f64();
        let (kind, line0) = if k < s.aux_fraction {
            (MemKind::Aux, AUX_BASE + self.rng.next_below(512))
        } else if k < s.aux_fraction + s.atomic_fraction {
            (MemKind::Atomic, ATOMIC_BASE + self.rng.next_below(64))
        } else if k < s.aux_fraction + s.atomic_fraction + s.store_fraction {
            (MemKind::Store, self.store_line())
        } else {
            (MemKind::Load, self.data_line())
        };

        // Fan out into 1..=access_span coalesced transactions. Regular
        // apps stay at one; irregular ones draw extra independent lines
        // from the same stream.
        let n = if s.access_span > 1 && kind == MemKind::Load {
            1 + self.rng.next_below(s.access_span as u64) as u32
        } else {
            1
        };
        let mut accesses = Vec::with_capacity(n as usize);
        accesses.push(MemAccess { line: LineAddr::new(line0), bytes: s.bytes_per_txn });
        for _ in 1..n {
            accesses.push(MemAccess {
                line: LineAddr::new(self.data_line()),
                bytes: s.bytes_per_txn,
            });
        }
        WavefrontInstr::Mem(MemInstr { kind, accesses })
    }
}

impl TraceFactory for AppSpec {
    fn wavefront_trace(&self, cta: u32, wf: u32) -> Box<dyn TraceSource> {
        Box::new(AppTrace::new(*self, cta, wf))
    }

    fn total_ctas(&self) -> u32 {
        self.ctas
    }

    fn wavefronts_per_cta(&self) -> u32 {
        self.wavefronts_per_cta
    }
}

#[cfg(test)]
#[allow(clippy::cast_possible_truncation)] // test values are tiny
mod tests {
    use super::*;
    use crate::spec::catalog;

    fn drain(t: &mut AppTrace) -> Vec<WavefrontInstr> {
        let mut v = Vec::new();
        loop {
            match t.next_instr() {
                WavefrontInstr::Done => break,
                i => v.push(i),
            }
        }
        v
    }

    #[test]
    fn traces_are_deterministic_per_wavefront() {
        let spec = catalog()[1]; // C-BFS
        let a = drain(&mut AppTrace::new(spec, 3, 1));
        let b = drain(&mut AppTrace::new(spec, 3, 1));
        assert_eq!(a, b);
        let c = drain(&mut AppTrace::new(spec, 3, 2));
        assert_ne!(a, c, "different wavefronts should differ");
    }

    #[test]
    fn trace_length_matches_spec() {
        for spec in catalog() {
            let n = drain(&mut AppTrace::new(spec, 0, 0)).len();
            assert_eq!(n as u32, spec.instrs_for_cta(0), "{}", spec.name);
        }
    }

    #[test]
    fn mem_fraction_roughly_respected() {
        let spec = catalog()[0]; // C-BLK, mem 0.45
        let instrs = drain(&mut AppTrace::new(spec, 0, 0));
        let mem = instrs.iter().filter(|i| matches!(i, WavefrontInstr::Mem(_))).count();
        let frac = mem as f64 / instrs.len() as f64;
        assert!((frac - spec.mem_fraction).abs() < 0.15, "mem fraction {frac}");
    }

    #[test]
    fn shared_apps_emit_shared_lines_across_ctas() {
        let spec = catalog().into_iter().find(|a| a.name == "T-AlexNet").unwrap();
        let lines = |cta| {
            let mut t = AppTrace::new(spec, cta, 0);
            let mut set = std::collections::HashSet::new();
            for i in drain(&mut t) {
                if let WavefrontInstr::Mem(m) = i {
                    for a in m.accesses {
                        if a.line.raw() < 1 << 20 {
                            set.insert(a.line.raw());
                        }
                    }
                }
            }
            set
        };
        let a = lines(0);
        let b = lines(17);
        let inter = a.intersection(&b).count();
        assert!(inter > 0, "CTAs of a shared app must touch common lines");
        // All shared lines fall inside the declared region.
        assert!(a.iter().all(|&l| l < spec.shared_lines));
    }

    #[test]
    fn striped_private_lines_share_a_home_residue() {
        let spec = catalog().into_iter().find(|a| a.name == "P-GEMM").unwrap();
        let mut t = AppTrace::new(spec, 5, 0);
        let (mut striped, mut packed) = (0usize, 0usize);
        for i in drain(&mut t) {
            if let WavefrontInstr::Mem(m) = i {
                for a in m.accesses {
                    let l = a.line.raw();
                    if (HOT_BASE..STREAM_BASE).contains(&l) {
                        if l % STRIPE_LINES == STRIPE_RESIDUE {
                            striped += 1;
                        } else {
                            packed += 1;
                        }
                    }
                }
            }
        }
        // `home_skew` of the hot accesses camp on the stripe; the rest
        // are packed per-CTA tiles.
        assert!(striped > 0, "no camped hot lines");
        assert!(packed > 0, "no packed hot lines");
        let frac = striped as f64 / (striped + packed) as f64;
        assert!((frac - spec.home_skew).abs() < 0.2, "striped fraction {frac}");
    }

    #[test]
    fn skewed_shared_lines_prefer_the_stripe() {
        let spec = catalog().into_iter().find(|a| a.name == "P-2MM").unwrap();
        let mut t = AppTrace::new(spec, 1, 0);
        let mut on_stripe = 0usize;
        let mut total = 0usize;
        // Camped lines live in the 48-stripe span; plain shared lines in
        // the declared region. Stores never camp, so count loads only.
        let shared_span = spec.shared_lines.max(16 * STRIPE_LINES);
        for i in drain(&mut t) {
            if let WavefrontInstr::Mem(m) = i {
                if m.kind != MemKind::Load {
                    continue;
                }
                for a in m.accesses {
                    let l = a.line.raw();
                    if l < shared_span {
                        total += 1;
                        if l % STRIPE_LINES == STRIPE_RESIDUE {
                            on_stripe += 1;
                        }
                    }
                }
            }
        }
        assert!(total > 0);
        let frac = on_stripe as f64 / total as f64;
        assert!(
            frac > 0.6 * spec.home_skew,
            "camped fraction {frac} too low for skew {}",
            spec.home_skew
        );
    }

    #[test]
    fn streaming_never_reuses_lines() {
        let spec = catalog()[0]; // C-BLK: pure streaming
        let mut t = AppTrace::new(spec, 0, 0);
        let mut seen = std::collections::HashSet::new();
        for i in drain(&mut t) {
            if let WavefrontInstr::Mem(m) = i {
                if m.kind == MemKind::Load || m.kind == MemKind::Store {
                    for a in m.accesses {
                        if a.line.raw() >= STREAM_BASE {
                            assert!(seen.insert(a.line.raw()), "stream reuse at {}", a.line);
                        }
                    }
                }
            }
        }
    }
}
