//! Synthetic GPGPU workloads calibrated to the 28 applications the paper
//! evaluates (CUDA-SDK `C-*`, Rodinia `R-*`, SHOC `S-*`, PolyBench `P-*`,
//! Tango `T-*`).
//!
//! # Why synthetic traces reproduce the paper
//!
//! Every result in the paper is driven by a small set of memory-stream
//! properties, not by instruction semantics:
//!
//! * **replication ratio** — how often a missed line is resident in
//!   another L1, set here by the fraction of accesses aimed at a region
//!   *shared* by all CTAs;
//! * **capacity sensitivity** — whether the shared/hot region fits in one
//!   L1 (16 KB = 128 lines), an aggregated DC-L1 (256 lines), a cluster's
//!   DC-L1s (1024 lines under `Sh40+C10`) or only the full L1 budget
//!   (10240 lines) — region sizes below are chosen against these
//!   capacities to produce each paper behaviour class;
//! * **partition camping** — skew of accesses toward one home slot,
//!   modelled with a hot address stride (see [`STRIPE_LINES`]);
//! * **latency tolerance** — occupancy (CTAs × wavefronts) and memory
//!   intensity;
//! * **bandwidth sensitivity** — memory intensity × hit rate, which
//!   saturates the L1 data port / NoC#1 instead of the L2.
//!
//! The per-app parameter vectors are **calibrations, not measurements**:
//! apps the paper names inherit its Fig 1 characterization; apps the text
//! never details are plausible members of the same suites and are marked
//! [`AppSpec::synthetic`].
//!
//! # Examples
//!
//! ```
//! use dcl1_workloads::{all_apps, by_name};
//!
//! assert_eq!(all_apps().len(), 28);
//! let alexnet = by_name("T-AlexNet").unwrap();
//! assert!(alexnet.replication_sensitive);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod gen;
mod spec;
mod tracefile;

pub use gen::AppTrace;
pub use spec::{AppSpec, Suite, STRIPE_LINES};
pub use tracefile::{record_trace, FileTraceFactory};

/// All 28 evaluated applications, in suite order.
pub fn all_apps() -> Vec<AppSpec> {
    spec::catalog()
}

/// Looks up an application by its paper name (e.g. `"T-AlexNet"`).
pub fn by_name(name: &str) -> Option<AppSpec> {
    all_apps().into_iter().find(|a| a.name == name)
}

/// The 12 replication-sensitive applications (paper Fig 1 criteria:
/// replication ratio > 25%, L1 miss rate > 50%, > 5% speedup at 16×
/// capacity).
pub fn replication_sensitive() -> Vec<AppSpec> {
    all_apps().into_iter().filter(|a| a.replication_sensitive).collect()
}

/// The 16 replication-insensitive applications.
pub fn replication_insensitive() -> Vec<AppSpec> {
    all_apps().into_iter().filter(|a| !a.replication_sensitive).collect()
}

/// The five replication-insensitive applications that suffer most under
/// the fully-shared Sh40 design (paper Fig 9/13a).
pub fn poor_performing() -> Vec<AppSpec> {
    all_apps().into_iter().filter(|a| a.poor_performing).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_28_apps_with_unique_names() {
        let apps = all_apps();
        assert_eq!(apps.len(), 28);
        let mut names: Vec<&str> = apps.iter().map(|a| a.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 28, "duplicate app names");
    }

    #[test]
    fn classification_counts_match_paper() {
        assert_eq!(replication_sensitive().len(), 12);
        assert_eq!(replication_insensitive().len(), 16);
        assert_eq!(poor_performing().len(), 5);
        // Poor performers are a subset of the insensitive class.
        assert!(poor_performing().iter().all(|a| !a.replication_sensitive));
    }

    #[test]
    fn paper_named_apps_present() {
        for name in [
            "C-BLK", "C-RAY", "C-BFS", "C-NN", "T-AlexNet", "T-ResNet", "T-SqueezeNet",
            "P-2MM", "P-3MM", "P-GEMM", "P-SYRK", "P-2DCONV", "P-3DCONV", "R-LUD", "R-SC",
            "S-Reduction",
        ] {
            let app = by_name(name).unwrap_or_else(|| panic!("{name} missing"));
            assert!(!app.synthetic, "{name} is named by the paper");
        }
    }

    #[test]
    fn poor_performers_match_fig9() {
        let names: Vec<&str> = poor_performing().iter().map(|a| a.name).collect();
        for n in ["C-NN", "C-RAY", "P-3MM", "P-GEMM", "P-2DCONV"] {
            assert!(names.contains(&n), "{n} should be poor-performing");
        }
    }
}
