//! Recording and replaying instruction traces.
//!
//! The simulator is trace-driven: any [`TraceFactory`] works. This module
//! adds a compact binary on-disk format so workloads can be *recorded*
//! once (from the synthetic generators, or converted from real GPU
//! traces) and *replayed* bit-identically — the route by which real
//! GPGPU-Sim/NVBit traces can be plugged into this reproduction.
//!
//! # Format (`DCL1TRC1`)
//!
//! ```text
//! magic "DCL1TRC1" | u32 ctas | u32 wavefronts_per_cta
//! per wavefront (CTA-major order):
//!   u32 instruction_count
//!   per instruction:
//!     0x00 u8 latency                  -- ALU
//!     0x01..=0x04 u8 n, n × (u64 line, u8 sectors)  -- Load/Store/Atomic/Aux
//! ```
//!
//! All integers are little-endian; `sectors` is `bytes / 32`.
//!
//! # Examples
//!
//! ```no_run
//! use dcl1_workloads::{by_name, record_trace, FileTraceFactory};
//!
//! let app = by_name("C-BFS").unwrap().scaled(1, 16);
//! record_trace(&app, "c-bfs.dcl1trc")?;
//! let replay = FileTraceFactory::load("c-bfs.dcl1trc")?;
//! # Ok::<(), std::io::Error>(())
//! ```

use dcl1_common::addr::SECTOR_SIZE;
use dcl1_common::LineAddr;
use dcl1_gpu::{MemAccess, MemInstr, MemKind, TraceFactory, TraceSource, VecTrace, WavefrontInstr};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"DCL1TRC1";

fn kind_tag(kind: MemKind) -> u8 {
    match kind {
        MemKind::Load => 0x01,
        MemKind::Store => 0x02,
        MemKind::Atomic => 0x03,
        MemKind::Aux => 0x04,
    }
}

fn tag_kind(tag: u8) -> Option<MemKind> {
    Some(match tag {
        0x01 => MemKind::Load,
        0x02 => MemKind::Store,
        0x03 => MemKind::Atomic,
        0x04 => MemKind::Aux,
        _ => return None,
    })
}

/// Records every wavefront of `factory` into the binary trace file at
/// `path`.
///
/// # Errors
///
/// Returns any I/O error from creating or writing the file.
// On-disk field widths (u32 counts, u8 latencies/sector counts) bound
// every cast; values above them cannot be produced by the generators.
#[expect(clippy::cast_possible_truncation)]
pub fn record_trace(factory: &dyn TraceFactory, path: impl AsRef<Path>) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&factory.total_ctas().to_le_bytes())?;
    w.write_all(&factory.wavefronts_per_cta().to_le_bytes())?;
    for cta in 0..factory.total_ctas() {
        for wf in 0..factory.wavefronts_per_cta() {
            let mut src = factory.wavefront_trace(cta, wf);
            let mut instrs = Vec::new();
            loop {
                match src.next_instr() {
                    WavefrontInstr::Done => break,
                    i => instrs.push(i),
                }
            }
            w.write_all(&(instrs.len() as u32).to_le_bytes())?;
            for instr in &instrs {
                match instr {
                    WavefrontInstr::Alu { latency } => {
                        w.write_all(&[0x00, (*latency).min(255) as u8])?;
                    }
                    WavefrontInstr::Mem(m) => {
                        w.write_all(&[kind_tag(m.kind), m.accesses.len() as u8])?;
                        for a in &m.accesses {
                            w.write_all(&a.line.raw().to_le_bytes())?;
                            w.write_all(&[(a.bytes / SECTOR_SIZE as u32).max(1) as u8])?;
                        }
                    }
                    WavefrontInstr::Done => unreachable!("loop breaks on Done"),
                }
            }
        }
    }
    w.flush()
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.to_string())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_u8(r: &mut impl Read) -> io::Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

/// A [`TraceFactory`] replaying a recorded trace file from memory.
#[derive(Debug)]
pub struct FileTraceFactory {
    ctas: u32,
    wavefronts_per_cta: u32,
    /// Wavefront traces in CTA-major order.
    traces: Vec<Vec<WavefrontInstr>>,
}

impl FileTraceFactory {
    /// Loads a trace file into memory.
    ///
    /// # Errors
    ///
    /// Returns an I/O error on read failure, or `InvalidData` if the file
    /// is not a well-formed `DCL1TRC1` trace.
    // Sector counts were stored as u8; the u32 product is exact.
    #[expect(clippy::cast_possible_truncation)]
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let mut r = BufReader::new(File::open(path)?);
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(bad("not a DCL1TRC1 trace file"));
        }
        let ctas = read_u32(&mut r)?;
        let wavefronts_per_cta = read_u32(&mut r)?;
        let total = (ctas as usize)
            .checked_mul(wavefronts_per_cta as usize)
            .ok_or_else(|| bad("wavefront count overflows"))?;
        let mut traces = Vec::with_capacity(total);
        for _ in 0..total {
            let n = read_u32(&mut r)? as usize;
            let mut instrs = Vec::with_capacity(n);
            for _ in 0..n {
                let tag = read_u8(&mut r)?;
                if tag == 0x00 {
                    instrs.push(WavefrontInstr::Alu { latency: read_u8(&mut r)? as u32 });
                } else {
                    let kind = tag_kind(tag).ok_or_else(|| bad("unknown instruction tag"))?;
                    let count = read_u8(&mut r)? as usize;
                    if count == 0 {
                        return Err(bad("memory instruction with zero accesses"));
                    }
                    let mut accesses = Vec::with_capacity(count);
                    for _ in 0..count {
                        let line = read_u64(&mut r)?;
                        let sectors = read_u8(&mut r)? as u32;
                        accesses.push(MemAccess {
                            line: LineAddr::new(line),
                            bytes: sectors.max(1) * SECTOR_SIZE as u32,
                        });
                    }
                    instrs.push(WavefrontInstr::Mem(MemInstr { kind, accesses }));
                }
            }
            traces.push(instrs);
        }
        Ok(FileTraceFactory { ctas, wavefronts_per_cta, traces })
    }

    /// Total instructions across all wavefronts.
    pub fn total_instructions(&self) -> u64 {
        self.traces.iter().map(|t| t.len() as u64).sum()
    }
}

impl TraceFactory for FileTraceFactory {
    fn wavefront_trace(&self, cta: u32, wf: u32) -> Box<dyn TraceSource> {
        let idx = cta as usize * self.wavefronts_per_cta as usize + wf as usize;
        Box::new(VecTrace::new(self.traces[idx].clone()))
    }

    fn total_ctas(&self) -> u32 {
        self.ctas
    }

    fn wavefronts_per_cta(&self) -> u32 {
        self.wavefronts_per_cta
    }
}

#[cfg(test)]
#[allow(clippy::cast_possible_truncation)] // test values are tiny
mod tests {
    use super::*;
    use crate::by_name;

    fn drain(mut t: Box<dyn TraceSource>) -> Vec<WavefrontInstr> {
        let mut v = Vec::new();
        loop {
            match t.next_instr() {
                WavefrontInstr::Done => break,
                i => v.push(i),
            }
        }
        v
    }

    #[test]
    fn round_trip_preserves_every_instruction() {
        let app = by_name("C-BFS").unwrap().scaled(1, 64);
        let mut small = app;
        small.ctas = 3;
        let dir = std::env::temp_dir().join("dcl1trc_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round_trip.dcl1trc");
        record_trace(&small, &path).unwrap();
        let replay = FileTraceFactory::load(&path).unwrap();
        assert_eq!(replay.total_ctas(), small.ctas);
        assert_eq!(replay.wavefronts_per_cta(), small.wavefronts_per_cta);
        for cta in 0..small.ctas {
            for wf in 0..small.wavefronts_per_cta {
                let orig = drain(small.wavefront_trace(cta, wf));
                let got = drain(replay.wavefront_trace(cta, wf));
                assert_eq!(orig, got, "cta {cta} wf {wf} diverged");
            }
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_garbage() {
        let dir = std::env::temp_dir().join("dcl1trc_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.dcl1trc");
        std::fs::write(&path, b"not a trace at all").unwrap();
        let err = FileTraceFactory::load(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_truncated_file() {
        let app = by_name("C-BLK").unwrap().scaled(1, 64);
        let mut small = app;
        small.ctas = 2;
        let dir = std::env::temp_dir().join("dcl1trc_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trunc.dcl1trc");
        record_trace(&small, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(FileTraceFactory::load(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn replayed_factory_drives_a_simulation() {
        // The replay must be usable anywhere an AppSpec is.
        let app = by_name("C-HIST").unwrap().scaled(1, 64);
        let mut small = app;
        small.ctas = 2;
        let dir = std::env::temp_dir().join("dcl1trc_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sim.dcl1trc");
        record_trace(&small, &path).unwrap();
        let replay = FileTraceFactory::load(&path).unwrap();
        assert_eq!(
            replay.total_instructions(),
            small.total_instructions(),
            "replay must carry the full kernel"
        );
        std::fs::remove_file(path).ok();
    }
}
