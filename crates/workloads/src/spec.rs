//! Per-application specifications.


/// Benchmark suite an application belongs to (paper §VII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// NVIDIA CUDA SDK samples (`C-*`).
    CudaSdk,
    /// Rodinia (`R-*`).
    Rodinia,
    /// SHOC (`S-*`).
    Shoc,
    /// PolyBench/GPU (`P-*`).
    PolyBench,
    /// Tango DNN suite (`T-*`).
    Tango,
}

/// Hot-stripe stride, in lines, used to model **partition camping**.
///
/// Lines congruent modulo `STRIPE_LINES` map to the same home DC-L1 slot
/// under every configuration the paper evaluates on the 80-core machine:
/// 320 is a common multiple of the 40-node interleave (Sh40), the 4-slot
/// per-cluster interleave (Sh40+C10) and the 32-slice L2 interleave, so a
/// workload whose hot lines share a residue class camps on one home node
/// — and on one node *per cluster* under the clustered design, which is
/// exactly the relief mechanism of paper §VI-B.
pub const STRIPE_LINES: u64 = 320;

/// A synthetic application: CTA geometry plus a memory-stream
/// characterization (see the [crate docs](crate) for the model).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AppSpec {
    /// Paper name, e.g. `"T-AlexNet"`.
    pub name: &'static str,
    /// Suite.
    pub suite: Suite,
    /// Grid size in CTAs.
    pub ctas: u32,
    /// Wavefronts per CTA.
    pub wavefronts_per_cta: u32,
    /// Instructions per wavefront (before imbalance scaling).
    pub instrs_per_wavefront: u32,
    /// Probability an instruction is a memory instruction.
    pub mem_fraction: f64,
    /// Of memory instructions: fraction that are stores.
    pub store_fraction: f64,
    /// Of memory instructions: fraction that are non-L1 (texture/const/
    /// instruction) fetches, which bypass the DC-L1.
    pub aux_fraction: f64,
    /// Of memory instructions: fraction that are atomics (L2-serviced).
    pub atomic_fraction: f64,
    /// ALU latency in cycles (issue slot excluded).
    pub alu_latency: u32,
    /// Of data accesses: fraction aimed at the globally shared region.
    pub shared_fraction: f64,
    /// Shared-region size in lines (vs 128-line L1s, 1024-line clusters,
    /// 10240-line total budget).
    pub shared_lines: u64,
    /// Of data accesses: fraction aimed at the per-CTA hot region.
    pub private_hot_fraction: f64,
    /// Per-CTA hot-region size in lines.
    pub private_hot_lines: u64,
    /// Fraction of shared accesses confined to the hot stripe
    /// (partition camping severity).
    pub home_skew: f64,
    /// Whether per-CTA hot regions are stripe-aligned (camping without
    /// sharing — the C-RAY / P-GEMM pattern).
    pub striped_private: bool,
    /// Maximum coalesced transactions per memory instruction (1 =
    /// fully coalesced, 4 = scattered/irregular).
    pub access_span: u32,
    /// Bytes requested per transaction (what NoC#1 replies carry).
    pub bytes_per_txn: u32,
    /// Per-CTA length multiplier spread (R-SC's work imbalance): CTA
    /// `i`'s wavefronts run `1 + imbalance·(i mod 5)/4` times the base
    /// instruction count.
    pub imbalance: f64,
    /// Paper classification: replication-sensitive.
    pub replication_sensitive: bool,
    /// Paper classification: suffers badly under the fully-shared Sh40.
    pub poor_performing: bool,
    /// True when the paper's text never details this app and the spec is
    /// a plausible stand-in from the same suite.
    pub synthetic: bool,
}

/// Hashes every field so [`AppSpec`] can key a structured memo cache;
/// `f64` fields hash by their exact bit pattern (`to_bits`), matching the
/// bit-reproducibility contract of the simulator. Not derivable because
/// `f64: !Hash`.
impl std::hash::Hash for AppSpec {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        let AppSpec {
            name,
            suite,
            ctas,
            wavefronts_per_cta,
            instrs_per_wavefront,
            mem_fraction,
            store_fraction,
            aux_fraction,
            atomic_fraction,
            alu_latency,
            shared_fraction,
            shared_lines,
            private_hot_fraction,
            private_hot_lines,
            home_skew,
            striped_private,
            access_span,
            bytes_per_txn,
            imbalance,
            replication_sensitive,
            poor_performing,
            synthetic,
        } = self;
        name.hash(state);
        suite.hash(state);
        ctas.hash(state);
        wavefronts_per_cta.hash(state);
        instrs_per_wavefront.hash(state);
        mem_fraction.to_bits().hash(state);
        store_fraction.to_bits().hash(state);
        aux_fraction.to_bits().hash(state);
        atomic_fraction.to_bits().hash(state);
        alu_latency.hash(state);
        shared_fraction.to_bits().hash(state);
        shared_lines.hash(state);
        private_hot_fraction.to_bits().hash(state);
        private_hot_lines.hash(state);
        home_skew.to_bits().hash(state);
        striped_private.hash(state);
        access_span.hash(state);
        bytes_per_txn.hash(state);
        imbalance.to_bits().hash(state);
        replication_sensitive.hash(state);
        poor_performing.hash(state);
        synthetic.hash(state);
    }
}

impl AppSpec {
    /// Returns this spec with per-wavefront work scaled by `num/den`
    /// (at least 16 instructions) — used to shrink runs for tests.
    ///
    /// The CTA grid is left untouched so machine occupancy and sharing
    /// degree stay representative; only trace length shrinks.
    pub fn scaled(mut self, num: u32, den: u32) -> Self {
        self.instrs_per_wavefront = (self.instrs_per_wavefront * num / den).max(16);
        self
    }

    /// Total wavefront instructions this app retires (accounting for the
    /// imbalance multiplier), used to sanity-check runs.
    pub fn total_instructions(&self) -> u64 {
        (0..self.ctas)
            .map(|cta| {
                let per_wf = self.instrs_for_cta(cta);
                per_wf as u64 * self.wavefronts_per_cta as u64
            })
            .sum()
    }

    /// Instructions per wavefront of CTA `cta` (imbalance-scaled).
    // imbalance-scaled per-wavefront count: small f64, rounds into u32.
    #[expect(clippy::cast_possible_truncation)]
    pub fn instrs_for_cta(&self, cta: u32) -> u32 {
        let mult = 1.0 + self.imbalance * (cta % 5) as f64 / 4.0;
        (self.instrs_per_wavefront as f64 * mult).round() as u32
    }
}

/// Shorthand constructor covering the common fields.
#[allow(clippy::too_many_arguments)]
const fn app(
    name: &'static str,
    suite: Suite,
    mem_fraction: f64,
    shared_fraction: f64,
    shared_lines: u64,
    private_hot_fraction: f64,
    private_hot_lines: u64,
    replication_sensitive: bool,
) -> AppSpec {
    AppSpec {
        name,
        suite,
        // 480 CTAs × 8 wavefronts fill all 80 cores to their 48-wavefront
        // limit — full occupancy, i.e. the latency tolerance GPGPU kernels
        // actually have.
        ctas: 480,
        wavefronts_per_cta: 8,
        instrs_per_wavefront: 160,
        mem_fraction,
        store_fraction: 0.10,
        aux_fraction: 0.02,
        atomic_fraction: 0.0,
        alu_latency: 2,
        shared_fraction,
        shared_lines,
        private_hot_fraction,
        private_hot_lines,
        home_skew: 0.0,
        striped_private: false,
        access_span: 1,
        bytes_per_txn: 128,
        imbalance: 0.0,
        replication_sensitive,
        poor_performing: false,
        synthetic: true,
    }
}

/// The 28-application catalog.
pub fn catalog() -> Vec<AppSpec> {
    use Suite::*;
    vec![
        // ------------------------- CUDA SDK -------------------------
        // C-BLK: BlackScholes — pure streaming, zero replication (Fig 1's
        // left end).
        AppSpec { synthetic: false, store_fraction: 0.25, ..app("C-BLK", CudaSdk, 0.45, 0.0, 0, 0.0, 0, false) },
        // C-BFS: graph traversal — scattered accesses over a frontier
        // shared by all CTAs; strongly replication-sensitive.
        AppSpec {
            synthetic: false,
            access_span: 3,
            bytes_per_txn: 32,
            ..app("C-BFS", CudaSdk, 0.50, 0.70, 1500, 0.05, 16, true)
        },
        // C-NN: small network, high L1 hit rate, low occupancy → low
        // latency tolerance; hurt by decoupling (poor performer).
        AppSpec {
            synthetic: false,
            ctas: 240,
            wavefronts_per_cta: 4, // deliberately low occupancy: latency-sensitive
            poor_performing: true,
            bytes_per_txn: 64,
            store_fraction: 0.05,
            ..app("C-NN", CudaSdk, 0.60, 0.0, 0, 0.90, 10, false)
        },
        // C-RAY: ray tracing — low replication but hot-spot addresses
        // (stripe-aligned BVH root) camp on one home node.
        AppSpec {
            synthetic: false,
            striped_private: true,
            home_skew: 0.65,
            bytes_per_txn: 64,
            poor_performing: true,
            ..app("C-RAY", CudaSdk, 0.55, 0.0, 0, 0.75, 12, false)
        },
        // C-CONV: separable convolution — mild per-CTA reuse.
        app("C-CONV", CudaSdk, 0.50, 0.10, 96, 0.45, 12, false),
        // C-HIST: histogram — atomic-heavy with a small shared table.
        AppSpec { atomic_fraction: 0.15, ..app("C-HIST", CudaSdk, 0.40, 0.40, 64, 0.10, 16, false) },
        // C-SP: scalar product — streaming with small shared vector.
        app("C-SP", CudaSdk, 0.45, 0.15, 100, 0.10, 16, false),
        // -------------------------- Rodinia -------------------------
        // R-LUD: LU decomposition — tile reuse, latency-tolerant.
        AppSpec { synthetic: false, ..app("R-LUD", Rodinia, 0.45, 0.10, 110, 0.55, 12, false) },
        // R-SC: streamcluster — CTA-length imbalance (paper §V-B: Sh40
        // mitigates the resulting L1 access imbalance).
        AppSpec {
            synthetic: false,
            imbalance: 1.5,
            ..app("R-SC", Rodinia, 0.50, 0.25, 400, 0.10, 24, false)
        },
        // R-BP: backprop — weight matrix re-read by all CTAs.
        app("R-BP", Rodinia, 0.50, 0.60, 900, 0.10, 24, true),
        // R-HS: hotspot — stencil with per-CTA tiles.
        app("R-HS", Rodinia, 0.45, 0.10, 100, 0.55, 12, false),
        // R-KMN: k-means — centroid table shared by everyone.
        AppSpec { atomic_fraction: 0.05, ..app("R-KMN", Rodinia, 0.55, 0.70, 600, 0.05, 16, true) },
        // R-NW: Needleman-Wunsch — diagonal wavefront, streaming-ish.
        app("R-NW", Rodinia, 0.45, 0.15, 120, 0.30, 32, false),
        // R-PF: pathfinder — row streaming with small halo reuse.
        app("R-PF", Rodinia, 0.40, 0.10, 90, 0.35, 32, false),
        // R-SRAD: SRAD — image re-read across CTAs each iteration.
        app("R-SRAD", Rodinia, 0.50, 0.55, 1100, 0.15, 24, true),
        // --------------------------- SHOC ---------------------------
        // S-Reduction: tree reduction over an input shared across CTAs;
        // the region exceeds a cluster's capacity, so only the fully
        // shared Sh40 eliminates its replication (paper Fig 14 note).
        AppSpec {
            synthetic: false,
            atomic_fraction: 0.05,
            ..app("S-Reduction", Shoc, 0.55, 0.75, 5000, 0.0, 0, true)
        },
        // S-Scan: prefix scan — streaming with modest shared flags.
        app("S-Scan", Shoc, 0.50, 0.15, 120, 0.15, 24, false),
        // S-SPMV: sparse matrix-vector — irregular gathers from a shared
        // dense vector.
        AppSpec {
            access_span: 2,
            bytes_per_txn: 32,
            ..app("S-SPMV", Shoc, 0.55, 0.65, 1200, 0.05, 16, true)
        },
        // S-MD: molecular dynamics — neighbour lists, mixed locality.
        app("S-MD", Shoc, 0.45, 0.20, 200, 0.40, 12, false),
        // ------------------------- PolyBench ------------------------
        // P-2DCONV: 2D convolution — bandwidth-bound: high memory
        // intensity with high per-CTA hit rate saturates the L1 ports
        // (paper: most sensitive to the DC-L1 peak-bandwidth drop).
        AppSpec {
            synthetic: false,
            poor_performing: true,
            store_fraction: 0.07,
            ..app("P-2DCONV", PolyBench, 0.70, 0.0, 0, 0.92, 10, false)
        },
        // P-3DCONV: 3D convolution — bandwidth-bound *and*
        // replication-sensitive (only +Boost helps, paper Fig 14).
        AppSpec {
            synthetic: false,
            store_fraction: 0.15,
            ..app("P-3DCONV", PolyBench, 0.65, 0.50, 900, 0.30, 32, true)
        },
        // P-2MM: matrix-multiply chain — shared operand tiles with a
        // camped address stripe (paper: partition camping under Sh40,
        // relieved by clustering).
        AppSpec {
            synthetic: false,
            home_skew: 0.12,
            bytes_per_txn: 64,
            ..app("P-2MM", PolyBench, 0.55, 0.75, 1000, 0.05, 16, true)
        },
        // P-3MM: like P-2MM but classified insensitive; camping hurts it
        // under Sh40 (paper Fig 9).
        AppSpec {
            synthetic: false,
            striped_private: true,
            home_skew: 0.6,
            bytes_per_txn: 64,
            poor_performing: true,
            ..app("P-3MM", PolyBench, 0.55, 0.0, 0, 0.78, 14, false)
        },
        // P-GEMM: GEMM — tile-resident, camped (paper Fig 9).
        AppSpec {
            synthetic: false,
            striped_private: true,
            home_skew: 0.6,
            bytes_per_txn: 64,
            poor_performing: true,
            ..app("P-GEMM", PolyBench, 0.55, 0.0, 0, 0.80, 12, false)
        },
        // P-SYRK: rank-k update — shared region beyond cluster reach
        // (2.4× under Sh40 but only 13% under Sh40+C10+Boost).
        AppSpec { synthetic: false, ..app("P-SYRK", PolyBench, 0.55, 0.80, 4000, 0.0, 0, true) },
        // --------------------------- Tango --------------------------
        // The CNN suite re-reads layer weights from every core: the
        // paper's extreme replication cases (95% replication ratio,
        // Fig 1; ~99% miss-rate reduction under Sh40, §II-A).
        AppSpec {
            synthetic: false,
            ..app("T-AlexNet", Tango, 0.55, 0.95, 800, 0.0, 0, true)
        },
        AppSpec {
            synthetic: false,
            ..app("T-ResNet", Tango, 0.50, 0.90, 950, 0.03, 8, true)
        },
        AppSpec {
            synthetic: false,
            ..app("T-SqueezeNet", Tango, 0.50, 0.90, 700, 0.03, 8, true)
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_are_sane() {
        for a in catalog() {
            assert!((0.0..=1.0).contains(&a.mem_fraction), "{}", a.name);
            let region = a.shared_fraction + a.private_hot_fraction;
            assert!((0.0..=1.0).contains(&region), "{}: region fractions {region}", a.name);
            let kinds = a.store_fraction + a.aux_fraction + a.atomic_fraction;
            assert!(kinds < 1.0, "{}: kind fractions {kinds}", a.name);
            assert!(a.access_span >= 1, "{}", a.name);
            assert!(a.bytes_per_txn >= 32 && a.bytes_per_txn <= 128, "{}", a.name);
            if a.shared_fraction > 0.0 {
                assert!(a.shared_lines > 0, "{}: shared region empty", a.name);
            }
            if a.home_skew > 0.0 && !a.striped_private {
                assert!(
                    a.shared_lines >= STRIPE_LINES,
                    "{}: skewed region smaller than a stripe",
                    a.name
                );
            }
        }
    }

    #[test]
    fn scaling_shortens_traces_not_grid() {
        let a = catalog()[0];
        let s = a.scaled(1, 4);
        assert_eq!(s.ctas, a.ctas, "grid must stay full for occupancy realism");
        assert_eq!(s.instrs_per_wavefront, a.instrs_per_wavefront / 4);
        // Never collapses below the floor.
        assert_eq!(a.scaled(1, 1000).instrs_per_wavefront, 16);
    }

    #[test]
    fn imbalance_lengthens_some_ctas() {
        let sc = catalog().into_iter().find(|a| a.name == "R-SC").unwrap();
        assert!(sc.instrs_for_cta(4) > sc.instrs_for_cta(0));
        let even = catalog()[0];
        assert_eq!(even.instrs_for_cta(0), even.instrs_for_cta(4));
    }

    #[test]
    fn total_instructions_counts_imbalance() {
        let mut a = catalog()[0];
        a.ctas = 5;
        a.imbalance = 0.0;
        assert_eq!(
            a.total_instructions(),
            5 * a.wavefronts_per_cta as u64 * a.instrs_per_wavefront as u64
        );
    }

    #[test]
    fn capacity_classes_are_distinct() {
        // The Tango regions fit a Sh40+C10 cluster (1024 lines) but not a
        // single L1 (128); the Sh40-only winners exceed a cluster.
        let alex = catalog().into_iter().find(|a| a.name == "T-AlexNet").unwrap();
        assert!(alex.shared_lines > 128 && alex.shared_lines <= 1024);
        let red = catalog().into_iter().find(|a| a.name == "S-Reduction").unwrap();
        assert!(red.shared_lines > 1024);
    }
}
