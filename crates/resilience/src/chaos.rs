//! Deterministic fault injection (`--chaos=SEED`).
//!
//! A recovery path that has never fired is a recovery path that does not
//! work. Chaos mode assigns each simulation point a fault class derived
//! purely from `(seed, point-name)` — no wall clock, no global RNG state —
//! so the same seed injects the same faults in the same places every run,
//! which is what lets CI assert that a fault-riddled sweep still converges
//! to byte-identical statistics.
//!
//! Fault classes (roughly 1 point in 4 is faulted at default intensity):
//!
//! * **transient panic** — the worker panics on attempt 0; the supervisor
//!   retries and attempt 1 runs clean (exercises panic containment);
//! * **persistent panic** — every attempt panics; the point is quarantined
//!   and reported while the sweep completes (exercises quarantine);
//! * **stall** — machine progress is frozen mid-run so the cycle-level
//!   watchdog converts the hang into `SimError::Livelock`; attempt 1 runs
//!   clean (exercises the watchdog);
//! * **cache corruption** — the just-written cache entry is truncated or
//!   scribbled, then re-read: the checksum rejects it, the entry is
//!   quarantined, and the point's result is re-persisted (exercises
//!   crash-safe caching).
//!
//! Faults are decided *before* a result exists or applied *after* it was
//! computed, never during — an injected fault can abort an attempt but can
//! never alter the statistics a successful attempt produces.

use dcl1_common::checksum::fnv64;
use dcl1_common::SplitMix64;

/// The fault class chaos assigns to a point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Panic on attempt 0 only; retries succeed.
    TransientPanic,
    /// Panic on every attempt; the point ends up quarantined.
    PersistentPanic,
    /// Freeze machine progress on attempt 0 so the watchdog fires.
    Stall,
    /// Corrupt the point's on-disk cache entry after it is written.
    CorruptCache,
}

/// How a cache entry is damaged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Drop the tail (an interrupted write).
    Truncate,
    /// Flip bytes in the middle (media scribble).
    Scribble,
}

/// Deterministic chaos engine for one sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chaos {
    seed: u64,
}

/// One fault slot in sixteen per class below keeps total fault density at
/// 4/16 = 25% of points — high enough that a 112-point smoke sweep
/// exercises every class, low enough that retries dominate quarantines.
const CLASS_SLOTS: u64 = 16;

impl Chaos {
    /// A chaos engine with the given seed.
    #[must_use]
    pub fn new(seed: u64) -> Chaos {
        Chaos { seed }
    }

    /// The seed this engine was built with.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The per-point decision stream: seeded from the point name alone so
    /// it is independent of sweep order, worker count, and attempt.
    fn stream(&self, point: &str) -> SplitMix64 {
        SplitMix64::new(self.seed).split(fnv64(point.as_bytes()))
    }

    /// The fault class assigned to `point`, if any.
    #[must_use]
    pub fn fault_for(&self, point: &str) -> Option<Fault> {
        match self.stream(point).next_u64() % CLASS_SLOTS {
            0 => Some(Fault::TransientPanic),
            1 => Some(Fault::PersistentPanic),
            2 => Some(Fault::Stall),
            3 => Some(Fault::CorruptCache),
            _ => None,
        }
    }

    /// Whether attempt `attempt` of `point` should panic before running.
    #[must_use]
    pub fn should_panic(&self, point: &str, attempt: u32) -> bool {
        match self.fault_for(point) {
            Some(Fault::TransientPanic) => attempt == 0,
            Some(Fault::PersistentPanic) => true,
            _ => false,
        }
    }

    /// Whether attempt `attempt` of `point` should have its progress
    /// frozen (to be caught by the machine's watchdog).
    #[must_use]
    pub fn should_stall(&self, point: &str, attempt: u32) -> bool {
        attempt == 0 && self.fault_for(point) == Some(Fault::Stall)
    }

    /// Whether the cache entry written for `point` should be corrupted.
    #[must_use]
    pub fn should_corrupt(&self, point: &str) -> bool {
        self.fault_for(point) == Some(Fault::CorruptCache)
    }

    /// Damages `bytes` in place, deterministically per point.
    pub fn corrupt(&self, point: &str, bytes: &mut Vec<u8>) {
        let mut rng = self.stream(point);
        rng.next_u64(); // skip the class draw
        if bytes.is_empty() {
            bytes.extend_from_slice(b"chaos");
            return;
        }
        match rng.next_u64() % 2 {
            0 => {
                // Truncate: keep a strict prefix (at least drop one byte).
                #[expect(clippy::cast_possible_truncation)] // bounded by len
                let keep = rng.next_below(bytes.len() as u64) as usize;
                bytes.truncate(keep);
            }
            _ => {
                // Scribble: XOR a byte somewhere with a nonzero mask.
                #[expect(clippy::cast_possible_truncation)] // bounded by len
                let at = rng.next_below(bytes.len() as u64) as usize;
                bytes[at] ^= 0x55;
            }
        }
    }

    /// The subset of `points` assigned [`Fault::CorruptCache`] — the
    /// corruption-census helper: tests resolve these to their fan-out
    /// cache paths and assert the injections landed on real v3 entries.
    #[must_use]
    pub fn corruption_points(&self, points: &[String]) -> Vec<String> {
        points.iter().filter(|p| self.should_corrupt(p)).cloned().collect()
    }

    /// Counts the faulted points in `points` per class — used by reports
    /// and by tests picking a seed that exercises every class.
    #[must_use]
    pub fn census(&self, points: &[String]) -> ChaosCensus {
        let mut c = ChaosCensus::default();
        for p in points {
            match self.fault_for(p) {
                Some(Fault::TransientPanic) => c.transient_panics += 1,
                Some(Fault::PersistentPanic) => c.persistent_panics += 1,
                Some(Fault::Stall) => c.stalls += 1,
                Some(Fault::CorruptCache) => c.corruptions += 1,
                None => {}
            }
        }
        c
    }
}

/// Fault counts over a point set for one seed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosCensus {
    /// Points assigned [`Fault::TransientPanic`].
    pub transient_panics: usize,
    /// Points assigned [`Fault::PersistentPanic`].
    pub persistent_panics: usize,
    /// Points assigned [`Fault::Stall`].
    pub stalls: usize,
    /// Points assigned [`Fault::CorruptCache`].
    pub corruptions: usize,
}

impl ChaosCensus {
    /// Total faulted points.
    #[must_use]
    pub fn total(&self) -> usize {
        self.transient_panics + self.persistent_panics + self.stalls + self.corruptions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = Chaos::new(42);
        let b = Chaos::new(42);
        let c = Chaos::new(43);
        let points: Vec<String> = (0..256).map(|i| format!("APP{i}/Pr4")).collect();
        for p in &points {
            assert_eq!(a.fault_for(p), b.fault_for(p));
        }
        assert_ne!(
            points.iter().map(|p| a.fault_for(p)).collect::<Vec<_>>(),
            points.iter().map(|p| c.fault_for(p)).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn fault_density_is_roughly_a_quarter() {
        let chaos = Chaos::new(7);
        let points: Vec<String> = (0..1000).map(|i| format!("P{i}/Sh16")).collect();
        let census = chaos.census(&points);
        let total = census.total();
        assert!((150..350).contains(&total), "density off: {census:?}");
        assert!(census.transient_panics > 0);
        assert!(census.persistent_panics > 0);
        assert!(census.stalls > 0);
        assert!(census.corruptions > 0);
    }

    #[test]
    fn transient_faults_clear_on_retry() {
        let chaos = Chaos::new(1);
        let points: Vec<String> = (0..200).map(|i| format!("Q{i}/Pr4")).collect();
        for p in &points {
            match chaos.fault_for(p) {
                Some(Fault::TransientPanic) => {
                    assert!(chaos.should_panic(p, 0));
                    assert!(!chaos.should_panic(p, 1), "retry must run clean");
                }
                Some(Fault::PersistentPanic) => {
                    assert!(chaos.should_panic(p, 0) && chaos.should_panic(p, 5));
                }
                Some(Fault::Stall) => {
                    assert!(chaos.should_stall(p, 0));
                    assert!(!chaos.should_stall(p, 1));
                }
                Some(Fault::CorruptCache) => assert!(chaos.should_corrupt(p)),
                None => {
                    assert!(!chaos.should_panic(p, 0));
                    assert!(!chaos.should_stall(p, 0));
                    assert!(!chaos.should_corrupt(p));
                }
            }
        }
    }

    #[test]
    fn corruption_always_changes_the_bytes() {
        let chaos = Chaos::new(9);
        for i in 0..100 {
            let point = format!("R{i}/Baseline");
            let original: Vec<u8> = format!("payload for {point} with some length").into_bytes();
            let mut damaged = original.clone();
            chaos.corrupt(&point, &mut damaged);
            assert_ne!(original, damaged, "corruption must be visible");
            // And deterministic.
            let mut again = original.clone();
            chaos.corrupt(&point, &mut again);
            assert_eq!(damaged, again);
        }
    }
}
