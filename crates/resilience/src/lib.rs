//! Supervision and recovery layer for the experiment pipeline.
//!
//! A multi-hour sweep dies three ways: a worker panics and takes the whole
//! batch with it, a wedged design point spins until the cycle cap (or
//! forever, wall-clock-wise), and a half-written cache entry poisons every
//! later run that trusts it. This crate centralizes the machinery that
//! turns each of those aborts into a contained, reported event:
//!
//! * [`SimError`] — the structured failure taxonomy replacing ad-hoc
//!   panics on the runner paths. Every variant knows whether retrying can
//!   possibly help ([`SimError::is_transient`]).
//! * [`supervisor`] — [`supervise`](supervisor::supervise) runs one
//!   simulation attempt under `catch_unwind`, retries transient failures
//!   with a deterministic backoff schedule, and converts exhausted or
//!   permanent failures into a [`QuarantineRecord`](supervisor::QuarantineRecord)
//!   so the rest of the sweep completes.
//! * [`chaos`] — `--chaos=SEED` fault injection: worker panics, progress
//!   stalls, and cache-file corruption, all derived deterministically from
//!   `(seed, point, attempt)` so every recovery path can be exercised —
//!   and re-exercised byte-identically — in CI.
//!
//! The crate is std-only and simulation-agnostic: it never sees a machine,
//! only closures and labels, so `dcl1` itself can depend on it for the
//! watchdog's error type without a cycle.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chaos;
pub mod supervisor;

pub use chaos::{Chaos, Fault};
pub use supervisor::{supervise, QuarantineRecord, RetryPolicy, SupervisionEvent};

use std::error::Error;
use std::fmt;

/// A structured simulation failure.
///
/// The taxonomy matters because the supervisor treats classes differently:
/// configuration errors are deterministic and never retried, panics are
/// retried on the assumption of environmental flakiness (and because chaos
/// injects transient ones), livelocks and deadline misses get one more
/// attempt before quarantine, and cache corruption is not a point failure
/// at all — the entry is quarantined and the point recomputed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The design does not resolve against the configuration — an
    /// experiment-definition bug; retrying cannot help.
    Config(String),
    /// A worker panicked while simulating the point.
    Panic {
        /// The panic payload, stringified.
        message: String,
    },
    /// The progress watchdog saw a full epoch of cycles with no forward
    /// progress anywhere in the machine.
    Livelock {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Machine state dump (queue depths, in-flight counts) at the
        /// moment of detection.
        dump: String,
    },
    /// The point exceeded its per-point wall-clock deadline.
    Deadline {
        /// Seconds the attempt had been running.
        elapsed_secs: u64,
        /// The configured limit.
        limit_secs: u64,
    },
    /// A persisted cache entry failed its checksum or did not parse.
    CacheCorrupt {
        /// Path of the offending entry.
        path: String,
        /// Why it was rejected.
        reason: String,
    },
    /// An I/O failure outside the cache (journal, report files).
    Io {
        /// What was being attempted.
        context: String,
        /// The underlying error, stringified.
        message: String,
    },
}

impl SimError {
    /// Whether a retry can plausibly succeed. Configuration errors are
    /// deterministic; everything else is worth at least one more attempt
    /// (chaos-injected faults are keyed per attempt, and real livelocks
    /// still deserve a second look before burning a quarantine slot).
    #[must_use]
    pub fn is_transient(&self) -> bool {
        !matches!(self, SimError::Config(_))
    }

    /// Total attempts the supervisor grants this class of failure.
    #[must_use]
    pub fn max_attempts(&self) -> u32 {
        match self {
            SimError::Config(_) => 1,
            SimError::Livelock { .. } | SimError::Deadline { .. } => 2,
            SimError::Panic { .. } | SimError::CacheCorrupt { .. } | SimError::Io { .. } => 3,
        }
    }

    /// Short class label for reports and counters.
    #[must_use]
    pub fn class(&self) -> &'static str {
        match self {
            SimError::Config(_) => "config",
            SimError::Panic { .. } => "panic",
            SimError::Livelock { .. } => "livelock",
            SimError::Deadline { .. } => "deadline",
            SimError::CacheCorrupt { .. } => "cache_corrupt",
            SimError::Io { .. } => "io",
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Config(m) => write!(f, "configuration error: {m}"),
            SimError::Panic { message } => write!(f, "worker panic: {message}"),
            SimError::Livelock { cycle, dump } => {
                write!(f, "livelock detected at cycle {cycle}; state:\n{dump}")
            }
            SimError::Deadline { elapsed_secs, limit_secs } => {
                write!(f, "deadline exceeded: {elapsed_secs}s elapsed, limit {limit_secs}s")
            }
            SimError::CacheCorrupt { path, reason } => {
                write!(f, "corrupt cache entry {path}: {reason}")
            }
            SimError::Io { context, message } => write!(f, "i/o failure ({context}): {message}"),
        }
    }
}

impl Error for SimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_classes_and_retryability() {
        let cfg = SimError::Config("cores not divisible".into());
        assert!(!cfg.is_transient());
        assert_eq!(cfg.max_attempts(), 1);
        assert_eq!(cfg.class(), "config");

        let p = SimError::Panic { message: "boom".into() };
        assert!(p.is_transient());
        assert_eq!(p.max_attempts(), 3);

        let l = SimError::Livelock { cycle: 99, dump: "q1=4".into() };
        assert_eq!(l.max_attempts(), 2);
        assert!(l.to_string().contains("cycle 99"));
        assert!(l.to_string().contains("q1=4"));

        let d = SimError::Deadline { elapsed_secs: 61, limit_secs: 60 };
        assert!(d.to_string().contains("61s"));

        let boxed: Box<dyn Error> = Box::new(p);
        assert!(boxed.to_string().contains("boom"));
    }
}
