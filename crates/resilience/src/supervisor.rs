//! The per-point supervisor: retry with deterministic backoff, panic
//! containment, and quarantine.
//!
//! This module is the single sanctioned home of `catch_unwind` in the
//! workspace (enforced by the `simcheck` rule `bare_catch_unwind`):
//! recovering from a panic is a supervision decision, and scattering
//! recovery points through the simulator would hide modeling bugs.

use crate::SimError;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// Retry schedule for one simulation point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Hard ceiling on attempts regardless of the error class (each
    /// [`SimError`] may grant fewer — the effective budget is the
    /// minimum of the two).
    pub max_attempts: u32,
    /// Base backoff unit; attempt `n` (0-based) sleeps `n * base` before
    /// running, a deterministic linear schedule. Zero disables sleeping
    /// (tests, chaos CI).
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 3, backoff: Duration::from_millis(50) }
    }
}

impl RetryPolicy {
    /// The deterministic pre-attempt delay for 0-based attempt `n`.
    #[must_use]
    pub fn delay(&self, attempt: u32) -> Duration {
        self.backoff.saturating_mul(attempt)
    }
}

/// A point the supervisor gave up on, reported instead of re-panicked so
/// the rest of the sweep completes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineRecord {
    /// `APP/DESIGN` label of the failing point.
    pub point: String,
    /// Attempts consumed (including the final failing one).
    pub attempts: u32,
    /// Class of the final error ([`SimError::class`]).
    pub class: String,
    /// The final error, rendered.
    pub error: String,
}

impl std::fmt::Display for QuarantineRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "quarantined {} after {} attempt(s) [{}]: {}",
            self.point, self.attempts, self.class, self.error
        )
    }
}

/// Progress notifications emitted while supervising one point, so callers
/// can feed recovery counters/logs without this crate knowing about them.
#[derive(Debug, Clone)]
pub enum SupervisionEvent {
    /// An attempt failed with a transient error and will be retried after
    /// the given deterministic delay.
    Retrying {
        /// 0-based attempt index that just failed.
        attempt: u32,
        /// Delay before the next attempt.
        delay: Duration,
        /// The transient error.
        error: SimError,
    },
    /// All attempts exhausted (or the error was permanent).
    Quarantined(QuarantineRecord),
}

/// Runs `attempt_fn` under panic containment, retrying transient failures
/// per `policy`, and reporting each decision through `notify`.
///
/// `attempt_fn` receives the 0-based attempt index (chaos keys faults on
/// it) and returns the point's statistics or a structured error; a panic
/// inside it is converted to [`SimError::Panic`]. On success the result is
/// returned; on exhaustion the final error is wrapped in a
/// [`QuarantineRecord`] — the caller decides whether that degrades the
/// sweep or aborts it.
///
/// # Errors
///
/// Returns the quarantine record for the point when every granted attempt
/// failed.
pub fn supervise<T>(
    point: &str,
    policy: &RetryPolicy,
    mut attempt_fn: impl FnMut(u32) -> Result<T, SimError>,
    mut notify: impl FnMut(&SupervisionEvent),
) -> Result<T, QuarantineRecord> {
    let mut attempt = 0u32;
    loop {
        if attempt > 0 {
            let delay = policy.delay(attempt);
            if !delay.is_zero() {
                std::thread::sleep(delay);
            }
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| attempt_fn(attempt)))
            .unwrap_or_else(|payload| {
                Err(SimError::Panic { message: panic_message(payload.as_ref()) })
            });
        match outcome {
            Ok(v) => return Ok(v),
            Err(e) => {
                let attempts_used = attempt + 1;
                let budget = policy.max_attempts.min(e.max_attempts());
                if e.is_transient() && attempts_used < budget {
                    notify(&SupervisionEvent::Retrying {
                        attempt,
                        delay: policy.delay(attempt + 1),
                        error: e,
                    });
                    attempt += 1;
                    continue;
                }
                let record = QuarantineRecord {
                    point: point.to_string(),
                    attempts: attempts_used,
                    class: e.class().to_string(),
                    error: e.to_string(),
                };
                notify(&SupervisionEvent::Quarantined(record.clone()));
                return Err(record);
            }
        }
    }
}

/// Stringifies a panic payload (the usual `&str` / `String` cases).
#[must_use]
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn no_sleep() -> RetryPolicy {
        RetryPolicy { max_attempts: 3, backoff: Duration::ZERO }
    }

    #[test]
    fn first_attempt_success_is_passed_through() {
        let out = supervise("A/B", &no_sleep(), |_| Ok::<_, SimError>(42), |_| {});
        assert_eq!(out.unwrap(), 42);
    }

    #[test]
    fn transient_failures_are_retried_then_succeed() {
        let mut events = Vec::new();
        let out = supervise(
            "A/B",
            &no_sleep(),
            |attempt| {
                if attempt == 0 {
                    Err(SimError::Panic { message: "flaky".into() })
                } else {
                    Ok(attempt)
                }
            },
            |e| events.push(format!("{e:?}")),
        );
        assert_eq!(out.unwrap(), 1);
        assert_eq!(events.len(), 1);
        assert!(events[0].contains("Retrying"));
    }

    #[test]
    fn panics_are_contained_and_retried() {
        let out = supervise(
            "A/B",
            &no_sleep(),
            |attempt| {
                assert!(attempt < 1, "chaos: injected worker panic");
                Ok::<_, SimError>("recovered")
            },
            |_| {},
        );
        assert_eq!(out.unwrap(), "recovered");
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        let mut attempts = 0;
        let out: Result<(), _> = supervise(
            "A/B",
            &no_sleep(),
            |_| {
                attempts += 1;
                Err(SimError::Config("bad nodes".into()))
            },
            |_| {},
        );
        let rec = out.unwrap_err();
        assert_eq!(attempts, 1, "config errors are deterministic");
        assert_eq!(rec.attempts, 1);
        assert_eq!(rec.class, "config");
        assert!(rec.to_string().contains("A/B"));
    }

    #[test]
    fn exhaustion_quarantines_with_final_error() {
        let out: Result<(), _> = supervise(
            "APP/DSN",
            &no_sleep(),
            |_| panic!("always"),
            |_| {},
        );
        let rec = out.unwrap_err();
        assert_eq!(rec.attempts, 3, "panic budget is 3 attempts");
        assert_eq!(rec.class, "panic");
        assert!(rec.error.contains("always"));
    }

    #[test]
    fn livelock_gets_exactly_one_retry() {
        let mut attempts = 0;
        let out: Result<(), _> = supervise(
            "A/B",
            &no_sleep(),
            |_| {
                attempts += 1;
                Err(SimError::Livelock { cycle: 5, dump: String::new() })
            },
            |_| {},
        );
        assert_eq!(attempts, 2);
        assert_eq!(out.unwrap_err().class, "livelock");
    }

    #[test]
    fn backoff_schedule_is_deterministic_and_linear() {
        let p = RetryPolicy { max_attempts: 4, backoff: Duration::from_millis(50) };
        assert_eq!(p.delay(0), Duration::ZERO);
        assert_eq!(p.delay(1), Duration::from_millis(50));
        assert_eq!(p.delay(2), Duration::from_millis(100));
    }
}
