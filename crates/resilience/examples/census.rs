//! Prints the fault census a chaos seed induces over a set of point
//! labels — used to pick CI seeds that exercise every fault class.
//!
//! Usage: feed one `APP/DESIGN` label per line on stdin:
//!
//! ```text
//! grep '^=== ' ref-stats.txt | sed 's/^=== //' \
//!   | cargo run -p dcl1-resilience --example census -- SEED
//! ```

use dcl1_resilience::{Chaos, Fault};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .expect("usage: census SEED  (labels on stdin)");
    let chaos = Chaos::new(seed);
    let mut counts = [0usize; 4];
    for line in std::io::stdin().lines() {
        let point = line.expect("read stdin");
        if point.is_empty() {
            continue;
        }
        let (slot, tag) = match chaos.fault_for(&point) {
            Some(Fault::TransientPanic) => (0, "transient"),
            Some(Fault::PersistentPanic) => (1, "persistent"),
            Some(Fault::Stall) => (2, "stall"),
            Some(Fault::CorruptCache) => (3, "corrupt"),
            None => continue,
        };
        counts[slot] += 1;
        println!("{tag} {point}");
    }
    println!(
        "transient={} persistent={} stall={} corrupt={}",
        counts[0], counts[1], counts[2], counts[3]
    );
}
