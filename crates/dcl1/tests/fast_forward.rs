//! Golden bit-identity tests for the idle fast-forward: a run with
//! `fast_forward: true` must produce `RunStats` *exactly* equal — every
//! counter, every floating-point field, bit for bit — to the same run
//! stepped cycle by cycle. The skip is an optimization, never a model
//! change.

mod util;

use dcl1::{Design, GpuConfig, GpuSystem, RunStats, SimOptions};
use dcl1_common::SplitMix64;
use util::{KernelParams, RandomKernel, DESIGNS};

fn run(design: &Design, kernel: &RandomKernel, opts: SimOptions) -> RunStats {
    let cfg = GpuConfig::small_test();
    let mut sys = GpuSystem::build(&cfg, design, kernel, opts).expect("build");
    sys.run()
}

fn assert_bit_identical(a: &RunStats, b: &RunStats, label: &str) {
    // PartialEq compares f64 fields by value; == on f64 is bitwise for
    // everything the simulator can produce (no NaNs, no -0.0 vs 0.0
    // ambiguity from sums of non-negative terms). Spell the float fields
    // out anyway so a mismatch names the culprit.
    assert_eq!(a.cycles, b.cycles, "{label}: cycles");
    assert_eq!(a.instructions, b.instructions, "{label}: instructions");
    assert_eq!(a.mean_replicas.to_bits(), b.mean_replicas.to_bits(), "{label}: mean_replicas");
    assert_eq!(a.mean_load_rtt.to_bits(), b.mean_load_rtt.to_bits(), "{label}: mean_load_rtt");
    assert_eq!(
        a.max_reply_link_utilization.to_bits(),
        b.max_reply_link_utilization.to_bits(),
        "{label}: max_reply_link_utilization"
    );
    assert_eq!(a.noc_flits, b.noc_flits, "{label}: noc_flits");
    assert_eq!(a, b, "{label}: full RunStats");
}

#[test]
fn fast_forward_is_bit_identical_across_designs() {
    let mut rng = SplitMix64::new(0x0FA5_7F0D);
    for (case, design) in DESIGNS.iter().enumerate() {
        let p = KernelParams::draw(&mut rng);
        let kernel = RandomKernel(p);
        let base = SimOptions { max_cycles: 3_000_000, ..SimOptions::default() };
        let stepped = run(design, &kernel, SimOptions { fast_forward: false, ..base });
        let jumped = run(design, &kernel, SimOptions { fast_forward: true, ..base });
        assert_bit_identical(&stepped, &jumped, &format!("case {case} ({design:?})"));
    }
}

#[test]
fn fast_forward_respects_warmup_and_sampling_boundaries() {
    // Warmup resets fire on 64-cycle probes and replica samples on
    // interval multiples; the jump must not slide either. A small interval
    // makes every skip hit the sampling cap.
    let mut rng = SplitMix64::new(0x5A_0B0A);
    for (case, design) in
        [Design::Baseline, Design::Shared { nodes: 8 }, Design::Clustered { nodes: 8, clusters: 2, boost: true }]
            .iter()
            .enumerate()
    {
        let p = KernelParams::draw(&mut rng);
        let total = p.ctas as u64 * p.wf_per_cta as u64 * p.instrs as u64;
        let kernel = RandomKernel(p);
        let base = SimOptions {
            max_cycles: 3_000_000,
            warmup_instructions: total / 2,
            replica_sample_interval: 96,
            ..SimOptions::default()
        };
        let stepped = run(design, &kernel, SimOptions { fast_forward: false, ..base });
        let jumped = run(design, &kernel, SimOptions { fast_forward: true, ..base });
        assert_bit_identical(&stepped, &jumped, &format!("warmup case {case} ({design:?})"));
    }
}

#[test]
fn fast_forward_respects_the_cycle_cap() {
    // A kernel that cannot finish within the cap must stop at exactly the
    // same cycle either way.
    let mut rng = SplitMix64::new(0xCA9);
    let p = KernelParams { instrs: 2000, ctas: 8, ..KernelParams::draw(&mut rng) };
    let kernel = RandomKernel(p);
    let base = SimOptions { max_cycles: 2_000, ..SimOptions::default() };
    for design in [Design::Baseline, Design::Private { nodes: 8 }] {
        let stepped = run(&design, &kernel, SimOptions { fast_forward: false, ..base });
        let jumped = run(&design, &kernel, SimOptions { fast_forward: true, ..base });
        assert_eq!(stepped.cycles, base.max_cycles, "cap must bind ({design:?})");
        assert_bit_identical(&stepped, &jumped, &format!("capped ({design:?})"));
    }
}
