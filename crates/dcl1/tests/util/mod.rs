//! Shared machinery for the machine-level integration tests: seeded random
//! kernels plus the design points the paper sweeps.

// Test fixture: seeded-random trace math uses small, in-range casts.
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use dcl1::Design;
use dcl1_common::{LineAddr, SplitMix64};
use dcl1_gpu::{MemAccess, MemInstr, MemKind, TraceFactory, TraceSource, WavefrontInstr};

#[derive(Debug, Clone)]
pub struct KernelParams {
    pub ctas: u32,
    pub wf_per_cta: u32,
    pub instrs: u32,
    pub mem_fraction: f64,
    pub store_fraction: f64,
    pub atomic_fraction: f64,
    pub shared_lines: u64,
    pub span: u32,
    pub seed: u64,
}

impl KernelParams {
    /// Draws a parameter point from the same ranges the old proptest
    /// strategy used.
    pub fn draw(rng: &mut SplitMix64) -> Self {
        KernelParams {
            ctas: 1 + rng.next_below(11) as u32,
            wf_per_cta: 1 + rng.next_below(3) as u32,
            instrs: 1 + rng.next_below(47) as u32,
            mem_fraction: 0.1 + 0.8 * rng.next_f64(),
            store_fraction: 0.3 * rng.next_f64(),
            atomic_fraction: 0.1 * rng.next_f64(),
            shared_lines: 8 + rng.next_below(248),
            span: 1 + rng.next_below(3) as u32,
            seed: rng.next_u64(),
        }
    }
}

#[derive(Debug)]
pub struct RandomKernel(pub KernelParams);

#[derive(Debug)]
struct RandomTrace {
    p: KernelParams,
    rng: SplitMix64,
    uid: u64,
    left: u32,
    cursor: u64,
}

impl TraceSource for RandomTrace {
    fn next_instr(&mut self) -> WavefrontInstr {
        if self.left == 0 {
            return WavefrontInstr::Done;
        }
        self.left -= 1;
        if !self.rng.chance(self.p.mem_fraction) {
            return WavefrontInstr::Alu { latency: (self.rng.next_below(4)) as u32 };
        }
        let r = self.rng.next_f64();
        let kind = if r < self.p.atomic_fraction {
            MemKind::Atomic
        } else if r < self.p.atomic_fraction + self.p.store_fraction {
            MemKind::Store
        } else if r < self.p.atomic_fraction + self.p.store_fraction + 0.03 {
            MemKind::Aux
        } else {
            MemKind::Load
        };
        let n = if kind == MemKind::Load { 1 + self.rng.next_below(self.p.span as u64) } else { 1 };
        let accesses = (0..n)
            .map(|_| {
                let line = if self.rng.chance(0.5) {
                    self.rng.next_below(self.p.shared_lines)
                } else {
                    self.cursor += 1;
                    1 << 20 | (self.uid * 131 + self.cursor)
                };
                MemAccess {
                    line: LineAddr::new(line),
                    bytes: 32 * (1 + self.rng.next_below(4) as u32),
                }
            })
            .collect();
        WavefrontInstr::Mem(MemInstr { kind, accesses })
    }
}

impl TraceFactory for RandomKernel {
    fn wavefront_trace(&self, cta: u32, wf: u32) -> Box<dyn TraceSource> {
        let uid = cta as u64 * self.0.wf_per_cta as u64 + wf as u64;
        Box::new(RandomTrace {
            rng: SplitMix64::new(self.0.seed).split(uid),
            p: self.0.clone(),
            uid,
            left: self.0.instrs,
            cursor: 0,
        })
    }
    fn total_ctas(&self) -> u32 {
        self.0.ctas
    }
    fn wavefronts_per_cta(&self) -> u32 {
        self.0.wf_per_cta
    }
}

pub const DESIGNS: [Design; 9] = [
    Design::Baseline,
    Design::IdealSingleL1,
    Design::Private { nodes: 8 },
    Design::Private { nodes: 4 },
    Design::Shared { nodes: 8 },
    Design::Shared { nodes: 4 },
    Design::Clustered { nodes: 4, clusters: 2, boost: false },
    Design::Clustered { nodes: 8, clusters: 2, boost: true },
    Design::Clustered { nodes: 8, clusters: 4, boost: true },
];
