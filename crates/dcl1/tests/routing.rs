//! Deterministic sweep tests for home-node selection and the sliced NoC#2
//! port mapping (paper Fig 10): the invariants the machine's routing
//! relies on.

#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use dcl1::{Design, GpuConfig, Noc2Kind};
use dcl1_common::{LineAddr, SplitMix64};

/// (nodes, clusters) combos valid on the 80-core / 32-slice machine.
const VALID_CLUSTERED: [(usize, usize); 9] = [
    (40, 1),
    (40, 2),
    (40, 5),
    (40, 10),
    (40, 20),
    (40, 40),
    (80, 10),
    (20, 10),
    (16, 4),
];

fn design_for(nodes: usize, clusters: usize) -> Design {
    if clusters == 1 {
        Design::Shared { nodes }
    } else if clusters == nodes {
        Design::Private { nodes }
    } else {
        Design::Clustered { nodes, clusters, boost: false }
    }
}

/// The home node always lies inside the requesting core's cluster,
/// and within a cluster the mapping depends only on the line.
#[test]
fn home_node_stays_in_cluster() {
    let cfg = GpuConfig::default();
    let mut rng = SplitMix64::new(0x40A3);
    for &(nodes, clusters) in &VALID_CLUSTERED {
        let topo = design_for(nodes, clusters).topology(&cfg).unwrap();
        for _ in 0..200 {
            let core = rng.next_below(80) as usize;
            let line = LineAddr::new(rng.next_below(1_000_000));
            let home = topo.home_node(core, line);
            assert!(home < nodes);
            let cluster = topo.cluster_of_core(core);
            let m = topo.nodes_per_cluster();
            assert_eq!(home / m, cluster, "home escaped the cluster");
            // Every core of the same cluster maps the line identically.
            let buddy = cluster * topo.cores_per_cluster();
            assert_eq!(topo.home_node(buddy, line), home);
        }
    }
}

/// Under a sliced NoC#2, a node's home slot and a line's L2 slice are
/// congruent modulo the group count — the property that lets each
/// address-range crossbar connect only `Z × (L/M)` ports (Fig 10).
#[test]
fn sliced_noc2_slot_slice_congruence() {
    let cfg = GpuConfig::default();
    let mut rng = SplitMix64::new(0x511CED);
    for &(nodes, clusters) in &VALID_CLUSTERED {
        let topo = design_for(nodes, clusters).topology(&cfg).unwrap();
        let Noc2Kind::Sliced { groups } = topo.noc2 else { continue };
        for _ in 0..200 {
            let core = rng.next_below(80) as usize;
            let line = LineAddr::new(rng.next_below(1_000_000));
            // Only lines this node actually owns matter: route from a core.
            let home = topo.home_node(core, line);
            let slot = home % topo.nodes_per_cluster();
            let slice = line.interleave(cfg.l2_slices);
            if topo.shared_within_cluster {
                assert_eq!(
                    slice % groups,
                    slot % groups,
                    "slot/slice congruence broken: slot {slot} slice {slice} groups {groups}"
                );
            }
            // The per-group crossbar output port is always in range.
            assert!(slice / groups < cfg.l2_slices / groups);
        }
    }
}
