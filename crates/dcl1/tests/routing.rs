//! Property tests for home-node selection and the sliced NoC#2 port
//! mapping (paper Fig 10): the invariants the machine's routing relies on.

use dcl1::{Design, GpuConfig, Noc2Kind};
use dcl1_common::LineAddr;
use proptest::prelude::*;

fn valid_clustered() -> impl Strategy<Value = (usize, usize)> {
    // (nodes, clusters) combos valid on the 80-core / 32-slice machine.
    prop_oneof![
        Just((40usize, 1usize)),
        Just((40, 2)),
        Just((40, 5)),
        Just((40, 10)),
        Just((40, 20)),
        Just((40, 40)),
        Just((80, 10)),
        Just((20, 10)),
        Just((16, 4)),
    ]
}

proptest! {
    /// The home node always lies inside the requesting core's cluster,
    /// and within a cluster the mapping depends only on the line.
    #[test]
    fn home_node_stays_in_cluster(
        (nodes, clusters) in valid_clustered(),
        core in 0usize..80,
        line in 0u64..1_000_000,
    ) {
        let cfg = GpuConfig::default();
        let design = if clusters == 1 {
            Design::Shared { nodes }
        } else if clusters == nodes {
            Design::Private { nodes }
        } else {
            Design::Clustered { nodes, clusters, boost: false }
        };
        let topo = design.topology(&cfg).unwrap();
        let line = LineAddr::new(line);
        let home = topo.home_node(core, line);
        prop_assert!(home < nodes);
        let cluster = topo.cluster_of_core(core);
        let m = topo.nodes_per_cluster();
        prop_assert_eq!(home / m, cluster, "home escaped the cluster");
        // Every core of the same cluster maps the line identically.
        let buddy = cluster * topo.cores_per_cluster();
        prop_assert_eq!(topo.home_node(buddy, line), home);
    }

    /// Under a sliced NoC#2, a node's home slot and a line's L2 slice are
    /// congruent modulo the group count — the property that lets each
    /// address-range crossbar connect only `Z × (L/M)` ports (Fig 10).
    #[test]
    fn sliced_noc2_slot_slice_congruence(
        (nodes, clusters) in valid_clustered(),
        core in 0usize..80,
        line in 0u64..1_000_000,
    ) {
        let cfg = GpuConfig::default();
        let design = if clusters == 1 {
            Design::Shared { nodes }
        } else if clusters == nodes {
            Design::Private { nodes }
        } else {
            Design::Clustered { nodes, clusters, boost: false }
        };
        let topo = design.topology(&cfg).unwrap();
        if let Noc2Kind::Sliced { groups } = topo.noc2 {
            let line = LineAddr::new(line);
            // Only lines this node actually owns matter: route from a core.
            let home = topo.home_node(core, line);
            let slot = home % topo.nodes_per_cluster();
            let slice = line.interleave(cfg.l2_slices);
            if topo.shared_within_cluster {
                prop_assert_eq!(
                    slice % groups,
                    slot % groups,
                    "slot/slice congruence broken: slot {} slice {} groups {}",
                    slot, slice, groups
                );
            }
            // The per-group crossbar output port is always in range.
            prop_assert!(slice / groups < cfg.l2_slices / groups);
        }
    }
}
