//! Supervision tests for the progress watchdog and chaos stall hook.
//!
//! Three properties keep the watchdog honest:
//!
//! 1. a frozen machine (chaos stall) is reported as `SimError::Livelock`
//!    with a diagnostic dump instead of spinning to the cycle cap;
//! 2. a deadline converts a runaway run into `SimError::Deadline`;
//! 3. on a healthy run, arming the watchdog changes *nothing* — the
//!    statistics are bit-identical to an unsupervised run, because the
//!    probe only reads gauges.

mod util;

use dcl1::{Design, GpuConfig, GpuSystem, RunStats, SimError, SimOptions};
use dcl1_common::SplitMix64;
use util::{KernelParams, RandomKernel, DESIGNS};

fn build<'w>(design: &Design, kernel: &'w RandomKernel, opts: SimOptions) -> GpuSystem<'w> {
    let cfg = GpuConfig::small_test();
    GpuSystem::build(&cfg, design, kernel, opts).expect("build")
}

fn kernel(seed: u64) -> RandomKernel {
    let mut rng = SplitMix64::new(seed);
    RandomKernel(KernelParams::draw(&mut rng))
}

#[test]
fn stalled_machine_is_reported_as_livelock_with_dump() {
    let k = kernel(0xDEAD_0001);
    for design in DESIGNS.iter().take(3) {
        let opts = SimOptions { max_cycles: 10_000_000, ..SimOptions::default() };
        let mut sys = build(design, &k, opts);
        sys.set_watchdog(4096);
        sys.inject_stall_from(200);
        match sys.run_result() {
            Err(SimError::Livelock { cycle, dump }) => {
                assert!(cycle >= 200, "fired before the stall: cycle {cycle}");
                assert!(
                    cycle < 200 + 3 * 4096,
                    "watchdog took too long: cycle {cycle} for epoch 4096"
                );
                assert!(!dump.is_empty(), "livelock must carry a state dump");
                assert!(dump.contains("node_mshr_waiters"), "dump missing MSHR line:\n{dump}");
            }
            other => panic!("{design:?}: expected livelock, got {other:?}"),
        }
    }
}

#[test]
fn deadline_fires_on_a_stalled_run() {
    let k = kernel(0xDEAD_0002);
    let opts = SimOptions { max_cycles: u64::MAX, ..SimOptions::default() };
    let mut sys = build(&DESIGNS[0], &k, opts);
    // A zero-second budget is exceeded by any positive wall time, so the
    // first probe reports Deadline; the stall keeps the machine from
    // finishing before that probe. The probe checks the deadline before
    // the progress signature, so this must be Deadline, not Livelock.
    sys.set_watchdog(1024);
    sys.set_deadline_secs(0);
    sys.inject_stall_from(100);
    match sys.run_result() {
        Err(SimError::Deadline { limit_secs, .. }) => assert_eq!(limit_secs, 0),
        other => panic!("expected deadline, got {other:?}"),
    }
}

#[test]
fn watchdog_on_a_healthy_run_is_bit_identical_and_succeeds() {
    let mut rng = SplitMix64::new(0xDEAD_0003);
    for (case, design) in DESIGNS.iter().enumerate() {
        let k = RandomKernel(KernelParams::draw(&mut rng));
        let opts = SimOptions { max_cycles: 3_000_000, ..SimOptions::default() };

        let plain: RunStats = build(design, &k, opts).run();

        let mut sys = build(design, &k, opts);
        sys.set_watchdog(dcl1::DEFAULT_WATCHDOG_EPOCH);
        sys.set_deadline_secs(3600);
        let watched = sys.run_result().expect("healthy run must pass supervision");

        assert_eq!(plain, watched, "case {case} ({design:?}): watchdog changed stats");
    }
}

#[test]
fn run_panics_with_the_diagnostic_when_unsupervised() {
    let k = kernel(0xDEAD_0004);
    let opts = SimOptions { max_cycles: 10_000_000, ..SimOptions::default() };
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut sys = build(&DESIGNS[0], &k, opts);
        sys.set_watchdog(2048);
        sys.inject_stall_from(50);
        sys.run()
    }));
    let payload = caught.expect_err("stalled run() must panic");
    let msg = dcl1_resilience::supervisor::panic_message(payload.as_ref());
    assert!(msg.contains("livelock"), "panic must carry the livelock report: {msg}");
}
