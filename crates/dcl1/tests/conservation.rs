//! Randomized-but-deterministic test: for seeded random kernels and design
//! points, the machine always drains, retires exactly the generated
//! instruction count, and keeps its statistics consistent — i.e. no
//! transaction is ever lost or duplicated anywhere in the hierarchy.

#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

mod util;

use dcl1::{GpuConfig, GpuSystem, SimOptions};
use dcl1_common::SplitMix64;
use util::{KernelParams, RandomKernel, DESIGNS};

#[test]
fn machine_conserves_instructions() {
    let mut rng = SplitMix64::new(0xC0_45E4);
    for case in 0..24u64 {
        let p = KernelParams::draw(&mut rng);
        let design = DESIGNS[rng.next_below(DESIGNS.len() as u64) as usize];
        let kernel = RandomKernel(p.clone());
        let expected = p.ctas as u64 * p.wf_per_cta as u64 * p.instrs as u64;
        let cfg = GpuConfig::small_test();
        let opts = SimOptions { max_cycles: 3_000_000, ..SimOptions::default() };
        let mut sys = GpuSystem::build(&cfg, &design, &kernel, opts).expect("build");
        let stats = sys.run();
        assert!(
            stats.cycles < opts.max_cycles,
            "machine wedged (case {case}): {}",
            sys.debug_snapshot()
        );
        assert_eq!(stats.instructions, expected, "case {case} ({design:?})");
        assert_eq!(stats.l1_hits + stats.l1_misses, stats.l1_accesses);
        assert!(stats.l1_replicated_misses <= stats.l1_misses);
        assert_eq!(stats.per_node_accesses.iter().sum::<u64>(), stats.l1_accesses);
    }
}
