//! Property test: for randomized kernels and design points, the machine
//! always drains, retires exactly the generated instruction count, and
//! keeps its statistics consistent — i.e. no transaction is ever lost or
//! duplicated anywhere in the hierarchy.

use dcl1::{Design, GpuConfig, GpuSystem, SimOptions};
use dcl1_common::{LineAddr, SplitMix64};
use dcl1_gpu::{MemAccess, MemInstr, MemKind, TraceFactory, TraceSource, WavefrontInstr};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct KernelParams {
    ctas: u32,
    wf_per_cta: u32,
    instrs: u32,
    mem_fraction: f64,
    store_fraction: f64,
    atomic_fraction: f64,
    shared_lines: u64,
    span: u32,
    seed: u64,
}

#[derive(Debug)]
struct RandomKernel(KernelParams);

#[derive(Debug)]
struct RandomTrace {
    p: KernelParams,
    rng: SplitMix64,
    uid: u64,
    left: u32,
    cursor: u64,
}

impl TraceSource for RandomTrace {
    fn next_instr(&mut self) -> WavefrontInstr {
        if self.left == 0 {
            return WavefrontInstr::Done;
        }
        self.left -= 1;
        if !self.rng.chance(self.p.mem_fraction) {
            return WavefrontInstr::Alu { latency: (self.rng.next_below(4)) as u32 };
        }
        let r = self.rng.next_f64();
        let kind = if r < self.p.atomic_fraction {
            MemKind::Atomic
        } else if r < self.p.atomic_fraction + self.p.store_fraction {
            MemKind::Store
        } else if r < self.p.atomic_fraction + self.p.store_fraction + 0.03 {
            MemKind::Aux
        } else {
            MemKind::Load
        };
        let n = if kind == MemKind::Load { 1 + self.rng.next_below(self.p.span as u64) } else { 1 };
        let accesses = (0..n)
            .map(|_| {
                let line = if self.rng.chance(0.5) {
                    self.rng.next_below(self.p.shared_lines)
                } else {
                    self.cursor += 1;
                    1 << 20 | (self.uid * 131 + self.cursor)
                };
                MemAccess {
                    line: LineAddr::new(line),
                    bytes: 32 * (1 + self.rng.next_below(4) as u32),
                }
            })
            .collect();
        WavefrontInstr::Mem(MemInstr { kind, accesses })
    }
}

impl TraceFactory for RandomKernel {
    fn wavefront_trace(&self, cta: u32, wf: u32) -> Box<dyn TraceSource> {
        let uid = cta as u64 * self.0.wf_per_cta as u64 + wf as u64;
        Box::new(RandomTrace {
            rng: SplitMix64::new(self.0.seed).split(uid),
            p: self.0.clone(),
            uid,
            left: self.0.instrs,
            cursor: 0,
        })
    }
    fn total_ctas(&self) -> u32 {
        self.0.ctas
    }
    fn wavefronts_per_cta(&self) -> u32 {
        self.0.wf_per_cta
    }
}

fn params() -> impl Strategy<Value = KernelParams> {
    (
        1u32..12,        // ctas
        1u32..4,         // wf_per_cta
        1u32..48,        // instrs
        0.1f64..0.9,     // mem fraction
        0.0f64..0.3,     // store fraction
        0.0f64..0.1,     // atomic fraction
        8u64..256,       // shared region
        1u32..4,         // span
        any::<u64>(),    // seed
    )
        .prop_map(|(ctas, wf, instrs, mem, st, at, sh, span, seed)| KernelParams {
            ctas,
            wf_per_cta: wf,
            instrs,
            mem_fraction: mem,
            store_fraction: st,
            atomic_fraction: at,
            shared_lines: sh,
            span,
            seed,
        })
}

fn design_strategy() -> impl Strategy<Value = Design> {
    prop_oneof![
        Just(Design::Baseline),
        Just(Design::IdealSingleL1),
        Just(Design::Private { nodes: 8 }),
        Just(Design::Private { nodes: 4 }),
        Just(Design::Shared { nodes: 8 }),
        Just(Design::Shared { nodes: 4 }),
        Just(Design::Clustered { nodes: 4, clusters: 2, boost: false }),
        Just(Design::Clustered { nodes: 8, clusters: 2, boost: true }),
        Just(Design::Clustered { nodes: 8, clusters: 4, boost: true }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn machine_conserves_instructions(p in params(), design in design_strategy()) {
        let kernel = RandomKernel(p.clone());
        let expected = p.ctas as u64 * p.wf_per_cta as u64 * p.instrs as u64;
        let cfg = GpuConfig::small_test();
        let opts = SimOptions { max_cycles: 3_000_000, ..SimOptions::default() };
        let mut sys = GpuSystem::build(&cfg, &design, &kernel, opts).expect("build");
        let stats = sys.run();
        prop_assert!(stats.cycles < opts.max_cycles, "machine wedged: {}", sys.debug_snapshot());
        prop_assert_eq!(stats.instructions, expected);
        prop_assert_eq!(stats.l1_hits + stats.l1_misses, stats.l1_accesses);
        prop_assert!(stats.l1_replicated_misses <= stats.l1_misses);
        prop_assert_eq!(
            stats.per_node_accesses.iter().sum::<u64>(),
            stats.l1_accesses
        );
    }
}
