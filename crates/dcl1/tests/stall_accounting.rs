//! Stall-attribution invariants: over any measured window, every core
//! cycle is either an issued instruction or exactly one classified stall,
//! so the per-core breakdown sums to the non-issue cycle count with no
//! cycle lost or double-counted — for every design point, with and
//! without fast-forward.

#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

mod util;

use dcl1::{GpuConfig, GpuSystem, SimOptions};
use dcl1_common::SplitMix64;
use util::{KernelParams, RandomKernel, DESIGNS};

#[test]
fn stall_breakdown_partitions_every_core_cycle() {
    let mut rng = SplitMix64::new(0x57A1_1CAFE);
    for case in 0..16u64 {
        let p = KernelParams::draw(&mut rng);
        let design = DESIGNS[rng.next_below(DESIGNS.len() as u64) as usize];
        let kernel = RandomKernel(p.clone());
        let cfg = GpuConfig::small_test();
        let fast_forward = case % 2 == 0;
        let opts = SimOptions { max_cycles: 3_000_000, fast_forward, ..SimOptions::default() };
        let mut sys = GpuSystem::build(&cfg, &design, &kernel, opts).expect("build");
        let stats = sys.run();
        let cycles = sys.measured_cycles();
        assert_eq!(stats.cycles, cycles);

        let mut total_instr = 0;
        let mut total_stall = 0;
        for (core, cs) in sys.core_stats().iter().enumerate() {
            let instr = cs.instructions.get();
            let stall = cs.stall.total();
            // The six classes partition the core's non-issue cycles.
            assert_eq!(
                stall,
                cs.idle_cycles.get() + cs.mem_stall_cycles.get(),
                "case {case} ({design:?}) core {core}: breakdown vs legacy counters"
            );
            // And every cycle is exactly one of: issue, stall.
            assert_eq!(
                instr + stall,
                cycles,
                "case {case} ({design:?}) core {core}: {instr} instr + {stall} stall != {cycles} cycles"
            );
            total_instr += instr;
            total_stall += stall;
        }
        assert_eq!(total_instr, stats.instructions);
        assert_eq!(
            total_stall,
            stats.total_stall_cycles(),
            "case {case}: RunStats stall rollup disagrees with per-core sums"
        );
    }
}
