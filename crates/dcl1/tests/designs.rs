//! End-to-end integration tests: every design runs a small kernel with
//! real memory traffic to completion, retires the same instruction count,
//! and shows the qualitative behaviour the paper reports (shared designs
//! kill replication; clustering bounds it).

use dcl1::{Design, GpuConfig, GpuSystem, SimOptions};
use dcl1_common::{LineAddr, SplitMix64};
use dcl1_gpu::{
    MemAccess, MemInstr, MemKind, TraceFactory, TraceSource, WavefrontInstr,
};

/// A kernel whose wavefronts alternate ALU work with loads from a shared
/// region (re-read by every CTA → replication across private L1s) and a
/// per-wavefront streaming region.
#[derive(Debug)]
struct SharedRegionKernel {
    ctas: u32,
    wf_per_cta: u32,
    instrs: u32,
    shared_lines: u64,
    store_every: u32,
}

impl Default for SharedRegionKernel {
    fn default() -> Self {
        SharedRegionKernel { ctas: 16, wf_per_cta: 2, instrs: 64, shared_lines: 128, store_every: 0 }
    }
}

#[derive(Debug)]
struct SharedRegionTrace {
    rng: SplitMix64,
    left: u32,
    wf_uid: u64,
    cursor: u64,
    shared_lines: u64,
    store_every: u32,
    issued: u32,
}

impl TraceSource for SharedRegionTrace {
    fn next_instr(&mut self) -> WavefrontInstr {
        if self.left == 0 {
            return WavefrontInstr::Done;
        }
        self.left -= 1;
        self.issued += 1;
        match self.issued % 4 {
            0 | 2 => WavefrontInstr::Alu { latency: 1 },
            1 => {
                // Shared-region load: same lines for every wavefront.
                let line = self.rng.next_below(self.shared_lines);
                WavefrontInstr::Mem(MemInstr {
                    kind: MemKind::Load,
                    accesses: vec![MemAccess { line: LineAddr::new(line), bytes: 128 }],
                })
            }
            _ => {
                // Private streaming load (or periodic store).
                let line = 1_000_000 + self.wf_uid * 4096 + self.cursor;
                self.cursor += 1;
                let kind = if self.store_every > 0 && self.issued.is_multiple_of(self.store_every) {
                    MemKind::Store
                } else {
                    MemKind::Load
                };
                WavefrontInstr::Mem(MemInstr {
                    kind,
                    accesses: vec![MemAccess { line: LineAddr::new(line), bytes: 32 }],
                })
            }
        }
    }
}

impl TraceFactory for SharedRegionKernel {
    fn wavefront_trace(&self, cta: u32, wf: u32) -> Box<dyn TraceSource> {
        let uid = (cta as u64) * self.wf_per_cta as u64 + wf as u64;
        Box::new(SharedRegionTrace {
            rng: SplitMix64::new(0xD0C5_1A11).split(uid),
            left: self.instrs,
            wf_uid: uid,
            cursor: 0,
            shared_lines: self.shared_lines,
            store_every: self.store_every,
            issued: 0,
        })
    }
    fn total_ctas(&self) -> u32 {
        self.ctas
    }
    fn wavefronts_per_cta(&self) -> u32 {
        self.wf_per_cta
    }
}

fn run(design: Design, kernel: &SharedRegionKernel) -> dcl1::RunStats {
    let cfg = GpuConfig::small_test();
    let opts = SimOptions { max_cycles: 2_000_000, ..SimOptions::default() };
    let mut sys = GpuSystem::build(&cfg, &design, kernel, opts).expect("valid design");
    let stats = sys.run();
    assert!(
        stats.cycles < 2_000_000,
        "{} did not drain (cycles = {})",
        stats.design,
        stats.cycles
    );
    stats
}

fn all_designs() -> Vec<Design> {
    use dcl1::design::BaselineBoost;
    vec![
        Design::Baseline,
        Design::BoostedBaseline(BaselineBoost::Cache2x),
        Design::BoostedBaseline(BaselineBoost::NocFreq2x),
        Design::BoostedBaseline(BaselineBoost::Flit4x),
        Design::IdealSingleL1,
        Design::Private { nodes: 8 },
        Design::Private { nodes: 4 },
        Design::Shared { nodes: 4 },
        Design::Clustered { nodes: 4, clusters: 2, boost: false },
        Design::Clustered { nodes: 4, clusters: 2, boost: true },
    ]
}

#[test]
fn every_design_runs_to_completion_with_identical_work() {
    let kernel = SharedRegionKernel::default();
    let expected = (kernel.ctas * kernel.wf_per_cta * kernel.instrs) as u64;
    for design in all_designs() {
        let stats = run(design, &kernel);
        assert_eq!(
            stats.instructions, expected,
            "{}: wrong instruction count",
            stats.design
        );
        assert!(stats.l1_accesses > 0, "{}: no L1 traffic", stats.design);
        assert!(stats.ipc() > 0.0, "{}: zero IPC", stats.design);
    }
}

#[test]
fn cdxbar_runs_with_ten_core_machine() {
    // CDXBar needs cores divisible by 10.
    let mut cfg = GpuConfig::small_test();
    cfg.cores = 10;
    let kernel = SharedRegionKernel::default();
    for design in [
        Design::CdXbar { stage1_mult: 1, stage2_mult: 1 },
        Design::CdXbar { stage1_mult: 2, stage2_mult: 2 },
    ] {
        let opts = SimOptions { max_cycles: 2_000_000, ..SimOptions::default() };
        let mut sys = GpuSystem::build(&cfg, &design, &kernel, opts).unwrap();
        let stats = sys.run();
        assert!(stats.cycles < 2_000_000, "{} did not drain", stats.design);
        assert_eq!(
            stats.instructions,
            (kernel.ctas * kernel.wf_per_cta * kernel.instrs) as u64
        );
    }
}

#[test]
fn shared_design_eliminates_replicated_misses() {
    let kernel = SharedRegionKernel { instrs: 128, ..SharedRegionKernel::default() };
    let base = run(Design::Baseline, &kernel);
    let shared = run(Design::Shared { nodes: 4 }, &kernel);
    assert!(
        base.replication_ratio() > 0.1,
        "baseline should see replicated misses (got {})",
        base.replication_ratio()
    );
    assert!(
        shared.replication_ratio() < 0.01,
        "shared design must not see replicated misses (got {})",
        shared.replication_ratio()
    );
    // The shared aggregate capacity covers the shared region: miss rate
    // must drop substantially.
    assert!(
        shared.l1_miss_rate() < base.l1_miss_rate(),
        "shared {} !< base {}",
        shared.l1_miss_rate(),
        base.l1_miss_rate()
    );
}

#[test]
fn clustering_bounds_replication_between_private_and_shared() {
    let kernel = SharedRegionKernel { instrs: 128, ..SharedRegionKernel::default() };
    let privat = run(Design::Private { nodes: 4 }, &kernel);
    let clustered = run(Design::Clustered { nodes: 4, clusters: 2, boost: false }, &kernel);
    let shared = run(Design::Shared { nodes: 4 }, &kernel);
    // Miss rates should be ordered shared <= clustered <= private.
    assert!(
        shared.l1_miss_rate() <= clustered.l1_miss_rate() + 0.02,
        "shared {} vs clustered {}",
        shared.l1_miss_rate(),
        clustered.l1_miss_rate()
    );
    assert!(
        clustered.l1_miss_rate() <= privat.l1_miss_rate() + 0.02,
        "clustered {} vs private {}",
        clustered.l1_miss_rate(),
        privat.l1_miss_rate()
    );
    // Replica bound: at most `clusters` copies under clustering.
    assert!(clustered.mean_replicas <= 2.0 + 0.1);
}

#[test]
fn perfect_l1_never_misses() {
    let kernel = SharedRegionKernel::default();
    let cfg = GpuConfig::small_test();
    let opts = SimOptions { perfect_l1: true, max_cycles: 2_000_000, ..SimOptions::default() };
    let mut sys = GpuSystem::build(&cfg, &Design::Private { nodes: 4 }, &kernel, opts).unwrap();
    let stats = sys.run();
    assert!(stats.cycles < 2_000_000);
    assert_eq!(stats.l1_misses, 0);
    assert_eq!(stats.l1_miss_rate(), 0.0);
}

#[test]
fn latency_override_slows_the_machine() {
    let kernel = SharedRegionKernel::default();
    let cfg = GpuConfig::small_test();
    let mut fast = GpuSystem::build(
        &cfg,
        &Design::Baseline,
        &kernel,
        SimOptions { l1_latency_override: Some(0), max_cycles: 2_000_000, ..SimOptions::default() },
    )
    .unwrap();
    let mut slow = GpuSystem::build(
        &cfg,
        &Design::Baseline,
        &kernel,
        SimOptions { l1_latency_override: Some(64), max_cycles: 2_000_000, ..SimOptions::default() },
    )
    .unwrap();
    let f = fast.run();
    let s = slow.run();
    assert!(f.cycles <= s.cycles, "zero-latency L1 ran slower: {} vs {}", f.cycles, s.cycles);
}

#[test]
fn stores_and_bypasses_flow_through_all_designs() {
    #[derive(Debug)]
    struct MixedKernel;
    #[derive(Debug)]
    struct MixedTrace {
        i: u32,
    }
    impl TraceSource for MixedTrace {
        fn next_instr(&mut self) -> WavefrontInstr {
            self.i += 1;
            if self.i > 32 {
                return WavefrontInstr::Done;
            }
            let kind = match self.i % 4 {
                0 => MemKind::Load,
                1 => MemKind::Store,
                2 => MemKind::Atomic,
                _ => MemKind::Aux,
            };
            WavefrontInstr::Mem(MemInstr {
                kind,
                accesses: vec![MemAccess { line: LineAddr::new(self.i as u64 * 3), bytes: 32 }],
            })
        }
    }
    impl TraceFactory for MixedKernel {
        fn wavefront_trace(&self, _c: u32, _w: u32) -> Box<dyn TraceSource> {
            Box::new(MixedTrace { i: 0 })
        }
        fn total_ctas(&self) -> u32 {
            4
        }
        fn wavefronts_per_cta(&self) -> u32 {
            2
        }
    }

    let cfg = GpuConfig::small_test();
    for design in all_designs() {
        let opts = SimOptions { max_cycles: 2_000_000, ..SimOptions::default() };
        let mut sys = GpuSystem::build(&cfg, &design, &MixedKernel, opts).unwrap();
        let stats = sys.run();
        assert!(stats.cycles < 2_000_000, "{} hung on mixed traffic", stats.design);
        assert_eq!(stats.instructions, 4 * 2 * 32, "{}", stats.design);
        assert!(stats.l2_accesses > 0, "{}: atomics/aux must reach L2", stats.design);
    }
}

#[test]
fn distributed_cta_policy_completes() {
    use dcl1_gpu::CtaPolicy;
    let kernel = SharedRegionKernel::default();
    let cfg = GpuConfig::small_test();
    let opts = SimOptions {
        cta_policy: CtaPolicy::DistributedBlocks,
        max_cycles: 2_000_000,
        ..SimOptions::default()
    };
    let mut sys = GpuSystem::build(&cfg, &Design::Baseline, &kernel, opts).unwrap();
    let stats = sys.run();
    assert!(stats.cycles < 2_000_000);
    assert_eq!(stats.instructions, (kernel.ctas * kernel.wf_per_cta * kernel.instrs) as u64);
}
