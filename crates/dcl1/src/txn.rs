//! Memory transactions flowing between cores, DC-L1 nodes and the L2.

use dcl1_common::{CoreId, Cycle, LineAddr, WavefrontId};
use dcl1_gpu::MemKind;

/// Globally unique transaction identifier.
pub type TxnId = u64;

/// One coalesced memory transaction in flight.
///
/// A wavefront memory instruction fans out into one `Txn` per coalesced
/// line access; the issuing wavefront blocks until all of them return.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Txn {
    /// Unique id (diagnostics and ordering).
    pub id: TxnId,
    /// Issuing core.
    pub core: CoreId,
    /// Issuing wavefront slot within the core.
    pub wavefront: WavefrontId,
    /// Target line.
    pub line: LineAddr,
    /// Bytes of the line the core actually needs (what the DC-L1 sends
    /// back over NoC#1, paper §III).
    pub bytes: u32,
    /// Access kind.
    pub kind: MemKind,
    /// Core cycle at which the instruction issued (round-trip-time stats).
    pub issued_at: Cycle,
    /// Set by the (DC-)L1 node when the access hit its cache (statistics
    /// decomposition: hit RTT vs miss RTT).
    pub l1_hit: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_is_compact_and_copyable() {
        // The simulator copies transactions through queues by the million;
        // keep the struct small.
        assert!(std::mem::size_of::<Txn>() <= 48);
        let t = Txn {
            id: 1,
            core: CoreId::new(2),
            wavefront: WavefrontId::new(3),
            line: LineAddr::new(4),
            bytes: 128,
            kind: MemKind::Load,
            issued_at: 5,
            l1_hit: false,
        };
        let u = t;
        assert_eq!(t, u);
    }
}
