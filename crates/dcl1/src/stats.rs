//! Machine-level run statistics — everything the paper's figures plot.


/// Aggregate results of one simulated run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Design name the run used.
    pub design: String,
    /// Core cycles simulated.
    pub cycles: u64,
    /// Wavefront instructions retired across all cores.
    pub instructions: u64,
    /// (DC-)L1 demand accesses across all nodes.
    pub l1_accesses: u64,
    /// (DC-)L1 demand hits.
    pub l1_hits: u64,
    /// (DC-)L1 demand misses.
    pub l1_misses: u64,
    /// Misses whose line was resident in another same-level cache.
    pub l1_replicated_misses: u64,
    /// Time-sampled mean copies per distinct resident line (Fig 16).
    pub mean_replicas: f64,
    /// Highest per-node data-port utilization (accesses / cycles, Fig 2/17).
    pub max_port_utilization: f64,
    /// Mean per-node data-port utilization.
    pub mean_port_utilization: f64,
    /// Highest reply-network link utilization toward the L1 level (Fig 2).
    pub max_reply_link_utilization: f64,
    /// Mean round-trip time of load transactions, in core cycles.
    pub mean_load_rtt: f64,
    /// Median load round-trip time (core cycles).
    pub p50_load_rtt: u64,
    /// 95th-percentile load round-trip time (core cycles).
    pub p95_load_rtt: u64,
    /// 99th-percentile load round-trip time (core cycles).
    pub p99_load_rtt: u64,
    /// L2 accesses across all slices.
    pub l2_accesses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// DRAM reads + writes serviced.
    pub dram_requests: u64,
    /// DRAM row-buffer hit rate.
    pub dram_row_hit_rate: f64,
    /// Flits moved per NoC group, aligned with
    /// [`Topology::noc_spec`](crate::Topology::noc_spec) entry order
    /// (request + reply directions summed) — input to the dynamic-power
    /// model.
    pub noc_flits: Vec<u64>,
    /// Per-node demand access counts (partition-camping visibility).
    pub per_node_accesses: Vec<u64>,
    /// Core cycles spent idle with zero resident wavefronts (summed over
    /// cores; part of the stall attribution, with
    /// [`stall_alu_busy`](RunStats::stall_alu_busy) through
    /// [`stall_mem_noc`](RunStats::stall_mem_noc) the six classes
    /// partition every non-issuing core cycle).
    pub stall_drained: u64,
    /// Idle cycles where wavefronts were resident but none ready (all
    /// inside ALU busy intervals, none waiting on memory).
    pub stall_alu_busy: u64,
    /// Idle cycles where at least one wavefront was waiting on an
    /// outstanding memory access (fill wait).
    pub stall_fill_wait: u64,
    /// Memory-stall cycles where a ready memory instruction could not
    /// issue because the core's outbox still held a prior transaction.
    pub stall_mem_outbox: u64,
    /// Memory-stall cycles blocked on a full L1/DC-L1 input queue.
    pub stall_mem_l1_queue: u64,
    /// Memory-stall cycles blocked on NoC#1 injection backpressure.
    pub stall_mem_noc: u64,
    /// Node-side structural stalls charged to a full MSHR file (entry or
    /// merge exhaustion), summed over nodes.
    pub l1_mshr_stall_cycles: u64,
    /// Node-side structural stalls charged to full Q2/Q3/Q4 queues or a
    /// busy port, summed over nodes.
    pub l1_queue_stall_cycles: u64,
}

impl RunStats {
    /// Instructions per cycle, the paper's performance metric.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// (DC-)L1 demand miss rate.
    pub fn l1_miss_rate(&self) -> f64 {
        if self.l1_accesses == 0 {
            0.0
        } else {
            self.l1_misses as f64 / self.l1_accesses as f64
        }
    }

    /// Fraction of L1 misses that another same-level cache could have
    /// served (paper Fig 1's replication ratio).
    pub fn replication_ratio(&self) -> f64 {
        if self.l1_misses == 0 {
            0.0
        } else {
            self.l1_replicated_misses as f64 / self.l1_misses as f64
        }
    }

    /// L2 miss rate.
    pub fn l2_miss_rate(&self) -> f64 {
        if self.l2_accesses == 0 {
            0.0
        } else {
            self.l2_misses as f64 / self.l2_accesses as f64
        }
    }

    /// Load imbalance across nodes: max over mean per-node accesses
    /// (1.0 = perfectly balanced; large = partition camping).
    pub fn node_load_imbalance(&self) -> f64 {
        if self.per_node_accesses.is_empty() {
            return 0.0;
        }
        let max = *self.per_node_accesses.iter().max().expect("nonempty") as f64;
        let mean = self.per_node_accesses.iter().sum::<u64>() as f64
            / self.per_node_accesses.len() as f64;
        if mean == 0.0 {
            0.0
        } else {
            max / mean
        }
    }

    /// Run length in seconds at the given core clock.
    pub fn seconds(&self, core_mhz: u64) -> f64 {
        self.cycles as f64 / (core_mhz as f64 * 1e6)
    }

    /// Total attributed non-issue core cycles: the six stall classes
    /// partition every core cycle that did not issue an instruction, so
    /// summed over cores `instructions + total_stall_cycles ==
    /// cores × cycles` holds exactly.
    pub fn total_stall_cycles(&self) -> u64 {
        self.stall_drained
            + self.stall_alu_busy
            + self.stall_fill_wait
            + self.stall_mem_outbox
            + self.stall_mem_l1_queue
            + self.stall_mem_noc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = RunStats {
            cycles: 100,
            instructions: 250,
            l1_accesses: 80,
            l1_hits: 60,
            l1_misses: 20,
            l1_replicated_misses: 5,
            l2_accesses: 20,
            l2_misses: 10,
            per_node_accesses: vec![10, 30, 20, 20],
            ..RunStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.l1_miss_rate() - 0.25).abs() < 1e-12);
        assert!((s.replication_ratio() - 0.25).abs() < 1e-12);
        assert!((s.l2_miss_rate() - 0.5).abs() < 1e-12);
        assert!((s.node_load_imbalance() - 1.5).abs() < 1e-12);
        assert!((s.seconds(1400) - 100.0 / 1.4e9).abs() < 1e-18);
    }

    #[test]
    fn zero_denominators_are_safe() {
        let s = RunStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.l1_miss_rate(), 0.0);
        assert_eq!(s.replication_ratio(), 0.0);
        assert_eq!(s.l2_miss_rate(), 0.0);
        assert_eq!(s.node_load_imbalance(), 0.0);
    }
}
