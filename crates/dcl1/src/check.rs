//! Checked-simulation mode: the machine's conservation-invariant harness.
//!
//! When enabled (`GpuSystem::enable_check`, surfaced as `--check` on the
//! bench binaries), the machine verifies its conservation laws every
//! [`EPOCH_CYCLES`] cycles and once more at drain:
//!
//! * **Transactions** — every coalesced request issued by a core is retired
//!   back at a core exactly once ([`FlowMeter`]); zero in flight at drain.
//! * **Crossbars** — lifetime flits injected == flits delivered + flits
//!   held; the O(1) occupancy counters match a ground-truth recount.
//! * **Queues** — every Q1..Q4 / L2-input queue conserves its items and
//!   stays within capacity.
//! * **MSHRs** — allocations == frees + live entries; no waiter lost.
//! * **Stall attribution** — per core, `instructions + stalls == cycles`
//!   over the measured window (the stall-accounting test's identity,
//!   checked continuously instead of once at exit).
//!
//! Checking costs one pass over the component gauges per epoch and never
//! touches a statistic, so a checked run produces byte-identical stats to
//! an unchecked one (proven by `crates/bench/tests/checked_sim.rs`). Any
//! violation panics with the failing site and cycle.

use dcl1_common::invariant::{FlowMeter, InvariantResult};

/// Cycles between invariant sweeps. A power of two so the machine's
/// `is_multiple_of` probe is a mask; idle fast-forward may jump over a
/// boundary, which is sound — quiescent state cannot break conservation.
pub const EPOCH_CYCLES: u64 = 1024;

/// Per-run state of the checked-sim harness.
#[derive(Debug, Default)]
pub struct SimChecker {
    /// Coalesced requests issued at cores vs. replies retired at cores.
    pub txns: FlowMeter,
    /// Invariant sweeps completed (reported by the bench binaries).
    pub epochs_checked: u64,
}

impl SimChecker {
    /// A fresh harness.
    pub fn new() -> Self {
        SimChecker { txns: FlowMeter::new("txns"), epochs_checked: 0 }
    }

    /// Records `n` coalesced requests entering the memory system.
    #[inline]
    pub fn txns_issued(&mut self, n: u64) {
        self.txns.produce(n);
    }

    /// Records one reply retiring at a core.
    #[inline]
    pub fn txn_retired(&mut self) {
        self.txns.consume(1);
    }

    /// The per-epoch transaction law: retirement never overtakes issue.
    /// (The exact in-flight census lives in the machine, which knows every
    /// structure a transaction can occupy.)
    ///
    /// # Errors
    ///
    /// Returns the imbalance on underflow.
    pub fn check_txn_flow(&self) -> InvariantResult {
        self.txns.check(self.txns.in_flight())
    }

    /// The end-of-run transaction law: everything issued has retired.
    ///
    /// # Errors
    ///
    /// Returns the leak when transactions are still outstanding.
    pub fn check_drained(&self) -> InvariantResult {
        self.txns.check_drained()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drained_checker_is_clean() {
        let mut ck = SimChecker::new();
        ck.txns_issued(5);
        for _ in 0..5 {
            ck.txn_retired();
        }
        assert!(ck.check_txn_flow().is_ok());
        assert!(ck.check_drained().is_ok());
    }

    #[test]
    fn outstanding_txns_fail_drain_check() {
        let mut ck = SimChecker::new();
        ck.txns_issued(2);
        ck.txn_retired();
        assert!(ck.check_txn_flow().is_ok(), "in-flight is legal mid-run");
        let err = ck.check_drained().unwrap_err();
        assert!(err.detail.contains("leak"), "{err}");
    }
}
