//! Checked-simulation mode: the machine's conservation-invariant harness.
//!
//! When enabled (`GpuSystem::enable_check`, surfaced as `--check` on the
//! bench binaries), the machine verifies its conservation laws every
//! [`EPOCH_CYCLES`] cycles and once more at drain:
//!
//! * **Transactions** — every coalesced request issued by a core is retired
//!   back at a core exactly once. The ledger is *per execution domain*
//!   ([`FlowMeter`] on each shard), so the law holds shard-locally and —
//!   because a transaction issues and retires in the same domain — globally
//!   by summation; zero in flight at drain, in every domain.
//! * **Crossbars** — lifetime flits injected == flits delivered + flits
//!   held; the O(1) occupancy counters match a ground-truth recount.
//! * **Queues** — every Q1..Q4 / L2-input queue conserves its items and
//!   stays within capacity.
//! * **MSHRs** — allocations == frees + live entries; no waiter lost.
//! * **Stall attribution** — per core, `instructions + stalls == cycles`
//!   over the measured window (the stall-accounting test's identity,
//!   checked continuously instead of once at exit).
//!
//! Checking costs one pass over the component gauges per epoch and never
//! touches a statistic, so a checked run produces byte-identical stats to
//! an unchecked one (proven by `crates/bench/tests/checked_sim.rs`). Any
//! violation panics with the failing site and cycle.
//!
//! [`FlowMeter`]: dcl1_common::invariant::FlowMeter

/// Cycles between invariant sweeps. A power of two so the machine's
/// `is_multiple_of` probe is a mask; idle fast-forward may jump over a
/// boundary, which is sound — quiescent state cannot break conservation.
pub const EPOCH_CYCLES: u64 = 1024;

/// Per-run state of the checked-sim harness.
///
/// The transaction ledgers themselves live on the machine's shard domains
/// (one `FlowMeter` each, maintained unconditionally so the sharded and
/// sequential paths share one accounting surface); the checker holds only
/// the sweep cadence bookkeeping.
#[derive(Debug, Default)]
pub struct SimChecker {
    /// Invariant sweeps completed (reported by the bench binaries).
    pub epochs_checked: u64,
}

impl SimChecker {
    /// A fresh harness.
    pub fn new() -> Self {
        SimChecker { epochs_checked: 0 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcl1_common::invariant::{FlowMeter, InvariantResult};

    /// The per-domain transaction law the machine's sweep applies to each
    /// shard: retirement never overtakes issue, and the ledger's implied
    /// in-flight count is self-consistent.
    fn domain_flow_law(flow: &FlowMeter) -> InvariantResult {
        flow.check(flow.in_flight())
    }

    #[test]
    fn drained_domain_ledger_is_clean() {
        let mut flow = FlowMeter::new("txns");
        flow.produce(5);
        for _ in 0..5 {
            flow.consume(1);
        }
        assert!(domain_flow_law(&flow).is_ok());
        assert!(flow.check_drained().is_ok());
    }

    #[test]
    fn outstanding_txns_fail_drain_check() {
        let mut flow = FlowMeter::new("txns");
        flow.produce(2);
        flow.consume(1);
        assert!(domain_flow_law(&flow).is_ok(), "in-flight is legal mid-run");
        let err = flow.check_drained().unwrap_err();
        assert!(err.detail.contains("leak"), "{err}");
    }

    #[test]
    fn checker_counts_epochs_only() {
        let mut ck = SimChecker::new();
        assert_eq!(ck.epochs_checked, 0);
        ck.epochs_checked += 1;
        assert_eq!(ck.epochs_checked, 1);
    }
}
