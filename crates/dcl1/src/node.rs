//! The DC-L1 node (paper Fig 3).
//!
//! A node hosts the DC-L1 cache (`DC-L1$`), its MSHRs, and four bounded
//! queues:
//!
//! * **Q1** — requests arriving from cores (via NoC#1, or directly in the
//!   baseline where this same structure models the in-core L1);
//! * **Q2** — replies departing to cores;
//! * **Q3** — requests departing to the L2 (misses, writes, bypasses);
//! * **Q4** — replies arriving from the L2 (fills, write ACKs).
//!
//! Non-L1 traffic (instruction/texture/constant fetches) and atomics
//! bypass the cache array: Q1→Q3 on the way down, Q4→Q2 on the way up.
//! Writes are write-evict + no-write-allocate: a write hit invalidates the
//! line, and the write always forwards to the L2.

use crate::presence::PresenceSink;
use crate::txn::Txn;
use dcl1_cache::{CacheGeometry, LookupResult, Mshr, SetAssocCache, SetIndexing};
use dcl1_common::stats::Counter;
use dcl1_common::{BoundedQueue, ConfigError, Cycle, LineAddr};
use dcl1_gpu::MemKind;
use dcl1_obs::Observer;
use std::collections::VecDeque;

/// Structural parameters of one DC-L1 node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeConfig {
    /// DC-L1$ capacity in bytes.
    pub size_bytes: usize,
    /// Associativity.
    pub assoc: usize,
    /// Line size in bytes.
    pub line_bytes: usize,
    /// Access latency in core cycles (28 baseline, 30 at 2× capacity).
    pub latency: u32,
    /// MSHR entries.
    pub mshr_entries: usize,
    /// Merges per MSHR entry.
    pub mshr_merges: usize,
    /// Capacity of each of Q1..Q4, in entries (paper: 4).
    pub queue_entries: usize,
    /// Demand accesses the data port serves per cycle (1; the ideal
    /// single-L1 study widens this to the core count).
    pub ports: usize,
    /// Perfect-cache mode: every lookup hits (Fig 4c study).
    pub perfect: bool,
}

/// Per-node statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct NodeStats {
    /// Demand accesses (loads + stores) served by the data port.
    pub accesses: Counter,
    /// Demand hits.
    pub hits: Counter,
    /// Demand misses.
    pub misses: Counter,
    /// Misses whose line was resident in another same-level cache at miss
    /// time (numerator of the paper's replication ratio).
    pub replicated_misses: Counter,
    /// Bypassing transactions (atomics + non-L1 fetches).
    pub bypasses: Counter,
    /// Cycles the head of Q1 stalled on a full MSHR or full Q3.
    pub stall_cycles: Counter,
    /// The subset of `stall_cycles` caused by MSHR exhaustion (no free
    /// entry, or the target entry's merge list full).
    pub mshr_stall_cycles: Counter,
    /// The subset of `stall_cycles` caused by a full Q3 (L2-bound queue).
    pub q3_stall_cycles: Counter,
}

impl NodeStats {
    /// Demand miss rate.
    pub fn miss_rate(&self) -> f64 {
        self.misses.ratio_of(self.accesses.get())
    }
}

/// One DC-L1 node.
#[derive(Debug)]
pub struct Dcl1Node {
    cache: SetAssocCache,
    mshr: Mshr<Txn>,
    q1: BoundedQueue<Txn>,
    q2: BoundedQueue<Txn>,
    q3: BoundedQueue<Txn>,
    q4: BoundedQueue<Txn>,
    /// Hits waiting out the access latency.
    hit_pipe: VecDeque<(Cycle, Txn)>,
    /// Replies (fills' waiters, acks, bypass returns) waiting for Q2 room.
    reply_stage: VecDeque<Txn>,
    /// Scratch buffer for MSHR completions — reused every fill so the
    /// per-transaction path never allocates in steady state.
    fill_scratch: Vec<Txn>,
    config: NodeConfig,
    stats: NodeStats,
    now: Cycle,
}

impl Dcl1Node {
    /// Creates an empty node.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for invalid cache geometry or zero port
    /// count.
    pub fn new(config: NodeConfig) -> Result<Self, ConfigError> {
        if config.ports == 0 {
            return Err(ConfigError::new("node must have at least one data port"));
        }
        // GPU L1s hash their set index so power-of-two strides spread
        // across sets; partition camping then manifests at the home-node
        // level (the paper's effect), not as intra-cache set conflicts.
        let geom = CacheGeometry::new(config.size_bytes, config.assoc, config.line_bytes)?
            .with_indexing(SetIndexing::Hashed);
        Ok(Dcl1Node {
            cache: SetAssocCache::new(geom),
            mshr: Mshr::new(config.mshr_entries, config.mshr_merges),
            q1: BoundedQueue::new(config.queue_entries),
            q2: BoundedQueue::new(config.queue_entries),
            q3: BoundedQueue::new(config.queue_entries),
            q4: BoundedQueue::new(config.queue_entries),
            hit_pipe: VecDeque::new(),
            reply_stage: VecDeque::new(),
            fill_scratch: Vec::new(),
            config,
            stats: NodeStats::default(),
            now: 0,
        })
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NodeStats {
        &self.stats
    }

    /// Zeroes the statistics (end-of-warmup measurement reset). Cache
    /// contents, queues and MSHRs are untouched — only counters clear.
    pub fn reset_stats(&mut self) {
        self.stats = NodeStats::default();
    }

    /// The node's cache (occupancy and cache-level statistics).
    pub fn cache(&self) -> &SetAssocCache {
        &self.cache
    }

    /// Whether Q1 can accept a request this cycle.
    pub fn can_accept_request(&self) -> bool {
        !self.q1.is_full()
    }

    /// Enqueues a core request into Q1.
    ///
    /// # Errors
    ///
    /// Returns `Err(txn)` when Q1 is full.
    pub fn try_push_request(&mut self, txn: Txn) -> Result<(), Txn> {
        self.q1.try_push(txn)
    }

    /// Whether Q4 can accept an L2 reply this cycle.
    pub fn can_accept_l2_reply(&self) -> bool {
        !self.q4.is_full()
    }

    /// Enqueues an L2 reply into Q4.
    ///
    /// # Errors
    ///
    /// Returns `Err(txn)` when Q4 is full.
    pub fn try_push_l2_reply(&mut self, txn: Txn) -> Result<(), Txn> {
        self.q4.try_push(txn)
    }

    /// Peeks the next request bound for the L2 (head of Q3).
    pub fn peek_l2_request(&self) -> Option<&Txn> {
        self.q3.front()
    }

    /// Pops the next request bound for the L2.
    pub fn pop_l2_request(&mut self) -> Option<Txn> {
        self.q3.pop()
    }

    /// Peeks the next reply bound for a core (head of Q2).
    pub fn peek_reply(&self) -> Option<&Txn> {
        self.q2.front()
    }

    /// Pops the next reply bound for a core.
    pub fn pop_reply(&mut self) -> Option<Txn> {
        self.q2.pop()
    }

    /// If the node has no work this cycle, returns the number of ticks
    /// until its next self-generated event: the head of the hit pipe
    /// maturing (`u64::MAX` when the pipe is empty — outstanding MSHR
    /// misses wake the node externally via Q4). Returns `None` while any
    /// queue or the reply stage holds a transaction, i.e. while ticking
    /// still does real work.
    pub fn quiescent_horizon(&self) -> Option<u64> {
        if !self.q1.is_empty()
            || !self.q2.is_empty()
            || !self.q3.is_empty()
            || !self.q4.is_empty()
            || !self.reply_stage.is_empty()
        {
            return None;
        }
        match self.hit_pipe.front() {
            // The release loop drains matured hits every tick, so the head
            // is always strictly in the future here.
            Some((ready, _)) => Some(ready - self.now),
            None => Some(u64::MAX),
        }
    }

    /// Advances the node clock by `cycles` without ticking. Exactly
    /// equivalent to `cycles` calls to [`tick`](Dcl1Node::tick) on a node
    /// whose queues are empty and whose hit pipe matures no entry in that
    /// span (a tick in that state only increments the clock).
    pub fn skip_idle_cycles(&mut self, cycles: u64) {
        debug_assert!(self.quiescent_horizon().is_some_and(|h| h > cycles));
        self.now += cycles;
    }

    /// Whether every queue, pipe and MSHR is empty.
    pub fn is_idle(&self) -> bool {
        self.q1.is_empty()
            && self.q2.is_empty()
            && self.q3.is_empty()
            && self.q4.is_empty()
            && self.hit_pipe.is_empty()
            && self.reply_stage.is_empty()
            && self.mshr.is_empty()
    }

    /// Request input queue (Q1) depth.
    pub fn q1_len(&self) -> usize {
        self.q1.len()
    }

    /// Reply output queue (Q2) depth.
    pub fn q2_len(&self) -> usize {
        self.q2.len()
    }

    /// L2-bound queue (Q3) depth.
    pub fn q3_len(&self) -> usize {
        self.q3.len()
    }

    /// Fill input queue (Q4) depth.
    pub fn q4_len(&self) -> usize {
        self.q4.len()
    }

    /// Occupied MSHR entries.
    pub fn mshr_len(&self) -> usize {
        self.mshr.len()
    }

    /// Requesters waiting on MSHR fills (entries plus merges).
    pub fn mshr_waiters(&self) -> usize {
        self.mshr.total_waiters()
    }

    /// Cumulative MSHR entry allocations (registry snapshot source).
    pub fn mshr_allocs(&self) -> u64 {
        self.mshr.allocs()
    }

    /// Cumulative MSHR entry frees (registry snapshot source).
    pub fn mshr_frees(&self) -> u64 {
        self.mshr.frees()
    }

    /// Hits in flight waiting out the access latency.
    pub fn hit_pipe_len(&self) -> usize {
        self.hit_pipe.len() + self.reply_stage.len()
    }

    /// Checks the node's conservation laws: each of Q1..Q4 conserves its
    /// items and stays within capacity, the MSHR file neither leaks entries
    /// nor loses waiters, and the hit pipe's ready times are monotone (a
    /// violated FIFO order would release hits out of latency order).
    /// `site` names this node in the error report.
    ///
    /// # Errors
    ///
    /// Returns the first violated law with its counter values.
    pub fn check_invariants(&self, site: &str) -> dcl1_common::InvariantResult {
        self.q1.check_conservation(&format!("{site}.q1"))?;
        self.q2.check_conservation(&format!("{site}.q2"))?;
        self.q3.check_conservation(&format!("{site}.q3"))?;
        self.q4.check_conservation(&format!("{site}.q4"))?;
        self.mshr.check_conservation(&format!("{site}.mshr"))?;
        let mut prev = 0;
        for &(ready, _) in &self.hit_pipe {
            if ready < prev {
                return Err(dcl1_common::InvariantError::new(
                    format!("{site}.hit_pipe"),
                    format!("ready times out of order: {ready} after {prev}"),
                ));
            }
            prev = ready;
        }
        Ok(())
    }

    /// Advances the node one core cycle.
    ///
    /// `presence` is the level-wide line-presence instrumentation — the
    /// shared [`PresenceMap`](crate::presence::PresenceMap) on the
    /// sequential machine, a per-shard
    /// [`PresenceSession`](crate::presence::PresenceSession) on the
    /// sharded one; `obs` receives lifecycle span hops for sampled
    /// transactions (a free no-op when tracing is off).
    pub fn tick<P: PresenceSink>(&mut self, presence: &mut P, obs: &mut Observer) {
        self.now += 1;

        // Fast path: with no fills, demands, matured-or-maturing hits or
        // staged replies, every phase below is a no-op. Q2/Q3/MSHR
        // occupancy creates no work on its own (those drain via the
        // machine's inject/eject phases).
        if self.q4.is_empty()
            && self.q1.is_empty()
            && self.hit_pipe.is_empty()
            && self.reply_stage.is_empty()
        {
            return;
        }

        // 1. Service L2 replies from Q4 (fill port; widened for the
        //    ideal single-L1 study).
        for _ in 0..self.config.ports {
        if let Some(txn) = self.q4.pop() {
            match txn.kind {
                MemKind::Load => {
                    // Install the line and wake every merged waiter.
                    self.install(txn.line, presence);
                    self.fill_scratch.clear();
                    let woken = self.mshr.complete_into(txn.line, &mut self.fill_scratch);
                    debug_assert!(woken > 0, "fill for line with no MSHR entry");
                    if obs.tracing() {
                        for w in &self.fill_scratch {
                            obs.trace_hop(w.id, "reply", self.now);
                        }
                    }
                    self.reply_stage.extend(self.fill_scratch.drain(..));
                }
                // Write ACKs, atomics and non-L1 replies bypass the cache.
                MemKind::Store | MemKind::Atomic | MemKind::Aux => {
                    obs.trace_hop(txn.id, "reply", self.now);
                    self.reply_stage.push_back(txn);
                }
            }
        } else {
            break;
        }
        }

        // 2. Serve demand requests from Q1 (data port, `ports` per cycle).
        for _ in 0..self.config.ports {
            let Some(head) = self.q1.front() else { break };
            let kind = head.kind;
            match kind {
                MemKind::Atomic | MemKind::Aux => {
                    // Bypass Q1 → Q3.
                    if self.q3.is_full() {
                        self.stats.stall_cycles.inc();
                        self.stats.q3_stall_cycles.inc();
                        break;
                    }
                    let txn = self.q1.pop().expect("front was Some");
                    self.stats.bypasses.inc();
                    obs.trace_hop(txn.id, "bypass", self.now);
                    self.q3.try_push(txn).unwrap_or_else(|_| unreachable!("checked room"));
                }
                MemKind::Load => {
                    let line = self.q1.front().expect("front was Some").line;
                    let pending = self.mshr.is_pending(line);
                    // A merge into a full merge list would lose the
                    // request: stall the head until the fill returns.
                    if pending && !self.mshr.can_accept(line) {
                        self.stats.stall_cycles.inc();
                        self.stats.mshr_stall_cycles.inc();
                        break;
                    }
                    let hit = if self.config.perfect {
                        self.stats.accesses.inc();
                        self.stats.hits.inc();
                        true
                    } else {
                        match self.cache.lookup(line) {
                            LookupResult::Hit => {
                                self.stats.accesses.inc();
                                self.stats.hits.inc();
                                true
                            }
                            LookupResult::Miss => {
                                if !pending && (self.mshr.is_full() || self.q3.is_full()) {
                                    // Structural stall: leave the head in
                                    // Q1 and retry next cycle.
                                    self.stats.stall_cycles.inc();
                                    if self.mshr.is_full() {
                                        self.stats.mshr_stall_cycles.inc();
                                    } else {
                                        self.stats.q3_stall_cycles.inc();
                                    }
                                    break;
                                }
                                self.stats.accesses.inc();
                                self.stats.misses.inc();
                                if presence.copies(line) > 0 {
                                    self.stats.replicated_misses.inc();
                                }
                                false
                            }
                        }
                    };
                    let mut txn = self.q1.pop().expect("front was Some");
                    if hit {
                        txn.l1_hit = true;
                        obs.trace_hop(txn.id, "dcl1_hit", self.now);
                        self.hit_pipe.push_back((self.now + self.config.latency as Cycle, txn));
                    } else if pending {
                        obs.trace_hop(txn.id, "mshr_merge", self.now);
                        let merged = self.mshr.try_allocate(line, txn);
                        debug_assert!(merged.is_ok(), "merge into pending entry failed");
                    } else {
                        obs.trace_hop(txn.id, "dcl1_miss", self.now);
                        self.mshr
                            .try_allocate(line, txn)
                            .unwrap_or_else(|_| unreachable!("checked entry room"));
                        self.q3.try_push(txn).unwrap_or_else(|_| unreachable!("checked Q3 room"));
                    }
                }
                MemKind::Store => {
                    // Write-evict + no-write-allocate: the write always
                    // forwards to the L2, so require Q3 room up front.
                    if self.q3.is_full() {
                        self.stats.stall_cycles.inc();
                        self.stats.q3_stall_cycles.inc();
                        break;
                    }
                    let txn = self.q1.pop().expect("front was Some");
                    obs.trace_hop(txn.id, "dcl1_store", self.now);
                    self.stats.accesses.inc();
                    if self.config.perfect {
                        self.stats.hits.inc();
                    } else {
                        match self.cache.lookup(txn.line) {
                            LookupResult::Hit => {
                                self.stats.hits.inc();
                                self.cache.invalidate(txn.line);
                                presence.on_evict(txn.line);
                            }
                            LookupResult::Miss => {
                                self.stats.misses.inc();
                                if presence.copies(txn.line) > 0 {
                                    self.stats.replicated_misses.inc();
                                }
                            }
                        }
                    }
                    self.q3.try_push(txn).unwrap_or_else(|_| unreachable!("checked room"));
                }
            }
        }

        // 3. Release hits whose latency elapsed.
        while let Some((ready, _)) = self.hit_pipe.front() {
            if *ready <= self.now {
                let (_, txn) = self.hit_pipe.pop_front().expect("front was Some");
                obs.trace_hop(txn.id, "reply", self.now);
                self.reply_stage.push_back(txn);
            } else {
                break;
            }
        }

        // 4. Drain staged replies into Q2 while it has room.
        while !self.q2.is_full() {
            let Some(txn) = self.reply_stage.pop_front() else { break };
            self.q2.try_push(txn).unwrap_or_else(|_| unreachable!("checked room"));
        }
    }

    fn install<P: PresenceSink>(&mut self, line: LineAddr, presence: &mut P) {
        if self.config.perfect {
            return; // a perfect cache never misses, fills are moot
        }
        if let Some(evicted) = self.cache.fill(line) {
            presence.on_evict(evicted);
        }
        presence.on_fill(line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presence::PresenceMap;
    use dcl1_common::{CoreId, WavefrontId};

    fn cfg() -> NodeConfig {
        NodeConfig {
            size_bytes: 2 * 1024,
            assoc: 4,
            line_bytes: 128,
            latency: 3,
            mshr_entries: 4,
            mshr_merges: 4,
            queue_entries: 4,
            ports: 1,
            perfect: false,
        }
    }

    fn txn(id: u64, line: u64, kind: MemKind) -> Txn {
        Txn {
            id,
            core: CoreId::new(0),
            wavefront: WavefrontId::new(0),
            line: LineAddr::new(line),
            bytes: 32,
            kind,
            issued_at: 0,
            l1_hit: false,
        }
    }

    fn tick_n(n: u32, node: &mut Dcl1Node, p: &mut PresenceMap) {
        for _ in 0..n {
            node.tick(p, &mut Observer::disabled());
        }
    }

    #[test]
    fn load_miss_fetches_then_fill_replies() {
        let mut p = PresenceMap::new();
        let mut n = Dcl1Node::new(cfg()).unwrap();
        n.try_push_request(txn(1, 5, MemKind::Load)).unwrap();
        n.tick(&mut p, &mut Observer::disabled());
        let fetched = n.pop_l2_request().expect("miss forwards to L2");
        assert_eq!(fetched.line, LineAddr::new(5));
        assert!(n.pop_reply().is_none());
        n.try_push_l2_reply(fetched).unwrap();
        tick_n(2, &mut n, &mut p);
        let r = n.pop_reply().expect("fill reply");
        assert_eq!(r.id, 1);
        assert_eq!(p.copies(LineAddr::new(5)), 1);
        assert_eq!(n.stats().miss_rate(), 1.0);
        assert!(n.is_idle());
    }

    #[test]
    fn load_hit_replies_after_latency_without_l2() {
        let mut p = PresenceMap::new();
        let mut n = Dcl1Node::new(cfg()).unwrap();
        // Warm the line.
        n.try_push_request(txn(1, 5, MemKind::Load)).unwrap();
        n.tick(&mut p, &mut Observer::disabled());
        let f = n.pop_l2_request().unwrap();
        n.try_push_l2_reply(f).unwrap();
        tick_n(2, &mut n, &mut p);
        n.pop_reply().unwrap();
        // Hit path.
        n.try_push_request(txn(2, 5, MemKind::Load)).unwrap();
        n.tick(&mut p, &mut Observer::disabled()); // lookup at cycle T, ready at T+3
        assert!(n.pop_reply().is_none());
        tick_n(2, &mut n, &mut p);
        assert!(n.pop_reply().is_none(), "latency not yet elapsed");
        n.tick(&mut p, &mut Observer::disabled());
        assert_eq!(n.pop_reply().map(|t| t.id), Some(2));
        assert!(n.pop_l2_request().is_none());
        assert_eq!(n.stats().hits.get(), 1);
    }

    #[test]
    fn merged_misses_share_one_fill_and_all_reply() {
        let mut p = PresenceMap::new();
        let mut n = Dcl1Node::new(cfg()).unwrap();
        for id in 1..=3 {
            n.try_push_request(txn(id, 9, MemKind::Load)).unwrap();
        }
        tick_n(3, &mut n, &mut p);
        let f = n.pop_l2_request().expect("one fill");
        assert!(n.pop_l2_request().is_none(), "merged misses share a fill");
        n.try_push_l2_reply(f).unwrap();
        let mut got = Vec::new();
        for _ in 0..6 {
            n.tick(&mut p, &mut Observer::disabled());
            while let Some(r) = n.pop_reply() {
                got.push(r.id);
            }
        }
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3]);
        assert_eq!(n.stats().misses.get(), 3);
    }

    #[test]
    fn write_hit_evicts_line_and_forwards() {
        let mut p = PresenceMap::new();
        let mut n = Dcl1Node::new(cfg()).unwrap();
        // Warm line 5.
        n.try_push_request(txn(1, 5, MemKind::Load)).unwrap();
        n.tick(&mut p, &mut Observer::disabled());
        let f = n.pop_l2_request().unwrap();
        n.try_push_l2_reply(f).unwrap();
        tick_n(2, &mut n, &mut p);
        n.pop_reply().unwrap();
        assert_eq!(p.copies(LineAddr::new(5)), 1);
        // Write to it: line must leave the cache and the write go to L2.
        n.try_push_request(txn(2, 5, MemKind::Store)).unwrap();
        n.tick(&mut p, &mut Observer::disabled());
        assert_eq!(p.copies(LineAddr::new(5)), 0, "write-evict removed the line");
        let w = n.pop_l2_request().expect("write forwards");
        assert_eq!(w.kind, MemKind::Store);
        // ACK path.
        n.try_push_l2_reply(w).unwrap();
        tick_n(2, &mut n, &mut p);
        assert_eq!(n.pop_reply().map(|t| t.id), Some(2));
    }

    #[test]
    fn write_miss_does_not_allocate() {
        let mut p = PresenceMap::new();
        let mut n = Dcl1Node::new(cfg()).unwrap();
        n.try_push_request(txn(1, 7, MemKind::Store)).unwrap();
        n.tick(&mut p, &mut Observer::disabled());
        assert!(n.pop_l2_request().is_some());
        assert_eq!(n.cache().occupancy(), 0, "no-write-allocate");
        assert_eq!(p.copies(LineAddr::new(7)), 0);
    }

    #[test]
    fn bypass_kinds_skip_the_cache() {
        let mut p = PresenceMap::new();
        let mut n = Dcl1Node::new(cfg()).unwrap();
        n.try_push_request(txn(1, 3, MemKind::Atomic)).unwrap();
        n.try_push_request(txn(2, 4, MemKind::Aux)).unwrap();
        tick_n(2, &mut n, &mut p);
        assert_eq!(n.pop_l2_request().map(|t| t.id), Some(1));
        assert_eq!(n.pop_l2_request().map(|t| t.id), Some(2));
        assert_eq!(n.stats().accesses.get(), 0, "bypasses are not data-port accesses");
        assert_eq!(n.stats().bypasses.get(), 2);
        // Replies come back up Q4 → Q2 untouched.
        n.try_push_l2_reply(txn(1, 3, MemKind::Atomic)).unwrap();
        tick_n(2, &mut n, &mut p);
        assert_eq!(n.pop_reply().map(|t| t.id), Some(1));
        assert_eq!(n.cache().occupancy(), 0);
    }

    #[test]
    fn replicated_miss_detected_via_presence() {
        let mut p = PresenceMap::new();
        // Another node already holds line 5.
        p.on_fill(LineAddr::new(5));
        let mut n = Dcl1Node::new(cfg()).unwrap();
        n.try_push_request(txn(1, 5, MemKind::Load)).unwrap();
        n.tick(&mut p, &mut Observer::disabled());
        assert_eq!(n.stats().replicated_misses.get(), 1);
    }

    #[test]
    fn mshr_exhaustion_stalls_q1_head() {
        let mut p = PresenceMap::new();
        let mut n = Dcl1Node::new(NodeConfig { mshr_entries: 1, ..cfg() }).unwrap();
        n.try_push_request(txn(1, 1, MemKind::Load)).unwrap();
        n.try_push_request(txn(2, 2, MemKind::Load)).unwrap();
        tick_n(3, &mut n, &mut p);
        assert!(n.pop_l2_request().is_some());
        assert!(n.pop_l2_request().is_none(), "second miss blocked by MSHR");
        assert!(n.stats().stall_cycles.get() >= 1);
        // Fill frees the entry; the stalled head proceeds.
        n.try_push_l2_reply(txn(1, 1, MemKind::Load)).unwrap();
        tick_n(3, &mut n, &mut p);
        assert!(n.pop_l2_request().is_some());
    }

    #[test]
    fn perfect_mode_always_hits() {
        let mut p = PresenceMap::new();
        let mut n = Dcl1Node::new(NodeConfig { perfect: true, ..cfg() }).unwrap();
        for id in 0..4 {
            n.try_push_request(txn(id, 100 + id, MemKind::Load)).unwrap();
        }
        for _ in 0..10 {
            n.tick(&mut p, &mut Observer::disabled());
        }
        assert_eq!(n.stats().hits.get(), 4);
        assert_eq!(n.stats().misses.get(), 0);
        assert!(n.pop_l2_request().is_none());
        let mut ids = Vec::new();
        while let Some(r) = n.pop_reply() {
            ids.push(r.id);
        }
        assert_eq!(ids.len(), 4);
    }

    #[test]
    fn multi_port_node_serves_multiple_per_cycle() {
        let mut p = PresenceMap::new();
        let mut n = Dcl1Node::new(NodeConfig { ports: 4, perfect: true, ..cfg() }).unwrap();
        for id in 0..4 {
            n.try_push_request(txn(id, id, MemKind::Load)).unwrap();
        }
        n.tick(&mut p, &mut Observer::disabled());
        assert_eq!(n.stats().accesses.get(), 4);
    }
}
