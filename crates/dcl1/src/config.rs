//! Machine configuration (paper Table II).

use dcl1_common::ConfigError;
use dcl1_gpu::IssuePolicy;
use dcl1_mem::{DramConfig, L2Config};

/// Full-machine configuration. Defaults reproduce the paper's Table II
/// (80 cores, 16 KB 4-way write-evict L1s, 32 L2 slices, 16 GDDR5 MCs);
/// deviations from the garbled table entries are documented in DESIGN.md.
#[derive(Debug, Clone, PartialEq, Hash)]
pub struct GpuConfig {
    /// GPU cores (paper: 80; the scaling study uses 120).
    pub cores: usize,
    /// Core clock in MHz (1400).
    pub core_mhz: u64,
    /// Interconnect (NoC#2 / baseline NoC) clock in MHz (700).
    pub noc_mhz: u64,
    /// Memory command clock in MHz (924).
    pub mem_mhz: u64,
    /// Per-core baseline L1 capacity in bytes (16 KB).
    pub l1_bytes: usize,
    /// L1 associativity (4).
    pub l1_assoc: usize,
    /// L1/DC-L1 access latency in core cycles (28).
    pub l1_latency: u32,
    /// Extra DC-L1 access latency per capacity doubling (paper §VIII:
    /// a 2× DC-L1 runs at 30 vs 28 cycles, i.e. +2 per doubling).
    pub l1_latency_per_doubling: u32,
    /// Per-core MSHR entries (aggregated into DC-L1 nodes pro rata).
    /// 64 keeps streaming kernels memory-bandwidth-bound rather than
    /// outstanding-miss-bound even at DC-L1 round-trip times.
    pub l1_mshr_entries: usize,
    /// Merges per MSHR entry.
    pub l1_mshr_merges: usize,
    /// DC-L1 node queue capacity in entries (paper Fig 3 / §VIII: 4).
    pub node_queue_entries: usize,
    /// Maximum wavefronts per core (48).
    pub max_wavefronts: usize,
    /// Maximum resident CTAs per core.
    pub max_ctas_per_core: usize,
    /// L2 slices (32).
    pub l2_slices: usize,
    /// Per-slice L2 configuration.
    pub l2: L2Config,
    /// Memory controllers (16).
    pub mcs: usize,
    /// Per-channel DRAM configuration.
    pub dram: DramConfig,
    /// Cache line size in bytes (128).
    pub line_bytes: usize,
    /// NoC flit size in bytes (32).
    pub flit_bytes: u32,
    /// Router virtual channels, modelled as allocation lookahead depth
    /// (paper Table II: 4 VCs per port). 1 = pure FIFO inputs.
    pub noc_vcs: usize,
    /// Wavefront issue policy (greedy round-robin, or GPGPU-Sim's GTO).
    pub issue_policy: IssuePolicy,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            cores: 80,
            core_mhz: 1400,
            noc_mhz: 700,
            mem_mhz: 924,
            l1_bytes: 16 * 1024,
            l1_assoc: 4,
            l1_latency: 28,
            l1_latency_per_doubling: 2,
            l1_mshr_entries: 64,
            l1_mshr_merges: 8,
            node_queue_entries: 4,
            max_wavefronts: 48,
            max_ctas_per_core: 6,
            l2_slices: 32,
            l2: L2Config::default(),
            mcs: 16,
            dram: DramConfig::default(),
            line_bytes: 128,
            flit_bytes: 32,
            noc_vcs: 4,
            issue_policy: IssuePolicy::GreedyRoundRobin,
        }
    }
}

impl GpuConfig {
    /// The 120-core scaling configuration of §VIII-A: 120 cores, 60 DC-L1
    /// nodes (designs pick the node count), 48 L2 slices, 24 channels.
    pub fn scaled_120() -> Self {
        GpuConfig {
            cores: 120,
            l2_slices: 48,
            mcs: 24,
            ..GpuConfig::default()
        }
    }

    /// A deliberately tiny machine for unit/integration tests: 8 cores,
    /// 4 L2 slices, 2 memory channels, small caches, shallow latency.
    pub fn small_test() -> Self {
        GpuConfig {
            cores: 8,
            l1_bytes: 2 * 1024,
            l1_latency: 4,
            l1_mshr_entries: 8,
            max_wavefronts: 8,
            max_ctas_per_core: 2,
            l2_slices: 4,
            l2: L2Config {
                size_bytes: 16 * 1024,
                latency: 8,
                ..L2Config::default()
            },
            mcs: 2,
            ..GpuConfig::default()
        }
    }

    /// Validates cross-field constraints shared by every design.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when slice/MC counts don't divide evenly or
    /// any structural parameter is zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cores == 0 || self.l2_slices == 0 || self.mcs == 0 {
            return Err(ConfigError::new("cores, L2 slices and MCs must be nonzero"));
        }
        if !self.l2_slices.is_multiple_of(self.mcs) {
            return Err(ConfigError::new(format!(
                "L2 slices ({}) must be a multiple of MCs ({})",
                self.l2_slices, self.mcs
            )));
        }
        if self.line_bytes == 0 || self.flit_bytes == 0 {
            return Err(ConfigError::new("line and flit sizes must be nonzero"));
        }
        if !self.l1_bytes.is_multiple_of(self.l1_assoc * self.line_bytes) {
            return Err(ConfigError::new("L1 size must be a multiple of assoc × line size"));
        }
        Ok(())
    }

    /// Total L1 capacity across the GPU — held constant by every DC-L1
    /// design (paper §IV-A).
    pub fn total_l1_bytes(&self) -> usize {
        self.cores * self.l1_bytes
    }

    /// L2 slices per memory controller.
    pub fn slices_per_mc(&self) -> usize {
        self.l2_slices / self.mcs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table_ii() {
        let c = GpuConfig::default();
        assert_eq!(c.cores, 80);
        assert_eq!(c.l2_slices, 32);
        assert_eq!(c.mcs, 16);
        assert_eq!(c.l1_latency, 28);
        assert_eq!(c.total_l1_bytes(), 80 * 16 * 1024);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn scaled_config_valid() {
        let c = GpuConfig::scaled_120();
        assert!(c.validate().is_ok());
        assert_eq!(c.slices_per_mc(), 2);
    }

    #[test]
    fn invalid_slice_mc_ratio_rejected() {
        let c = GpuConfig { l2_slices: 30, ..GpuConfig::default() };
        assert!(c.validate().is_err());
    }

    #[test]
    fn small_test_config_valid() {
        assert!(GpuConfig::small_test().validate().is_ok());
    }
}
