//! Decoupled L1 (DC-L1) GPU cache hierarchy — the paper's contribution —
//! plus the full-system cycle-level simulator that evaluates it.
//!
//! # What this crate models
//!
//! The paper separates the L1 data cache from the GPU core into a **DC-L1
//! node** (cache + MSHRs + four queues, Fig 3), splits the NoC into
//! **NoC#1** (cores ↔ DC-L1 nodes) and **NoC#2** (DC-L1 nodes ↔
//! L2/memory), and then explores three organizations:
//!
//! * [`Design::Private`] (`PrY`) — aggregate the 80 per-core L1s into `Y`
//!   larger DC-L1s, each private to `80/Y` cores;
//! * [`Design::Shared`] (`ShY`) — interleave the address space across all
//!   `Y` DC-L1s (home-bit selection), eliminating cross-L1 replication at
//!   the cost of an 80×Y crossbar;
//! * [`Design::Clustered`] (`ShY+CZ`, optionally `+Boost`) — shared only
//!   within each of `Z` clusters, bounding replication to `Z` copies while
//!   shrinking both NoCs; small NoC#1 crossbars can then run at 2× clock.
//!
//! Comparators from the evaluation are also here: the private-L1
//! [`Design::Baseline`], the hypothetical single-L1
//! [`Design::IdealSingleL1`] of §II-A, the hierarchical-crossbar
//! [`Design::CdXbar`] of Fig 19a, and the boosted baselines of §VIII-A.
//!
//! # Quick start
//!
//! ```
//! use dcl1::{Design, GpuConfig, SimOptions, GpuSystem};
//! use dcl1_gpu::{TraceFactory, TraceSource, VecTrace, WavefrontInstr};
//!
//! #[derive(Debug)]
//! struct TinyKernel;
//! impl TraceFactory for TinyKernel {
//!     fn wavefront_trace(&self, _cta: u32, _wf: u32) -> Box<dyn TraceSource> {
//!         Box::new(VecTrace::new(vec![WavefrontInstr::Alu { latency: 1 }; 8]))
//!     }
//!     fn total_ctas(&self) -> u32 { 4 }
//!     fn wavefronts_per_cta(&self) -> u32 { 2 }
//! }
//!
//! let cfg = GpuConfig::small_test();
//! let mut sys = GpuSystem::build(&cfg, &Design::Baseline, &TinyKernel, SimOptions::default())?;
//! let stats = sys.run();
//! assert!(stats.instructions > 0);
//! # Ok::<(), dcl1_common::ConfigError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod check;
pub mod config;
pub mod design;
pub mod machine;
pub mod metrics;
pub mod node;
pub mod presence;
mod shard;
pub mod stats;
pub mod txn;

pub use check::SimChecker;
pub use config::GpuConfig;
pub use design::{Attachment, Design, Noc2Kind, Topology};
pub use dcl1_resilience::SimError;
pub use machine::{
    GpuSystem, ProgressHook, SimOptions, DEFAULT_PROGRESS_EVERY, DEFAULT_WATCHDOG_EPOCH,
};
pub use metrics::MachineMetrics;
pub use node::{Dcl1Node, NodeConfig, NodeStats};
pub use presence::{PresenceLog, PresenceMap, PresenceSession, PresenceSink};
pub use shard::ShardReport;
pub use dcl1_obs::metrics::{MetricsFormat, MetricsSample};
pub use dcl1_obs::Observer;
pub use stats::RunStats;
pub use txn::{Txn, TxnId};
