//! The paper's cache-hierarchy designs and their resolved topologies.

use crate::config::GpuConfig;
use dcl1_common::ConfigError;
use dcl1_power::{NocSpec, XbarSpec};

/// Which boosted-baseline sensitivity variant (paper §VIII-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BaselineBoost {
    /// 2× per-core L1 capacity.
    Cache2x,
    /// 2× NoC frequency (the paper notes the 80×32 crossbar cannot
    /// actually be clocked that fast; evaluated anyway as an upper bound).
    NocFreq2x,
    /// 4× flit size.
    Flit4x,
}

/// A cache-hierarchy design under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Design {
    /// Conventional GPU: private per-core L1s, one `cores×slices`
    /// crossbar to the L2 partitions.
    Baseline,
    /// Baseline with one resource boosted (sensitivity study).
    BoostedBaseline(BaselineBoost),
    /// §II-A hypothetical: one L1 of total capacity, accessed by every
    /// core with per-core ports (no replication, undiminished bandwidth).
    IdealSingleL1,
    /// `PrY`: `nodes` DC-L1s, each private to `cores/nodes` cores.
    Private {
        /// DC-L1 node count `Y`.
        nodes: usize,
    },
    /// `ShY`: `nodes` DC-L1s shared by all cores via home-bit
    /// interleaving.
    Shared {
        /// DC-L1 node count `Y`.
        nodes: usize,
    },
    /// `ShY+CZ`: `clusters` clusters, each sharing `nodes/clusters`
    /// DC-L1s among `cores/clusters` cores. `boost` doubles NoC#1 clock.
    Clustered {
        /// DC-L1 node count `Y`.
        nodes: usize,
        /// Cluster count `Z`.
        clusters: usize,
        /// Whether NoC#1 runs at 2× (the `+Boost` design).
        boost: bool,
    },
    /// Hierarchical two-stage crossbar comparator (Fig 19a), over the
    /// baseline private-L1 machine. Stage 1 concentrates groups of cores;
    /// stage 2 is a narrower crossbar to the slices. The frequency
    /// multipliers realise `CDXBar`, `CDXBar+2xNoC1` and `CDXBar+2xNoC`.
    CdXbar {
        /// Stage-1 clock multiplier over the interconnect clock.
        stage1_mult: u64,
        /// Stage-2 clock multiplier over the interconnect clock.
        stage2_mult: u64,
    },
}

impl Design {
    /// The paper's name for this design.
    pub fn name(&self) -> String {
        match self {
            Design::Baseline => "Baseline".into(),
            Design::BoostedBaseline(BaselineBoost::Cache2x) => "Baseline+2xL1".into(),
            Design::BoostedBaseline(BaselineBoost::NocFreq2x) => "Baseline+2xNoC".into(),
            Design::BoostedBaseline(BaselineBoost::Flit4x) => "Baseline+4xFlit".into(),
            Design::IdealSingleL1 => "IdealSingleL1".into(),
            Design::Private { nodes } => format!("Pr{nodes}"),
            Design::Shared { nodes } => format!("Sh{nodes}"),
            Design::Clustered { nodes, clusters, boost } => {
                let b = if *boost { "+Boost" } else { "" };
                format!("Sh{nodes}+C{clusters}{b}")
            }
            Design::CdXbar { stage1_mult, stage2_mult } => match (stage1_mult, stage2_mult) {
                (1, 1) => "CDXBar".into(),
                (2, 1) => "CDXBar+2xNoC1".into(),
                (2, 2) => "CDXBar+2xNoC".into(),
                (a, b) => format!("CDXBar+{a}x/{b}x"),
            },
        }
    }

    /// The paper's headline configuration: `Sh40+C10+Boost` scaled to the
    /// machine (half as many nodes as cores, 10 clusters).
    pub fn flagship(cfg: &GpuConfig) -> Design {
        Design::Clustered { nodes: cfg.cores / 2, clusters: 10, boost: true }
    }

    /// Resolves this design against a machine configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the design's divisibility constraints do
    /// not hold (e.g. node count must divide core count).
    pub fn topology(&self, cfg: &GpuConfig) -> Result<Topology, ConfigError> {
        cfg.validate()?;
        let x = cfg.cores;
        let l = cfg.l2_slices;
        let base = Topology {
            name: self.name(),
            cores: x,
            nodes: x,
            clusters: x,
            attachment: Attachment::Direct,
            noc2: Noc2Kind::Single,
            noc2_freq_mult: 1,
            l1_size_mult: 1,
            flit_mult: 1,
            ideal_ports: false,
            shared_within_cluster: false,
        };
        match *self {
            Design::Baseline => Ok(base),
            Design::BoostedBaseline(BaselineBoost::Cache2x) => {
                Ok(Topology { l1_size_mult: 2, ..base })
            }
            Design::BoostedBaseline(BaselineBoost::NocFreq2x) => {
                Ok(Topology { noc2_freq_mult: 2, ..base })
            }
            Design::BoostedBaseline(BaselineBoost::Flit4x) => {
                Ok(Topology { flit_mult: 4, ..base })
            }
            Design::IdealSingleL1 => Ok(Topology {
                nodes: 1,
                clusters: 1,
                ideal_ports: true,
                shared_within_cluster: true,
                ..base
            }),
            Design::Private { nodes } => {
                check_div(x, nodes, "cores", "nodes")?;
                Ok(Topology {
                    nodes,
                    clusters: nodes,
                    attachment: Attachment::Noc1 { ticks_per_cycle: 1 },
                    shared_within_cluster: false,
                    noc2: Noc2Kind::for_nodes_per_cluster(1, l),
                    ..base
                })
            }
            Design::Shared { nodes } => {
                check_div(x, nodes, "cores", "nodes")?;
                Ok(Topology {
                    nodes,
                    clusters: 1,
                    attachment: Attachment::Noc1 { ticks_per_cycle: 1 },
                    shared_within_cluster: true,
                    noc2: Noc2Kind::for_nodes_per_cluster(nodes, l),
                    ..base
                })
            }
            Design::Clustered { nodes, clusters, boost } => {
                check_div(x, nodes, "cores", "nodes")?;
                check_div(nodes, clusters, "nodes", "clusters")?;
                check_div(x, clusters, "cores", "clusters")?;
                let m = nodes / clusters;
                Ok(Topology {
                    nodes,
                    clusters,
                    attachment: Attachment::Noc1 {
                        ticks_per_cycle: if boost { 2 } else { 1 },
                    },
                    shared_within_cluster: true,
                    noc2: Noc2Kind::for_nodes_per_cluster(m, l),
                    ..base
                })
            }
            Design::CdXbar { stage1_mult, stage2_mult } => {
                check_div(x, 10, "cores", "stage-1 groups")?;
                Ok(Topology {
                    noc2: Noc2Kind::TwoStage {
                        groups: 10,
                        uplinks: 2,
                        stage1_mult,
                        stage2_mult,
                    },
                    ..base
                })
            }
        }
    }
}

impl std::str::FromStr for Design {
    type Err = ConfigError;

    /// Parses the paper's design names, case-insensitively:
    /// `baseline`, `ideal`, `prY` (e.g. `pr40`), `shY` (e.g. `sh40`),
    /// `shY+cZ` (e.g. `sh40+c10`), `shY+cZ+boost`, `cdxbar`,
    /// `cdxbar+2xnoc1`, `cdxbar+2xnoc`, `baseline+2xl1`,
    /// `baseline+2xnoc`, `baseline+4xflit`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for unrecognized names or malformed
    /// numbers.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let t = s.trim().to_ascii_lowercase();
        let num = |x: &str| -> Result<usize, ConfigError> {
            x.parse().map_err(|_| ConfigError::new(format!("bad number in design name: {s}")))
        };
        match t.as_str() {
            "baseline" => return Ok(Design::Baseline),
            "ideal" | "idealsinglel1" => return Ok(Design::IdealSingleL1),
            "baseline+2xl1" => return Ok(Design::BoostedBaseline(BaselineBoost::Cache2x)),
            "baseline+2xnoc" => return Ok(Design::BoostedBaseline(BaselineBoost::NocFreq2x)),
            "baseline+4xflit" => return Ok(Design::BoostedBaseline(BaselineBoost::Flit4x)),
            "cdxbar" => return Ok(Design::CdXbar { stage1_mult: 1, stage2_mult: 1 }),
            "cdxbar+2xnoc1" => return Ok(Design::CdXbar { stage1_mult: 2, stage2_mult: 1 }),
            "cdxbar+2xnoc" => return Ok(Design::CdXbar { stage1_mult: 2, stage2_mult: 2 }),
            _ => {}
        }
        if let Some(rest) = t.strip_prefix("pr") {
            return Ok(Design::Private { nodes: num(rest)? });
        }
        if let Some(rest) = t.strip_prefix("sh") {
            let mut parts = rest.split('+');
            let nodes = num(parts.next().unwrap_or_default())?;
            match (parts.next(), parts.next(), parts.next()) {
                (None, _, _) => return Ok(Design::Shared { nodes }),
                (Some(c), boost, None) if c.starts_with('c') => {
                    let clusters = num(&c[1..])?;
                    let boost = match boost {
                        None => false,
                        Some("boost") => true,
                        Some(other) => {
                            return Err(ConfigError::new(format!(
                                "unknown design suffix '{other}' in {s}"
                            )))
                        }
                    };
                    return Ok(Design::Clustered { nodes, clusters, boost });
                }
                _ => {}
            }
        }
        Err(ConfigError::new(format!("unknown design name: {s}")))
    }
}

fn check_div(a: usize, b: usize, an: &str, bn: &str) -> Result<(), ConfigError> {
    if b == 0 || !a.is_multiple_of(b) {
        Err(ConfigError::new(format!("{an} ({a}) must be divisible by {bn} ({b})")))
    } else {
        Ok(())
    }
}

/// How cores reach their DC-L1 node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attachment {
    /// The L1 sits inside the core (baseline designs): accesses do not
    /// serialize over a NoC and replies are full-width.
    Direct,
    /// Through NoC#1 crossbars with 32 B flits.
    Noc1 {
        /// NoC#1 ticks per core cycle (1 normally, 2 under `+Boost`;
        /// NoC#1 runs at the core clock — the assignment that reproduces
        /// Table I's peak-bandwidth arithmetic).
        ticks_per_cycle: u64,
    },
}

/// Structure of NoC#2 (DC-L1 nodes / cores ↔ L2 slices).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Noc2Kind {
    /// One `sources×slices` crossbar (baseline, PrY, and ShY when the
    /// per-cluster node count exceeds the slice count).
    Single,
    /// `m` disjoint crossbars: home-slot `k`'s nodes (one per cluster)
    /// reach only the `slices/m` slices serving slot `k`'s address range
    /// (paper Fig 10).
    Sliced {
        /// Number of address-range groups (= nodes per cluster).
        groups: usize,
    },
    /// The hierarchical CDXBar comparator: stage 1 concentrates
    /// `cores/groups` cores onto `uplinks` ports, stage 2 connects
    /// `groups·uplinks` ports to all slices.
    TwoStage {
        /// Stage-1 crossbar count.
        groups: usize,
        /// Uplinks per stage-1 crossbar.
        uplinks: usize,
        /// Stage-1 clock multiplier.
        stage1_mult: u64,
        /// Stage-2 clock multiplier.
        stage2_mult: u64,
    },
}

impl Noc2Kind {
    /// Chooses the paper's NoC#2 structure for `m` nodes per cluster and
    /// `l` slices: `m` address-range crossbars when `m` divides `l`,
    /// otherwise one big crossbar (the Sh40 case, m=40 > l=32).
    pub fn for_nodes_per_cluster(m: usize, l: usize) -> Self {
        if m <= l && l.is_multiple_of(m) {
            Noc2Kind::Sliced { groups: m }
        } else {
            Noc2Kind::Single
        }
    }
}

/// A design resolved against a machine: everything the simulator and the
/// power model need to instantiate hardware.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    /// Design name.
    pub name: String,
    /// Core count `X`.
    pub cores: usize,
    /// DC-L1 node count `Y` (= `X` for baseline designs).
    pub nodes: usize,
    /// Cluster count `Z` (`Y` for private designs, 1 for fully shared).
    pub clusters: usize,
    /// Core ↔ node attachment.
    pub attachment: Attachment,
    /// NoC#2 structure.
    pub noc2: Noc2Kind,
    /// NoC#2 clock multiplier (boosted-baseline sensitivity only).
    pub noc2_freq_mult: u64,
    /// L1 capacity multiplier (16× study, cache-boosted baseline).
    pub l1_size_mult: usize,
    /// Flit-size multiplier (flit-boosted baseline).
    pub flit_mult: u32,
    /// Whether the node has one data port per core (ideal single L1).
    pub ideal_ports: bool,
    /// Whether lines are interleaved across the nodes of a cluster
    /// (shared organization) or every node caches any line (private).
    pub shared_within_cluster: bool,
}

impl Topology {
    /// Cores per cluster.
    pub fn cores_per_cluster(&self) -> usize {
        self.cores / self.clusters
    }

    /// Nodes per cluster (`M`).
    pub fn nodes_per_cluster(&self) -> usize {
        self.nodes / self.clusters
    }

    /// The cluster a core belongs to.
    pub fn cluster_of_core(&self, core: usize) -> usize {
        core / self.cores_per_cluster()
    }

    /// Home node (global index) for `line` accessed by `core`.
    ///
    /// Private organizations map the core to its fixed node; shared ones
    /// interleave by home bits within the core's cluster (paper §V-A,
    /// §VI-A: `⌈log2(Y/Z)⌉` home bits).
    pub fn home_node(&self, core: usize, line: dcl1_common::LineAddr) -> usize {
        let z = self.cluster_of_core(core);
        let m = self.nodes_per_cluster();
        if self.shared_within_cluster {
            z * m + line.interleave(m)
        } else {
            // Private: cores of the cluster share the cluster's single
            // node (m == 1 for PrY); fall back to striping cores over
            // nodes if m > 1 ever occurs.
            z * m + (core % m)
        }
    }

    /// Per-node DC-L1 capacity in bytes: total L1 budget divided evenly
    /// (paper §IV-A), times any baseline-boost multiplier.
    pub fn node_bytes(&self, cfg: &GpuConfig) -> usize {
        cfg.total_l1_bytes() * self.l1_size_mult / self.nodes
    }

    /// DC-L1 access latency: base latency plus the paper's ~7% per
    /// capacity doubling (§VIII: 30 vs 28 cycles at 2×).
    pub fn node_latency(&self, cfg: &GpuConfig) -> u32 {
        let ratio = self.node_bytes(cfg) / cfg.l1_bytes.max(1);
        let doublings = if ratio > 1 { ratio.ilog2() } else { 0 };
        cfg.l1_latency + doublings * cfg.l1_latency_per_doubling
    }

    /// Peak aggregate L1 bandwidth in bytes per core cycle (Table I).
    ///
    /// Direct-attached L1s deliver a full line per cycle per cache; NoC#1
    /// designs are limited by their 32 B reply links at the NoC#1 rate.
    pub fn peak_l1_bandwidth(&self, cfg: &GpuConfig) -> f64 {
        match self.attachment {
            Attachment::Direct => (self.nodes * cfg.line_bytes) as f64,
            Attachment::Noc1 { ticks_per_cycle } => {
                (self.nodes as f64)
                    * (cfg.flit_bytes * self.flit_mult) as f64
                    * ticks_per_cycle as f64
            }
        }
    }

    /// NoC#1 tick multiplier (0 when direct-attached).
    pub fn noc1_ticks_per_cycle(&self) -> u64 {
        match self.attachment {
            Attachment::Direct => 0,
            Attachment::Noc1 { ticks_per_cycle } => ticks_per_cycle,
        }
    }

    /// The DSENT-style NoC description of this topology (one direction),
    /// used for area/power analysis. Entry order: NoC#1 crossbars first
    /// (if any), then NoC#2.
    pub fn noc_spec(&self, cfg: &GpuConfig) -> NocSpec {
        let noc_mhz = (cfg.noc_mhz * self.noc2_freq_mult) as f64;
        let noc1_mhz = (cfg.core_mhz * self.noc1_ticks_per_cycle()) as f64;
        let wm = self.flit_mult as f64;
        let mut xbars = Vec::new();
        if let Attachment::Noc1 { .. } = self.attachment {
            xbars.push(
                XbarSpec::new(
                    self.cores_per_cluster(),
                    self.nodes_per_cluster(),
                    self.clusters,
                    // Intra-cluster links are short only when the cluster
                    // is localized; the fully-shared design wires every
                    // core to every node across the die.
                    if self.clusters > 1 { 3.3 } else { 12.3 },
                    noc1_mhz,
                )
                .with_width_mult(wm),
            );
        }
        match self.noc2 {
            Noc2Kind::Single => xbars.push(
                XbarSpec::new(self.nodes, cfg.l2_slices, 1, 12.3, noc_mhz).with_width_mult(wm),
            ),
            Noc2Kind::Sliced { groups } => xbars.push(
                XbarSpec::new(self.clusters, cfg.l2_slices / groups, groups, 12.3, noc_mhz)
                    .with_width_mult(wm),
            ),
            Noc2Kind::TwoStage { groups, uplinks, stage1_mult, stage2_mult } => {
                xbars.push(
                    XbarSpec::new(
                        self.cores / groups,
                        uplinks,
                        groups,
                        3.3,
                        (cfg.noc_mhz * stage1_mult) as f64,
                    )
                    .with_width_mult(wm),
                );
                xbars.push(
                    XbarSpec::new(
                        groups * uplinks,
                        cfg.l2_slices,
                        1,
                        12.3,
                        (cfg.noc_mhz * stage2_mult) as f64,
                    )
                    .with_width_mult(wm),
                );
            }
        }
        NocSpec::new(self.name.clone(), xbars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcl1_common::LineAddr;

    fn cfg() -> GpuConfig {
        GpuConfig::default()
    }

    #[test]
    fn names_match_paper() {
        let c = cfg();
        assert_eq!(Design::Baseline.name(), "Baseline");
        assert_eq!(Design::Private { nodes: 40 }.name(), "Pr40");
        assert_eq!(Design::Shared { nodes: 40 }.name(), "Sh40");
        assert_eq!(
            Design::Clustered { nodes: 40, clusters: 10, boost: true }.name(),
            "Sh40+C10+Boost"
        );
        assert_eq!(Design::CdXbar { stage1_mult: 2, stage2_mult: 2 }.name(), "CDXBar+2xNoC");
        assert_eq!(Design::flagship(&c).name(), "Sh40+C10+Boost");
    }

    #[test]
    fn design_names_parse_round_trip() {
        for d in [
            Design::Baseline,
            Design::IdealSingleL1,
            Design::Private { nodes: 40 },
            Design::Shared { nodes: 40 },
            Design::Clustered { nodes: 40, clusters: 10, boost: false },
            Design::Clustered { nodes: 40, clusters: 10, boost: true },
            Design::CdXbar { stage1_mult: 1, stage2_mult: 1 },
            Design::CdXbar { stage1_mult: 2, stage2_mult: 2 },
            Design::BoostedBaseline(BaselineBoost::Cache2x),
            Design::BoostedBaseline(BaselineBoost::Flit4x),
        ] {
            let parsed: Design = d.name().parse().unwrap_or_else(|e| panic!("{}: {e}", d.name()));
            assert_eq!(parsed, d, "round trip of {}", d.name());
        }
        assert!("sh40+c10+turbo".parse::<Design>().is_err());
        assert!("frobnicate".parse::<Design>().is_err());
        assert!("prX".parse::<Design>().is_err());
    }

    #[test]
    fn pr40_topology() {
        let t = Design::Private { nodes: 40 }.topology(&cfg()).unwrap();
        assert_eq!(t.clusters, 40);
        assert_eq!(t.cores_per_cluster(), 2);
        assert_eq!(t.nodes_per_cluster(), 1);
        assert!(!t.shared_within_cluster);
        assert_eq!(t.node_bytes(&cfg()), 32 * 1024); // double capacity
        assert_eq!(t.node_latency(&cfg()), 30); // paper §VIII
        // Both cores of cluster 3 use node 3 for any line.
        assert_eq!(t.home_node(6, LineAddr::new(12345)), 3);
        assert_eq!(t.home_node(7, LineAddr::new(999)), 3);
        assert!(matches!(t.noc2, Noc2Kind::Sliced { groups: 1 }));
    }

    #[test]
    fn sh40_topology() {
        let t = Design::Shared { nodes: 40 }.topology(&cfg()).unwrap();
        assert_eq!(t.clusters, 1);
        assert!(t.shared_within_cluster);
        assert!(matches!(t.noc2, Noc2Kind::Single)); // 40 > 32 slices
        // Home by interleave over all 40 nodes, same for every core.
        let l = LineAddr::new(87);
        assert_eq!(t.home_node(0, l), 87 % 40);
        assert_eq!(t.home_node(79, l), 87 % 40);
    }

    #[test]
    fn clustered_topology_matches_fig10() {
        let t = Design::Clustered { nodes: 40, clusters: 10, boost: false }
            .topology(&cfg())
            .unwrap();
        assert_eq!(t.cores_per_cluster(), 8);
        assert_eq!(t.nodes_per_cluster(), 4);
        assert!(matches!(t.noc2, Noc2Kind::Sliced { groups: 4 })); // four 10×8 xbars
        // Core 9 (cluster 1) with line ≡ 2 mod 4 → node 1*4 + 2 = 6.
        assert_eq!(t.home_node(9, LineAddr::new(6)), 6);
        // Same line from cluster 0 stays in cluster 0 → replication of at
        // most `clusters` copies, the paper's bound.
        assert_eq!(t.home_node(0, LineAddr::new(6)), 2);
    }

    #[test]
    fn peak_bandwidth_matches_table_i() {
        let c = cfg();
        let base = Design::Baseline.topology(&c).unwrap().peak_l1_bandwidth(&c);
        assert_eq!(base, (80 * 128) as f64);
        let ratios: Vec<(Design, f64)> = vec![
            (Design::Private { nodes: 80 }, 4.0),
            (Design::Private { nodes: 40 }, 8.0),
            (Design::Private { nodes: 20 }, 16.0),
            (Design::Private { nodes: 10 }, 32.0),
        ];
        for (d, want) in ratios {
            let bw = d.topology(&c).unwrap().peak_l1_bandwidth(&c);
            assert!((base / bw - want).abs() < 1e-9, "{}: {}", d.name(), base / bw);
        }
        // Boost halves the drop: Sh40+C10+Boost is 4× below baseline.
        let boosted = Design::flagship(&c).topology(&c).unwrap().peak_l1_bandwidth(&c);
        assert!((base / boosted - 4.0).abs() < 1e-9);
    }

    #[test]
    fn divisibility_errors() {
        let c = cfg();
        assert!(Design::Private { nodes: 7 }.topology(&c).is_err());
        assert!(Design::Clustered { nodes: 40, clusters: 3, boost: false }.topology(&c).is_err());
        assert!(Design::Clustered { nodes: 40, clusters: 0, boost: false }.topology(&c).is_err());
    }

    #[test]
    fn noc_specs_match_paper_structures() {
        let c = cfg();
        let t = Design::Clustered { nodes: 40, clusters: 10, boost: true }.topology(&c).unwrap();
        let spec = t.noc_spec(&c);
        assert_eq!(spec.xbars.len(), 2);
        // Ten 8×4 crossbars at 2× core clock.
        assert_eq!((spec.xbars[0].inputs, spec.xbars[0].outputs, spec.xbars[0].count), (8, 4, 10));
        assert_eq!(spec.xbars[0].freq_mhz, 2800.0);
        // Four 10×8 crossbars at the interconnect clock.
        assert_eq!((spec.xbars[1].inputs, spec.xbars[1].outputs, spec.xbars[1].count), (10, 8, 4));
        assert_eq!(spec.xbars[1].freq_mhz, 700.0);

        let base = Design::Baseline.topology(&c).unwrap().noc_spec(&c);
        assert_eq!(base.xbars.len(), 1);
        assert_eq!((base.xbars[0].inputs, base.xbars[0].outputs), (80, 32));
    }

    #[test]
    fn ideal_single_l1_topology() {
        let t = Design::IdealSingleL1.topology(&cfg()).unwrap();
        assert_eq!(t.nodes, 1);
        assert!(t.ideal_ports);
        assert_eq!(t.node_bytes(&cfg()), 80 * 16 * 1024);
        assert_eq!(t.peak_l1_bandwidth(&cfg()), 128.0); // one port... but ideal_ports widens it
    }

    #[test]
    fn scaled_120_flagship_is_sh60_c10() {
        let c = GpuConfig::scaled_120();
        let d = Design::flagship(&c);
        assert_eq!(d.name(), "Sh60+C10+Boost");
        let t = d.topology(&c).unwrap();
        assert_eq!(t.nodes, 60);
        assert_eq!(t.nodes_per_cluster(), 6);
        assert!(matches!(t.noc2, Noc2Kind::Sliced { groups: 6 })); // 48/6 = 8 slices per group
    }
}
