//! Cross-cache line-presence instrumentation.
//!
//! Tracks how many same-level caches currently hold each line. This is
//! measurement machinery, not hardware: the paper's replication ratio
//! (Fig 1) is "L1 misses that could have been found in another L1 / total
//! L1 misses", and Fig 16's replica counts are the mean number of copies
//! per distinct resident line. Both fall out of this map.
//!
//! The map is a deterministic open-addressed table
//! ([`dcl1_common::FlatMap`]) with incrementally maintained aggregates:
//! `total_copies` and `distinct_lines` are updated on every fill/evict, so
//! [`mean_replicas`](PresenceMap::mean_replicas) — which the metrics
//! sampler calls every sampling interval — is O(1) instead of a walk over
//! every resident line. Per-line reports get address-sorted output on
//! demand from [`lines_sorted`](PresenceMap::lines_sorted), preserving the
//! byte-stable iteration order the previous `BTreeMap` provided.

use dcl1_common::{FlatMap, LineAddr};

/// Presence instrumentation as seen by a cache node's tick.
///
/// The sequential machine hands nodes the [`PresenceMap`] directly; the
/// sharded machine hands each shard a [`PresenceSession`] — a read-only
/// snapshot of the map plus a private delta log — so node ticks never
/// contend on shared state and the merged result is independent of shard
/// scheduling. Presence feeds only the replication *measurements* (never
/// timing), so deferring cross-shard visibility of a fill/evict to the
/// next cycle's barrier is a sound relaxation.
pub trait PresenceSink {
    /// Copies of `line` currently visible to this observer.
    fn copies(&self, line: LineAddr) -> u32;
    /// Records that this observer's cache filled `line`.
    fn on_fill(&mut self, line: LineAddr);
    /// Records that this observer's cache dropped `line`.
    fn on_evict(&mut self, line: LineAddr);
}

impl PresenceSink for PresenceMap {
    fn copies(&self, line: LineAddr) -> u32 {
        PresenceMap::copies(self, line)
    }

    fn on_fill(&mut self, line: LineAddr) {
        PresenceMap::on_fill(self, line);
    }

    fn on_evict(&mut self, line: LineAddr) {
        PresenceMap::on_evict(self, line);
    }
}

/// A shard's private log of presence deltas for one epoch, replayed into
/// the shared [`PresenceMap`] at the barrier in deterministic shard/node
/// order. Reused across epochs; steady-state allocation-free once warm.
#[derive(Debug, Default)]
pub struct PresenceLog {
    /// `(line, +1 fill / -1 evict)` events in occurrence order.
    events: Vec<(LineAddr, i8)>,
}

impl PresenceLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        PresenceLog::default()
    }

    /// Net copy delta this log holds for `line`. The per-epoch event list
    /// is a handful of fills/evicts, so a linear scan beats any map.
    fn delta(&self, line: LineAddr) -> i64 {
        self.events
            .iter()
            .filter(|&&(l, _)| l == line)
            .map(|&(_, d)| i64::from(d))
            .sum()
    }

    /// True when no deltas are pending.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Replays the pending deltas into `map` in occurrence order and
    /// clears the log (keeping its allocation).
    ///
    /// Replay order across shards never underflows a count: a node only
    /// evicts lines its own cache holds, and every holder contributes at
    /// least one copy to the shared count.
    pub fn apply_to(&mut self, map: &mut PresenceMap) {
        for &(line, d) in &self.events {
            if d > 0 {
                map.on_fill(line);
            } else {
                map.on_evict(line);
            }
        }
        self.events.clear();
    }
}

/// One shard's view of presence during a parallel region.
///
/// **Reads are snapshot-only**: `copies` answers from the cycle-start
/// barrier state, never from any same-cycle fill or evict (not even this
/// shard's own). That makes the replication measurement a pure function of
/// the snapshot — identical for one shard or eight — where the old
/// sequential machine let node `n` see fills from nodes `0..n` of the same
/// cycle, an ordering artifact no hardware property depends on. Writes go
/// to the private log, replayed at the barrier.
#[derive(Debug)]
pub struct PresenceSession<'a> {
    base: &'a PresenceMap,
    log: &'a mut PresenceLog,
}

impl<'a> PresenceSession<'a> {
    /// Opens a session over the barrier snapshot `base`, accumulating
    /// deltas into `log`.
    pub fn new(base: &'a PresenceMap, log: &'a mut PresenceLog) -> Self {
        PresenceSession { base, log }
    }
}

impl PresenceSink for PresenceSession<'_> {
    fn copies(&self, line: LineAddr) -> u32 {
        self.base.copies(line)
    }

    fn on_fill(&mut self, line: LineAddr) {
        self.log.events.push((line, 1));
    }

    fn on_evict(&mut self, line: LineAddr) {
        // The line may have been filled earlier this same cycle (visible
        // only in the log), so the sanity check consults snapshot + log.
        debug_assert!(
            i64::from(self.base.copies(line)) + self.log.delta(line) > 0,
            "session evict of untracked line {line}"
        );
        self.log.events.push((line, -1));
    }
}

/// Reference-counting presence map over all caches of one level.
#[derive(Debug, Default, Clone)]
pub struct PresenceMap {
    counts: FlatMap<u32>,
    /// Sum of all per-line copy counts — kept in lockstep with `counts`
    /// so the mean is a division, not a sum. An exact integer, so the
    /// derived mean is bit-identical to the old on-demand summation.
    total_copies: u64,
}

impl PresenceMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        PresenceMap::default()
    }

    /// Creates an empty map pre-sized for `lines` distinct resident
    /// lines. Presence is bounded by the level's aggregate capacity, so a
    /// map sized for it never re-hashes — fills and evicts are
    /// allocation-free for the whole run.
    pub fn with_capacity(lines: usize) -> Self {
        PresenceMap { counts: FlatMap::with_capacity(lines), total_copies: 0 }
    }

    /// Records that some cache filled `line`.
    pub fn on_fill(&mut self, line: LineAddr) {
        match self.counts.get_mut(line.raw()) {
            Some(c) => *c += 1,
            None => {
                self.counts.insert(line.raw(), 1);
            }
        }
        self.total_copies += 1;
    }

    /// Records that some cache dropped `line` (eviction or write-evict).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the line was not present (an
    /// instrumentation bug in the caller).
    pub fn on_evict(&mut self, line: LineAddr) {
        match self.counts.get_mut(line.raw()) {
            Some(c) if *c > 1 => {
                *c -= 1;
                self.total_copies -= 1;
            }
            Some(_) => {
                self.counts.remove(line.raw());
                self.total_copies -= 1;
            }
            None => debug_assert!(false, "evict of untracked line {line}"),
        }
    }

    /// Copies of `line` currently resident across the level.
    pub fn copies(&self, line: LineAddr) -> u32 {
        self.counts.get(line.raw()).copied().unwrap_or(0)
    }

    /// Number of distinct lines resident anywhere in the level.
    pub fn distinct_lines(&self) -> usize {
        self.counts.len()
    }

    /// Total resident copies summed over every line. O(1): maintained
    /// incrementally on fill/evict.
    pub fn total_copies(&self) -> u64 {
        self.total_copies
    }

    /// Mean copies per distinct resident line (Fig 16's replica count);
    /// 0.0 when the level is empty. O(1) — safe to call every metrics
    /// sampling interval.
    pub fn mean_replicas(&self) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        self.total_copies as f64 / self.counts.len() as f64
    }

    /// Resident lines in ascending address order — the deterministic
    /// iteration order any per-line report must use. Allocates the
    /// returned vector; not for per-cycle use.
    pub fn lines_sorted(&self) -> Vec<(LineAddr, u32)> {
        self.counts
            .sorted_keys()
            .into_iter()
            .map(|raw| {
                let line = LineAddr::new(raw);
                (line, self.copies(line))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcl1_common::SplitMix64;
    use std::collections::BTreeMap;

    #[test]
    fn fill_evict_round_trip() {
        let mut p = PresenceMap::new();
        let l = LineAddr::new(9);
        assert_eq!(p.copies(l), 0);
        p.on_fill(l);
        p.on_fill(l);
        assert_eq!(p.copies(l), 2);
        p.on_evict(l);
        assert_eq!(p.copies(l), 1);
        p.on_evict(l);
        assert_eq!(p.copies(l), 0);
        assert_eq!(p.distinct_lines(), 0);
        assert_eq!(p.total_copies(), 0);
    }

    #[test]
    fn mean_replicas() {
        let mut p = PresenceMap::new();
        assert_eq!(p.mean_replicas(), 0.0);
        for _ in 0..3 {
            p.on_fill(LineAddr::new(1));
        }
        p.on_fill(LineAddr::new(2));
        assert!((p.mean_replicas() - 2.0).abs() < 1e-12);
        assert_eq!(p.distinct_lines(), 2);
        assert_eq!(p.total_copies(), 4);
    }

    #[test]
    fn lines_sorted_is_address_ordered() {
        let mut p = PresenceMap::with_capacity(8);
        for raw in [30, 10, 20] {
            p.on_fill(LineAddr::new(raw));
        }
        p.on_fill(LineAddr::new(10));
        let report: Vec<(u64, u32)> =
            p.lines_sorted().into_iter().map(|(l, c)| (l.raw(), c)).collect();
        assert_eq!(report, vec![(10, 2), (20, 1), (30, 1)]);
    }

    /// Session reads are snapshot-only (shard-count invariant); writes
    /// log privately and replay at the barrier, including the
    /// fill-then-evict-same-cycle case.
    #[test]
    fn session_snapshot_reads_and_ordered_replay() {
        let mut map = PresenceMap::with_capacity(8);
        let l = LineAddr::new(42);
        let fresh = LineAddr::new(43);
        map.on_fill(l); // one pre-existing copy

        let mut log_a = PresenceLog::new();
        let mut log_b = PresenceLog::new();
        {
            let mut a = PresenceSession::new(&map, &mut log_a);
            assert_eq!(PresenceSink::copies(&a, l), 1, "session sees the snapshot");
            a.on_fill(l);
            assert_eq!(
                PresenceSink::copies(&a, l),
                1,
                "same-cycle fills are invisible to reads"
            );
            // Fill-then-evict of a brand-new line within one cycle: legal,
            // the evict's sanity check sees the logged fill.
            a.on_fill(fresh);
            a.on_evict(fresh);
        }
        {
            let mut b = PresenceSession::new(&map, &mut log_b);
            // Shard B holds the pre-existing copy and evicts it; it cannot
            // see A's uncommitted fill.
            assert_eq!(PresenceSink::copies(&b, l), 1);
            b.on_evict(l);
        }
        log_a.apply_to(&mut map);
        log_b.apply_to(&mut map);
        assert!(log_a.is_empty() && log_b.is_empty());
        assert_eq!(map.copies(l), 1, "net of one fill and one evict over one copy");
        assert_eq!(map.copies(fresh), 0);
        assert_eq!(map.total_copies(), 1);
    }

    /// Differential property test: the open-addressed map against the old
    /// `BTreeMap` implementation as a reference model — same random
    /// fill/evict sequence ⇒ same copies, distinct-line count,
    /// bit-identical mean, and identical sorted iteration.
    #[test]
    fn matches_btreemap_reference_model() {
        for seed in 0..8u64 {
            let mut p = PresenceMap::with_capacity(16);
            let mut model: BTreeMap<u64, u32> = BTreeMap::new();
            let mut rng = SplitMix64::new(0x9E37_79B9 ^ (seed << 4));
            for _ in 0..4000 {
                let raw = rng.next_u64() % 64;
                let line = LineAddr::new(raw);
                if rng.next_u64().is_multiple_of(2) || !model.contains_key(&raw) {
                    p.on_fill(line);
                    *model.entry(raw).or_insert(0) += 1;
                } else {
                    p.on_evict(line);
                    match model.get_mut(&raw) {
                        Some(c) if *c > 1 => *c -= 1,
                        _ => {
                            model.remove(&raw);
                        }
                    }
                }
                assert_eq!(p.copies(line), model.get(&raw).copied().unwrap_or(0));
                assert_eq!(p.distinct_lines(), model.len());
                let model_total: u64 = model.values().map(|&c| u64::from(c)).sum();
                assert_eq!(p.total_copies(), model_total);
                let model_mean = if model.is_empty() {
                    0.0
                } else {
                    model_total as f64 / model.len() as f64
                };
                assert_eq!(
                    p.mean_replicas().to_bits(),
                    model_mean.to_bits(),
                    "mean must be bit-identical to the reference"
                );
            }
            let sorted: Vec<(u64, u32)> =
                p.lines_sorted().into_iter().map(|(l, c)| (l.raw(), c)).collect();
            let model_sorted: Vec<(u64, u32)> = model.into_iter().collect();
            assert_eq!(sorted, model_sorted, "ordered iteration diverged");
        }
    }
}
