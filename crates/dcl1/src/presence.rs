//! Cross-cache line-presence instrumentation.
//!
//! Tracks how many same-level caches currently hold each line. This is
//! measurement machinery, not hardware: the paper's replication ratio
//! (Fig 1) is "L1 misses that could have been found in another L1 / total
//! L1 misses", and Fig 16's replica counts are the mean number of copies
//! per distinct resident line. Both fall out of this map.

use dcl1_common::LineAddr;
use std::collections::BTreeMap;

/// Reference-counting presence map over all caches of one level.
#[derive(Debug, Default, Clone)]
pub struct PresenceMap {
    // BTreeMap rather than HashMap so every iteration (`mean_replicas`,
    // any future per-line report) visits lines in address order — byte-
    // stable output regardless of hasher seed or std release.
    counts: BTreeMap<LineAddr, u32>,
}

impl PresenceMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        PresenceMap::default()
    }

    /// Records that some cache filled `line`.
    pub fn on_fill(&mut self, line: LineAddr) {
        *self.counts.entry(line).or_insert(0) += 1;
    }

    /// Records that some cache dropped `line` (eviction or write-evict).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the line was not present (an
    /// instrumentation bug in the caller).
    pub fn on_evict(&mut self, line: LineAddr) {
        match self.counts.get_mut(&line) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                self.counts.remove(&line);
            }
            None => debug_assert!(false, "evict of untracked line {line}"),
        }
    }

    /// Copies of `line` currently resident across the level.
    pub fn copies(&self, line: LineAddr) -> u32 {
        self.counts.get(&line).copied().unwrap_or(0)
    }

    /// Number of distinct lines resident anywhere in the level.
    pub fn distinct_lines(&self) -> usize {
        self.counts.len()
    }

    /// Mean copies per distinct resident line (Fig 16's replica count);
    /// 0.0 when the level is empty.
    pub fn mean_replicas(&self) -> f64 {
        if self.counts.is_empty() {
            return 0.0;
        }
        let total: u64 = self.counts.values().map(|&c| c as u64).sum();
        total as f64 / self.counts.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_evict_round_trip() {
        let mut p = PresenceMap::new();
        let l = LineAddr::new(9);
        assert_eq!(p.copies(l), 0);
        p.on_fill(l);
        p.on_fill(l);
        assert_eq!(p.copies(l), 2);
        p.on_evict(l);
        assert_eq!(p.copies(l), 1);
        p.on_evict(l);
        assert_eq!(p.copies(l), 0);
        assert_eq!(p.distinct_lines(), 0);
    }

    #[test]
    fn mean_replicas() {
        let mut p = PresenceMap::new();
        assert_eq!(p.mean_replicas(), 0.0);
        for _ in 0..3 {
            p.on_fill(LineAddr::new(1));
        }
        p.on_fill(LineAddr::new(2));
        assert!((p.mean_replicas() - 2.0).abs() < 1e-12);
        assert_eq!(p.distinct_lines(), 2);
    }
}
