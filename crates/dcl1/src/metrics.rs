//! `dcl1.*` / `shard.*` registry namespaces plus [`MachineMetrics`], the
//! machine-owned bundle that wires every subsystem namespace into one
//! [`Registry`].
//!
//! The machine snapshots the registry **pull-style** at epoch boundaries:
//! `record` walks components in global order (the same order
//! `collect_stats` uses), so a 1-shard and an 8-shard run of the same
//! point produce byte-identical snapshots. Registration happens once at
//! enable time; every snapshot after that is index arithmetic — no
//! allocation, no hashing, no simulation-visible side effects.

use crate::node::NodeStats;
use dcl1_obs::registry::{f64_to_micros, CounterId, GaugeId, HistogramId, Registry};

/// Registered ids for the `dcl1.*` namespace (DC-L1 node behaviour —
/// the paper's replication and stall figures).
#[derive(Debug, Clone, Copy)]
pub struct Dcl1Metrics {
    cycles: CounterId,
    l1_accesses: CounterId,
    l1_hits: CounterId,
    l1_misses: CounterId,
    l1_replicated_misses: CounterId,
    l1_bypasses: CounterId,
    l1_stall_cycles: CounterId,
    l1_mshr_stall_cycles: CounterId,
    l1_q3_stall_cycles: CounterId,
    mean_replicas_micros: GaugeId,
    node_accesses: HistogramId,
}

impl Dcl1Metrics {
    /// Registers the `dcl1.*` namespace.
    pub fn register(reg: &mut Registry) -> Dcl1Metrics {
        Dcl1Metrics {
            cycles: reg.counter("dcl1.cycles"),
            l1_accesses: reg.counter("dcl1.l1_accesses"),
            l1_hits: reg.counter("dcl1.l1_hits"),
            l1_misses: reg.counter("dcl1.l1_misses"),
            l1_replicated_misses: reg.counter("dcl1.l1_replicated_misses"),
            l1_bypasses: reg.counter("dcl1.l1_bypasses"),
            l1_stall_cycles: reg.counter("dcl1.l1_stall_cycles"),
            l1_mshr_stall_cycles: reg.counter("dcl1.l1_mshr_stall_cycles"),
            l1_q3_stall_cycles: reg.counter("dcl1.l1_q3_stall_cycles"),
            mean_replicas_micros: reg.gauge("dcl1.mean_replicas_micros"),
            node_accesses: reg.histogram("dcl1.node_accesses"),
        }
    }

    /// Snapshots node statistics summed in the order supplied (global
    /// node order) plus the presence map's mean replication factor. The
    /// per-node access histogram is rebuilt from scratch each snapshot.
    pub fn record(
        self,
        reg: &mut Registry,
        cycles: u64,
        nodes: impl Iterator<Item = NodeStats>,
        mean_replicas: f64,
    ) {
        let mut accesses = 0;
        let mut hits = 0;
        let mut misses = 0;
        let mut replicated = 0;
        let mut bypasses = 0;
        let mut stall = 0;
        let mut mshr_stall = 0;
        let mut q3_stall = 0;
        reg.clear_histogram(self.node_accesses);
        for n in nodes {
            accesses += n.accesses.get();
            hits += n.hits.get();
            misses += n.misses.get();
            replicated += n.replicated_misses.get();
            bypasses += n.bypasses.get();
            stall += n.stall_cycles.get();
            mshr_stall += n.mshr_stall_cycles.get();
            q3_stall += n.q3_stall_cycles.get();
            reg.observe(self.node_accesses, n.accesses.get());
        }
        reg.set_counter(self.cycles, cycles);
        reg.set_counter(self.l1_accesses, accesses);
        reg.set_counter(self.l1_hits, hits);
        reg.set_counter(self.l1_misses, misses);
        reg.set_counter(self.l1_replicated_misses, replicated);
        reg.set_counter(self.l1_bypasses, bypasses);
        reg.set_counter(self.l1_stall_cycles, stall);
        reg.set_counter(self.l1_mshr_stall_cycles, mshr_stall);
        reg.set_counter(self.l1_q3_stall_cycles, q3_stall);
        reg.set(self.mean_replicas_micros, f64_to_micros(mean_replicas));
    }
}

/// Registered ids for the `shard.*` namespace (execution partitioning and
/// transaction-flow conservation).
#[derive(Debug, Clone, Copy)]
pub struct ShardMetrics {
    txns_produced: CounterId,
    txns_consumed: CounterId,
    txns_in_flight: GaugeId,
    presence_lines: GaugeId,
}

impl ShardMetrics {
    /// Registers the `shard.*` namespace.
    pub fn register(reg: &mut Registry) -> ShardMetrics {
        ShardMetrics {
            txns_produced: reg.counter("shard.txns_produced"),
            txns_consumed: reg.counter("shard.txns_consumed"),
            txns_in_flight: reg.gauge("shard.txns_in_flight"),
            presence_lines: reg.gauge("shard.presence_lines"),
        }
    }

    /// Snapshots partitioning and flow-conservation state.
    ///
    /// `txns_produced`/`txns_consumed` are set as snapshot values (not
    /// accumulated); `txns_in_flight` is their difference at snapshot
    /// time. All are summed over domains by the caller in domain order,
    /// and only partition-independent values are recorded (never the
    /// domain count itself) so 1-shard and N-shard snapshots match.
    pub fn record(self, reg: &mut Registry, produced: u64, consumed: u64, presence_lines: u64) {
        reg.set_counter(self.txns_produced, produced);
        reg.set_counter(self.txns_consumed, consumed);
        reg.set(self.txns_in_flight, produced.saturating_sub(consumed));
        reg.set(self.presence_lines, presence_lines);
    }
}

/// The machine's registry bundle: one [`Registry`] plus the registered id
/// sets for every subsystem namespace. Boxed inside the machine so the
/// disabled case is a single null-check.
#[derive(Debug, Clone)]
pub struct MachineMetrics {
    /// The backing registry; snapshots render from here.
    pub(crate) reg: Registry,
    /// `gpu.*` ids.
    pub(crate) gpu: dcl1_gpu::metrics::GpuMetrics,
    /// `noc.*` ids.
    pub(crate) noc: dcl1_noc::metrics::NocMetrics,
    /// `mem.*` ids.
    pub(crate) mem: dcl1_mem::metrics::MemMetrics,
    /// `cache.*` ids.
    pub(crate) cache: dcl1_cache::metrics::CacheMetrics,
    /// `dcl1.*` ids.
    pub(crate) dcl1: Dcl1Metrics,
    /// `shard.*` ids.
    pub(crate) shard: ShardMetrics,
}

impl MachineMetrics {
    /// Registers every subsystem namespace into a fresh registry.
    #[must_use]
    pub fn new() -> MachineMetrics {
        let mut reg = Registry::new();
        MachineMetrics {
            gpu: dcl1_gpu::metrics::GpuMetrics::register(&mut reg),
            noc: dcl1_noc::metrics::NocMetrics::register(&mut reg),
            mem: dcl1_mem::metrics::MemMetrics::register(&mut reg),
            cache: dcl1_cache::metrics::CacheMetrics::register(&mut reg),
            dcl1: Dcl1Metrics::register(&mut reg),
            shard: ShardMetrics::register(&mut reg),
            reg,
        }
    }

    /// Read access to the backing registry.
    #[must_use]
    pub fn registry(&self) -> &Registry {
        &self.reg
    }
}

impl Default for MachineMetrics {
    fn default() -> MachineMetrics {
        MachineMetrics::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_namespaces_register_without_collision() {
        let mm = MachineMetrics::new();
        let names: Vec<&str> = mm.registry().names().collect();
        assert!(names.len() > 30, "expected a broad namespace, got {}", names.len());
        for ns in ["gpu.", "noc.", "mem.", "cache.", "dcl1.", "shard."] {
            assert!(
                names.iter().any(|n| n.starts_with(ns)),
                "namespace {ns} missing from {names:?}"
            );
        }
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate metric names");
    }

    #[test]
    fn dcl1_record_builds_histogram_and_gauge() {
        let mut reg = Registry::new();
        let ids = Dcl1Metrics::register(&mut reg);
        let mut a = NodeStats::default();
        a.accesses.add(7);
        a.hits.add(5);
        a.misses.add(2);
        a.replicated_misses.add(1);
        let mut b = NodeStats::default();
        b.accesses.add(1);
        b.bypasses.add(4);
        ids.record(&mut reg, 1000, [a, b].into_iter(), 1.25);
        assert_eq!(reg.get("dcl1.cycles"), Some(1000));
        assert_eq!(reg.get("dcl1.l1_accesses"), Some(8));
        assert_eq!(reg.get("dcl1.l1_replicated_misses"), Some(1));
        assert_eq!(reg.get("dcl1.l1_bypasses"), Some(4));
        assert_eq!(reg.get("dcl1.mean_replicas_micros"), Some(1_250_000));
        assert_eq!(reg.get("dcl1.node_accesses"), Some(2), "one observation per node");
        // Re-record with one node: histogram rebuilt, not accumulated.
        ids.record(&mut reg, 2000, [a].into_iter(), 1.0);
        assert_eq!(reg.get("dcl1.node_accesses"), Some(1));
    }

    #[test]
    fn shard_record_derives_in_flight() {
        let mut reg = Registry::new();
        let ids = ShardMetrics::register(&mut reg);
        ids.record(&mut reg, 100, 97, 512);
        assert_eq!(reg.get("shard.txns_produced"), Some(100));
        assert_eq!(reg.get("shard.txns_consumed"), Some(97));
        assert_eq!(reg.get("shard.txns_in_flight"), Some(3));
        assert_eq!(reg.get("shard.presence_lines"), Some(512));
    }
}
