//! Sharded execution domains for the cycle-level machine.
//!
//! [`crate::machine::GpuSystem`] partitions its cores, DC-L1 nodes, NoC#1
//! crossbars and L2 slices into [`ShardDomain`]s. Each simulated cycle is
//! a sequence of *regions* — per-domain work that touches only one
//! domain's state — separated by coordinator-run *exchanges* that move
//! cross-domain traffic in a deterministic order (global component order,
//! enforced by [`EpochKey`]-sorted batches). Because regions are
//! domain-disjoint and exchanges are single-threaded, the machine's
//! statistics are a pure function of the partition, not of how many OS
//! threads execute the regions: running every region inline or fanning
//! them out over a [`ShardPool`] is byte-identical.
//!
//! The partition itself is also semantics-neutral by construction — see
//! `GpuSystem::set_shards` for the determinism argument.

use crate::design::{Attachment, Topology};
use crate::node::Dcl1Node;
use crate::presence::{PresenceLog, PresenceMap, PresenceSession};
use crate::txn::Txn;
use dcl1_common::stats::RunningMean;
use dcl1_common::{Cycle, FlowMeter, Histogram};
use dcl1_gpu::{Core, MemBlock, MemKind};
use dcl1_mem::L2Slice;
use dcl1_noc::{Crossbar, EpochBatch, EpochKey, Packet};
use dcl1_obs::Observer;
use dcl1_resilience::SimError;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
// Wall time in this module is used only for (a) per-shard busy/barrier
// timing exported as diagnostics and (b) the barrier hang timeout; it
// never feeds statistics.
// simcheck: allow(wall_clock): shard busy/barrier diagnostics and hang timeout only, never feeds stats
use std::time::{Duration, Instant};

/// Seconds the coordinator waits for one shard's region before declaring
/// the run wedged. A region is a bounded amount of work (microseconds in
/// practice); exceeding this means a worker is livelocked or the OS has
/// wedged the thread, and supervision should quarantine the point.
const BARRIER_TIMEOUT_SECS: u64 = 60;

/// Static name of a transaction kind for trace span args.
pub(crate) fn kind_str(kind: MemKind) -> &'static str {
    match kind {
        MemKind::Load => "load",
        MemKind::Store => "store",
        MemKind::Atomic => "atomic",
        MemKind::Aux => "aux",
    }
}

/// Request data bytes on NoC#1/NoC#2 toward the memory side.
pub(crate) fn down_bytes(txn: &Txn) -> u32 {
    match txn.kind {
        MemKind::Load | MemKind::Aux => 0,
        MemKind::Store | MemKind::Atomic => txn.bytes,
    }
}

/// Reply data bytes toward the core.
pub(crate) fn up_bytes(txn: &Txn) -> u32 {
    match txn.kind {
        MemKind::Load | MemKind::Aux | MemKind::Atomic => txn.bytes,
        MemKind::Store => 0,
    }
}

/// Immutable machine facts shared by every domain (and thread).
#[derive(Debug)]
pub(crate) struct MachineCtx {
    /// The resolved topology (routing, cluster shapes, tick ratios).
    pub topo: Topology,
    /// Total cores in the machine (transaction-id construction).
    pub cores_total: u64,
    /// Effective flit width (config flit bytes × topology multiplier).
    pub flit_bytes: u32,
}

impl MachineCtx {
    /// Builds a packet using the effective flit width.
    pub fn packet(&self, src: usize, dst: usize, data_bytes: u32, txn: Txn) -> Packet<Txn> {
        Packet { src, dst, flits: 1 + data_bytes.div_ceil(self.flit_bytes), payload: txn }
    }
}

/// Per-core round-trip-time meters.
///
/// Kept per core (not per machine) so completions recorded concurrently by
/// different domains merge into machine-level means in a fixed order —
/// global core order — independent of the shard count.
#[derive(Debug, Default, Clone)]
pub(crate) struct CoreMeter {
    pub load_rtt: RunningMean,
    pub hit_rtt: RunningMean,
    pub miss_rtt: RunningMean,
    pub rtt_hist: Histogram,
}

/// One staged outbox head awaiting the epoch exchange: the transaction
/// plus its precomputed route, so the coordinator only arbitrates.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StagedFlit {
    /// Issuing core (global index).
    pub core: usize,
    /// Home DC-L1 node (global index).
    pub node: usize,
    /// NoC#1 cluster of the issuing core (0 for direct attachment).
    pub cluster: usize,
    /// NoC#1 input port within the cluster.
    pub src: usize,
    /// NoC#1 output port within the cluster.
    pub dst: usize,
    /// Request payload bytes (store/atomic data).
    pub data_bytes: u32,
    /// The transaction (a copy of the outbox head; the head itself is
    /// popped by the exchange only if the network accepts it).
    pub txn: Txn,
}

/// One per-domain slice of a simulated cycle.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Region {
    /// Core issue + outbox-head staging.
    Issue,
    /// NoC#1 ticks with domain-local ejection/completion (aligned
    /// partitions only).
    Noc1,
    /// L2 slice ticks, DC-L1 node ticks (presence via session log), and —
    /// when the partition is aligned — the node-reply drain fused in.
    Mem {
        /// Run the Q2 → NoC#1-reply / core drain inside the region.
        fuse_drain: bool,
    },
}

/// One shard's slice of the machine: a contiguous range of cores (with
/// their outboxes, meters and transaction sequencers), DC-L1 nodes, NoC#1
/// cluster crossbars and L2 slices, plus the staging state used at the
/// epoch barrier.
#[derive(Debug)]
pub(crate) struct ShardDomain {
    /// Domain index (usize::MAX marks the placeholder left behind while a
    /// domain is shipped to a worker).
    pub id: usize,
    /// First global core index in this domain.
    pub core0: usize,
    /// First global node index.
    pub node0: usize,
    /// First global NoC#1 cluster index.
    pub cluster0: usize,
    /// First global L2 slice index.
    pub slice0: usize,

    pub cores: Vec<Core>,
    /// Per-core coalesced transactions awaiting injection.
    pub outbox: Vec<VecDeque<Txn>>,
    /// Outcome of each core's most recent outbox-drain attempt (memoized
    /// stall attribution; meaningful only while the outbox is non-empty).
    pub outbox_cause: Vec<MemBlock>,
    /// Per-core issue counters: core `c`'s `k`-th transaction gets id
    /// `k * cores_total + c + 1`, globally unique and independent of the
    /// partition.
    pub txn_seq: Vec<u64>,
    /// Per-core RTT meters (merged in global core order at collection).
    pub meters: Vec<CoreMeter>,
    pub nodes: Vec<Dcl1Node>,
    pub noc1_req: Vec<Crossbar<Txn>>,
    pub noc1_rep: Vec<Crossbar<Txn>>,
    pub l2: Vec<L2Slice<Txn>>,

    /// Staged outbox heads for the epoch exchange, keyed by
    /// `(cycle, core, txn id)`.
    pub mailbox: EpochBatch<StagedFlit>,
    /// Presence deltas accumulated by this domain's node ticks, replayed
    /// into the shared map at the barrier (in domain order).
    pub plog: PresenceLog,
    /// Transaction conservation: produced at issue, consumed at
    /// completion. A transaction issues and completes at the same core,
    /// so the meter is domain-local.
    pub flow: FlowMeter,
    /// Wall nanoseconds this domain spent executing regions (diagnostics
    /// only; nondeterministic by nature).
    pub busy_nanos: u64,
}

impl ShardDomain {
    /// The empty stand-in left in the machine while the real domain is on
    /// a worker thread.
    pub fn placeholder() -> Self {
        ShardDomain {
            id: usize::MAX,
            core0: 0,
            node0: 0,
            cluster0: 0,
            slice0: 0,
            cores: Vec::new(),
            outbox: Vec::new(),
            outbox_cause: Vec::new(),
            txn_seq: Vec::new(),
            meters: Vec::new(),
            nodes: Vec::new(),
            noc1_req: Vec::new(),
            noc1_rep: Vec::new(),
            l2: Vec::new(),
            mailbox: EpochBatch::new(),
            plog: PresenceLog::new(),
            flow: FlowMeter::new("txns"),
            busy_nanos: 0,
        }
    }

    /// Executes one region against this domain only.
    pub fn run_region(
        &mut self,
        region: Region,
        now: Cycle,
        ctx: &MachineCtx,
        presence: &PresenceMap,
        obs: &mut Observer,
    ) {
        match region {
            Region::Issue => self.region_issue(now, ctx, obs),
            Region::Noc1 => self.region_noc1(now, ctx, obs),
            Region::Mem { fuse_drain } => self.region_mem(now, ctx, presence, fuse_drain, obs),
        }
    }

    /// Core issue (one instruction per core per cycle) into the per-core
    /// outboxes, then stage each outbox head for the epoch exchange.
    fn region_issue(&mut self, now: Cycle, ctx: &MachineCtx, obs: &mut Observer) {
        for i in 0..self.cores.len() {
            if self.cores[i].is_drained() {
                // A drained core's tick is a fruitless slot scan that only
                // counts an idle cycle; account for it directly.
                self.cores[i].add_idle_cycles(1);
                continue;
            }
            // The memory port is closed exactly when the outbox is
            // non-empty; the cause was memoized by the last exchange.
            let block =
                if self.outbox[i].is_empty() { None } else { Some(self.outbox_cause[i]) };
            let Some(issued) = self.cores[i].tick_blocked(now, block) else { continue };
            let c = self.core0 + i;
            for a in &issued.instr.accesses {
                let id = self.txn_seq[i] * ctx.cores_total + c as u64 + 1;
                self.txn_seq[i] += 1;
                let txn = Txn {
                    id,
                    core: issued.core,
                    wavefront: issued.wavefront,
                    line: a.line,
                    bytes: a.bytes,
                    kind: issued.instr.kind,
                    issued_at: now,
                    l1_hit: false,
                };
                if obs.tracing() {
                    obs.trace_begin(txn.id, now, c as u64, kind_str(txn.kind), txn.line.raw());
                }
                self.flow.produce(1);
                self.outbox[i].push_back(txn);
            }
        }
        // Stage outbox heads with their routes. Ascending core order means
        // the keys are already sorted, so sealing is a verification pass.
        for i in 0..self.outbox.len() {
            let Some(&txn) = self.outbox[i].front() else { continue };
            let c = self.core0 + i;
            let node = ctx.topo.home_node(c, txn.line);
            let (cluster, src, dst) = match ctx.topo.attachment {
                Attachment::Direct => (0, 0, 0),
                Attachment::Noc1 { .. } => (
                    ctx.topo.cluster_of_core(c),
                    c % ctx.topo.cores_per_cluster(),
                    node % ctx.topo.nodes_per_cluster(),
                ),
            };
            self.mailbox.stage(
                EpochKey { cycle: now, source: c as u64, seq: txn.id },
                StagedFlit { core: c, node, cluster, src, dst, data_bytes: down_bytes(&txn), txn },
            );
        }
        self.mailbox.seal();
    }

    /// NoC#1 ticks for this domain's clusters, with request ejection into
    /// this domain's nodes and reply completion at this domain's cores.
    /// Only runs when the partition is cluster-aligned, which guarantees
    /// both sides of every crossbar are domain-local.
    fn region_noc1(&mut self, now: Cycle, ctx: &MachineCtx, obs: &mut Observer) {
        let ticks = ctx.topo.noc1_ticks_per_cycle();
        let m = ctx.topo.nodes_per_cluster();
        let cpc = ctx.topo.cores_per_cluster();
        for _ in 0..ticks {
            for ki in 0..self.noc1_req.len() {
                let k = self.cluster0 + ki;
                self.noc1_req[ki].tick();
                // Eject requests into node Q1 (respecting Q1 room). The
                // occupancy count lets quiet switches skip the port scan.
                if self.noc1_req[ki].has_output() {
                    for slot in 0..m {
                        let ni = k * m + slot - self.node0;
                        while self.nodes[ni].can_accept_request() {
                            match self.noc1_req[ki].pop_output(slot) {
                                Some(pkt) => {
                                    obs.trace_hop(pkt.payload.id, "l1_queue", now);
                                    self.nodes[ni]
                                        .try_push_request(pkt.payload)
                                        .unwrap_or_else(|_| unreachable!("checked room"));
                                }
                                None => break,
                            }
                        }
                    }
                }
                self.noc1_rep[ki].tick();
                if self.noc1_rep[ki].has_output() {
                    for port in 0..cpc {
                        while let Some(pkt) = self.noc1_rep[ki].pop_output(port) {
                            self.complete_at_core(pkt.payload, now, obs);
                        }
                    }
                }
            }
        }
    }

    /// L2 slice ticks, node ticks (presence reads from the cycle-start
    /// snapshot, writes to the domain log) and, when fused, the node-reply
    /// drain.
    fn region_mem(
        &mut self,
        now: Cycle,
        ctx: &MachineCtx,
        presence: &PresenceMap,
        fuse_drain: bool,
        obs: &mut Observer,
    ) {
        for l2 in &mut self.l2 {
            l2.tick();
        }
        {
            let mut sess = PresenceSession::new(presence, &mut self.plog);
            for node in &mut self.nodes {
                node.tick(&mut sess, obs);
            }
        }
        if fuse_drain {
            self.drain_replies(now, ctx, obs);
        }
    }

    /// Node Q2 → core (direct) or NoC#1 reply injection, domain-local.
    /// Matches the sequential drain exactly: one reply per node per cycle
    /// (the non-ideal direct and clustered cases; the ideal-ports machine
    /// never shards, so its many-port drain stays on the sequential path).
    fn drain_replies(&mut self, now: Cycle, ctx: &MachineCtx, obs: &mut Observer) {
        match ctx.topo.attachment {
            Attachment::Direct => {
                for ni in 0..self.nodes.len() {
                    if let Some(txn) = self.nodes[ni].pop_reply() {
                        self.complete_at_core(txn, now, obs);
                    }
                }
            }
            Attachment::Noc1 { .. } => {
                let m = ctx.topo.nodes_per_cluster();
                let cpc = ctx.topo.cores_per_cluster();
                for ni in 0..self.nodes.len() {
                    let n = self.node0 + ni;
                    let ki = n / m - self.cluster0;
                    let Some(txn) = self.nodes[ni].peek_reply() else { continue };
                    let src = n % m;
                    let dst = txn.core.index() % cpc;
                    if self.noc1_rep[ki].can_inject(src) {
                        let txn = self.nodes[ni].pop_reply().expect("peeked Some");
                        obs.trace_hop(txn.id, "noc1_rep", now);
                        let pkt = ctx.packet(src, dst, up_bytes(&txn), txn);
                        self.noc1_rep[ki]
                            .try_inject(pkt)
                            .unwrap_or_else(|_| unreachable!("checked room"));
                    }
                }
            }
        }
    }

    /// Retires a transaction at its issuing core (always in this domain:
    /// a transaction issues and completes at the same core).
    pub fn complete_at_core(&mut self, txn: Txn, now: Cycle, obs: &mut Observer) {
        self.flow.consume(1);
        obs.trace_end(txn.id, now);
        let ci = txn.core.index() - self.core0;
        if txn.kind == MemKind::Load {
            let rtt = (now - txn.issued_at) as f64;
            let meter = &mut self.meters[ci];
            meter.load_rtt.record(rtt);
            meter.rtt_hist.record(now - txn.issued_at);
            if txn.l1_hit {
                meter.hit_rtt.record(rtt);
            } else {
                meter.miss_rtt.record(rtt);
            }
        }
        self.cores[ci].complete_access(txn.wavefront);
    }
}

// ---------------------------------------------------------------------
// Cross-domain accessors
// ---------------------------------------------------------------------
//
// Free functions (not methods) so a caller holding a disjoint borrow of
// another machine field can still reach into the domain vector. Linear
// scans over ≤ a handful of domains are cheaper than any index map.

/// The domain owning global core `c`.
pub(crate) fn domain_of_core(shards: &mut [ShardDomain], c: usize) -> &mut ShardDomain {
    shards
        .iter_mut()
        .find(|d| c >= d.core0 && c < d.core0 + d.cores.len())
        .unwrap_or_else(|| unreachable!("core {c} outside every domain"))
}

/// Global node `n`.
pub(crate) fn node_in(shards: &mut [ShardDomain], n: usize) -> &mut Dcl1Node {
    let d = shards
        .iter_mut()
        .find(|d| n >= d.node0 && n < d.node0 + d.nodes.len())
        .unwrap_or_else(|| unreachable!("node {n} outside every domain"));
    let i = n - d.node0;
    &mut d.nodes[i]
}

/// Global L2 slice `s`.
pub(crate) fn l2_in(shards: &mut [ShardDomain], s: usize) -> &mut L2Slice<Txn> {
    let d = shards
        .iter_mut()
        .find(|d| s >= d.slice0 && s < d.slice0 + d.l2.len())
        .unwrap_or_else(|| unreachable!("slice {s} outside every domain"));
    let i = s - d.slice0;
    &mut d.l2[i]
}

/// Global NoC#1 request crossbar of cluster `k`.
pub(crate) fn noc1_req_in(shards: &mut [ShardDomain], k: usize) -> &mut Crossbar<Txn> {
    let d = shards
        .iter_mut()
        .find(|d| k >= d.cluster0 && k < d.cluster0 + d.noc1_req.len())
        .unwrap_or_else(|| unreachable!("cluster {k} outside every domain"));
    let i = k - d.cluster0;
    &mut d.noc1_req[i]
}

/// Global NoC#1 reply crossbar of cluster `k`.
pub(crate) fn noc1_rep_in(shards: &mut [ShardDomain], k: usize) -> &mut Crossbar<Txn> {
    let d = shards
        .iter_mut()
        .find(|d| k >= d.cluster0 && k < d.cluster0 + d.noc1_rep.len())
        .unwrap_or_else(|| unreachable!("cluster {k} outside every domain"));
    let i = k - d.cluster0;
    &mut d.noc1_rep[i]
}

// ---------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------

/// One region of work shipped to a worker.
struct Job {
    domain: ShardDomain,
    region: Region,
    now: Cycle,
    ctx: Arc<MachineCtx>,
    presence: Arc<PresenceMap>,
}

/// One worker's coordination state.
#[derive(Debug)]
struct Slot {
    job: Mutex<Option<Job>>,
    done: Mutex<Option<ShardDomain>>,
    submitted: AtomicU64,
    completed: AtomicU64,
    /// Set when the worker dies mid-job (panic unwound through the
    /// guard); the coordinator turns this into `SimError::Livelock`.
    dead: AtomicBool,
    stop: AtomicBool,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job").field("domain", &self.domain.id).field("now", &self.now).finish()
    }
}

/// Marks the slot dead if dropped while armed — i.e. if the region
/// panicked before the worker could disarm it.
struct DeadGuard<'a> {
    slot: &'a Slot,
    armed: bool,
}

impl Drop for DeadGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.slot.dead.store(true, Ordering::Release);
        }
    }
}

fn worker_loop(slot: &Slot) {
    let mut obs = Observer::disabled();
    let mut seen = 0u64;
    loop {
        // Wait for work: brief spin (regions arrive back-to-back every
        // cycle), then yield.
        let mut spins = 0u32;
        loop {
            if slot.stop.load(Ordering::Acquire) {
                return;
            }
            let s = slot.submitted.load(Ordering::Acquire);
            if s != seen {
                seen = s;
                break;
            }
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
        let Some(mut job) = slot.job.lock().expect("worker job mutex").take() else {
            continue;
        };
        let mut guard = DeadGuard { slot, armed: true };
        // simcheck: allow(wall_clock): per-shard busy diagnostics, never feeds stats
        let t0 = Instant::now();
        job.domain.run_region(job.region, job.now, &job.ctx, &job.presence, &mut obs);
        job.domain.busy_nanos +=
            u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let Job { domain, presence, ctx, .. } = job;
        // Release the presence snapshot *before* signalling completion so
        // the coordinator's `Arc::get_mut` (barrier replay) succeeds.
        drop(presence);
        drop(ctx);
        *slot.done.lock().expect("worker done mutex") = Some(domain);
        guard.armed = false;
        slot.completed.fetch_add(1, Ordering::Release);
    }
}

/// A fixed set of worker threads, one per non-coordinator shard. Domains
/// are `mem::replace`-shipped through per-worker slots; the coordinator
/// runs shard 0 itself and then waits at the barrier.
#[derive(Debug)]
pub(crate) struct ShardPool {
    slots: Vec<Arc<Slot>>,
    threads: Vec<JoinHandle<()>>,
}

impl ShardPool {
    /// Spawns `workers` threads (shards minus the coordinator's).
    pub fn new(workers: usize) -> Self {
        let slots: Vec<Arc<Slot>> = (0..workers)
            .map(|_| {
                Arc::new(Slot {
                    job: Mutex::new(None),
                    done: Mutex::new(None),
                    submitted: AtomicU64::new(0),
                    completed: AtomicU64::new(0),
                    dead: AtomicBool::new(false),
                    stop: AtomicBool::new(false),
                })
            })
            .collect();
        let threads = slots
            .iter()
            .enumerate()
            .map(|(i, slot)| {
                let slot = Arc::clone(slot);
                std::thread::Builder::new()
                    .name(format!("dcl1-shard-{}", i + 1))
                    .spawn(move || worker_loop(&slot))
                    .expect("spawn shard worker")
            })
            .collect();
        ShardPool { slots, threads }
    }

    /// Worker count (pool capacity).
    pub fn workers(&self) -> usize {
        self.slots.len()
    }

    /// Ships `domain` (shard `1 + worker`) to worker `worker` for one
    /// region.
    pub fn submit(
        &self,
        worker: usize,
        domain: ShardDomain,
        region: Region,
        now: Cycle,
        ctx: &Arc<MachineCtx>,
        presence: &Arc<PresenceMap>,
    ) {
        let slot = &self.slots[worker];
        *slot.job.lock().expect("job mutex") = Some(Job {
            domain,
            region,
            now,
            ctx: Arc::clone(ctx),
            presence: Arc::clone(presence),
        });
        slot.submitted.fetch_add(1, Ordering::Release);
    }

    /// Waits for worker `worker`'s current region and returns its domain
    /// and the coordinator's wall wait in nanoseconds.
    ///
    /// # Errors
    ///
    /// [`SimError::Livelock`] when the worker died mid-region (its domain
    /// is lost — the machine must be discarded) or the barrier timeout
    /// elapsed.
    pub fn wait(&self, worker: usize, cycle: Cycle) -> Result<(ShardDomain, u64), SimError> {
        let slot = &self.slots[worker];
        // simcheck: allow(wall_clock): barrier-wait diagnostics and hang timeout, never feeds stats
        let t0 = Instant::now();
        loop {
            if slot.completed.load(Ordering::Acquire) == slot.submitted.load(Ordering::Acquire)
            {
                break;
            }
            if slot.dead.load(Ordering::Acquire) {
                return Err(SimError::Livelock {
                    cycle,
                    dump: format!(
                        "shard worker {} died mid-region (panicked); domain state lost",
                        worker + 1
                    ),
                });
            }
            if t0.elapsed() > Duration::from_secs(BARRIER_TIMEOUT_SECS) {
                return Err(SimError::Livelock {
                    cycle,
                    dump: format!(
                        "shard worker {} exceeded the {BARRIER_TIMEOUT_SECS}s epoch barrier",
                        worker + 1
                    ),
                });
            }
            std::hint::spin_loop();
        }
        let waited = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let domain = slot
            .done
            .lock()
            .expect("done mutex")
            .take()
            .unwrap_or_else(|| unreachable!("completed region always stores its domain"));
        Ok((domain, waited))
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        for slot in &self.slots {
            slot.stop.store(true, Ordering::Release);
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

/// Per-shard execution report for one run (bench diagnostics).
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Number of execution domains the machine was partitioned into.
    pub shards: usize,
    /// Wall nanoseconds the coordinator spent waiting at epoch barriers.
    pub barrier_wait_nanos: u64,
    /// Wall nanoseconds each shard spent executing regions.
    pub busy_nanos: Vec<u64>,
}
