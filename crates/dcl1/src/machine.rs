//! The full-system cycle-level simulator.
//!
//! [`GpuSystem::build`] instantiates a machine from a [`GpuConfig`], a
//! [`Design`] and a workload's [`TraceFactory`]; [`GpuSystem::run`]
//! executes the kernel to completion and returns [`RunStats`].
//!
//! ## Per-cycle pipeline
//!
//! Components communicate only through bounded queues and crossbar ports,
//! so the tick order below introduces at most single-cycle skews:
//!
//! 1. CTA dispatch to cores with free slots;
//! 2. core issue (one instruction per core per cycle) into per-core
//!    transaction outboxes;
//! 3. outbox → NoC#1 injection (or directly into the in-core L1's Q1 for
//!    baseline designs);
//! 4. NoC#1 ticks (1× or 2× per core cycle) with ejection into node Q1 /
//!    completion at cores;
//! 5. node Q3 → NoC#2 injection; NoC#2 ticks in the 700 MHz domain with
//!    ejection into L2 input queues / node Q4;
//! 6. L2 slice ticks; L2 ↔ DRAM moves; DRAM ticks in the 924 MHz domain;
//! 7. DC-L1 node ticks;
//! 8. node Q2 → NoC#1 reply injection (or directly back to the core).

use crate::config::GpuConfig;
use crate::design::{Attachment, Design, Noc2Kind, Topology};
use crate::node::{Dcl1Node, NodeConfig};
use crate::presence::PresenceMap;
use crate::stats::RunStats;
use crate::check::{SimChecker, EPOCH_CYCLES};
use crate::txn::Txn;
use dcl1_common::stats::RunningMean;
use dcl1_common::{ClockDomain, ConfigError, CoreId, Cycle, Histogram};
use dcl1_gpu::{Core, CoreConfig, CoreStats, CtaDispatcher, CtaPolicy, MemBlock, MemKind, TraceFactory};
use dcl1_mem::{DramAccess, L2Reply, L2Request, L2Slice, MemAccessKind, MemoryController};
use dcl1_noc::{Crossbar, CrossbarConfig, Packet};
use dcl1_obs::metrics::MetricsSample;
use dcl1_obs::Observer;
use dcl1_resilience::SimError;
use std::collections::VecDeque;
// Wall time is read only by the deadline watchdog, which compares it
// against a supervision budget and aborts the attempt; it never feeds
// statistics.
// simcheck: allow(wall_clock): supervision-only deadline check, never feeds stats
use std::time::Instant;

/// Default cycles between progress-watchdog checks once
/// [`GpuSystem::set_watchdog`] arms it: long enough that any real traffic
/// (load RTTs are hundreds of cycles) advances the progress signature many
/// times over, so a firing is a genuine hang, not a slow point.
pub const DEFAULT_WATCHDOG_EPOCH: u64 = 1 << 20;

/// Static name of a transaction kind for trace span args.
fn kind_str(kind: MemKind) -> &'static str {
    match kind {
        MemKind::Load => "load",
        MemKind::Store => "store",
        MemKind::Atomic => "atomic",
        MemKind::Aux => "aux",
    }
}

/// Run-level options orthogonal to the design (the paper's sensitivity
/// knobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimOptions {
    /// Perfect-(DC-)L1 mode: every lookup hits (Fig 4c).
    pub perfect_l1: bool,
    /// Overrides the L1/DC-L1 access latency (Fig 19b sweeps 0..64).
    pub l1_latency_override: Option<u32>,
    /// CTA scheduling policy (§VIII-A sensitivity).
    pub cta_policy: CtaPolicy,
    /// Hard cycle cap (defends against pathological configurations).
    pub max_cycles: u64,
    /// Cycles between replica-count samples.
    pub replica_sample_interval: u64,
    /// Instructions to retire before statistics start counting
    /// (cache-warmup fast-forward, as simulation methodology requires;
    /// 0 = measure from cold).
    pub warmup_instructions: u64,
    /// Idle fast-forward: when every component is quiescent except
    /// fixed-latency timers (ALU busy intervals, cache-hit pipes, L2 reply
    /// latencies, DRAM bursts), jump the clock to the next event instead of
    /// stepping cycle by cycle. Bit-identical to stepping — the golden
    /// tests compare both paths — so there is no reason to disable it
    /// outside of those tests.
    pub fast_forward: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            perfect_l1: false,
            l1_latency_override: None,
            cta_policy: CtaPolicy::GreedyRoundRobin,
            max_cycles: 20_000_000,
            replica_sample_interval: 2048,
            warmup_instructions: 0,
            fast_forward: true,
        }
    }
}

/// NoC#2 instantiation (one direction).
#[derive(Debug)]
enum Noc2Net {
    /// One `sources×slices` crossbar.
    Single(Crossbar<Txn>),
    /// One crossbar per home slot (paper Fig 10).
    Sliced(Vec<Crossbar<Txn>>),
    /// The hierarchical CDXBar comparator.
    TwoStage {
        stage1: Vec<Crossbar<Txn>>,
        stage2: Crossbar<Txn>,
    },
}

impl Noc2Net {
    fn is_idle(&self) -> bool {
        match self {
            Noc2Net::Single(x) => x.is_idle(),
            Noc2Net::Sliced(v) => v.iter().all(Crossbar::is_idle),
            Noc2Net::TwoStage { stage1, stage2 } => {
                stage1.iter().all(Crossbar::is_idle) && stage2.is_idle()
            }
        }
    }

    fn check_conservation(&self, site: &str) -> dcl1_common::InvariantResult {
        match self {
            Noc2Net::Single(x) => x.check_conservation(site),
            Noc2Net::Sliced(v) => v
                .iter()
                .enumerate()
                .try_for_each(|(i, x)| x.check_conservation(&format!("{site}.slot{i}"))),
            Noc2Net::TwoStage { stage1, stage2 } => {
                stage1.iter().enumerate().try_for_each(|(i, x)| {
                    x.check_conservation(&format!("{site}.stage1_{i}"))
                })?;
                stage2.check_conservation(&format!("{site}.stage2"))
            }
        }
    }
}

/// The assembled machine.
#[derive(Debug)]
pub struct GpuSystem<'w> {
    cfg: GpuConfig,
    topo: Topology,
    opts: SimOptions,
    factory: &'w dyn TraceFactory,
    dispatcher: CtaDispatcher,

    cores: Vec<Core>,
    /// Per-core coalesced transactions awaiting injection.
    outbox: Vec<VecDeque<Txn>>,
    /// Outcome of each core's most recent outbox-drain attempt, read by
    /// issue to attribute memory-port stalls. Only meaningful while the
    /// core's outbox is non-empty.
    outbox_cause: Vec<MemBlock>,
    nodes: Vec<Dcl1Node>,
    presence: PresenceMap,

    /// NoC#1 request/reply crossbars, one pair per cluster (empty when
    /// direct-attached).
    noc1_req: Vec<Crossbar<Txn>>,
    noc1_rep: Vec<Crossbar<Txn>>,

    noc2_req: Noc2Net,
    noc2_rep: Noc2Net,
    noc2_clock: ClockDomain,
    /// Stage-1/stage-2 clocks for the CDXBar comparator.
    cdx_clocks: Option<(ClockDomain, ClockDomain)>,

    l2: Vec<L2Slice<Txn>>,
    /// Reply popped from a slice but not yet injected into NoC#2.
    l2_reply_stash: Vec<Option<L2Reply<Txn>>>,
    /// DRAM access popped from a slice but not yet accepted by its MC.
    dram_stash: Vec<Option<DramAccess>>,
    mcs: Vec<MemoryController<usize>>,
    dram_clock: ClockDomain,

    /// Observability sinks (tracing + metrics); `Observer::disabled()` by
    /// default, in which case every hook below is an inlined early return.
    obs: Observer,

    /// Checked-sim harness (`--check`); `None` by default, in which case
    /// every invariant hook is a skipped branch and no epoch sweeps run.
    checker: Option<Box<SimChecker>>,

    /// Progress-watchdog epoch in cycles; `None` (the default) disables
    /// the watchdog, so [`run`](GpuSystem::run) keeps its historical
    /// never-fails behavior.
    watchdog_epoch: Option<u64>,
    /// Wall-clock budget for one run, in whole seconds (`None` = none).
    deadline_secs: Option<u64>,
    /// Chaos/testing hook: freeze every pipeline phase from this cycle on
    /// so the watchdog observes a genuine no-progress window.
    stall_from: Option<Cycle>,
    /// Cycle of the last watchdog probe.
    watch_cycle: Cycle,
    /// Progress signature at the last watchdog probe.
    watch_sig: u64,

    now: Cycle,
    /// Cycle at which statistics were last reset (end of warmup).
    stat_base_cycle: Cycle,
    warmup_done: bool,
    txn_counter: u64,
    load_rtt: RunningMean,
    rtt_hist: Histogram,
    hit_rtt: RunningMean,
    miss_rtt: RunningMean,
    replica_samples: RunningMean,
}

impl<'w> GpuSystem<'w> {
    /// Builds a machine for `design` running `factory`'s kernel.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the design does not resolve against the
    /// configuration (divisibility constraints, cache geometry).
    pub fn build(
        cfg: &GpuConfig,
        design: &Design,
        factory: &'w dyn TraceFactory,
        opts: SimOptions,
    ) -> Result<Self, ConfigError> {
        let topo = design.topology(cfg)?;
        let node_cfg = NodeConfig {
            size_bytes: topo.node_bytes(cfg),
            assoc: cfg.l1_assoc,
            line_bytes: cfg.line_bytes,
            latency: opts.l1_latency_override.unwrap_or_else(|| topo.node_latency(cfg)),
            mshr_entries: (cfg.l1_mshr_entries * cfg.cores / topo.nodes).max(1),
            mshr_merges: cfg.l1_mshr_merges * (cfg.cores / topo.nodes).max(1),
            queue_entries: if topo.ideal_ports {
                cfg.node_queue_entries * cfg.cores
            } else {
                cfg.node_queue_entries
            },
            ports: if topo.ideal_ports { cfg.cores } else { 1 },
            perfect: opts.perfect_l1,
        };
        let nodes = (0..topo.nodes)
            .map(|_| Dcl1Node::new(node_cfg))
            .collect::<Result<Vec<_>, _>>()?;

        let cores = (0..cfg.cores)
            .map(|c| {
                Core::new(
                    CoreId::new(c),
                    CoreConfig {
                        max_wavefronts: cfg.max_wavefronts,
                        max_ctas: cfg.max_ctas_per_core,
                        issue_policy: cfg.issue_policy,
                    },
                )
            })
            .collect();

        // NoC#1.
        let xcfg = |i: usize, o: usize| -> CrossbarConfig {
            CrossbarConfig {
                vc_lookahead: cfg.noc_vcs.max(1),
                ..CrossbarConfig::new(i, o).expect("nonzero ports")
            }
        };
        let (noc1_req, noc1_rep) = match topo.attachment {
            Attachment::Direct => (Vec::new(), Vec::new()),
            Attachment::Noc1 { .. } => {
                let cpc = topo.cores_per_cluster();
                let m = topo.nodes_per_cluster();
                let req = (0..topo.clusters).map(|_| Crossbar::new(xcfg(cpc, m))).collect();
                let rep = (0..topo.clusters).map(|_| Crossbar::new(xcfg(m, cpc))).collect();
                (req, rep)
            }
        };

        // NoC#2.
        let l = cfg.l2_slices;
        let make = |i: usize, o: usize| -> Crossbar<Txn> { Crossbar::new(xcfg(i, o)) };
        let (noc2_req, noc2_rep, cdx_clocks) = match topo.noc2 {
            Noc2Kind::Single => {
                // The ideal single-L1 hypothetical keeps full memory-side
                // bandwidth (paper §II-A): one NoC#2 port per core.
                let sources = if topo.ideal_ports { topo.cores } else { topo.nodes };
                (
                    Noc2Net::Single(make(sources, l)),
                    Noc2Net::Single(make(l, sources)),
                    None,
                )
            }
            Noc2Kind::Sliced { groups } => {
                let o = l / groups;
                let req = (0..groups).map(|_| make(topo.clusters, o)).collect();
                let rep = (0..groups).map(|_| make(o, topo.clusters)).collect();
                (Noc2Net::Sliced(req), Noc2Net::Sliced(rep), None)
            }
            Noc2Kind::TwoStage { groups, uplinks, stage1_mult, stage2_mult } => {
                let cpg = topo.cores / groups;
                let req = Noc2Net::TwoStage {
                    stage1: (0..groups).map(|_| make(cpg, uplinks)).collect(),
                    stage2: make(groups * uplinks, l),
                };
                let rep = Noc2Net::TwoStage {
                    stage1: (0..groups).map(|_| make(uplinks, cpg)).collect(),
                    stage2: make(l, groups * uplinks),
                };
                let clocks = (
                    ClockDomain::new(cfg.noc_mhz * stage1_mult, cfg.core_mhz),
                    ClockDomain::new(cfg.noc_mhz * stage2_mult, cfg.core_mhz),
                );
                (req, rep, Some(clocks))
            }
        };

        let l2 = (0..l)
            .map(|_| L2Slice::new(cfg.l2))
            .collect::<Result<Vec<_>, _>>()?;
        let mcs = (0..cfg.mcs).map(|_| MemoryController::new(cfg.dram)).collect();

        Ok(GpuSystem {
            dispatcher: CtaDispatcher::new(opts.cta_policy, factory.total_ctas(), cfg.cores),
            outbox: (0..cfg.cores).map(|_| VecDeque::new()).collect(),
            outbox_cause: vec![MemBlock::OutboxDrain; cfg.cores],
            // Distinct presence-tracked lines are bounded by the level's
            // aggregate capacity; pre-sizing means the map never re-hashes.
            presence: PresenceMap::with_capacity(
                node_cfg.size_bytes / cfg.line_bytes.max(1) * topo.nodes,
            ),
            l2_reply_stash: (0..l).map(|_| None).collect(),
            dram_stash: (0..l).map(|_| None).collect(),
            noc2_clock: ClockDomain::new(cfg.noc_mhz * topo.noc2_freq_mult, cfg.core_mhz),
            dram_clock: ClockDomain::new(cfg.mem_mhz, cfg.core_mhz),
            cfg: cfg.clone(),
            topo,
            opts,
            factory,
            cores,
            nodes,
            noc1_req,
            noc1_rep,
            noc2_req,
            noc2_rep,
            cdx_clocks,
            l2,
            mcs,
            obs: Observer::disabled(),
            checker: None,
            watchdog_epoch: None,
            deadline_secs: None,
            stall_from: None,
            watch_cycle: 0,
            watch_sig: 0,
            now: 0,
            stat_base_cycle: 0,
            warmup_done: false,
            txn_counter: 0,
            load_rtt: RunningMean::default(),
            rtt_hist: Histogram::new(),
            hit_rtt: RunningMean::default(),
            miss_rtt: RunningMean::default(),
            replica_samples: RunningMean::default(),
        })
    }

    /// The resolved topology this machine implements.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Attaches observability sinks (transaction tracing and/or periodic
    /// metrics). The machine drives them from its pipeline phases and
    /// finalizes them at the end of [`run`](GpuSystem::run).
    pub fn attach_observer(&mut self, obs: Observer) {
        self.obs = obs;
    }

    /// Turns on checked-sim mode: conservation invariants are verified
    /// every [`EPOCH_CYCLES`] cycles and at drain, panicking on the first
    /// violation. Checking reads gauges only — statistics stay
    /// byte-identical to an unchecked run.
    pub fn enable_check(&mut self) {
        self.checker = Some(Box::new(SimChecker::new()));
    }

    /// The checked-sim harness, when enabled (epoch counts, flow meters).
    pub fn checker(&self) -> Option<&SimChecker> {
        self.checker.as_deref()
    }

    /// Arms the cycle-level progress watchdog: every `epoch_cycles`, the
    /// machine compares a signature of its forward-progress counters
    /// (transactions issued, instructions retired, CTAs dispatched, L2 and
    /// DRAM traffic, flits moved) against the previous probe. No change
    /// while the machine is not idle means a livelock, and
    /// [`run_result`](GpuSystem::run_result) returns
    /// [`SimError::Livelock`] with a state dump instead of spinning to the
    /// cycle cap. The probe reads gauges only — statistics of a
    /// non-livelocked run are byte-identical with the watchdog on or off.
    pub fn set_watchdog(&mut self, epoch_cycles: u64) {
        self.watchdog_epoch = Some(epoch_cycles.max(1));
    }

    /// Sets a wall-clock budget for one [`run_result`](GpuSystem::run_result)
    /// call; checked at watchdog-epoch granularity, so arming the watchdog
    /// is what makes the deadline live. Exceeding it returns
    /// [`SimError::Deadline`].
    pub fn set_deadline_secs(&mut self, secs: u64) {
        self.deadline_secs = Some(secs);
    }

    /// Chaos/testing hook: from `cycle` on, every step advances the clock
    /// without doing any pipeline work, freezing all forward progress so
    /// the watchdog provably fires. Never enabled outside fault injection.
    pub fn inject_stall_from(&mut self, cycle: Cycle) {
        self.stall_from = Some(cycle);
    }

    /// True when the chaos stall is active at the current cycle.
    fn stalled(&self) -> bool {
        self.stall_from.is_some_and(|c| self.now >= c)
    }

    /// A stable digest of every counter that advances when the machine
    /// makes forward progress. Cheap (one pass over component stats) and
    /// only computed once per watchdog epoch.
    fn progress_signature(&self) -> u64 {
        let mut sig: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            sig ^= v;
            sig = sig.wrapping_mul(0x0000_0100_0000_01b3);
        };
        mix(self.txn_counter);
        mix(u64::from(self.dispatcher.remaining()));
        mix(self.cores.iter().map(|c| c.stats().instructions.get()).sum());
        mix(self.nodes.iter().map(|n| n.stats().accesses.get()).sum());
        mix(self.l2.iter().map(|s| s.stats().accesses.get()).sum());
        mix(self.mcs.iter().map(|m| m.stats().reads.get() + m.stats().writes.get()).sum());
        mix(self
            .noc1_req
            .iter()
            .chain(self.noc1_rep.iter())
            .map(|x| x.stats().total_flits())
            .sum());
        let nq2 = |net: &Noc2Net| -> u64 {
            match net {
                Noc2Net::Single(x) => x.stats().total_flits(),
                Noc2Net::Sliced(v) => v.iter().map(|x| x.stats().total_flits()).sum(),
                Noc2Net::TwoStage { stage1, stage2 } => {
                    stage1.iter().map(|x| x.stats().total_flits()).sum::<u64>()
                        + stage2.stats().total_flits()
                }
            }
        };
        mix(nq2(&self.noc2_req));
        mix(nq2(&self.noc2_rep));
        mix(u64::from(self.warmup_done));
        sig
    }

    /// One watchdog probe: deadline first (cheap), then the no-progress
    /// check. On success, re-bases the probe window.
    // simcheck: allow(wall_clock): supervision-only deadline check, never feeds stats
    fn watchdog_probe(&mut self, started: Option<Instant>) -> Result<(), SimError> {
        if let (Some(limit), Some(t0)) = (self.deadline_secs, started) {
            let elapsed = t0.elapsed();
            if elapsed > std::time::Duration::from_secs(limit) {
                return Err(SimError::Deadline {
                    elapsed_secs: elapsed.as_secs(),
                    limit_secs: limit,
                });
            }
        }
        let sig = self.progress_signature();
        if sig == self.watch_sig && !self.all_idle() {
            return Err(SimError::Livelock { cycle: self.now, dump: self.watchdog_dump() });
        }
        self.watch_cycle = self.now;
        self.watch_sig = sig;
        Ok(())
    }

    /// The diagnostic state dump attached to a livelock report: the
    /// pressure-point snapshot (queue depths, in-flight flits, stall
    /// counters) plus MSHR occupancy and, under `--check`, the transaction
    /// flow-meter balance.
    fn watchdog_dump(&self) -> String {
        use std::fmt::Write;
        let mut s = self.debug_snapshot();
        let waiters: usize = self.nodes.iter().map(Dcl1Node::mshr_waiters).sum();
        writeln!(s, "node_mshr_waiters={waiters}").ok();
        if let Some(ck) = &self.checker {
            writeln!(
                s,
                "txn_flow produced={} consumed={} in_flight={}",
                ck.txns.produced(),
                ck.txns.consumed(),
                ck.txns.in_flight()
            )
            .ok();
        }
        s
    }

    /// Per-core statistics (stall breakdowns alongside issue counts).
    pub fn core_stats(&self) -> Vec<CoreStats> {
        self.cores.iter().map(|c| *c.stats()).collect()
    }

    /// Cycles elapsed since statistics last reset (the measured window).
    pub fn measured_cycles(&self) -> u64 {
        self.now - self.stat_base_cycle
    }

    fn effective_flit_bytes(&self) -> u32 {
        self.cfg.flit_bytes * self.topo.flit_mult
    }

    fn packet(&self, src: usize, dst: usize, data_bytes: u32, txn: Txn) -> Packet<Txn> {
        let flit = self.effective_flit_bytes();
        Packet { src, dst, flits: 1 + data_bytes.div_ceil(flit), payload: txn }
    }

    fn slice_of(&self, line: dcl1_common::LineAddr) -> usize {
        line.interleave(self.cfg.l2_slices)
    }

    fn mc_of_slice(&self, slice: usize) -> usize {
        slice / self.cfg.slices_per_mc()
    }

    /// Request data bytes on NoC#1/NoC#2 toward the memory side.
    fn down_bytes(txn: &Txn) -> u32 {
        match txn.kind {
            MemKind::Load | MemKind::Aux => 0,
            MemKind::Store | MemKind::Atomic => txn.bytes,
        }
    }

    /// Reply data bytes toward the core.
    fn up_bytes(txn: &Txn) -> u32 {
        match txn.kind {
            MemKind::Load | MemKind::Aux | MemKind::Atomic => txn.bytes,
            MemKind::Store => 0,
        }
    }

    // ---------------------------------------------------------------
    // Per-cycle phases
    // ---------------------------------------------------------------

    fn dispatch_ctas(&mut self) {
        if self.dispatcher.remaining() == 0 {
            return;
        }
        // Deal CTAs one per core per round (GPGPU-Sim's round-robin issue
        // order), so small grids spread across all cores instead of
        // saturating the first few.
        let wpc = self.factory.wavefronts_per_cta();
        loop {
            let mut progress = false;
            for c in 0..self.cores.len() {
                if self.cores[c].can_host_cta(wpc as usize) {
                    let Some(cta) = self.dispatcher.fetch(CoreId::new(c)) else { continue };
                    let traces =
                        (0..wpc).map(|w| self.factory.wavefront_trace(cta, w)).collect();
                    self.cores[c].add_cta(cta, traces);
                    progress = true;
                }
            }
            if !progress || self.dispatcher.remaining() == 0 {
                break;
            }
        }
    }

    fn issue_cores(&mut self) {
        for c in 0..self.cores.len() {
            if self.cores[c].is_drained() {
                // A drained core's tick is a fruitless 48-slot scan that
                // only counts an idle cycle; account for it directly.
                self.cores[c].add_idle_cycles(1);
                continue;
            }
            // The memory port is closed exactly when the outbox is non-empty
            // — the same condition issue has always used. The cause was
            // memoized by the last drain attempt: `OutboxDrain` when the
            // port moved a transaction but more remain (rate-limited at one
            // per cycle), `L1Queue`/`Noc` when the downstream resource
            // refused the head outright.
            let block = if self.outbox[c].is_empty() {
                None
            } else {
                Some(self.outbox_cause[c])
            };
            if let Some(issued) = self.cores[c].tick_blocked(self.now, block) {
                for a in &issued.instr.accesses {
                    self.txn_counter += 1;
                    let txn = Txn {
                        id: self.txn_counter,
                        core: issued.core,
                        wavefront: issued.wavefront,
                        line: a.line,
                        bytes: a.bytes,
                        kind: issued.instr.kind,
                        issued_at: self.now,
                        l1_hit: false,
                    };
                    if self.obs.tracing() {
                        self.obs.trace_begin(
                            txn.id,
                            self.now,
                            c as u64,
                            kind_str(txn.kind),
                            txn.line.raw(),
                        );
                    }
                    if let Some(ck) = &mut self.checker {
                        ck.txns_issued(1);
                    }
                    self.outbox[c].push_back(txn);
                }
            }
        }
    }

    /// Moves one transaction per core from its outbox toward the L1 level,
    /// memoizing why the head could not (or could only just) move so issue
    /// can attribute the next port stall without re-probing the network.
    fn drain_outboxes(&mut self) {
        for c in 0..self.outbox.len() {
            let Some(&txn) = self.outbox[c].front() else { continue };
            self.outbox_cause[c] = match self.topo.attachment {
                Attachment::Direct => {
                    // In-core L1 (node index == core index), or the single
                    // node of the ideal shared-L1 study.
                    let node = self.topo.home_node(c, txn.line);
                    if self.nodes[node].can_accept_request() {
                        self.outbox[c].pop_front();
                        self.obs.trace_hop(txn.id, "l1_queue", self.now);
                        self.nodes[node]
                            .try_push_request(txn)
                            .unwrap_or_else(|_| unreachable!("checked room"));
                        MemBlock::OutboxDrain
                    } else {
                        MemBlock::L1Queue
                    }
                }
                Attachment::Noc1 { .. } => {
                    let cluster = self.topo.cluster_of_core(c);
                    let src = c % self.topo.cores_per_cluster();
                    let node = self.topo.home_node(c, txn.line);
                    let dst = node % self.topo.nodes_per_cluster();
                    if self.noc1_req[cluster].can_inject(src) {
                        self.outbox[c].pop_front();
                        self.obs.trace_hop(txn.id, "noc1_req", self.now);
                        let pkt = self.packet(src, dst, Self::down_bytes(&txn), txn);
                        self.noc1_req[cluster]
                            .try_inject(pkt)
                            .unwrap_or_else(|_| unreachable!("checked room"));
                        MemBlock::OutboxDrain
                    } else {
                        MemBlock::Noc
                    }
                }
            };
        }
    }

    /// Node Q2 → core (direct) or NoC#1 reply injection.
    fn drain_node_replies(&mut self) {
        match self.topo.attachment {
            Attachment::Direct => {
                // A direct-attached L1 returns one reply per cycle at full
                // width; the ideal single L1 has one reply port per core.
                let pops = if self.topo.ideal_ports { self.cfg.cores } else { 1 };
                for n in 0..self.nodes.len() {
                    for _ in 0..pops {
                        match self.nodes[n].pop_reply() {
                            Some(txn) => self.complete_at_core(txn),
                            None => break,
                        }
                    }
                }
            }
            Attachment::Noc1 { .. } => {
                let m = self.topo.nodes_per_cluster();
                for n in 0..self.nodes.len() {
                    let cluster = n / m;
                    let Some(txn) = self.nodes[n].peek_reply() else { continue };
                    let src = n % m;
                    let dst = txn.core.index() % self.topo.cores_per_cluster();
                    if self.noc1_rep[cluster].can_inject(src) {
                        let txn = self.nodes[n].pop_reply().expect("peeked Some");
                        self.obs.trace_hop(txn.id, "noc1_rep", self.now);
                        let pkt = self.packet(src, dst, Self::up_bytes(&txn), txn);
                        self.noc1_rep[cluster]
                            .try_inject(pkt)
                            .unwrap_or_else(|_| unreachable!("checked room"));
                    }
                }
            }
        }
    }

    fn tick_noc1(&mut self) {
        let ticks = self.topo.noc1_ticks_per_cycle();
        let m = self.topo.nodes_per_cluster();
        let cpc = self.topo.cores_per_cluster();
        for _ in 0..ticks {
            for cluster in 0..self.noc1_req.len() {
                self.noc1_req[cluster].tick();
                // Eject requests into node Q1 (respecting Q1 room). The
                // occupancy count lets quiet switches skip the port scan.
                if self.noc1_req[cluster].has_output() {
                    for slot in 0..m {
                        let node = cluster * m + slot;
                        while self.nodes[node].can_accept_request() {
                            match self.noc1_req[cluster].pop_output(slot) {
                                Some(pkt) => {
                                    self.obs.trace_hop(pkt.payload.id, "l1_queue", self.now);
                                    self.nodes[node]
                                        .try_push_request(pkt.payload)
                                        .unwrap_or_else(|_| unreachable!("checked room"))
                                }
                                None => break,
                            }
                        }
                    }
                }
                self.noc1_rep[cluster].tick();
                if self.noc1_rep[cluster].has_output() {
                    for port in 0..cpc {
                        while let Some(pkt) = self.noc1_rep[cluster].pop_output(port) {
                            self.complete_at_core(pkt.payload);
                        }
                    }
                }
            }
        }
    }

    fn complete_at_core(&mut self, txn: Txn) {
        if let Some(ck) = &mut self.checker {
            ck.txn_retired();
        }
        self.obs.trace_end(txn.id, self.now);
        if txn.kind == MemKind::Load {
            let rtt = (self.now - txn.issued_at) as f64;
            self.load_rtt.record(rtt);
            self.rtt_hist.record(self.now - txn.issued_at);
            if txn.l1_hit {
                self.hit_rtt.record(rtt);
            } else {
                self.miss_rtt.record(rtt);
            }
        }
        self.cores[txn.core.index()].complete_access(txn.wavefront);
    }

    /// Node Q3 → NoC#2 request injection.
    fn inject_noc2_requests(&mut self) {
        let m = self.topo.nodes_per_cluster();
        let pops = if self.topo.ideal_ports { self.cfg.cores } else { 1 };
        for n in 0..self.nodes.len() {
            for _ in 0..pops {
            let Some(txn) = self.nodes[n].peek_l2_request().copied() else { break };
            let slice = self.slice_of(txn.line);
            let data = Self::down_bytes(&txn);
            let mut advanced = false;
            match &mut self.noc2_req {
                Noc2Net::Single(x) => {
                    let src = if self.topo.ideal_ports { txn.core.index() } else { n };
                    if x.can_inject(src) {
                        self.nodes[n].pop_l2_request();
                        self.obs.trace_hop(txn.id, "noc2_req", self.now);
                        advanced = true;
                        let flit = self.cfg.flit_bytes * self.topo.flit_mult;
                        let pkt =
                            Packet { src, dst: slice, flits: 1 + data.div_ceil(flit), payload: txn };
                        x.try_inject(pkt).unwrap_or_else(|_| unreachable!("checked room"));
                    }
                }
                Noc2Net::Sliced(xs) => {
                    let slot = n % m;
                    debug_assert_eq!(
                        slice % xs.len(),
                        slot % xs.len(),
                        "home-slot / slice interleaving mismatch"
                    );
                    let cluster = n / m;
                    let dst = slice / xs.len();
                    let x = &mut xs[slot];
                    if x.can_inject(cluster) {
                        self.nodes[n].pop_l2_request();
                        self.obs.trace_hop(txn.id, "noc2_req", self.now);
                        advanced = true;
                        let flit = self.cfg.flit_bytes * self.topo.flit_mult;
                        let pkt = Packet {
                            src: cluster,
                            dst,
                            flits: 1 + data.div_ceil(flit),
                            payload: txn,
                        };
                        x.try_inject(pkt).unwrap_or_else(|_| unreachable!("checked room"));
                    }
                }
                Noc2Net::TwoStage { stage1, .. } => {
                    // Baseline machine: node index == core index.
                    let groups = stage1.len();
                    let cpg = self.topo.cores / groups;
                    let g = n / cpg;
                    let src = n % cpg;
                    let uplinks = stage1[g].config().outputs;
                    let dst = slice % uplinks;
                    if stage1[g].can_inject(src) {
                        self.nodes[n].pop_l2_request();
                        self.obs.trace_hop(txn.id, "noc2_req", self.now);
                        advanced = true;
                        let flit = self.cfg.flit_bytes * self.topo.flit_mult;
                        let pkt =
                            Packet { src, dst, flits: 1 + data.div_ceil(flit), payload: txn };
                        stage1[g].try_inject(pkt).unwrap_or_else(|_| unreachable!("checked room"));
                    }
                }
            }
            if !advanced {
                break;
            }
            }
        }
    }

    /// L2 replies → NoC#2 reply injection (via per-slice stashes).
    fn inject_noc2_replies(&mut self) {
        let m = self.topo.nodes_per_cluster();
        for s in 0..self.l2.len() {
            if self.l2_reply_stash[s].is_none() {
                self.l2_reply_stash[s] = self.l2.pop_reply_for(s);
            }
            let Some(reply) = &self.l2_reply_stash[s] else { continue };
            let txn = reply.payload;
            // Full-line fills for loads; acks/small data otherwise.
            let data = match txn.kind {
                MemKind::Load => u32::try_from(self.cfg.line_bytes).expect("line_bytes fits u32"),
                MemKind::Aux | MemKind::Atomic => txn.bytes,
                MemKind::Store => 0,
            };
            let flit = self.effective_flit_bytes();
            // For baseline machines home_node is the core's own L1; for
            // the ideal single L1 it is node 0; for DC-L1 designs it is
            // the home DC-L1 that issued the fill.
            let node = self.topo.home_node(txn.core.index(), txn.line);
            match &mut self.noc2_rep {
                Noc2Net::Single(x) => {
                    let dst = if self.topo.ideal_ports { txn.core.index() } else { node };
                    if x.can_inject(s) {
                        let pkt =
                            Packet { src: s, dst, flits: 1 + data.div_ceil(flit), payload: txn };
                        x.try_inject(pkt).unwrap_or_else(|_| unreachable!("checked room"));
                        self.obs.trace_hop(txn.id, "noc2_rep", self.now);
                        self.l2_reply_stash[s] = None;
                    }
                }
                Noc2Net::Sliced(xs) => {
                    let groups = xs.len();
                    let slot = node % m;
                    debug_assert_eq!(s % groups, slot % groups);
                    let cluster = node / m;
                    let src = s / groups;
                    let x = &mut xs[slot];
                    if x.can_inject(src) {
                        let pkt = Packet {
                            src,
                            dst: cluster,
                            flits: 1 + data.div_ceil(flit),
                            payload: txn,
                        };
                        x.try_inject(pkt).unwrap_or_else(|_| unreachable!("checked room"));
                        self.obs.trace_hop(txn.id, "noc2_rep", self.now);
                        self.l2_reply_stash[s] = None;
                    }
                }
                Noc2Net::TwoStage { stage2, stage1 } => {
                    let groups = stage1.len();
                    let cpg = self.topo.cores / groups;
                    let g = node / cpg;
                    let uplinks = stage1[0].config().inputs;
                    let dst = g * uplinks + s % uplinks;
                    if stage2.can_inject(s) {
                        let pkt =
                            Packet { src: s, dst, flits: 1 + data.div_ceil(flit), payload: txn };
                        stage2.try_inject(pkt).unwrap_or_else(|_| unreachable!("checked room"));
                        self.obs.trace_hop(txn.id, "noc2_rep", self.now);
                        self.l2_reply_stash[s] = None;
                    }
                }
            }
        }
    }

    fn tick_noc2(&mut self) {
        let ticks = self.noc2_clock.advance();
        let (s1_ticks, s2_ticks) = match &mut self.cdx_clocks {
            Some((c1, c2)) => (c1.advance(), c2.advance()),
            None => (0, 0),
        };
        // Request direction.
        match &mut self.noc2_req {
            Noc2Net::Single(x) => {
                for _ in 0..ticks {
                    x.tick();
                    Self::eject_into_l2(x, &mut self.l2, None, &mut self.obs, self.now);
                }
            }
            Noc2Net::Sliced(xs) => {
                for _ in 0..ticks {
                    let groups = xs.len();
                    for (slot, x) in xs.iter_mut().enumerate() {
                        x.tick();
                        Self::eject_into_l2(x, &mut self.l2, Some((slot, groups)), &mut self.obs, self.now);
                    }
                }
            }
            Noc2Net::TwoStage { stage1, stage2 } => {
                for _ in 0..s1_ticks {
                    for (g, x) in stage1.iter_mut().enumerate() {
                        x.tick();
                        if !x.has_output() {
                            continue;
                        }
                        // Stage-1 ejects feed stage-2 inputs.
                        let uplinks = x.config().outputs;
                        for u in 0..uplinks {
                            while let Some(_pkt) = x.peek_output(u) {
                                let input = g * uplinks + u;
                                if !stage2.can_inject(input) {
                                    break;
                                }
                                let pkt = x.pop_output(u).expect("peeked Some");
                                let slice = Self::slice_of_static(
                                    pkt.payload.line,
                                    stage2.config().outputs,
                                );
                                let fwd = Packet {
                                    src: input,
                                    dst: slice,
                                    flits: pkt.flits,
                                    payload: pkt.payload,
                                };
                                stage2
                                    .try_inject(fwd)
                                    .unwrap_or_else(|_| unreachable!("checked room"));
                            }
                        }
                    }
                }
                for _ in 0..s2_ticks {
                    stage2.tick();
                    Self::eject_into_l2(stage2, &mut self.l2, None, &mut self.obs, self.now);
                }
            }
        }
        // Reply direction.
        let m = self.topo.nodes_per_cluster();
        match &mut self.noc2_rep {
            Noc2Net::Single(x) => {
                let ideal = self.topo.ideal_ports;
                for _ in 0..ticks {
                    x.tick();
                    if !x.has_output() {
                        continue;
                    }
                    for port in 0..x.config().outputs {
                        let n = if ideal { 0 } else { port };
                        while self.nodes[n].can_accept_l2_reply() {
                            match x.pop_output(port) {
                                Some(pkt) => self.nodes[n]
                                    .try_push_l2_reply(pkt.payload)
                                    .unwrap_or_else(|_| unreachable!("checked room")),
                                None => break,
                            }
                        }
                    }
                }
            }
            Noc2Net::Sliced(xs) => {
                for _ in 0..ticks {
                    for (slot, x) in xs.iter_mut().enumerate() {
                        x.tick();
                        if !x.has_output() {
                            continue;
                        }
                        for cluster in 0..self.topo.clusters {
                            let node = cluster * m + slot;
                            while self.nodes[node].can_accept_l2_reply() {
                                match x.pop_output(cluster) {
                                    Some(pkt) => self.nodes[node]
                                        .try_push_l2_reply(pkt.payload)
                                        .unwrap_or_else(|_| unreachable!("checked room")),
                                    None => break,
                                }
                            }
                        }
                    }
                }
            }
            Noc2Net::TwoStage { stage1, stage2 } => {
                for _ in 0..s2_ticks {
                    stage2.tick();
                    if !stage2.has_output() {
                        continue;
                    }
                    // Stage-2 ejects feed per-group stage-1 reply xbars.
                    let groups = stage1.len();
                    let cpg = self.topo.cores / groups;
                    let uplinks = stage1[0].config().inputs;
                    for port in 0..stage2.config().outputs {
                        let g = port / uplinks;
                        let u = port % uplinks;
                        while let Some(_pkt) = stage2.peek_output(port) {
                            if !stage1[g].can_inject(u) {
                                break;
                            }
                            let pkt = stage2.pop_output(port).expect("peeked Some");
                            let dst = pkt.payload.core.index() % cpg;
                            let fwd =
                                Packet { src: u, dst, flits: pkt.flits, payload: pkt.payload };
                            stage1[g]
                                .try_inject(fwd)
                                .unwrap_or_else(|_| unreachable!("checked room"));
                        }
                    }
                }
                for _ in 0..s1_ticks {
                    for (g, x) in stage1.iter_mut().enumerate() {
                        x.tick();
                        if !x.has_output() {
                            continue;
                        }
                        let cpg = x.config().outputs;
                        for port in 0..cpg {
                            let node = g * cpg + port;
                            while self.nodes[node].can_accept_l2_reply() {
                                match x.pop_output(port) {
                                    Some(pkt) => self.nodes[node]
                                        .try_push_l2_reply(pkt.payload)
                                        .unwrap_or_else(|_| unreachable!("checked room")),
                                    None => break,
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    fn slice_of_static(line: dcl1_common::LineAddr, slices: usize) -> usize {
        line.interleave(slices)
    }

    /// Drains a request-direction crossbar's ejection ports into the L2
    /// slices. `sliced` carries `(slot, groups)` so output port `p` maps
    /// to slice `p * groups + slot`; `None` means output port == slice.
    fn eject_into_l2(
        x: &mut Crossbar<Txn>,
        l2: &mut [L2Slice<Txn>],
        sliced: Option<(usize, usize)>,
        obs: &mut Observer,
        now: Cycle,
    ) {
        if !x.has_output() {
            return;
        }
        for port in 0..x.config().outputs {
            let slice = match sliced {
                Some((slot, groups)) => port * groups + slot,
                None => port,
            };
            while l2[slice].can_accept() {
                match x.pop_output(port) {
                    Some(pkt) => {
                        let txn = pkt.payload;
                        obs.trace_hop(txn.id, "l2", now);
                        let kind = match txn.kind {
                            MemKind::Load | MemKind::Aux => MemAccessKind::Read,
                            MemKind::Store => MemAccessKind::Write,
                            MemKind::Atomic => MemAccessKind::Atomic,
                        };
                        l2[slice]
                            .try_enqueue(L2Request { line: txn.line, kind, payload: txn })
                            .unwrap_or_else(|_| unreachable!("checked room"));
                    }
                    None => break,
                }
            }
        }
    }

    fn tick_memory_side(&mut self) {
        // L2 slices run at the core clock.
        for s in 0..self.l2.len() {
            self.l2[s].tick();
            // L2 → DRAM (via stash).
            if self.dram_stash[s].is_none() {
                self.dram_stash[s] = self.l2[s].pop_dram();
            }
            if let Some(acc) = self.dram_stash[s] {
                let mc = self.mc_of_slice(s);
                let payload = if acc.is_write { None } else { Some(s) };
                if self.mcs[mc].can_accept() {
                    self.mcs[mc]
                        .try_enqueue(acc.line, acc.is_write, payload)
                        .unwrap_or_else(|_| unreachable!("checked room"));
                    self.dram_stash[s] = None;
                }
            }
        }
        // DRAM domain.
        let ticks = self.dram_clock.advance();
        for _ in 0..ticks {
            for mc in &mut self.mcs {
                mc.tick();
                while let Some((line, slice)) = mc.pop_reply() {
                    self.l2[slice].dram_fill(line);
                }
            }
        }
    }

    fn tick_nodes(&mut self) {
        let obs = &mut self.obs;
        for node in &mut self.nodes {
            node.tick(&mut self.presence, obs);
        }
    }

    /// Runs one checked-sim invariant sweep, panicking on any violation.
    /// A no-op unless [`enable_check`](GpuSystem::enable_check) was called.
    fn sweep_invariants(&mut self, at_drain: bool) {
        let Some(mut ck) = self.checker.take() else { return };
        ck.epochs_checked += 1;
        if let Err(e) = self.invariant_sweep(&ck, at_drain) {
            panic!(
                "checked-sim violation at cycle {}{}: {e}",
                self.now,
                if at_drain { " (drain)" } else { "" }
            );
        }
        self.checker = Some(ck);
    }

    /// The full conservation sweep (see [`crate::check`] for the laws).
    fn invariant_sweep(
        &self,
        ck: &SimChecker,
        at_drain: bool,
    ) -> dcl1_common::InvariantResult {
        use dcl1_common::InvariantError;
        ck.check_txn_flow()?;
        if at_drain {
            ck.check_drained()?;
        }
        for (i, n) in self.nodes.iter().enumerate() {
            n.check_invariants(&format!("node{i}"))?;
        }
        for (i, s) in self.l2.iter().enumerate() {
            s.check_invariants(&format!("l2_{i}"))?;
        }
        for (i, x) in self.noc1_req.iter().enumerate() {
            x.check_conservation(&format!("noc1_req{i}"))?;
        }
        for (i, x) in self.noc1_rep.iter().enumerate() {
            x.check_conservation(&format!("noc1_rep{i}"))?;
        }
        self.noc2_req.check_conservation("noc2_req")?;
        self.noc2_rep.check_conservation("noc2_rep")?;
        for (i, mc) in self.mcs.iter().enumerate() {
            if mc.queue_len() > self.cfg.dram.queue_depth {
                return Err(InvariantError::new(
                    format!("mc{i}"),
                    format!(
                        "queue occupancy {} exceeds depth {}",
                        mc.queue_len(),
                        self.cfg.dram.queue_depth
                    ),
                ));
            }
        }
        // Stall attribution: every measured core cycle is exactly one of
        // issue / classified stall — continuously, not just at exit.
        let cycles = self.measured_cycles();
        for (i, c) in self.cores.iter().enumerate() {
            let cs = c.stats();
            let instr = cs.instructions.get();
            let stall = cs.stall.total();
            if instr + stall != cycles {
                return Err(InvariantError::new(
                    format!("core{i}"),
                    format!(
                        "stall partition: {instr} instructions + {stall} stalls \
                         != {cycles} measured cycles"
                    ),
                ));
            }
            if stall != cs.idle_cycles.get() + cs.mem_stall_cycles.get() {
                return Err(InvariantError::new(
                    format!("core{i}"),
                    format!(
                        "stall breakdown {stall} != idle {} + mem-stall {}",
                        cs.idle_cycles.get(),
                        cs.mem_stall_cycles.get()
                    ),
                ));
            }
        }
        Ok(())
    }

    fn all_idle(&self) -> bool {
        self.dispatcher.remaining() == 0
            && self.cores.iter().all(Core::is_drained)
            && self.outbox.iter().all(VecDeque::is_empty)
            && self.nodes.iter().all(Dcl1Node::is_idle)
            && self.noc1_req.iter().all(Crossbar::is_idle)
            && self.noc1_rep.iter().all(Crossbar::is_idle)
            && self.noc2_req.is_idle()
            && self.noc2_rep.is_idle()
            && self.l2.iter().all(L2Slice::is_idle)
            && self.l2_reply_stash.iter().all(Option::is_none)
            && self.dram_stash.iter().all(Option::is_none)
            && self.mcs.iter().all(MemoryController::is_idle)
    }

    /// Runs the kernel to completion (or the cycle cap) and returns the
    /// collected statistics.
    ///
    /// Historical never-fails entry point: with the watchdog disarmed
    /// (the default) [`run_result`](GpuSystem::run_result) cannot fail,
    /// and an armed watchdog firing here means a genuine hang — panicking
    /// with the diagnostic is strictly better than spinning to the cycle
    /// cap. Supervised callers use `run_result` and recover instead.
    pub fn run(&mut self) -> RunStats {
        self.run_result().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs the kernel to completion (or the cycle cap) under the
    /// supervision configured by [`set_watchdog`](GpuSystem::set_watchdog)
    /// and [`set_deadline_secs`](GpuSystem::set_deadline_secs).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Livelock`] when an armed watchdog observes a
    /// full epoch with no forward progress while the machine is not idle,
    /// and [`SimError::Deadline`] when the wall-clock budget is exceeded.
    /// With neither configured, this never fails.
    pub fn run_result(&mut self) -> Result<RunStats, SimError> {
        // simcheck: allow(wall_clock): supervision-only deadline check, never feeds stats
        let started = self.deadline_secs.map(|_| Instant::now());
        self.watch_cycle = self.now;
        self.watch_sig = self.progress_signature();
        while self.now < self.opts.max_cycles {
            self.step();
            if !self.warmup_done && self.opts.warmup_instructions > 0 && self.now.is_multiple_of(64) {
                let retired: u64 =
                    self.cores.iter().map(|c| c.stats().instructions.get()).sum();
                if retired >= self.opts.warmup_instructions {
                    self.reset_statistics();
                }
            }
            if self.now.is_multiple_of(64) && self.all_idle() {
                break;
            }
            if let Some(epoch) = self.watchdog_epoch {
                if self.now.saturating_sub(self.watch_cycle) >= epoch {
                    self.watchdog_probe(started)?;
                }
            }
            if self.opts.fast_forward {
                self.fast_forward();
            }
        }
        if self.checker.is_some() && self.all_idle() {
            self.sweep_invariants(true);
        }
        if !self.obs.is_off() {
            if let Err(e) = self.obs.finish(self.now) {
                eprintln!("warning: failed to flush observability sinks: {e}");
            }
        }
        Ok(self.collect_stats())
    }

    /// When the whole machine is quiescent — no queued or staged
    /// transaction anywhere, no ready wavefront, no dispatchable CTA — the
    /// only thing [`step`](GpuSystem::step) does is advance clocks until a
    /// fixed-latency timer fires: an ALU busy interval expires, a cache hit
    /// matures in a node's hit pipe, an L2 reply's latency elapses, or a
    /// DRAM burst completes. This jumps `now` directly to the cycle before
    /// the earliest such event (the event cycle itself is then stepped
    /// normally), advancing every component clock by exactly the amount
    /// that many do-nothing steps would have.
    ///
    /// The jump never crosses a replica-sample cycle, a pending warmup
    /// probe, or the cycle cap, so statistics are bit-identical to
    /// stepping.
    fn fast_forward(&mut self) {
        if self.stalled() {
            // Chaos stall: never jump the clock past the no-progress
            // window the watchdog is supposed to observe.
            return;
        }
        // Cheap occupancy guards first, so active phases bail out fast.
        if self.outbox.iter().any(|o| !o.is_empty())
            || !self.noc1_req.iter().all(Crossbar::is_idle)
            || !self.noc1_rep.iter().all(Crossbar::is_idle)
            || !self.noc2_req.is_idle()
            || !self.noc2_rep.is_idle()
            || self.l2_reply_stash.iter().any(Option::is_some)
            || self.dram_stash.iter().any(Option::is_some)
        {
            return;
        }
        // `horizon` = steps until the earliest event fires (that step must
        // execute normally).
        let mut horizon = u64::MAX;
        for n in &self.nodes {
            match n.quiescent_horizon() {
                None => return,
                Some(h) => horizon = horizon.min(h),
            }
        }
        for s in &self.l2 {
            match s.quiescent_horizon() {
                None => return,
                // Replies are popped in the inject phase, which sees the
                // slice clock one tick behind the machine step count.
                Some(u64::MAX) => {}
                Some(h) => horizon = horizon.min(h + 1),
            }
        }
        for mc in &self.mcs {
            match mc.quiescent_horizon() {
                None => return,
                Some(u64::MAX) => {}
                // A mature reply (t = 0) is picked up at the next DRAM
                // tick, so it still needs one more tick's worth of cycles.
                Some(t) => horizon = horizon.min(self.dram_clock.cycles_until_ticks(t.max(1))),
            }
        }
        for c in &mut self.cores {
            match c.blocked_until(self.now) {
                None => return,
                Some(Cycle::MAX) => {}
                Some(until) => horizon = horizon.min(until - self.now),
            }
        }
        if self.dispatcher.remaining() > 0 {
            let wpc = self.factory.wavefronts_per_cta() as usize;
            if self.cores.iter().any(|c| c.can_host_cta(wpc)) {
                return;
            }
        }

        let mut skip = if horizon == u64::MAX {
            // No timer pending anywhere: everything left is drained (or
            // wedged, which the cycle cap bounds). Land the next step on
            // the 64-cycle idle probe so `run` can exit.
            63 - self.now % 64
        } else {
            horizon - 1
        };
        // Never jump over a cycle that does observable work.
        skip = skip.min(self.opts.max_cycles - 1 - self.now);
        let ivl = self.opts.replica_sample_interval;
        skip = skip.min(ivl - 1 - self.now % ivl);
        if let Some(mivl) = self.obs.metrics_interval() {
            // The sampler is itself a timer event: land the next step on the
            // sampling boundary so quiescent snapshots are still recorded.
            skip = skip.min(mivl - 1 - self.now % mivl);
        }
        if !self.warmup_done && self.opts.warmup_instructions > 0 {
            skip = skip.min(63 - self.now % 64);
        }
        if skip == 0 {
            return;
        }

        self.now += skip;
        for c in &mut self.cores {
            c.add_idle_cycles(skip);
        }
        let n1 = skip * self.topo.noc1_ticks_per_cycle();
        for x in self.noc1_req.iter_mut().chain(self.noc1_rep.iter_mut()) {
            x.skip_idle_ticks(n1);
        }
        let t2 = self.noc2_clock.advance_by(skip);
        let (t_s1, t_s2) = match &mut self.cdx_clocks {
            Some((c1, c2)) => (c1.advance_by(skip), c2.advance_by(skip)),
            None => (0, 0),
        };
        for net in [&mut self.noc2_req, &mut self.noc2_rep] {
            match net {
                Noc2Net::Single(x) => x.skip_idle_ticks(t2),
                Noc2Net::Sliced(v) => v.iter_mut().for_each(|x| x.skip_idle_ticks(t2)),
                Noc2Net::TwoStage { stage1, stage2 } => {
                    stage1.iter_mut().for_each(|x| x.skip_idle_ticks(t_s1));
                    stage2.skip_idle_ticks(t_s2);
                }
            }
        }
        for n in &mut self.nodes {
            n.skip_idle_cycles(skip);
        }
        for l2 in &mut self.l2 {
            l2.skip_idle_cycles(skip);
        }
        let tm = self.dram_clock.advance_by(skip);
        for mc in &mut self.mcs {
            mc.skip_idle_ticks(tm);
        }
    }

    /// Ends the warmup phase: zeroes every statistic while leaving all
    /// architectural state (cache contents, queues, in-flight traffic)
    /// intact, so the measured phase starts from a warm machine.
    pub fn reset_statistics(&mut self) {
        self.warmup_done = true;
        self.stat_base_cycle = self.now;
        for c in &mut self.cores {
            c.reset_stats();
        }
        for n in &mut self.nodes {
            n.reset_stats();
        }
        for x in self.noc1_req.iter_mut().chain(self.noc1_rep.iter_mut()) {
            x.reset_stats();
        }
        for net in [&mut self.noc2_req, &mut self.noc2_rep] {
            match net {
                Noc2Net::Single(x) => x.reset_stats(),
                Noc2Net::Sliced(v) => v.iter_mut().for_each(Crossbar::reset_stats),
                Noc2Net::TwoStage { stage1, stage2 } => {
                    stage1.iter_mut().for_each(Crossbar::reset_stats);
                    stage2.reset_stats();
                }
            }
        }
        for l2 in &mut self.l2 {
            l2.reset_stats();
        }
        for mc in &mut self.mcs {
            mc.reset_stats();
        }
        self.load_rtt = RunningMean::default();
        self.rtt_hist.reset();
        self.hit_rtt = RunningMean::default();
        self.miss_rtt = RunningMean::default();
        self.replica_samples = RunningMean::default();
    }

    /// Advances exactly one core cycle.
    pub fn step(&mut self) {
        self.now += 1;
        if self.stalled() {
            // Chaos stall: the clock runs but no phase does work, which is
            // exactly the no-progress shape the watchdog must catch.
            return;
        }
        self.dispatch_ctas();
        self.issue_cores();
        self.drain_outboxes();
        self.tick_noc1();
        self.inject_noc2_requests();
        self.inject_noc2_replies();
        self.tick_noc2();
        self.tick_memory_side();
        self.tick_nodes();
        self.drain_node_replies();
        if self.now.is_multiple_of(self.opts.replica_sample_interval)
            && self.presence.distinct_lines() > 0
        {
            self.replica_samples.record(self.presence.mean_replicas());
        }
        if let Some(ivl) = self.obs.metrics_interval() {
            if self.now.is_multiple_of(ivl) {
                let sample = self.metrics_sample();
                self.obs.record_metrics(&sample);
            }
        }
        if self.checker.is_some() && self.now.is_multiple_of(EPOCH_CYCLES) {
            self.sweep_invariants(false);
        }
    }

    /// Snapshots every machine-wide occupancy gauge for the metrics stream.
    fn metrics_sample(&self) -> MetricsSample {
        let nq2 = |net: &Noc2Net| -> (u64, u64) {
            match net {
                Noc2Net::Single(x) => (x.in_flight() as u64, x.stats().total_flits()),
                Noc2Net::Sliced(v) => (
                    v.iter().map(Crossbar::in_flight).sum::<usize>() as u64,
                    v.iter().map(|x| x.stats().total_flits()).sum(),
                ),
                Noc2Net::TwoStage { stage1, stage2 } => (
                    (stage1.iter().map(Crossbar::in_flight).sum::<usize>() + stage2.in_flight())
                        as u64,
                    stage1.iter().map(|x| x.stats().total_flits()).sum::<u64>()
                        + stage2.stats().total_flits(),
                ),
            }
        };
        let (noc2_req_inflight, noc2_req_flits) = nq2(&self.noc2_req);
        let (noc2_rep_inflight, noc2_rep_flits) = nq2(&self.noc2_rep);
        MetricsSample {
            cycle: self.now,
            outbox_depth: self.outbox.iter().map(VecDeque::len).sum::<usize>() as u64,
            node_q1: self.nodes.iter().map(Dcl1Node::q1_len).sum::<usize>() as u64,
            node_q2: self.nodes.iter().map(Dcl1Node::q2_len).sum::<usize>() as u64,
            node_q3: self.nodes.iter().map(Dcl1Node::q3_len).sum::<usize>() as u64,
            node_q4: self.nodes.iter().map(Dcl1Node::q4_len).sum::<usize>() as u64,
            node_mshr: self.nodes.iter().map(Dcl1Node::mshr_waiters).sum::<usize>() as u64,
            node_hit_pipe: self.nodes.iter().map(Dcl1Node::hit_pipe_len).sum::<usize>() as u64,
            noc1_req_inflight: self.noc1_req.iter().map(Crossbar::in_flight).sum::<usize>() as u64,
            noc1_rep_inflight: self.noc1_rep.iter().map(Crossbar::in_flight).sum::<usize>() as u64,
            noc2_req_inflight,
            noc2_rep_inflight,
            noc1_flits: self
                .noc1_req
                .iter()
                .chain(self.noc1_rep.iter())
                .map(|x| x.stats().total_flits())
                .sum(),
            noc2_flits: noc2_req_flits + noc2_rep_flits,
            l2_input: self.l2.iter().map(L2Slice::input_len).sum::<usize>() as u64,
            l2_mshr: self.l2.iter().map(L2Slice::mshr_len).sum::<usize>() as u64,
            l2_replies: self.l2.iter().map(L2Slice::replies_pending).sum::<usize>() as u64,
            dram_queue: self.mcs.iter().map(MemoryController::queue_len).sum::<usize>() as u64,
            dram_replies: self.mcs.iter().map(MemoryController::replies_pending).sum::<usize>()
                as u64,
            active_wavefronts: self.cores.iter().map(Core::resident_wavefronts).sum::<usize>()
                as u64,
            waiting_wavefronts: self.cores.iter().map(Core::waiting_wavefronts).sum::<usize>()
                as u64,
            instructions: self.cores.iter().map(|c| c.stats().instructions.get()).sum(),
        }
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// A human-readable dump of internal pressure points (stall counters,
    /// queue rejections, in-flight packets) for performance debugging.
    pub fn debug_snapshot(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let idle: u64 = self.cores.iter().map(|c| c.stats().idle_cycles.get()).sum();
        let mstall: u64 = self.cores.iter().map(|c| c.stats().mem_stall_cycles.get()).sum();
        let instr: u64 = self.cores.iter().map(|c| c.stats().instructions.get()).sum();
        writeln!(s, "cycle={} instr={} core_idle={} core_mem_stall={}", self.now, instr, idle, mstall).ok();
        let stall = |f: fn(&dcl1_gpu::StallBreakdown) -> u64| -> u64 {
            self.cores.iter().map(|c| f(&c.stats().stall)).sum()
        };
        writeln!(
            s,
            "stall drained={} alu_busy={} fill_wait={} mem_outbox={} mem_l1_queue={} mem_noc={}",
            stall(|b| b.drained.get()),
            stall(|b| b.alu_busy.get()),
            stall(|b| b.fill_wait.get()),
            stall(|b| b.mem_outbox.get()),
            stall(|b| b.mem_l1_queue.get()),
            stall(|b| b.mem_noc.get())
        )
        .ok();
        let nstall: u64 = self.nodes.iter().map(|n| n.stats().stall_cycles.get()).sum();
        let nacc: u64 = self.nodes.iter().map(|n| n.stats().accesses.get()).sum();
        writeln!(s, "node_accesses={} node_stalls={} outbox_pending={}", nacc, nstall,
            self.outbox.iter().map(VecDeque::len).sum::<usize>()).ok();
        let n1r: usize = self.noc1_req.iter().map(Crossbar::in_flight).sum();
        let n1p: usize = self.noc1_rep.iter().map(Crossbar::in_flight).sum();
        writeln!(s, "noc1_req_inflight={} noc1_rep_inflight={}", n1r, n1p).ok();
        let n2 = |net: &Noc2Net| -> usize {
            match net {
                Noc2Net::Single(x) => x.in_flight(),
                Noc2Net::Sliced(v) => v.iter().map(Crossbar::in_flight).sum(),
                Noc2Net::TwoStage { stage1, stage2 } => {
                    stage1.iter().map(Crossbar::in_flight).sum::<usize>() + stage2.in_flight()
                }
            }
        };
        writeln!(s, "noc2_req_inflight={} noc2_rep_inflight={}", n2(&self.noc2_req), n2(&self.noc2_rep)).ok();
        let l2acc: u64 = self.l2.iter().map(|x| x.stats().accesses.get()).sum();
        let l2miss: u64 = self.l2.iter().map(|x| x.stats().misses.get()).sum();
        writeln!(s, "l2_accesses={} l2_misses={} reply_stash={} dram_stash={}", l2acc, l2miss,
            self.l2_reply_stash.iter().filter(|o| o.is_some()).count(),
            self.dram_stash.iter().filter(|o| o.is_some()).count()).ok();
        let l2q: usize = self.l2.iter().map(|x| x.input_len()).sum();
        let l2m: usize = self.l2.iter().map(|x| x.mshr_len()).sum();
        let l2d: usize = self.l2.iter().map(|x| x.dram_out_len()).sum();
        let l2p: usize = self.l2.iter().map(|x| x.replies_pending()).sum();
        let dq: usize = self.mcs.iter().map(|m| m.queue_len()).sum();
        let dp: usize = self.mcs.iter().map(|m| m.replies_pending()).sum();
        writeln!(s, "l2_input={} l2_mshr={} l2_dram_out={} l2_replies={} dram_q={} dram_replies={}",
            l2q, l2m, l2d, l2p, dq, dp).ok();
        let nodeq: usize = 0;
        let _ = nodeq;
        let dr: u64 = self.mcs.iter().map(|m| m.stats().reads.get() + m.stats().writes.get()).sum();
        writeln!(
            s,
            "dram_reqs={} mean_load_rtt={:.1} hit_rtt={:.1}({}) miss_rtt={:.1}({})",
            dr,
            self.load_rtt.mean(),
            self.hit_rtt.mean(),
            self.hit_rtt.count(),
            self.miss_rtt.mean(),
            self.miss_rtt.count()
        )
        .ok();
        s
    }

    fn collect_stats(&self) -> RunStats {
        let cycles = self.now - self.stat_base_cycle;
        let instructions =
            self.cores.iter().map(|c| c.stats().instructions.get()).sum::<u64>();
        let l1_accesses = self.nodes.iter().map(|n| n.stats().accesses.get()).sum();
        let l1_hits = self.nodes.iter().map(|n| n.stats().hits.get()).sum();
        let l1_misses = self.nodes.iter().map(|n| n.stats().misses.get()).sum();
        let l1_replicated_misses =
            self.nodes.iter().map(|n| n.stats().replicated_misses.get()).sum();
        let per_node_accesses: Vec<u64> =
            self.nodes.iter().map(|n| n.stats().accesses.get()).collect();
        let utils: Vec<f64> = per_node_accesses
            .iter()
            .map(|&a| if cycles == 0 { 0.0 } else { a as f64 / cycles as f64 })
            .collect();
        let max_port_utilization = utils.iter().copied().fold(0.0, f64::max);
        let mean_port_utilization = dcl1_common::stats::mean(&utils);

        // Reply-link utilization toward the L1 level (Fig 2 / Fig 17).
        let max_reply_link_utilization = match &self.noc2_rep {
            Noc2Net::Single(x) => x.stats().max_link_utilization(),
            Noc2Net::Sliced(xs) => {
                xs.iter().map(|x| x.stats().max_link_utilization()).fold(0.0, f64::max)
            }
            Noc2Net::TwoStage { stage1, .. } => {
                stage1.iter().map(|x| x.stats().max_link_utilization()).fold(0.0, f64::max)
            }
        };

        let l2_accesses = self.l2.iter().map(|s| s.stats().accesses.get()).sum();
        let l2_misses = self.l2.iter().map(|s| s.stats().misses.get()).sum();
        let dram_requests = self
            .mcs
            .iter()
            .map(|m| m.stats().reads.get() + m.stats().writes.get())
            .sum();
        let dram_hits: u64 = self.mcs.iter().map(|m| m.stats().row_hits.get()).sum();
        let dram_row_hit_rate =
            if dram_requests == 0 { 0.0 } else { dram_hits as f64 / dram_requests as f64 };

        // Flit counts aligned with Topology::noc_spec entry order.
        let mut noc_flits = Vec::new();
        if !self.noc1_req.is_empty() {
            let f: u64 = self
                .noc1_req
                .iter()
                .chain(self.noc1_rep.iter())
                .map(|x| x.stats().total_flits())
                .sum();
            noc_flits.push(f);
        }
        match (&self.noc2_req, &self.noc2_rep) {
            (Noc2Net::Single(a), Noc2Net::Single(b)) => {
                noc_flits.push(a.stats().total_flits() + b.stats().total_flits());
            }
            (Noc2Net::Sliced(a), Noc2Net::Sliced(b)) => {
                noc_flits.push(
                    a.iter().chain(b.iter()).map(|x| x.stats().total_flits()).sum::<u64>(),
                );
            }
            (
                Noc2Net::TwoStage { stage1: s1a, stage2: s2a },
                Noc2Net::TwoStage { stage1: s1b, stage2: s2b },
            ) => {
                noc_flits.push(
                    s1a.iter().chain(s1b.iter()).map(|x| x.stats().total_flits()).sum::<u64>(),
                );
                noc_flits.push(s2a.stats().total_flits() + s2b.stats().total_flits());
            }
            _ => unreachable!("request and reply NoC#2 always share a shape"),
        }

        RunStats {
            design: self.topo.name.clone(),
            cycles,
            instructions,
            l1_accesses,
            l1_hits,
            l1_misses,
            l1_replicated_misses,
            mean_replicas: self.replica_samples.mean(),
            max_port_utilization,
            mean_port_utilization,
            max_reply_link_utilization,
            mean_load_rtt: self.load_rtt.mean(),
            p50_load_rtt: self.rtt_hist.percentile(0.5),
            p95_load_rtt: self.rtt_hist.percentile(0.95),
            p99_load_rtt: self.rtt_hist.percentile(0.99),
            l2_accesses,
            l2_misses,
            dram_requests,
            dram_row_hit_rate,
            noc_flits,
            per_node_accesses,
            stall_drained: self.cores.iter().map(|c| c.stats().stall.drained.get()).sum(),
            stall_alu_busy: self.cores.iter().map(|c| c.stats().stall.alu_busy.get()).sum(),
            stall_fill_wait: self.cores.iter().map(|c| c.stats().stall.fill_wait.get()).sum(),
            stall_mem_outbox: self.cores.iter().map(|c| c.stats().stall.mem_outbox.get()).sum(),
            stall_mem_l1_queue: self
                .cores
                .iter()
                .map(|c| c.stats().stall.mem_l1_queue.get())
                .sum(),
            stall_mem_noc: self.cores.iter().map(|c| c.stats().stall.mem_noc.get()).sum(),
            l1_mshr_stall_cycles: self
                .nodes
                .iter()
                .map(|n| n.stats().mshr_stall_cycles.get())
                .sum(),
            l1_queue_stall_cycles: self
                .nodes
                .iter()
                .map(|n| n.stats().q3_stall_cycles.get())
                .sum(),
        }
    }
}

/// Helper extension: pop a reply from slice `s` (kept out of the main impl
/// so the borrow in `inject_noc2_replies` stays local).
trait SlicePop {
    fn pop_reply_for(&mut self, s: usize) -> Option<L2Reply<Txn>>;
}

impl SlicePop for Vec<L2Slice<Txn>> {
    fn pop_reply_for(&mut self, s: usize) -> Option<L2Reply<Txn>> {
        self[s].pop_reply()
    }
}
