//! The full-system cycle-level simulator.
//!
//! [`GpuSystem::build`] instantiates a machine from a [`GpuConfig`], a
//! [`Design`] and a workload's [`TraceFactory`]; [`GpuSystem::run`]
//! executes the kernel to completion and returns [`RunStats`].
//!
//! ## Per-cycle pipeline
//!
//! Components communicate only through bounded queues and crossbar ports,
//! so the phase order below introduces at most single-cycle skews:
//!
//! 1. CTA dispatch to cores with free slots;
//! 2. **Issue region** (per shard domain): core issue (one instruction per
//!    core per cycle) into per-core transaction outboxes, then stage each
//!    outbox head for the epoch exchange;
//! 3. **outbox exchange** (coordinator): staged heads move into NoC#1 /
//!    node Q1 in global core order, with back-pressure memoized for stall
//!    attribution;
//! 4. NoC#1 ticks (1× or 2× per core cycle) with ejection into node Q1 /
//!    completion at cores — per domain when the partition is
//!    cluster-aligned, sequentially otherwise;
//! 5. node Q3 → NoC#2 injection; NoC#2 ticks in the 700 MHz domain with
//!    ejection into L2 input queues / node Q4 (coordinator — NoC#2 is the
//!    one all-to-all structure, so it is never sharded);
//! 6. **Mem region** (per shard domain): L2 slice ticks and DC-L1 node
//!    ticks (presence reads the cycle-start snapshot, writes a domain
//!    log), plus — when aligned — the node-reply drain;
//! 7. **memory exchange** (coordinator): presence-log replay in domain
//!    order, L2 ↔ DRAM moves, DRAM ticks in the 924 MHz domain.
//!
//! ## Sharded determinism
//!
//! The machine partitions its cores, DC-L1 nodes, NoC#1 clusters and L2
//! slices into [`ShardDomain`]s ([`GpuSystem::set_shards`]). Regions
//! touch one domain's state only; everything that crosses domains flows
//! through coordinator-run exchanges whose order is fixed by global
//! component order (epoch batches sorted by `(cycle, source, seq)`).
//! Statistics are therefore a pure function of the *partition*, and the
//! partition itself is chosen so results do not depend on the shard count:
//! transaction ids come from per-core sequence counters, RTT meters are
//! per core and merged in global core order, and presence updates are
//! logged and replayed in node order. Running regions inline or on a
//! worker pool is byte-identical by construction.
//!
//! [`ShardDomain`]: crate::shard::ShardDomain

use crate::check::{SimChecker, EPOCH_CYCLES};
use crate::config::GpuConfig;
use crate::design::{Attachment, Design, Noc2Kind, Topology};
use crate::metrics::MachineMetrics;
use crate::node::{Dcl1Node, NodeConfig};
use crate::presence::PresenceMap;
use crate::shard::{
    self, CoreMeter, MachineCtx, Region, ShardDomain, ShardPool, ShardReport,
};
use crate::stats::RunStats;
use crate::txn::Txn;
use dcl1_common::stats::RunningMean;
use dcl1_common::{ClockDomain, ConfigError, CoreId, Cycle, FlowMeter};
use dcl1_gpu::{
    Core, CoreConfig, CoreStats, CtaDispatcher, CtaPolicy, MemBlock, MemKind, TraceFactory,
};
use dcl1_mem::{DramAccess, L2Reply, L2Request, L2Slice, MemAccessKind, MemoryController};
use dcl1_noc::{Crossbar, CrossbarConfig, EpochBatch, Packet};
use dcl1_obs::metrics::MetricsSample;
use dcl1_obs::profiler::{Phase, PhaseProfiler};
use dcl1_obs::registry::Registry;
use dcl1_obs::Observer;
use dcl1_resilience::SimError;
use std::collections::VecDeque;
use std::sync::Arc;
// Wall time here is read only by the deadline watchdog and the per-shard
// busy/barrier diagnostics; it never feeds statistics.
// simcheck: allow(wall_clock): supervision and shard diagnostics only, never feeds stats
use std::time::Instant;

/// Default cycles between progress-watchdog checks once
/// [`GpuSystem::set_watchdog`] arms it: long enough that any real traffic
/// (load RTTs are hundreds of cycles) advances the progress signature many
/// times over, so a firing is a genuine hang, not a slow point.
pub const DEFAULT_WATCHDOG_EPOCH: u64 = 1 << 20;

/// Cycles between registry snapshots while a run is in flight (a
/// multiple of the checker's [`EPOCH_CYCLES`], so snapshots land on
/// invariant-epoch boundaries). Pull snapshots overwrite — the final
/// snapshot at drain is what reports read — so this cadence only bounds
/// how stale a mid-run [`GpuSystem::registry`] view can be.
pub const REGISTRY_RECORD_CYCLES: u64 = 1 << 16;

/// Cycles between progress-hook callbacks (idle fast-forward clamps to
/// this boundary so the cadence stays live through quiescent stretches).
pub const DEFAULT_PROGRESS_EVERY: u64 = 1 << 18;

/// A periodic liveness callback: invoked with `(cycle,
/// instructions_retired)` every [`DEFAULT_PROGRESS_EVERY`] cycles (see
/// [`GpuSystem::set_progress_hook`]). Diagnostic only — the machine never
/// reads anything back through it, so statistics are byte-identical with
/// or without a hook attached.
pub struct ProgressHook<'w>(Box<dyn FnMut(u64, u64) + 'w>);

impl<'w> ProgressHook<'w> {
    /// Wraps a callback.
    pub fn new(f: impl FnMut(u64, u64) + 'w) -> ProgressHook<'w> {
        ProgressHook(Box::new(f))
    }
}

impl std::fmt::Debug for ProgressHook<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressHook").finish_non_exhaustive()
    }
}

/// Run-level options orthogonal to the design (the paper's sensitivity
/// knobs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SimOptions {
    /// Perfect-(DC-)L1 mode: every lookup hits (Fig 4c).
    pub perfect_l1: bool,
    /// Overrides the L1/DC-L1 access latency (Fig 19b sweeps 0..64).
    pub l1_latency_override: Option<u32>,
    /// CTA scheduling policy (§VIII-A sensitivity).
    pub cta_policy: CtaPolicy,
    /// Hard cycle cap (defends against pathological configurations).
    pub max_cycles: u64,
    /// Cycles between replica-count samples.
    pub replica_sample_interval: u64,
    /// Instructions to retire before statistics start counting
    /// (cache-warmup fast-forward, as simulation methodology requires;
    /// 0 = measure from cold).
    pub warmup_instructions: u64,
    /// Idle fast-forward: when every component is quiescent except
    /// fixed-latency timers (ALU busy intervals, cache-hit pipes, L2 reply
    /// latencies, DRAM bursts), jump the clock to the next event instead of
    /// stepping cycle by cycle. Bit-identical to stepping — the golden
    /// tests compare both paths — so there is no reason to disable it
    /// outside of those tests.
    pub fast_forward: bool,
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions {
            perfect_l1: false,
            l1_latency_override: None,
            cta_policy: CtaPolicy::GreedyRoundRobin,
            max_cycles: 20_000_000,
            replica_sample_interval: 2048,
            warmup_instructions: 0,
            fast_forward: true,
        }
    }
}

/// NoC#2 instantiation (one direction).
#[derive(Debug)]
enum Noc2Net {
    /// One `sources×slices` crossbar.
    Single(Crossbar<Txn>),
    /// One crossbar per home slot (paper Fig 10).
    Sliced(Vec<Crossbar<Txn>>),
    /// The hierarchical CDXBar comparator.
    TwoStage {
        stage1: Vec<Crossbar<Txn>>,
        stage2: Crossbar<Txn>,
    },
}

impl Noc2Net {
    fn is_idle(&self) -> bool {
        match self {
            Noc2Net::Single(x) => x.is_idle(),
            Noc2Net::Sliced(v) => v.iter().all(Crossbar::is_idle),
            Noc2Net::TwoStage { stage1, stage2 } => {
                stage1.iter().all(Crossbar::is_idle) && stage2.is_idle()
            }
        }
    }

    fn check_conservation(&self, site: &str) -> dcl1_common::InvariantResult {
        match self {
            Noc2Net::Single(x) => x.check_conservation(site),
            Noc2Net::Sliced(v) => v
                .iter()
                .enumerate()
                .try_for_each(|(i, x)| x.check_conservation(&format!("{site}.slot{i}"))),
            Noc2Net::TwoStage { stage1, stage2 } => {
                stage1.iter().enumerate().try_for_each(|(i, x)| {
                    x.check_conservation(&format!("{site}.stage1_{i}"))
                })?;
                stage2.check_conservation(&format!("{site}.stage2"))
            }
        }
    }
}

/// Where each domain's component ranges start: cut `i`..cut `i+1` is
/// domain `i`'s slice of the global component vector.
struct PartitionCuts {
    core: Vec<usize>,
    node: Vec<usize>,
    cluster: Vec<usize>,
    slice: Vec<usize>,
    /// True when every NoC#1 cluster (and, for direct attachment, every
    /// node↔core pair) is wholly inside one domain, so the NoC#1 region
    /// and the fused reply drain can run per domain.
    aligned: bool,
}

/// The assembled machine.
#[derive(Debug)]
pub struct GpuSystem<'w> {
    cfg: GpuConfig,
    topo: Topology,
    opts: SimOptions,
    factory: &'w dyn TraceFactory,
    dispatcher: CtaDispatcher,

    /// Execution domains: every core, outbox, DC-L1 node, NoC#1 crossbar
    /// and L2 slice lives in exactly one (sequential = one domain).
    shards: Vec<ShardDomain>,
    /// Immutable facts shared with worker threads.
    rctx: Arc<MachineCtx>,
    /// Worker threads (one per non-coordinator shard); `None` runs every
    /// region inline on the coordinator — byte-identical either way.
    pool: Option<ShardPool>,
    /// See [`PartitionCuts::aligned`].
    aligned: bool,
    /// Shard count last requested via [`set_shards`](GpuSystem::set_shards)
    /// (before feasibility clamping).
    requested_shards: usize,
    /// Overrides the use-worker-threads heuristic (tests force both paths).
    thread_override: Option<bool>,
    /// Wall nanoseconds the coordinator spent waiting at epoch barriers.
    barrier_wait_nanos: u64,
    /// Per-cluster cross-domain flit batches for the outbox exchange.
    xchg: Vec<EpochBatch<Packet<Txn>>>,
    /// Reused (core, txn-id) scratch for exchange acceptance bookkeeping.
    inject_scratch: Vec<(u64, u64)>,

    /// Replica-presence map. Shared read-only with workers during regions
    /// (cycle-start snapshot); exclusively re-acquired at the barrier to
    /// replay the domain logs.
    presence: Arc<PresenceMap>,

    noc2_req: Noc2Net,
    noc2_rep: Noc2Net,
    noc2_clock: ClockDomain,
    /// Stage-1/stage-2 clocks for the CDXBar comparator.
    cdx_clocks: Option<(ClockDomain, ClockDomain)>,

    /// Reply popped from a slice but not yet injected into NoC#2.
    l2_reply_stash: Vec<Option<L2Reply<Txn>>>,
    /// DRAM access popped from a slice but not yet accepted by its MC.
    dram_stash: Vec<Option<DramAccess>>,
    mcs: Vec<MemoryController<usize>>,
    dram_clock: ClockDomain,

    /// Observability sinks (tracing + metrics); `Observer::disabled()` by
    /// default, in which case every hook below is an inlined early return.
    obs: Observer,

    /// Typed counter registry bundle; `None` (the default) skips every
    /// snapshot. Pull-only: components never see it, so enabling it
    /// cannot perturb simulation results.
    metrics: Option<Box<MachineMetrics>>,
    /// Phase profiler; `None` (the default) skips all lap timing.
    /// Wall-clock diagnostics only, never fed back into simulation.
    profiler: Option<Box<PhaseProfiler>>,
    /// Periodic liveness callback; `None` (the default) is a skipped
    /// branch per cycle.
    progress: Option<ProgressHook<'w>>,
    /// Cycles between progress-hook callbacks.
    progress_every: u64,

    /// Checked-sim harness (`--check`); `None` by default, in which case
    /// every invariant hook is a skipped branch and no epoch sweeps run.
    checker: Option<Box<SimChecker>>,

    /// Progress-watchdog epoch in cycles; `None` (the default) disables
    /// the watchdog, so [`run`](GpuSystem::run) keeps its historical
    /// never-fails behavior.
    watchdog_epoch: Option<u64>,
    /// Wall-clock budget for one run, in whole seconds (`None` = none).
    deadline_secs: Option<u64>,
    /// Chaos/testing hook: freeze every pipeline phase from this cycle on
    /// so the watchdog observes a genuine no-progress window.
    stall_from: Option<Cycle>,
    /// Cycle of the last watchdog probe.
    watch_cycle: Cycle,
    /// Progress signature at the last watchdog probe.
    watch_sig: u64,

    now: Cycle,
    /// Cycle at which statistics were last reset (end of warmup).
    stat_base_cycle: Cycle,
    warmup_done: bool,
    replica_samples: RunningMean,
}

impl<'w> GpuSystem<'w> {
    /// Builds a machine for `design` running `factory`'s kernel.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the design does not resolve against the
    /// configuration (divisibility constraints, cache geometry).
    pub fn build(
        cfg: &GpuConfig,
        design: &Design,
        factory: &'w dyn TraceFactory,
        opts: SimOptions,
    ) -> Result<Self, ConfigError> {
        let topo = design.topology(cfg)?;
        let node_cfg = NodeConfig {
            size_bytes: topo.node_bytes(cfg),
            assoc: cfg.l1_assoc,
            line_bytes: cfg.line_bytes,
            latency: opts.l1_latency_override.unwrap_or_else(|| topo.node_latency(cfg)),
            mshr_entries: (cfg.l1_mshr_entries * cfg.cores / topo.nodes).max(1),
            mshr_merges: cfg.l1_mshr_merges * (cfg.cores / topo.nodes).max(1),
            queue_entries: if topo.ideal_ports {
                cfg.node_queue_entries * cfg.cores
            } else {
                cfg.node_queue_entries
            },
            ports: if topo.ideal_ports { cfg.cores } else { 1 },
            perfect: opts.perfect_l1,
        };
        let nodes = (0..topo.nodes)
            .map(|_| Dcl1Node::new(node_cfg))
            .collect::<Result<Vec<_>, _>>()?;

        let cores: Vec<Core> = (0..cfg.cores)
            .map(|c| {
                Core::new(
                    CoreId::new(c),
                    CoreConfig {
                        max_wavefronts: cfg.max_wavefronts,
                        max_ctas: cfg.max_ctas_per_core,
                        issue_policy: cfg.issue_policy,
                    },
                )
            })
            .collect();

        // NoC#1.
        let xcfg = |i: usize, o: usize| -> CrossbarConfig {
            CrossbarConfig {
                vc_lookahead: cfg.noc_vcs.max(1),
                ..CrossbarConfig::new(i, o).expect("nonzero ports")
            }
        };
        let (noc1_req, noc1_rep) = match topo.attachment {
            Attachment::Direct => (Vec::new(), Vec::new()),
            Attachment::Noc1 { .. } => {
                let cpc = topo.cores_per_cluster();
                let m = topo.nodes_per_cluster();
                let req = (0..topo.clusters).map(|_| Crossbar::new(xcfg(cpc, m))).collect();
                let rep = (0..topo.clusters).map(|_| Crossbar::new(xcfg(m, cpc))).collect();
                (req, rep)
            }
        };

        // NoC#2.
        let l = cfg.l2_slices;
        let make = |i: usize, o: usize| -> Crossbar<Txn> { Crossbar::new(xcfg(i, o)) };
        let (noc2_req, noc2_rep, cdx_clocks) = match topo.noc2 {
            Noc2Kind::Single => {
                // The ideal single-L1 hypothetical keeps full memory-side
                // bandwidth (paper §II-A): one NoC#2 port per core.
                let sources = if topo.ideal_ports { topo.cores } else { topo.nodes };
                (
                    Noc2Net::Single(make(sources, l)),
                    Noc2Net::Single(make(l, sources)),
                    None,
                )
            }
            Noc2Kind::Sliced { groups } => {
                let o = l / groups;
                let req = (0..groups).map(|_| make(topo.clusters, o)).collect();
                let rep = (0..groups).map(|_| make(o, topo.clusters)).collect();
                (Noc2Net::Sliced(req), Noc2Net::Sliced(rep), None)
            }
            Noc2Kind::TwoStage { groups, uplinks, stage1_mult, stage2_mult } => {
                let cpg = topo.cores / groups;
                let req = Noc2Net::TwoStage {
                    stage1: (0..groups).map(|_| make(cpg, uplinks)).collect(),
                    stage2: make(groups * uplinks, l),
                };
                let rep = Noc2Net::TwoStage {
                    stage1: (0..groups).map(|_| make(uplinks, cpg)).collect(),
                    stage2: make(l, groups * uplinks),
                };
                let clocks = (
                    ClockDomain::new(cfg.noc_mhz * stage1_mult, cfg.core_mhz),
                    ClockDomain::new(cfg.noc_mhz * stage2_mult, cfg.core_mhz),
                );
                (req, rep, Some(clocks))
            }
        };

        let l2 = (0..l)
            .map(|_| L2Slice::new(cfg.l2))
            .collect::<Result<Vec<_>, _>>()?;
        let mcs = (0..cfg.mcs).map(|_| MemoryController::new(cfg.dram)).collect();

        let cuts = Self::partition_plan(&topo, l, 1);
        let domain = ShardDomain {
            id: 0,
            core0: 0,
            node0: 0,
            cluster0: 0,
            slice0: 0,
            cores,
            outbox: (0..cfg.cores).map(|_| VecDeque::new()).collect(),
            outbox_cause: vec![MemBlock::OutboxDrain; cfg.cores],
            txn_seq: vec![0; cfg.cores],
            meters: vec![CoreMeter::default(); cfg.cores],
            nodes,
            noc1_req,
            noc1_rep,
            l2,
            mailbox: EpochBatch::with_capacity(cfg.cores),
            plog: crate::presence::PresenceLog::new(),
            flow: FlowMeter::new("txns"),
            busy_nanos: 0,
        };
        let (xchg_clusters, cpc) = match topo.attachment {
            Attachment::Noc1 { .. } => (topo.clusters, topo.cores_per_cluster()),
            Attachment::Direct => (0, 0),
        };

        Ok(GpuSystem {
            dispatcher: CtaDispatcher::new(opts.cta_policy, factory.total_ctas(), cfg.cores),
            rctx: Arc::new(MachineCtx {
                topo: topo.clone(),
                cores_total: cfg.cores as u64,
                flit_bytes: cfg.flit_bytes * topo.flit_mult,
            }),
            shards: vec![domain],
            pool: None,
            aligned: cuts.aligned,
            requested_shards: 1,
            thread_override: None,
            barrier_wait_nanos: 0,
            xchg: (0..xchg_clusters).map(|_| EpochBatch::with_capacity(cpc)).collect(),
            inject_scratch: Vec::with_capacity(cfg.cores),
            // Distinct presence-tracked lines are bounded by the level's
            // aggregate capacity; pre-sizing means the map never re-hashes.
            presence: Arc::new(PresenceMap::with_capacity(
                node_cfg.size_bytes / cfg.line_bytes.max(1) * topo.nodes,
            )),
            l2_reply_stash: (0..l).map(|_| None).collect(),
            dram_stash: (0..l).map(|_| None).collect(),
            noc2_clock: ClockDomain::new(cfg.noc_mhz * topo.noc2_freq_mult, cfg.core_mhz),
            dram_clock: ClockDomain::new(cfg.mem_mhz, cfg.core_mhz),
            cfg: cfg.clone(),
            topo,
            opts,
            factory,
            noc2_req,
            noc2_rep,
            cdx_clocks,
            mcs,
            obs: Observer::disabled(),
            metrics: None,
            profiler: None,
            progress: None,
            progress_every: DEFAULT_PROGRESS_EVERY,
            checker: None,
            watchdog_epoch: None,
            deadline_secs: None,
            stall_from: None,
            watch_cycle: 0,
            watch_sig: 0,
            now: 0,
            stat_base_cycle: 0,
            warmup_done: false,
            replica_samples: RunningMean::default(),
        })
    }

    // ---------------------------------------------------------------
    // Partitioning
    // ---------------------------------------------------------------

    /// Component cut points for an `n`-way partition. A pure function of
    /// `(topology, n)`, so a given shard count always yields the same
    /// partition — and the partition is chosen so the *simulated* behavior
    /// is the same for every `n` (see the module docs).
    fn partition_plan(topo: &Topology, l2_slices: usize, n: usize) -> PartitionCuts {
        let even = |total: usize| -> Vec<usize> { (0..=n).map(|i| i * total / n).collect() };
        let slice = even(l2_slices);
        match topo.attachment {
            Attachment::Direct => PartitionCuts {
                core: even(topo.cores),
                node: even(topo.nodes),
                cluster: vec![0; n + 1],
                slice,
                // node index == core index makes every request/reply pair
                // domain-local under identical cuts; the ideal-ports
                // machine (1 node, many ports) is the exception.
                aligned: !topo.ideal_ports && topo.nodes == topo.cores,
            },
            Attachment::Noc1 { .. } => {
                if topo.clusters >= n {
                    // Cut on cluster boundaries: both sides of every NoC#1
                    // crossbar stay inside one domain.
                    let cluster = even(topo.clusters);
                    let cpc = topo.cores_per_cluster();
                    let m = topo.nodes_per_cluster();
                    PartitionCuts {
                        core: cluster.iter().map(|k| k * cpc).collect(),
                        node: cluster.iter().map(|k| k * m).collect(),
                        cluster,
                        slice,
                        aligned: true,
                    }
                } else {
                    // Fewer clusters than shards (e.g. Sh16's single 40×16
                    // crossbar): cores/nodes/slices still partition, the
                    // crossbars stay with domain 0, and the NoC#1 phase
                    // runs sequentially on the coordinator.
                    let mut cluster = vec![topo.clusters; n + 1];
                    cluster[0] = 0;
                    PartitionCuts {
                        core: even(topo.cores),
                        node: even(topo.nodes),
                        cluster,
                        slice,
                        aligned: false,
                    }
                }
            }
        }
    }

    /// Repartitions the machine into `n` domains, merging and re-cutting
    /// every per-domain vector in global component order. Only legal at a
    /// quiescent point (no transaction in flight — asserted in debug
    /// builds), which is where callers invoke it: before a run, or at the
    /// start of a traced run.
    fn repartition(&mut self, n: usize) {
        let n = n.clamp(1, self.topo.cores.max(1));
        if self.shards.len() == n {
            return;
        }
        self.pool = None;
        let cuts = Self::partition_plan(&self.topo, self.cfg.l2_slices, n);

        let total_cores = self.topo.cores;
        let mut produced = 0u64;
        let mut consumed = 0u64;
        let mut cores = Vec::with_capacity(total_cores);
        let mut outbox = Vec::with_capacity(total_cores);
        let mut outbox_cause = Vec::with_capacity(total_cores);
        let mut txn_seq = Vec::with_capacity(total_cores);
        let mut meters = Vec::with_capacity(total_cores);
        let mut nodes = Vec::with_capacity(self.topo.nodes);
        let mut noc1_req = Vec::new();
        let mut noc1_rep = Vec::new();
        let mut l2 = Vec::with_capacity(self.cfg.l2_slices);
        for d in self.shards.drain(..) {
            debug_assert!(d.plog.is_empty(), "repartition with unapplied presence deltas");
            produced += d.flow.produced();
            consumed += d.flow.consumed();
            cores.extend(d.cores);
            outbox.extend(d.outbox);
            outbox_cause.extend(d.outbox_cause);
            txn_seq.extend(d.txn_seq);
            meters.extend(d.meters);
            nodes.extend(d.nodes);
            noc1_req.extend(d.noc1_req);
            noc1_rep.extend(d.noc1_rep);
            l2.extend(d.l2);
        }
        // Per-core in-flight counts cannot be reconstructed from domain
        // aggregates, so the ledgers only merge when nothing is in flight;
        // the merged history lands on domain 0.
        debug_assert_eq!(produced, consumed, "repartition with transactions in flight");

        let mut cores = cores.into_iter();
        let mut outbox = outbox.into_iter();
        let mut outbox_cause = outbox_cause.into_iter();
        let mut txn_seq = txn_seq.into_iter();
        let mut meters = meters.into_iter();
        let mut nodes = nodes.into_iter();
        let mut noc1_req = noc1_req.into_iter();
        let mut noc1_rep = noc1_rep.into_iter();
        let mut l2 = l2.into_iter();
        let mut shards = Vec::with_capacity(n);
        for i in 0..n {
            let nc = cuts.core[i + 1] - cuts.core[i];
            let mut flow = FlowMeter::new("txns");
            if i == 0 {
                flow.produce(produced);
                flow.consume(consumed);
            }
            shards.push(ShardDomain {
                id: i,
                core0: cuts.core[i],
                node0: cuts.node[i],
                cluster0: cuts.cluster[i],
                slice0: cuts.slice[i],
                cores: cores.by_ref().take(nc).collect(),
                outbox: outbox.by_ref().take(nc).collect(),
                outbox_cause: outbox_cause.by_ref().take(nc).collect(),
                txn_seq: txn_seq.by_ref().take(nc).collect(),
                meters: meters.by_ref().take(nc).collect(),
                nodes: nodes.by_ref().take(cuts.node[i + 1] - cuts.node[i]).collect(),
                noc1_req: noc1_req
                    .by_ref()
                    .take(cuts.cluster[i + 1] - cuts.cluster[i])
                    .collect(),
                noc1_rep: noc1_rep
                    .by_ref()
                    .take(cuts.cluster[i + 1] - cuts.cluster[i])
                    .collect(),
                l2: l2.by_ref().take(cuts.slice[i + 1] - cuts.slice[i]).collect(),
                mailbox: EpochBatch::with_capacity(nc),
                plog: crate::presence::PresenceLog::new(),
                flow,
                busy_nanos: 0,
            });
        }
        self.shards = shards;
        self.aligned = cuts.aligned;
    }

    /// Partitions the machine into (up to) `n` execution domains.
    ///
    /// Statistics are independent of the shard count by construction: the
    /// partition follows component boundaries (cluster-aligned where the
    /// topology allows), all cross-domain traffic moves at deterministic
    /// coordinator-run exchanges ordered by global component index, and
    /// per-core counters (transaction sequencing, RTT meters) merge in
    /// global core order. Infeasible topologies clamp: the ideal-ports
    /// single-L1 machine and direct designs whose node count differs from
    /// the core count stay at one domain; otherwise `n` is capped at the
    /// core count.
    pub fn set_shards(&mut self, n: usize) {
        self.requested_shards = n.max(1);
        let infeasible = self.topo.ideal_ports
            || (matches!(self.topo.attachment, Attachment::Direct)
                && self.topo.nodes != self.topo.cores);
        let eff = if infeasible { 1 } else { self.requested_shards.min(self.topo.cores.max(1)) };
        self.repartition(eff);
    }

    /// Number of execution domains the machine is currently partitioned
    /// into (1 = sequential).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Forces worker threads on or off for sharded regions (the default
    /// follows host parallelism). Purely an execution-strategy knob:
    /// results are byte-identical either way.
    pub fn set_shard_threads(&mut self, on: bool) {
        self.thread_override = Some(on);
    }

    /// Per-shard execution diagnostics for the last run (wall-clock
    /// derived; never part of simulation results).
    pub fn shard_report(&self) -> ShardReport {
        ShardReport {
            shards: self.shards.len(),
            barrier_wait_nanos: self.barrier_wait_nanos,
            busy_nanos: self.shards.iter().map(|d| d.busy_nanos).collect(),
        }
    }

    // ---------------------------------------------------------------
    // Accessors and small helpers
    // ---------------------------------------------------------------

    /// The resolved topology this machine implements.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Attaches observability sinks (transaction tracing and/or periodic
    /// metrics). The machine drives them from its pipeline phases and
    /// finalizes them at the end of [`run`](GpuSystem::run).
    pub fn attach_observer(&mut self, obs: Observer) {
        self.obs = obs;
    }

    /// Turns on checked-sim mode: conservation invariants are verified
    /// every [`EPOCH_CYCLES`] cycles and at drain, panicking on the first
    /// violation. Checking reads gauges only — statistics stay
    /// byte-identical to an unchecked run.
    pub fn enable_check(&mut self) {
        self.checker = Some(Box::new(SimChecker::new()));
    }

    /// The checked-sim harness, when enabled (epoch counts).
    pub fn checker(&self) -> Option<&SimChecker> {
        self.checker.as_deref()
    }

    /// Turns on the typed counter registry: every subsystem namespace
    /// (`gpu.*`, `noc.*`, `mem.*`, `cache.*`, `dcl1.*`, `shard.*`) is
    /// registered once, then snapshotted pull-style every
    /// [`REGISTRY_RECORD_CYCLES`] and at drain. Snapshots walk components
    /// in global order, so they are byte-identical across shard counts,
    /// and never feed back into the simulation.
    pub fn enable_registry(&mut self) {
        if self.metrics.is_none() {
            self.metrics = Some(Box::new(MachineMetrics::new()));
        }
    }

    /// The counter registry, when enabled (values are as of the most
    /// recent snapshot; call [`record_registry`](GpuSystem::record_registry)
    /// first for a live view).
    pub fn registry(&self) -> Option<&Registry> {
        self.metrics.as_ref().map(|m| m.registry())
    }

    /// Takes a fresh registry snapshot now. No-op when the registry is
    /// disabled.
    pub fn record_registry(&mut self) {
        // Take/put-back so `record_into` can borrow `self` shared while
        // the bundle is borrowed mutably.
        let Some(mut mm) = self.metrics.take() else { return };
        self.record_into(&mut mm);
        self.metrics = Some(mm);
    }

    /// Detaches the registry bundle after a final snapshot, leaving the
    /// machine with registry recording disabled. `None` if it was never
    /// enabled.
    pub fn take_metrics(&mut self) -> Option<Box<MachineMetrics>> {
        self.record_registry();
        self.metrics.take()
    }

    /// One registry snapshot: sums component statistics in global
    /// instance order (the same order `collect_stats` uses) and
    /// overwrites the registry's values.
    fn record_into(&self, mm: &mut MachineMetrics) {
        let MachineMetrics { reg, gpu, noc, mem, cache, dcl1, shard } = mm;
        gpu.record(reg, self.iter_cores().map(|c| *c.stats()));
        let noc1 = dcl1_noc::metrics::totals(self.iter_noc1().map(Crossbar::stats));
        let nq2 = |net: &Noc2Net| -> dcl1_noc::metrics::FlitTotals {
            match net {
                Noc2Net::Single(x) => dcl1_noc::metrics::totals(std::iter::once(x.stats())),
                Noc2Net::Sliced(v) => dcl1_noc::metrics::totals(v.iter().map(Crossbar::stats)),
                Noc2Net::TwoStage { stage1, stage2 } => dcl1_noc::metrics::totals(
                    stage1.iter().map(Crossbar::stats).chain(std::iter::once(stage2.stats())),
                ),
            }
        };
        let mut noc2 = nq2(&self.noc2_req);
        let rep = nq2(&self.noc2_rep);
        noc2.flits += rep.flits;
        noc2.packets += rep.packets;
        noc.record(reg, noc1, noc2);
        mem.record(
            reg,
            self.iter_l2().map(|s| *s.stats()),
            self.mcs.iter().map(|m| *m.stats()),
        );
        cache.record(
            reg,
            self.iter_nodes().map(|n| *n.cache().stats()),
            self.iter_nodes().map(Dcl1Node::mshr_allocs).sum(),
            self.iter_nodes().map(Dcl1Node::mshr_frees).sum(),
        );
        dcl1.record(
            reg,
            self.measured_cycles(),
            self.iter_nodes().map(|n| *n.stats()),
            self.presence.mean_replicas(),
        );
        shard.record(
            reg,
            self.shards.iter().map(|d| d.flow.produced()).sum(),
            self.shards.iter().map(|d| d.flow.consumed()).sum(),
            self.presence.distinct_lines() as u64,
        );
    }

    /// Turns on the hierarchical phase profiler: per-cycle pipeline
    /// regions (issue, NoC#1, memory, exchange) are lap-timed with the
    /// wall clock. Diagnostic only — results never reach simulation
    /// state, so statistics stay byte-identical.
    pub fn enable_profiler(&mut self) {
        if self.profiler.is_none() {
            self.profiler = Some(Box::<PhaseProfiler>::default());
        }
    }

    /// Detaches the accumulated phase profile (with the epoch-barrier
    /// wait folded in as one `barrier_wait` lap), disabling further
    /// profiling. `None` if the profiler was never enabled.
    pub fn take_profiler(&mut self) -> Option<PhaseProfiler> {
        let mut p = *(self.profiler.take()?);
        if self.barrier_wait_nanos > 0 {
            p.add(Phase::BarrierWait, self.barrier_wait_nanos);
        }
        Some(p)
    }

    /// Attaches a liveness callback invoked with `(cycle,
    /// instructions_retired)` every [`DEFAULT_PROGRESS_EVERY`] cycles.
    /// Idle fast-forward clamps to the callback boundary, so the cadence
    /// holds even through fully quiescent stretches.
    pub fn set_progress_hook(&mut self, hook: ProgressHook<'w>) {
        self.progress = Some(hook);
    }

    /// Times one pipeline lap when the profiler is enabled, re-basing the
    /// lap origin so consecutive calls partition the cycle.
    // simcheck: allow(wall_clock): phase profiler diagnostics only, never feeds stats
    fn lap(&mut self, phase: Phase, t: &mut Option<Instant>) {
        if let (Some(p), Some(t0)) = (self.profiler.as_deref_mut(), t.as_mut()) {
            // simcheck: allow(wall_clock): phase profiler diagnostics only, never feeds stats
            let now = Instant::now();
            p.add(phase, u64::try_from(now.duration_since(*t0).as_nanos()).unwrap_or(u64::MAX));
            *t0 = now;
        }
    }

    /// Arms the cycle-level progress watchdog: every `epoch_cycles`, the
    /// machine compares a signature of its forward-progress counters
    /// (transactions issued, instructions retired, CTAs dispatched, L2 and
    /// DRAM traffic, flits moved) against the previous probe. No change
    /// while the machine is not idle means a livelock, and
    /// [`run_result`](GpuSystem::run_result) returns
    /// [`SimError::Livelock`] with a state dump instead of spinning to the
    /// cycle cap. The probe reads gauges only — statistics of a
    /// non-livelocked run are byte-identical with the watchdog on or off.
    pub fn set_watchdog(&mut self, epoch_cycles: u64) {
        self.watchdog_epoch = Some(epoch_cycles.max(1));
    }

    /// Sets a wall-clock budget for one [`run_result`](GpuSystem::run_result)
    /// call; checked at watchdog-epoch granularity, so arming the watchdog
    /// is what makes the deadline live. Exceeding it returns
    /// [`SimError::Deadline`].
    pub fn set_deadline_secs(&mut self, secs: u64) {
        self.deadline_secs = Some(secs);
    }

    /// Chaos/testing hook: from `cycle` on, every step advances the clock
    /// without doing any pipeline work, freezing all forward progress so
    /// the watchdog provably fires. Never enabled outside fault injection.
    pub fn inject_stall_from(&mut self, cycle: Cycle) {
        self.stall_from = Some(cycle);
    }

    /// True when the chaos stall is active at the current cycle.
    fn stalled(&self) -> bool {
        self.stall_from.is_some_and(|c| self.now >= c)
    }

    fn iter_cores(&self) -> impl Iterator<Item = &Core> {
        self.shards.iter().flat_map(|d| d.cores.iter())
    }

    fn iter_nodes(&self) -> impl Iterator<Item = &Dcl1Node> {
        self.shards.iter().flat_map(|d| d.nodes.iter())
    }

    fn iter_l2(&self) -> impl Iterator<Item = &L2Slice<Txn>> {
        self.shards.iter().flat_map(|d| d.l2.iter())
    }

    fn iter_noc1(&self) -> impl Iterator<Item = &Crossbar<Txn>> {
        self.shards.iter().flat_map(|d| d.noc1_req.iter().chain(d.noc1_rep.iter()))
    }

    fn iter_outbox(&self) -> impl Iterator<Item = &VecDeque<Txn>> {
        self.shards.iter().flat_map(|d| d.outbox.iter())
    }

    /// All per-core RTT meters folded in global core order (so the merge
    /// order — and therefore every floating-point mean — is independent of
    /// the partition).
    fn merged_meters(&self) -> CoreMeter {
        let mut m = CoreMeter::default();
        for d in &self.shards {
            for cm in &d.meters {
                m.load_rtt.merge(&cm.load_rtt);
                m.hit_rtt.merge(&cm.hit_rtt);
                m.miss_rtt.merge(&cm.miss_rtt);
                m.rtt_hist.merge(&cm.rtt_hist);
            }
        }
        m
    }

    /// Per-core statistics (stall breakdowns alongside issue counts).
    pub fn core_stats(&self) -> Vec<CoreStats> {
        self.iter_cores().map(|c| *c.stats()).collect()
    }

    /// Cycles elapsed since statistics last reset (the measured window).
    pub fn measured_cycles(&self) -> u64 {
        self.now - self.stat_base_cycle
    }

    fn slice_of(&self, line: dcl1_common::LineAddr) -> usize {
        line.interleave(self.cfg.l2_slices)
    }

    fn mc_of_slice(&self, slice: usize) -> usize {
        slice / self.cfg.slices_per_mc()
    }

    /// A stable digest of every counter that advances when the machine
    /// makes forward progress. Cheap (one pass over component stats) and
    /// only computed once per watchdog epoch.
    fn progress_signature(&self) -> u64 {
        let mut sig: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            sig ^= v;
            sig = sig.wrapping_mul(0x0000_0100_0000_01b3);
        };
        mix(self.shards.iter().flat_map(|d| d.txn_seq.iter()).sum());
        mix(u64::from(self.dispatcher.remaining()));
        mix(self.iter_cores().map(|c| c.stats().instructions.get()).sum());
        mix(self.iter_nodes().map(|n| n.stats().accesses.get()).sum());
        mix(self.iter_l2().map(|s| s.stats().accesses.get()).sum());
        mix(self.mcs.iter().map(|m| m.stats().reads.get() + m.stats().writes.get()).sum());
        mix(self.iter_noc1().map(|x| x.stats().total_flits()).sum());
        let nq2 = |net: &Noc2Net| -> u64 {
            match net {
                Noc2Net::Single(x) => x.stats().total_flits(),
                Noc2Net::Sliced(v) => v.iter().map(|x| x.stats().total_flits()).sum(),
                Noc2Net::TwoStage { stage1, stage2 } => {
                    stage1.iter().map(|x| x.stats().total_flits()).sum::<u64>()
                        + stage2.stats().total_flits()
                }
            }
        };
        mix(nq2(&self.noc2_req));
        mix(nq2(&self.noc2_rep));
        mix(u64::from(self.warmup_done));
        sig
    }

    /// One watchdog probe: deadline first (cheap), then the no-progress
    /// check. On success, re-bases the probe window.
    // simcheck: allow(wall_clock): supervision-only deadline check, never feeds stats
    fn watchdog_probe(&mut self, started: Option<Instant>) -> Result<(), SimError> {
        if let (Some(limit), Some(t0)) = (self.deadline_secs, started) {
            let elapsed = t0.elapsed();
            if elapsed > std::time::Duration::from_secs(limit) {
                return Err(SimError::Deadline {
                    elapsed_secs: elapsed.as_secs(),
                    limit_secs: limit,
                });
            }
        }
        let sig = self.progress_signature();
        if sig == self.watch_sig && !self.all_idle() {
            return Err(SimError::Livelock { cycle: self.now, dump: self.watchdog_dump() });
        }
        self.watch_cycle = self.now;
        self.watch_sig = sig;
        Ok(())
    }

    /// The diagnostic state dump attached to a livelock report: the
    /// pressure-point snapshot (queue depths, in-flight flits, stall
    /// counters) plus MSHR occupancy and the per-domain transaction
    /// flow-meter balance.
    fn watchdog_dump(&self) -> String {
        use std::fmt::Write;
        let mut s = self.debug_snapshot();
        let waiters: usize = self.iter_nodes().map(Dcl1Node::mshr_waiters).sum();
        writeln!(s, "node_mshr_waiters={waiters}").ok();
        let produced: u64 = self.shards.iter().map(|d| d.flow.produced()).sum();
        let consumed: u64 = self.shards.iter().map(|d| d.flow.consumed()).sum();
        writeln!(
            s,
            "txn_flow produced={produced} consumed={consumed} in_flight={} shards={}",
            produced - consumed,
            self.shards.len()
        )
        .ok();
        s
    }

    // ---------------------------------------------------------------
    // Per-cycle phases
    // ---------------------------------------------------------------

    fn dispatch_ctas(&mut self) {
        if self.dispatcher.remaining() == 0 {
            return;
        }
        // Deal CTAs one per core per round (GPGPU-Sim's round-robin issue
        // order), so small grids spread across all cores instead of
        // saturating the first few.
        let wpc = self.factory.wavefronts_per_cta();
        loop {
            let mut progress = false;
            for c in 0..self.cfg.cores {
                let d = shard::domain_of_core(&mut self.shards, c);
                let i = c - d.core0;
                if d.cores[i].can_host_cta(wpc as usize) {
                    let Some(cta) = self.dispatcher.fetch(CoreId::new(c)) else { continue };
                    let traces =
                        (0..wpc).map(|w| self.factory.wavefront_trace(cta, w)).collect();
                    d.cores[i].add_cta(cta, traces);
                    progress = true;
                }
            }
            if !progress || self.dispatcher.remaining() == 0 {
                break;
            }
        }
    }

    /// Runs one region over every domain: inline in domain order when the
    /// pool is off, or shard 0 on the coordinator with the rest fanned out
    /// and an epoch barrier at the end. Identical results either way.
    fn run_region_all(&mut self, region: Region) -> Result<(), SimError> {
        let now = self.now;
        if self.pool.is_none() || self.shards.len() == 1 {
            let GpuSystem { shards, rctx, presence, obs, .. } = self;
            for d in shards.iter_mut() {
                d.run_region(region, now, rctx, presence, obs);
            }
            return Ok(());
        }
        for i in 1..self.shards.len() {
            let domain = std::mem::replace(&mut self.shards[i], ShardDomain::placeholder());
            let pool = self.pool.as_ref().unwrap_or_else(|| unreachable!("checked Some"));
            pool.submit(i - 1, domain, region, now, &self.rctx, &self.presence);
        }
        {
            let GpuSystem { shards, rctx, presence, obs, .. } = self;
            // simcheck: allow(wall_clock): coordinator-shard busy diagnostics, never feeds stats
            let t0 = Instant::now();
            shards[0].run_region(region, now, rctx, presence, obs);
            shards[0].busy_nanos += u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        }
        for i in 1..self.shards.len() {
            let pool = self.pool.as_ref().unwrap_or_else(|| unreachable!("checked Some"));
            let (domain, waited) = pool.wait(i - 1, now)?;
            self.barrier_wait_nanos += waited;
            self.shards[i] = domain;
        }
        Ok(())
    }

    /// Replays every domain's presence log into the shared map, in domain
    /// (= global node) order. Workers have dropped their snapshot refs by
    /// the time the barrier releases, so exclusive access is guaranteed.
    fn apply_presence(&mut self) {
        let map = Arc::get_mut(&mut self.presence).unwrap_or_else(|| {
            unreachable!("presence snapshot refs are dropped before the barrier releases")
        });
        for d in &mut self.shards {
            d.plog.apply_to(map);
        }
    }

    /// Moves staged outbox heads (one per core per cycle) into NoC#1 or
    /// directly into node Q1, in global core order, memoizing why each
    /// head could not (or could only just) move so issue can attribute the
    /// next port stall without re-probing the network.
    fn exchange_outboxes(&mut self) {
        let now = self.now;
        match self.topo.attachment {
            Attachment::Direct => {
                for di in 0..self.shards.len() {
                    let mut mb =
                        std::mem::replace(&mut self.shards[di].mailbox, EpochBatch::new());
                    for &(_, f) in mb.entries() {
                        if shard::node_in(&mut self.shards, f.node).can_accept_request() {
                            let d = shard::domain_of_core(&mut self.shards, f.core);
                            let i = f.core - d.core0;
                            let txn = d.outbox[i]
                                .pop_front()
                                .unwrap_or_else(|| unreachable!("staged head exists"));
                            debug_assert_eq!(txn.id, f.txn.id);
                            d.outbox_cause[i] = MemBlock::OutboxDrain;
                            self.obs.trace_hop(txn.id, "l1_queue", now);
                            shard::node_in(&mut self.shards, f.node)
                                .try_push_request(txn)
                                .unwrap_or_else(|_| unreachable!("checked room"));
                        } else {
                            let d = shard::domain_of_core(&mut self.shards, f.core);
                            d.outbox_cause[f.core - d.core0] = MemBlock::L1Queue;
                        }
                    }
                    mb.clear();
                    self.shards[di].mailbox = mb;
                }
            }
            Attachment::Noc1 { .. } => {
                // Regroup staged flits per cluster. Domain order is
                // ascending core order, and clusters are contiguous core
                // ranges, so each per-cluster batch stages in key order
                // and the global acceptance order below matches the
                // sequential machine's ascending-core walk.
                for di in 0..self.shards.len() {
                    let mut mb =
                        std::mem::replace(&mut self.shards[di].mailbox, EpochBatch::new());
                    for &(key, f) in mb.entries() {
                        let pkt = self.rctx.packet(f.src, f.dst, f.data_bytes, f.txn);
                        self.xchg[f.cluster].stage(key, pkt);
                    }
                    mb.clear();
                    self.shards[di].mailbox = mb;
                }
                let GpuSystem { shards, xchg, inject_scratch, obs, .. } = self;
                for (k, batch) in xchg.iter_mut().enumerate() {
                    if batch.is_empty() {
                        continue;
                    }
                    batch.seal();
                    inject_scratch.clear();
                    let x = shard::noc1_req_in(shards, k);
                    x.inject_batch(batch, |key, pkt| {
                        inject_scratch.push((key.source, pkt.payload.id));
                    });
                    for &(core_u, txn_id) in inject_scratch.iter() {
                        let core = usize::try_from(core_u)
                            .unwrap_or_else(|_| unreachable!("core id fits usize"));
                        let d = shard::domain_of_core(shards, core);
                        let i = core - d.core0;
                        let txn = d.outbox[i]
                            .pop_front()
                            .unwrap_or_else(|| unreachable!("staged head exists"));
                        debug_assert_eq!(txn.id, txn_id);
                        d.outbox_cause[i] = MemBlock::OutboxDrain;
                        obs.trace_hop(txn_id, "noc1_req", now);
                    }
                    // Rejected heads stay in their outboxes (re-staged
                    // next cycle); only the stall cause is recorded.
                    for &(key, _) in batch.entries() {
                        let core = usize::try_from(key.source)
                            .unwrap_or_else(|_| unreachable!("core id fits usize"));
                        let d = shard::domain_of_core(shards, core);
                        d.outbox_cause[core - d.core0] = MemBlock::Noc;
                    }
                    batch.clear();
                }
            }
        }
    }

    /// Sequential NoC#1 ticks (unaligned partitions: a crossbar's ports
    /// span domains, so the coordinator walks all clusters in global
    /// order — the exact walk the one-domain machine performs).
    fn tick_noc1_seq(&mut self) {
        let ticks = self.topo.noc1_ticks_per_cycle();
        let m = self.topo.nodes_per_cluster();
        let cpc = self.topo.cores_per_cluster();
        let clusters = match self.topo.attachment {
            Attachment::Noc1 { .. } => self.topo.clusters,
            Attachment::Direct => 0,
        };
        let now = self.now;
        for _ in 0..ticks {
            for k in 0..clusters {
                shard::noc1_req_in(&mut self.shards, k).tick();
                if shard::noc1_req_in(&mut self.shards, k).has_output() {
                    for slot in 0..m {
                        let n = k * m + slot;
                        while shard::node_in(&mut self.shards, n).can_accept_request() {
                            match shard::noc1_req_in(&mut self.shards, k).pop_output(slot) {
                                Some(pkt) => {
                                    self.obs.trace_hop(pkt.payload.id, "l1_queue", now);
                                    shard::node_in(&mut self.shards, n)
                                        .try_push_request(pkt.payload)
                                        .unwrap_or_else(|_| unreachable!("checked room"));
                                }
                                None => break,
                            }
                        }
                    }
                }
                shard::noc1_rep_in(&mut self.shards, k).tick();
                if shard::noc1_rep_in(&mut self.shards, k).has_output() {
                    for port in 0..cpc {
                        while let Some(pkt) =
                            shard::noc1_rep_in(&mut self.shards, k).pop_output(port)
                        {
                            self.complete_at_core_seq(pkt.payload);
                        }
                    }
                }
            }
        }
    }

    fn complete_at_core_seq(&mut self, txn: Txn) {
        let now = self.now;
        let d = shard::domain_of_core(&mut self.shards, txn.core.index());
        d.complete_at_core(txn, now, &mut self.obs);
    }

    /// Node Q2 → core (direct) or NoC#1 reply injection, walked in global
    /// node order by the coordinator (unaligned partitions; the aligned
    /// case fuses this into the Mem region).
    fn drain_node_replies_seq(&mut self) {
        match self.topo.attachment {
            Attachment::Direct => {
                // A direct-attached L1 returns one reply per cycle at full
                // width; the ideal single L1 has one reply port per core.
                let pops = if self.topo.ideal_ports { self.cfg.cores } else { 1 };
                for n in 0..self.topo.nodes {
                    for _ in 0..pops {
                        match shard::node_in(&mut self.shards, n).pop_reply() {
                            Some(txn) => self.complete_at_core_seq(txn),
                            None => break,
                        }
                    }
                }
            }
            Attachment::Noc1 { .. } => {
                let m = self.topo.nodes_per_cluster();
                let cpc = self.topo.cores_per_cluster();
                let now = self.now;
                for n in 0..self.topo.nodes {
                    let cluster = n / m;
                    let Some(txn) =
                        shard::node_in(&mut self.shards, n).peek_reply().copied()
                    else {
                        continue;
                    };
                    let src = n % m;
                    let dst = txn.core.index() % cpc;
                    if shard::noc1_rep_in(&mut self.shards, cluster).can_inject(src) {
                        let txn = shard::node_in(&mut self.shards, n)
                            .pop_reply()
                            .expect("peeked Some");
                        self.obs.trace_hop(txn.id, "noc1_rep", now);
                        let pkt = self.rctx.packet(src, dst, shard::up_bytes(&txn), txn);
                        shard::noc1_rep_in(&mut self.shards, cluster)
                            .try_inject(pkt)
                            .unwrap_or_else(|_| unreachable!("checked room"));
                    }
                }
            }
        }
    }

    /// Node Q3 → NoC#2 request injection (coordinator: NoC#2 is
    /// all-to-all, so both sides always span domains).
    fn inject_noc2_requests(&mut self) {
        let m = self.topo.nodes_per_cluster();
        let pops = if self.topo.ideal_ports { self.cfg.cores } else { 1 };
        let now = self.now;
        for n in 0..self.topo.nodes {
            for _ in 0..pops {
                let Some(txn) = shard::node_in(&mut self.shards, n).peek_l2_request().copied()
                else {
                    break;
                };
                let slice = self.slice_of(txn.line);
                let data = shard::down_bytes(&txn);
                let flit = self.rctx.flit_bytes;
                let mut advanced = false;
                match &mut self.noc2_req {
                    Noc2Net::Single(x) => {
                        let src = if self.topo.ideal_ports { txn.core.index() } else { n };
                        if x.can_inject(src) {
                            shard::node_in(&mut self.shards, n).pop_l2_request();
                            self.obs.trace_hop(txn.id, "noc2_req", now);
                            advanced = true;
                            let pkt = Packet {
                                src,
                                dst: slice,
                                flits: 1 + data.div_ceil(flit),
                                payload: txn,
                            };
                            x.try_inject(pkt).unwrap_or_else(|_| unreachable!("checked room"));
                        }
                    }
                    Noc2Net::Sliced(xs) => {
                        let slot = n % m;
                        debug_assert_eq!(
                            slice % xs.len(),
                            slot % xs.len(),
                            "home-slot / slice interleaving mismatch"
                        );
                        let cluster = n / m;
                        let dst = slice / xs.len();
                        let x = &mut xs[slot];
                        if x.can_inject(cluster) {
                            shard::node_in(&mut self.shards, n).pop_l2_request();
                            self.obs.trace_hop(txn.id, "noc2_req", now);
                            advanced = true;
                            let pkt = Packet {
                                src: cluster,
                                dst,
                                flits: 1 + data.div_ceil(flit),
                                payload: txn,
                            };
                            x.try_inject(pkt).unwrap_or_else(|_| unreachable!("checked room"));
                        }
                    }
                    Noc2Net::TwoStage { stage1, .. } => {
                        // Baseline machine: node index == core index.
                        let groups = stage1.len();
                        let cpg = self.topo.cores / groups;
                        let g = n / cpg;
                        let src = n % cpg;
                        let uplinks = stage1[g].config().outputs;
                        let dst = slice % uplinks;
                        if stage1[g].can_inject(src) {
                            shard::node_in(&mut self.shards, n).pop_l2_request();
                            self.obs.trace_hop(txn.id, "noc2_req", now);
                            advanced = true;
                            let pkt = Packet {
                                src,
                                dst,
                                flits: 1 + data.div_ceil(flit),
                                payload: txn,
                            };
                            stage1[g]
                                .try_inject(pkt)
                                .unwrap_or_else(|_| unreachable!("checked room"));
                        }
                    }
                }
                if !advanced {
                    break;
                }
            }
        }
    }

    /// L2 replies → NoC#2 reply injection (via per-slice stashes).
    fn inject_noc2_replies(&mut self) {
        let m = self.topo.nodes_per_cluster();
        let now = self.now;
        for s in 0..self.cfg.l2_slices {
            if self.l2_reply_stash[s].is_none() {
                self.l2_reply_stash[s] = shard::l2_in(&mut self.shards, s).pop_reply();
            }
            let Some(reply) = &self.l2_reply_stash[s] else { continue };
            let txn = reply.payload;
            // Full-line fills for loads; acks/small data otherwise.
            let data = match txn.kind {
                MemKind::Load => u32::try_from(self.cfg.line_bytes).expect("line_bytes fits u32"),
                MemKind::Aux | MemKind::Atomic => txn.bytes,
                MemKind::Store => 0,
            };
            let flit = self.rctx.flit_bytes;
            // For baseline machines home_node is the core's own L1; for
            // the ideal single L1 it is node 0; for DC-L1 designs it is
            // the home DC-L1 that issued the fill.
            let node = self.topo.home_node(txn.core.index(), txn.line);
            match &mut self.noc2_rep {
                Noc2Net::Single(x) => {
                    let dst = if self.topo.ideal_ports { txn.core.index() } else { node };
                    if x.can_inject(s) {
                        let pkt =
                            Packet { src: s, dst, flits: 1 + data.div_ceil(flit), payload: txn };
                        x.try_inject(pkt).unwrap_or_else(|_| unreachable!("checked room"));
                        self.obs.trace_hop(txn.id, "noc2_rep", now);
                        self.l2_reply_stash[s] = None;
                    }
                }
                Noc2Net::Sliced(xs) => {
                    let groups = xs.len();
                    let slot = node % m;
                    debug_assert_eq!(s % groups, slot % groups);
                    let cluster = node / m;
                    let src = s / groups;
                    let x = &mut xs[slot];
                    if x.can_inject(src) {
                        let pkt = Packet {
                            src,
                            dst: cluster,
                            flits: 1 + data.div_ceil(flit),
                            payload: txn,
                        };
                        x.try_inject(pkt).unwrap_or_else(|_| unreachable!("checked room"));
                        self.obs.trace_hop(txn.id, "noc2_rep", now);
                        self.l2_reply_stash[s] = None;
                    }
                }
                Noc2Net::TwoStage { stage2, stage1 } => {
                    let groups = stage1.len();
                    let cpg = self.topo.cores / groups;
                    let g = node / cpg;
                    let uplinks = stage1[0].config().inputs;
                    let dst = g * uplinks + s % uplinks;
                    if stage2.can_inject(s) {
                        let pkt =
                            Packet { src: s, dst, flits: 1 + data.div_ceil(flit), payload: txn };
                        stage2.try_inject(pkt).unwrap_or_else(|_| unreachable!("checked room"));
                        self.obs.trace_hop(txn.id, "noc2_rep", now);
                        self.l2_reply_stash[s] = None;
                    }
                }
            }
        }
    }

    fn tick_noc2(&mut self) {
        let ticks = self.noc2_clock.advance();
        let (s1_ticks, s2_ticks) = match &mut self.cdx_clocks {
            Some((c1, c2)) => (c1.advance(), c2.advance()),
            None => (0, 0),
        };
        let now = self.now;
        // Request direction.
        match &mut self.noc2_req {
            Noc2Net::Single(x) => {
                for _ in 0..ticks {
                    x.tick();
                    Self::eject_into_l2(x, &mut self.shards, None, &mut self.obs, now);
                }
            }
            Noc2Net::Sliced(xs) => {
                for _ in 0..ticks {
                    let groups = xs.len();
                    for (slot, x) in xs.iter_mut().enumerate() {
                        x.tick();
                        Self::eject_into_l2(
                            x,
                            &mut self.shards,
                            Some((slot, groups)),
                            &mut self.obs,
                            now,
                        );
                    }
                }
            }
            Noc2Net::TwoStage { stage1, stage2 } => {
                for _ in 0..s1_ticks {
                    for (g, x) in stage1.iter_mut().enumerate() {
                        x.tick();
                        if !x.has_output() {
                            continue;
                        }
                        // Stage-1 ejects feed stage-2 inputs.
                        let uplinks = x.config().outputs;
                        for u in 0..uplinks {
                            while let Some(_pkt) = x.peek_output(u) {
                                let input = g * uplinks + u;
                                if !stage2.can_inject(input) {
                                    break;
                                }
                                let pkt = x.pop_output(u).expect("peeked Some");
                                let slice = Self::slice_of_static(
                                    pkt.payload.line,
                                    stage2.config().outputs,
                                );
                                let fwd = Packet {
                                    src: input,
                                    dst: slice,
                                    flits: pkt.flits,
                                    payload: pkt.payload,
                                };
                                stage2
                                    .try_inject(fwd)
                                    .unwrap_or_else(|_| unreachable!("checked room"));
                            }
                        }
                    }
                }
                for _ in 0..s2_ticks {
                    stage2.tick();
                    Self::eject_into_l2(stage2, &mut self.shards, None, &mut self.obs, now);
                }
            }
        }
        // Reply direction.
        let m = self.topo.nodes_per_cluster();
        match &mut self.noc2_rep {
            Noc2Net::Single(x) => {
                let ideal = self.topo.ideal_ports;
                for _ in 0..ticks {
                    x.tick();
                    if !x.has_output() {
                        continue;
                    }
                    for port in 0..x.config().outputs {
                        let n = if ideal { 0 } else { port };
                        while shard::node_in(&mut self.shards, n).can_accept_l2_reply() {
                            match x.pop_output(port) {
                                Some(pkt) => shard::node_in(&mut self.shards, n)
                                    .try_push_l2_reply(pkt.payload)
                                    .unwrap_or_else(|_| unreachable!("checked room")),
                                None => break,
                            }
                        }
                    }
                }
            }
            Noc2Net::Sliced(xs) => {
                for _ in 0..ticks {
                    for (slot, x) in xs.iter_mut().enumerate() {
                        x.tick();
                        if !x.has_output() {
                            continue;
                        }
                        for cluster in 0..self.topo.clusters {
                            let node = cluster * m + slot;
                            while shard::node_in(&mut self.shards, node).can_accept_l2_reply() {
                                match x.pop_output(cluster) {
                                    Some(pkt) => shard::node_in(&mut self.shards, node)
                                        .try_push_l2_reply(pkt.payload)
                                        .unwrap_or_else(|_| unreachable!("checked room")),
                                    None => break,
                                }
                            }
                        }
                    }
                }
            }
            Noc2Net::TwoStage { stage1, stage2 } => {
                for _ in 0..s2_ticks {
                    stage2.tick();
                    if !stage2.has_output() {
                        continue;
                    }
                    // Stage-2 ejects feed per-group stage-1 reply xbars.
                    let groups = stage1.len();
                    let cpg = self.topo.cores / groups;
                    let uplinks = stage1[0].config().inputs;
                    for port in 0..stage2.config().outputs {
                        let g = port / uplinks;
                        let u = port % uplinks;
                        while let Some(_pkt) = stage2.peek_output(port) {
                            if !stage1[g].can_inject(u) {
                                break;
                            }
                            let pkt = stage2.pop_output(port).expect("peeked Some");
                            let dst = pkt.payload.core.index() % cpg;
                            let fwd =
                                Packet { src: u, dst, flits: pkt.flits, payload: pkt.payload };
                            stage1[g]
                                .try_inject(fwd)
                                .unwrap_or_else(|_| unreachable!("checked room"));
                        }
                    }
                }
                for _ in 0..s1_ticks {
                    for (g, x) in stage1.iter_mut().enumerate() {
                        x.tick();
                        if !x.has_output() {
                            continue;
                        }
                        let cpg = x.config().outputs;
                        for port in 0..cpg {
                            let node = g * cpg + port;
                            while shard::node_in(&mut self.shards, node).can_accept_l2_reply() {
                                match x.pop_output(port) {
                                    Some(pkt) => shard::node_in(&mut self.shards, node)
                                        .try_push_l2_reply(pkt.payload)
                                        .unwrap_or_else(|_| unreachable!("checked room")),
                                    None => break,
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    fn slice_of_static(line: dcl1_common::LineAddr, slices: usize) -> usize {
        line.interleave(slices)
    }

    /// Drains a request-direction crossbar's ejection ports into the L2
    /// slices. `sliced` carries `(slot, groups)` so output port `p` maps
    /// to slice `p * groups + slot`; `None` means output port == slice.
    fn eject_into_l2(
        x: &mut Crossbar<Txn>,
        shards: &mut [ShardDomain],
        sliced: Option<(usize, usize)>,
        obs: &mut Observer,
        now: Cycle,
    ) {
        if !x.has_output() {
            return;
        }
        for port in 0..x.config().outputs {
            let slice = match sliced {
                Some((slot, groups)) => port * groups + slot,
                None => port,
            };
            while shard::l2_in(shards, slice).can_accept() {
                match x.pop_output(port) {
                    Some(pkt) => {
                        let txn = pkt.payload;
                        obs.trace_hop(txn.id, "l2", now);
                        let kind = match txn.kind {
                            MemKind::Load | MemKind::Aux => MemAccessKind::Read,
                            MemKind::Store => MemAccessKind::Write,
                            MemKind::Atomic => MemAccessKind::Atomic,
                        };
                        shard::l2_in(shards, slice)
                            .try_enqueue(L2Request { line: txn.line, kind, payload: txn })
                            .unwrap_or_else(|_| unreachable!("checked room"));
                    }
                    None => break,
                }
            }
        }
    }

    /// L2 ↔ DRAM moves and DRAM ticks (coordinator: memory controllers
    /// serve slices from every domain, in global slice order).
    fn exchange_memory(&mut self) {
        for s in 0..self.cfg.l2_slices {
            // L2 → DRAM (via stash).
            if self.dram_stash[s].is_none() {
                self.dram_stash[s] = shard::l2_in(&mut self.shards, s).pop_dram();
            }
            if let Some(acc) = self.dram_stash[s] {
                let mc = self.mc_of_slice(s);
                let payload = if acc.is_write { None } else { Some(s) };
                if self.mcs[mc].can_accept() {
                    self.mcs[mc]
                        .try_enqueue(acc.line, acc.is_write, payload)
                        .unwrap_or_else(|_| unreachable!("checked room"));
                    self.dram_stash[s] = None;
                }
            }
        }
        // DRAM domain.
        let ticks = self.dram_clock.advance();
        for _ in 0..ticks {
            for mc in &mut self.mcs {
                mc.tick();
                while let Some((line, slice)) = mc.pop_reply() {
                    shard::l2_in(&mut self.shards, slice).dram_fill(line);
                }
            }
        }
    }

    // ---------------------------------------------------------------
    // Invariants, supervision, and the run loop
    // ---------------------------------------------------------------

    fn sweep_invariants(&mut self, at_drain: bool) {
        let Some(mut ck) = self.checker.take() else { return };
        ck.epochs_checked += 1;
        if let Err(e) = self.invariant_sweep(at_drain) {
            panic!(
                "checked-sim violation at cycle {}{}: {e}",
                self.now,
                if at_drain { " (drain)" } else { "" }
            );
        }
        self.checker = Some(ck);
    }

    /// The full conservation sweep (see [`crate::check`] for the laws).
    fn invariant_sweep(&self, at_drain: bool) -> dcl1_common::InvariantResult {
        use dcl1_common::InvariantError;
        // Transactions: the ledger is per execution domain (a request
        // issues and retires in the same domain), so the law is checked
        // shard-locally; the global law follows by summation.
        for (i, d) in self.shards.iter().enumerate() {
            d.flow.check(d.flow.in_flight()).map_err(|e| {
                InvariantError::new(format!("shard{i}.{}", e.site), e.detail)
            })?;
            if at_drain {
                d.flow.check_drained().map_err(|e| {
                    InvariantError::new(format!("shard{i}.{}", e.site), e.detail)
                })?;
            }
        }
        for (i, n) in self.iter_nodes().enumerate() {
            n.check_invariants(&format!("node{i}"))?;
        }
        for (i, s) in self.iter_l2().enumerate() {
            s.check_invariants(&format!("l2_{i}"))?;
        }
        for d in &self.shards {
            for (i, x) in d.noc1_req.iter().enumerate() {
                x.check_conservation(&format!("noc1_req{}", d.cluster0 + i))?;
            }
            for (i, x) in d.noc1_rep.iter().enumerate() {
                x.check_conservation(&format!("noc1_rep{}", d.cluster0 + i))?;
            }
        }
        self.noc2_req.check_conservation("noc2_req")?;
        self.noc2_rep.check_conservation("noc2_rep")?;
        for (i, mc) in self.mcs.iter().enumerate() {
            if mc.queue_len() > self.cfg.dram.queue_depth {
                return Err(InvariantError::new(
                    format!("mc{i}"),
                    format!(
                        "queue occupancy {} exceeds depth {}",
                        mc.queue_len(),
                        self.cfg.dram.queue_depth
                    ),
                ));
            }
        }
        // Stall attribution: every measured core cycle is exactly one of
        // issue / classified stall — continuously, not just at exit.
        let cycles = self.measured_cycles();
        for (i, c) in self.iter_cores().enumerate() {
            let cs = c.stats();
            let instr = cs.instructions.get();
            let stall = cs.stall.total();
            if instr + stall != cycles {
                return Err(InvariantError::new(
                    format!("core{i}"),
                    format!(
                        "stall partition: {instr} instructions + {stall} stalls \
                         != {cycles} measured cycles"
                    ),
                ));
            }
            if stall != cs.idle_cycles.get() + cs.mem_stall_cycles.get() {
                return Err(InvariantError::new(
                    format!("core{i}"),
                    format!(
                        "stall breakdown {stall} != idle {} + mem-stall {}",
                        cs.idle_cycles.get(),
                        cs.mem_stall_cycles.get()
                    ),
                ));
            }
        }
        Ok(())
    }

    fn all_idle(&self) -> bool {
        self.dispatcher.remaining() == 0
            && self.iter_cores().all(Core::is_drained)
            && self.iter_outbox().all(VecDeque::is_empty)
            && self.iter_nodes().all(Dcl1Node::is_idle)
            && self.iter_noc1().all(Crossbar::is_idle)
            && self.noc2_req.is_idle()
            && self.noc2_rep.is_idle()
            && self.iter_l2().all(L2Slice::is_idle)
            && self.l2_reply_stash.iter().all(Option::is_none)
            && self.dram_stash.iter().all(Option::is_none)
            && self.mcs.iter().all(MemoryController::is_idle)
    }

    /// Runs the kernel to completion (or the cycle cap) and returns the
    /// collected statistics.
    ///
    /// Historical never-fails entry point: with the watchdog disarmed
    /// (the default) [`run_result`](GpuSystem::run_result) cannot fail,
    /// and an armed watchdog firing here means a genuine hang — panicking
    /// with the diagnostic is strictly better than spinning to the cycle
    /// cap. Supervised callers use `run_result` and recover instead.
    pub fn run(&mut self) -> RunStats {
        self.run_result().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Runs the kernel to completion (or the cycle cap) under the
    /// supervision configured by [`set_watchdog`](GpuSystem::set_watchdog)
    /// and [`set_deadline_secs`](GpuSystem::set_deadline_secs).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Livelock`] when an armed watchdog observes a
    /// full epoch with no forward progress while the machine is not idle
    /// — including a worker shard that dies or wedges past the barrier
    /// timeout — and [`SimError::Deadline`] when the wall-clock budget is
    /// exceeded. With neither configured and the pool off, this never
    /// fails.
    pub fn run_result(&mut self) -> Result<RunStats, SimError> {
        // A tracing observer records per-transaction hops in phase order;
        // keep that stream identical to the historical one-domain machine
        // by running tracing runs sequentially.
        if self.obs.tracing() && self.shards.len() > 1 {
            self.repartition(1);
        }
        let threads = self.shards.len() > 1
            && self.thread_override.unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, usize::from) >= 2
            });
        if threads {
            let want = self.shards.len() - 1;
            if self.pool.as_ref().is_none_or(|p| p.workers() != want) {
                self.pool = Some(ShardPool::new(want));
            }
        } else {
            self.pool = None;
        }
        // simcheck: allow(wall_clock): supervision-only deadline check, never feeds stats
        let started = self.deadline_secs.map(|_| Instant::now());
        self.watch_cycle = self.now;
        self.watch_sig = self.progress_signature();
        while self.now < self.opts.max_cycles {
            self.step_result()?;
            if !self.warmup_done && self.opts.warmup_instructions > 0 && self.now.is_multiple_of(64) {
                let retired: u64 =
                    self.iter_cores().map(|c| c.stats().instructions.get()).sum();
                if retired >= self.opts.warmup_instructions {
                    self.reset_statistics();
                }
            }
            if self.now.is_multiple_of(64) && self.all_idle() {
                break;
            }
            if let Some(epoch) = self.watchdog_epoch {
                if self.now.saturating_sub(self.watch_cycle) >= epoch {
                    self.watchdog_probe(started)?;
                }
            }
            if self.opts.fast_forward {
                self.fast_forward();
            }
        }
        if self.checker.is_some() && self.all_idle() {
            self.sweep_invariants(true);
        }
        if !self.obs.is_off() {
            if let Err(e) = self.obs.finish(self.now) {
                eprintln!("warning: failed to flush observability sinks: {e}");
            }
        }
        // Final pull snapshot at drain — this is the one reports read.
        self.record_registry();
        Ok(self.collect_stats())
    }

    /// Advances exactly one core cycle.
    ///
    /// Infallible wrapper over [`step_result`](GpuSystem::step_result):
    /// stepping only fails when a pooled worker shard dies, and a caller
    /// single-stepping the machine is not running the pool.
    pub fn step(&mut self) {
        if let Err(e) = self.step_result() {
            panic!("{e}");
        }
    }

    /// Advances exactly one core cycle, surfacing shard-pool failures.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Livelock`] when a worker shard panics or
    /// misses the epoch barrier timeout.
    pub fn step_result(&mut self) -> Result<(), SimError> {
        self.now += 1;
        if self.stalled() {
            // Chaos stall: the clock runs but no phase does work, which is
            // exactly the no-progress shape the watchdog must catch.
            return Ok(());
        }
        // simcheck: allow(wall_clock): phase profiler diagnostics only, never feeds stats
        let mut lap_t = self.profiler.as_deref().map(|_| Instant::now());
        self.dispatch_ctas();
        self.run_region_all(Region::Issue)?;
        self.lap(Phase::Issue, &mut lap_t);
        self.exchange_outboxes();
        self.lap(Phase::Exchange, &mut lap_t);
        match self.topo.attachment {
            Attachment::Noc1 { .. } if self.aligned => self.run_region_all(Region::Noc1)?,
            Attachment::Noc1 { .. } => self.tick_noc1_seq(),
            Attachment::Direct => {}
        }
        self.inject_noc2_requests();
        self.inject_noc2_replies();
        self.tick_noc2();
        self.lap(Phase::Noc1, &mut lap_t);
        self.run_region_all(Region::Mem { fuse_drain: self.aligned })?;
        self.lap(Phase::Mem, &mut lap_t);
        self.apply_presence();
        self.exchange_memory();
        if !self.aligned {
            self.drain_node_replies_seq();
        }
        self.lap(Phase::Exchange, &mut lap_t);
        if self.now.is_multiple_of(self.opts.replica_sample_interval)
            && self.presence.distinct_lines() > 0
        {
            self.replica_samples.record(self.presence.mean_replicas());
        }
        if let Some(ivl) = self.obs.metrics_interval() {
            if self.now.is_multiple_of(ivl) {
                let sample = self.metrics_sample();
                self.obs.record_metrics(&sample);
            }
        }
        if self.metrics.is_some() && self.now.is_multiple_of(REGISTRY_RECORD_CYCLES) {
            self.record_registry();
        }
        if self.progress.is_some() && self.now.is_multiple_of(self.progress_every) {
            let retired: u64 = self.iter_cores().map(|c| c.stats().instructions.get()).sum();
            let now = self.now;
            if let Some(h) = &mut self.progress {
                (h.0)(now, retired);
            }
        }
        if self.checker.is_some() && self.now.is_multiple_of(EPOCH_CYCLES) {
            self.sweep_invariants(false);
        }
        Ok(())
    }

    /// When the whole machine is quiescent — no queued or staged
    /// transaction anywhere, no ready wavefront, no dispatchable CTA — the
    /// only thing [`step`](GpuSystem::step) does is advance clocks until a
    /// fixed-latency timer fires: an ALU busy interval expires, a cache hit
    /// matures in a node's hit pipe, an L2 reply's latency elapses, or a
    /// DRAM burst completes. This jumps `now` directly to the cycle before
    /// the earliest such event (the event cycle itself is then stepped
    /// normally), advancing every component clock by exactly the amount
    /// that many do-nothing steps would have.
    ///
    /// The jump never crosses a replica-sample cycle, a pending warmup
    /// probe, or the cycle cap, so statistics are bit-identical to
    /// stepping.
    fn fast_forward(&mut self) {
        if self.stalled() {
            // Chaos stall: never jump the clock past the no-progress
            // window the watchdog is supposed to observe.
            return;
        }
        // Cheap occupancy guards first, so active phases bail out fast.
        if self.iter_outbox().any(|o| !o.is_empty())
            || !self.iter_noc1().all(Crossbar::is_idle)
            || !self.noc2_req.is_idle()
            || !self.noc2_rep.is_idle()
            || self.l2_reply_stash.iter().any(Option::is_some)
            || self.dram_stash.iter().any(Option::is_some)
        {
            return;
        }
        // `horizon` = steps until the earliest event fires (that step must
        // execute normally).
        let mut horizon = u64::MAX;
        for n in self.iter_nodes() {
            match n.quiescent_horizon() {
                None => return,
                Some(h) => horizon = horizon.min(h),
            }
        }
        for s in self.iter_l2() {
            match s.quiescent_horizon() {
                None => return,
                // Replies are popped in the inject phase, which sees the
                // slice clock one tick behind the machine step count.
                Some(u64::MAX) => {}
                Some(h) => horizon = horizon.min(h + 1),
            }
        }
        for mc in &self.mcs {
            match mc.quiescent_horizon() {
                None => return,
                Some(u64::MAX) => {}
                // A mature reply (t = 0) is picked up at the next DRAM
                // tick, so it still needs one more tick's worth of cycles.
                Some(t) => horizon = horizon.min(self.dram_clock.cycles_until_ticks(t.max(1))),
            }
        }
        let now = self.now;
        for d in &mut self.shards {
            for c in &mut d.cores {
                match c.blocked_until(now) {
                    None => return,
                    Some(Cycle::MAX) => {}
                    Some(until) => horizon = horizon.min(until - now),
                }
            }
        }
        if self.dispatcher.remaining() > 0 {
            let wpc = self.factory.wavefronts_per_cta() as usize;
            if self.iter_cores().any(|c| c.can_host_cta(wpc)) {
                return;
            }
        }

        let mut skip = if horizon == u64::MAX {
            // No timer pending anywhere: everything left is drained (or
            // wedged, which the cycle cap bounds). Land the next step on
            // the 64-cycle idle probe so `run` can exit.
            63 - self.now % 64
        } else {
            horizon - 1
        };
        // Never jump over a cycle that does observable work.
        skip = skip.min(self.opts.max_cycles - 1 - self.now);
        let ivl = self.opts.replica_sample_interval;
        skip = skip.min(ivl - 1 - self.now % ivl);
        if let Some(mivl) = self.obs.metrics_interval() {
            // The sampler is itself a timer event: land the next step on the
            // sampling boundary so quiescent snapshots are still recorded.
            skip = skip.min(mivl - 1 - self.now % mivl);
        }
        if !self.warmup_done && self.opts.warmup_instructions > 0 {
            skip = skip.min(63 - self.now % 64);
        }
        if self.progress.is_some() {
            // Keep the liveness callback cadence alive through quiescent
            // stretches (a skipped cycle does no work, so the snapshot at
            // the boundary is bit-identical to stepping there).
            let every = self.progress_every;
            skip = skip.min(every - 1 - self.now % every);
        }
        if skip == 0 {
            return;
        }

        self.now += skip;
        let n1 = skip * self.topo.noc1_ticks_per_cycle();
        for d in &mut self.shards {
            for c in &mut d.cores {
                c.add_idle_cycles(skip);
            }
            for x in d.noc1_req.iter_mut().chain(d.noc1_rep.iter_mut()) {
                x.skip_idle_ticks(n1);
            }
            for n in &mut d.nodes {
                n.skip_idle_cycles(skip);
            }
            for l2 in &mut d.l2 {
                l2.skip_idle_cycles(skip);
            }
        }
        let t2 = self.noc2_clock.advance_by(skip);
        let (t_s1, t_s2) = match &mut self.cdx_clocks {
            Some((c1, c2)) => (c1.advance_by(skip), c2.advance_by(skip)),
            None => (0, 0),
        };
        for net in [&mut self.noc2_req, &mut self.noc2_rep] {
            match net {
                Noc2Net::Single(x) => x.skip_idle_ticks(t2),
                Noc2Net::Sliced(v) => v.iter_mut().for_each(|x| x.skip_idle_ticks(t2)),
                Noc2Net::TwoStage { stage1, stage2 } => {
                    stage1.iter_mut().for_each(|x| x.skip_idle_ticks(t_s1));
                    stage2.skip_idle_ticks(t_s2);
                }
            }
        }
        let tm = self.dram_clock.advance_by(skip);
        for mc in &mut self.mcs {
            mc.skip_idle_ticks(tm);
        }
    }

    /// Ends the warmup phase: zeroes every statistic while leaving all
    /// architectural state (cache contents, queues, in-flight traffic)
    /// intact, so the measured phase starts from a warm machine. The
    /// transaction flow meters and sequence counters are architectural
    /// (conservation spans warmup), so they are deliberately not reset.
    pub fn reset_statistics(&mut self) {
        self.warmup_done = true;
        self.stat_base_cycle = self.now;
        for d in &mut self.shards {
            for c in &mut d.cores {
                c.reset_stats();
            }
            for n in &mut d.nodes {
                n.reset_stats();
            }
            for x in d.noc1_req.iter_mut().chain(d.noc1_rep.iter_mut()) {
                x.reset_stats();
            }
            for l2 in &mut d.l2 {
                l2.reset_stats();
            }
            for m in &mut d.meters {
                *m = CoreMeter::default();
            }
        }
        for net in [&mut self.noc2_req, &mut self.noc2_rep] {
            match net {
                Noc2Net::Single(x) => x.reset_stats(),
                Noc2Net::Sliced(v) => v.iter_mut().for_each(Crossbar::reset_stats),
                Noc2Net::TwoStage { stage1, stage2 } => {
                    stage1.iter_mut().for_each(Crossbar::reset_stats);
                    stage2.reset_stats();
                }
            }
        }
        for mc in &mut self.mcs {
            mc.reset_stats();
        }
        self.replica_samples = RunningMean::default();
    }

    /// Snapshots every machine-wide occupancy gauge for the metrics stream.
    fn metrics_sample(&self) -> MetricsSample {
        let nq2 = |net: &Noc2Net| -> (u64, u64) {
            match net {
                Noc2Net::Single(x) => (x.in_flight() as u64, x.stats().total_flits()),
                Noc2Net::Sliced(v) => (
                    v.iter().map(Crossbar::in_flight).sum::<usize>() as u64,
                    v.iter().map(|x| x.stats().total_flits()).sum(),
                ),
                Noc2Net::TwoStage { stage1, stage2 } => (
                    (stage1.iter().map(Crossbar::in_flight).sum::<usize>() + stage2.in_flight())
                        as u64,
                    stage1.iter().map(|x| x.stats().total_flits()).sum::<u64>()
                        + stage2.stats().total_flits(),
                ),
            }
        };
        let (noc2_req_inflight, noc2_req_flits) = nq2(&self.noc2_req);
        let (noc2_rep_inflight, noc2_rep_flits) = nq2(&self.noc2_rep);
        MetricsSample {
            cycle: self.now,
            outbox_depth: self.iter_outbox().map(VecDeque::len).sum::<usize>() as u64,
            node_q1: self.iter_nodes().map(Dcl1Node::q1_len).sum::<usize>() as u64,
            node_q2: self.iter_nodes().map(Dcl1Node::q2_len).sum::<usize>() as u64,
            node_q3: self.iter_nodes().map(Dcl1Node::q3_len).sum::<usize>() as u64,
            node_q4: self.iter_nodes().map(Dcl1Node::q4_len).sum::<usize>() as u64,
            node_mshr: self.iter_nodes().map(Dcl1Node::mshr_waiters).sum::<usize>() as u64,
            node_hit_pipe: self.iter_nodes().map(Dcl1Node::hit_pipe_len).sum::<usize>() as u64,
            noc1_req_inflight: self
                .shards
                .iter()
                .flat_map(|d| d.noc1_req.iter())
                .map(Crossbar::in_flight)
                .sum::<usize>() as u64,
            noc1_rep_inflight: self
                .shards
                .iter()
                .flat_map(|d| d.noc1_rep.iter())
                .map(Crossbar::in_flight)
                .sum::<usize>() as u64,
            noc2_req_inflight,
            noc2_rep_inflight,
            noc1_flits: self.iter_noc1().map(|x| x.stats().total_flits()).sum(),
            noc2_flits: noc2_req_flits + noc2_rep_flits,
            l2_input: self.iter_l2().map(L2Slice::input_len).sum::<usize>() as u64,
            l2_mshr: self.iter_l2().map(L2Slice::mshr_len).sum::<usize>() as u64,
            l2_replies: self.iter_l2().map(L2Slice::replies_pending).sum::<usize>() as u64,
            dram_queue: self.mcs.iter().map(MemoryController::queue_len).sum::<usize>() as u64,
            dram_replies: self.mcs.iter().map(MemoryController::replies_pending).sum::<usize>()
                as u64,
            active_wavefronts: self.iter_cores().map(Core::resident_wavefronts).sum::<usize>()
                as u64,
            waiting_wavefronts: self.iter_cores().map(Core::waiting_wavefronts).sum::<usize>()
                as u64,
            instructions: self.iter_cores().map(|c| c.stats().instructions.get()).sum(),
            shards: self.shards.len() as u64,
            barrier_wait_nanos: self.barrier_wait_nanos,
            shard_busy_max_nanos: self.shards.iter().map(|d| d.busy_nanos).max().unwrap_or(0),
            shard_busy_min_nanos: self.shards.iter().map(|d| d.busy_nanos).min().unwrap_or(0),
        }
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// A human-readable dump of internal pressure points (stall counters,
    /// queue rejections, in-flight packets) for performance debugging.
    pub fn debug_snapshot(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let idle: u64 = self.iter_cores().map(|c| c.stats().idle_cycles.get()).sum();
        let mstall: u64 = self.iter_cores().map(|c| c.stats().mem_stall_cycles.get()).sum();
        let instr: u64 = self.iter_cores().map(|c| c.stats().instructions.get()).sum();
        writeln!(s, "cycle={} instr={} core_idle={} core_mem_stall={}", self.now, instr, idle, mstall).ok();
        let stall = |f: fn(&dcl1_gpu::StallBreakdown) -> u64| -> u64 {
            self.iter_cores().map(|c| f(&c.stats().stall)).sum()
        };
        writeln!(
            s,
            "stall drained={} alu_busy={} fill_wait={} mem_outbox={} mem_l1_queue={} mem_noc={}",
            stall(|b| b.drained.get()),
            stall(|b| b.alu_busy.get()),
            stall(|b| b.fill_wait.get()),
            stall(|b| b.mem_outbox.get()),
            stall(|b| b.mem_l1_queue.get()),
            stall(|b| b.mem_noc.get())
        )
        .ok();
        let nstall: u64 = self.iter_nodes().map(|n| n.stats().stall_cycles.get()).sum();
        let nacc: u64 = self.iter_nodes().map(|n| n.stats().accesses.get()).sum();
        writeln!(s, "node_accesses={} node_stalls={} outbox_pending={}", nacc, nstall,
            self.iter_outbox().map(VecDeque::len).sum::<usize>()).ok();
        let n1r: usize =
            self.shards.iter().flat_map(|d| d.noc1_req.iter()).map(Crossbar::in_flight).sum();
        let n1p: usize =
            self.shards.iter().flat_map(|d| d.noc1_rep.iter()).map(Crossbar::in_flight).sum();
        writeln!(s, "noc1_req_inflight={} noc1_rep_inflight={}", n1r, n1p).ok();
        let n2 = |net: &Noc2Net| -> usize {
            match net {
                Noc2Net::Single(x) => x.in_flight(),
                Noc2Net::Sliced(v) => v.iter().map(Crossbar::in_flight).sum(),
                Noc2Net::TwoStage { stage1, stage2 } => {
                    stage1.iter().map(Crossbar::in_flight).sum::<usize>() + stage2.in_flight()
                }
            }
        };
        writeln!(s, "noc2_req_inflight={} noc2_rep_inflight={}", n2(&self.noc2_req), n2(&self.noc2_rep)).ok();
        let l2acc: u64 = self.iter_l2().map(|x| x.stats().accesses.get()).sum();
        let l2miss: u64 = self.iter_l2().map(|x| x.stats().misses.get()).sum();
        writeln!(s, "l2_accesses={} l2_misses={} reply_stash={} dram_stash={}", l2acc, l2miss,
            self.l2_reply_stash.iter().filter(|o| o.is_some()).count(),
            self.dram_stash.iter().filter(|o| o.is_some()).count()).ok();
        let l2q: usize = self.iter_l2().map(L2Slice::input_len).sum();
        let l2m: usize = self.iter_l2().map(L2Slice::mshr_len).sum();
        let l2d: usize = self.iter_l2().map(L2Slice::dram_out_len).sum();
        let l2p: usize = self.iter_l2().map(L2Slice::replies_pending).sum();
        let dq: usize = self.mcs.iter().map(MemoryController::queue_len).sum();
        let dp: usize = self.mcs.iter().map(MemoryController::replies_pending).sum();
        writeln!(s, "l2_input={} l2_mshr={} l2_dram_out={} l2_replies={} dram_q={} dram_replies={}",
            l2q, l2m, l2d, l2p, dq, dp).ok();
        let dr: u64 = self.mcs.iter().map(|m| m.stats().reads.get() + m.stats().writes.get()).sum();
        let meters = self.merged_meters();
        writeln!(
            s,
            "dram_reqs={} mean_load_rtt={:.1} hit_rtt={:.1}({}) miss_rtt={:.1}({})",
            dr,
            meters.load_rtt.mean(),
            meters.hit_rtt.mean(),
            meters.hit_rtt.count(),
            meters.miss_rtt.mean(),
            meters.miss_rtt.count()
        )
        .ok();
        s
    }

    fn collect_stats(&self) -> RunStats {
        let cycles = self.now - self.stat_base_cycle;
        let instructions =
            self.iter_cores().map(|c| c.stats().instructions.get()).sum::<u64>();
        let l1_accesses = self.iter_nodes().map(|n| n.stats().accesses.get()).sum();
        let l1_hits = self.iter_nodes().map(|n| n.stats().hits.get()).sum();
        let l1_misses = self.iter_nodes().map(|n| n.stats().misses.get()).sum();
        let l1_replicated_misses =
            self.iter_nodes().map(|n| n.stats().replicated_misses.get()).sum();
        let per_node_accesses: Vec<u64> =
            self.iter_nodes().map(|n| n.stats().accesses.get()).collect();
        let utils: Vec<f64> = per_node_accesses
            .iter()
            .map(|&a| if cycles == 0 { 0.0 } else { a as f64 / cycles as f64 })
            .collect();
        let max_port_utilization = utils.iter().copied().fold(0.0, f64::max);
        let mean_port_utilization = dcl1_common::stats::mean(&utils);

        // Reply-link utilization toward the L1 level (Fig 2 / Fig 17).
        let max_reply_link_utilization = match &self.noc2_rep {
            Noc2Net::Single(x) => x.stats().max_link_utilization(),
            Noc2Net::Sliced(xs) => {
                xs.iter().map(|x| x.stats().max_link_utilization()).fold(0.0, f64::max)
            }
            Noc2Net::TwoStage { stage1, .. } => {
                stage1.iter().map(|x| x.stats().max_link_utilization()).fold(0.0, f64::max)
            }
        };

        let l2_accesses = self.iter_l2().map(|s| s.stats().accesses.get()).sum();
        let l2_misses = self.iter_l2().map(|s| s.stats().misses.get()).sum();
        let dram_requests = self
            .mcs
            .iter()
            .map(|m| m.stats().reads.get() + m.stats().writes.get())
            .sum();
        let dram_hits: u64 = self.mcs.iter().map(|m| m.stats().row_hits.get()).sum();
        let dram_row_hit_rate =
            if dram_requests == 0 { 0.0 } else { dram_hits as f64 / dram_requests as f64 };

        // Flit counts aligned with Topology::noc_spec entry order.
        let mut noc_flits = Vec::new();
        if matches!(self.topo.attachment, Attachment::Noc1 { .. }) {
            let f: u64 = self.iter_noc1().map(|x| x.stats().total_flits()).sum();
            noc_flits.push(f);
        }
        match (&self.noc2_req, &self.noc2_rep) {
            (Noc2Net::Single(a), Noc2Net::Single(b)) => {
                noc_flits.push(a.stats().total_flits() + b.stats().total_flits());
            }
            (Noc2Net::Sliced(a), Noc2Net::Sliced(b)) => {
                noc_flits.push(
                    a.iter().chain(b.iter()).map(|x| x.stats().total_flits()).sum::<u64>(),
                );
            }
            (
                Noc2Net::TwoStage { stage1: s1a, stage2: s2a },
                Noc2Net::TwoStage { stage1: s1b, stage2: s2b },
            ) => {
                noc_flits.push(
                    s1a.iter().chain(s1b.iter()).map(|x| x.stats().total_flits()).sum::<u64>(),
                );
                noc_flits.push(s2a.stats().total_flits() + s2b.stats().total_flits());
            }
            _ => unreachable!("request and reply NoC#2 always share a shape"),
        }

        let meters = self.merged_meters();
        RunStats {
            design: self.topo.name.clone(),
            cycles,
            instructions,
            l1_accesses,
            l1_hits,
            l1_misses,
            l1_replicated_misses,
            mean_replicas: self.replica_samples.mean(),
            max_port_utilization,
            mean_port_utilization,
            max_reply_link_utilization,
            mean_load_rtt: meters.load_rtt.mean(),
            p50_load_rtt: meters.rtt_hist.percentile(0.5),
            p95_load_rtt: meters.rtt_hist.percentile(0.95),
            p99_load_rtt: meters.rtt_hist.percentile(0.99),
            l2_accesses,
            l2_misses,
            dram_requests,
            dram_row_hit_rate,
            noc_flits,
            per_node_accesses,
            stall_drained: self.iter_cores().map(|c| c.stats().stall.drained.get()).sum(),
            stall_alu_busy: self.iter_cores().map(|c| c.stats().stall.alu_busy.get()).sum(),
            stall_fill_wait: self.iter_cores().map(|c| c.stats().stall.fill_wait.get()).sum(),
            stall_mem_outbox: self.iter_cores().map(|c| c.stats().stall.mem_outbox.get()).sum(),
            stall_mem_l1_queue: self
                .iter_cores()
                .map(|c| c.stats().stall.mem_l1_queue.get())
                .sum(),
            stall_mem_noc: self.iter_cores().map(|c| c.stats().stall.mem_noc.get()).sum(),
            l1_mshr_stall_cycles: self
                .iter_nodes()
                .map(|n| n.stats().mshr_stall_cycles.get())
                .sum(),
            l1_queue_stall_cycles: self
                .iter_nodes()
                .map(|n| n.stats().q3_stall_cycles.get())
                .sum(),
        }
    }
}
