//! DSENT-like crossbar area, static power, dynamic energy and maximum
//! frequency model.
//!
//! # Model form
//!
//! For an `I×O` crossbar with 32 B (256-bit) links at 22 nm:
//!
//! * **Area** `= Ax·(I·O) + Ab·(I+O)` — the first term is the switch
//!   matrix + switch allocator (quadratic in radix product), the second is
//!   the per-port input buffers. The ratio `Ab/Ax = 4.34` was fit to the
//!   paper's Fig 6 / Fig 12 ratios and reproduces all seven reported
//!   configurations within ~2 percentage points (see tests).
//! * **Static power** `= Px·(I·O) + Pb·(I+O)` with `Pb/Px = 13`, fit to
//!   Fig 6's "Pr40 ≈ −4%" anchor. It reproduces the paper's *ordering*
//!   (Pr10 < Pr20 < Pr40 ≈ baseline < Sh40) and the clustered savings.
//! * **Dynamic energy per flit** `= Ec + El·link_mm` — a traversal cost
//!   plus a wire cost proportional to link length (3.3 mm intra-cluster,
//!   12.3 mm to the L2 partitions, as in Section VIII).
//! * **Max frequency** `= K / (I + O + C)` MHz — the critical path grows
//!   with port count (wire span across the switch). Fit so that 80×32
//!   lands just above 700 MHz and 8×4 comfortably above 2800 MHz,
//!   matching Fig 13b's story.
//!
//! A **direct link** (1×1 "crossbar") has no router: zero switch area and
//! static power here; only its dynamic wire energy is charged. That is how
//! the paper can report Pr80 — which adds 80 core↔DC-L1 links — as having
//! "insignificant" overhead.


/// One crossbar (or replicated set of identical crossbars) in a NoC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XbarSpec {
    /// Input ports.
    pub inputs: usize,
    /// Output ports.
    pub outputs: usize,
    /// How many identical instances of this crossbar the design uses.
    pub count: usize,
    /// Physical length of the attached links in millimetres.
    pub link_mm: f64,
    /// Operating frequency in MHz (affects dynamic power only; static
    /// power and area are frequency-independent in DSENT's 22 nm corner at
    /// the frequencies the paper uses).
    pub freq_mhz: f64,
    /// Link/flit width relative to the 32 B default. The switch matrix
    /// grows quadratically and the buffers linearly with width, which is
    /// how the paper's flit-boosted baseline reaches an 18.5× NoC area and
    /// 4.2× static power overhead (Section VIII-A).
    pub width_mult: f64,
}

impl XbarSpec {
    /// Convenience constructor for `count` crossbars of `inputs×outputs`
    /// at the default 32 B width.
    pub fn new(inputs: usize, outputs: usize, count: usize, link_mm: f64, freq_mhz: f64) -> Self {
        XbarSpec { inputs, outputs, count, link_mm, freq_mhz, width_mult: 1.0 }
    }

    /// Returns this spec with a different link/flit width multiplier.
    pub fn with_width_mult(mut self, width_mult: f64) -> Self {
        self.width_mult = width_mult;
        self
    }

    /// Whether this is a direct link rather than a switched crossbar.
    pub fn is_direct_link(&self) -> bool {
        self.inputs == 1 && self.outputs == 1
    }
}

/// A complete NoC: the set of crossbars a design instantiates.
///
/// The paper's designs always comprise a NoC#1 part (cores ↔ DC-L1 nodes)
/// and a NoC#2 part (DC-L1 nodes ↔ L2/memory); request and reply networks
/// are physically separate but structurally identical, so specs describe
/// one direction and the model doubles them.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct NocSpec {
    /// Human-readable design name (e.g. "Sh40+C10").
    pub name: String,
    /// All crossbars of the design (one direction).
    pub xbars: Vec<XbarSpec>,
}

impl NocSpec {
    /// Creates a named spec from crossbar entries.
    pub fn new(name: impl Into<String>, xbars: Vec<XbarSpec>) -> Self {
        NocSpec { name: name.into(), xbars }
    }
}

/// The calibrated analytical crossbar model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossbarModel {
    /// Switch-matrix area coefficient, mm² per (input·output).
    pub ax_mm2: f64,
    /// Port-buffer area coefficient, mm² per port.
    pub ab_mm2: f64,
    /// Switch-matrix static power coefficient, mW per (input·output).
    pub px_mw: f64,
    /// Port-buffer static power coefficient, mW per port.
    pub pb_mw: f64,
    /// Flit traversal energy, pJ per flit per crossbar.
    pub ec_pj: f64,
    /// Link energy, pJ per flit per millimetre.
    pub el_pj_mm: f64,
    /// Frequency-model numerator, MHz·ports.
    pub fmax_k: f64,
    /// Frequency-model port offset.
    pub fmax_c: f64,
}

impl Default for CrossbarModel {
    fn default() -> Self {
        // Absolute scale chosen so the baseline 80×32 request+reply pair
        // comes to ~12 mm² and ~1.9 W static — plausible for a 22 nm GPU
        // NoC — while all *ratios* match the calibration targets.
        CrossbarModel {
            ax_mm2: 0.00205,
            ab_mm2: 0.00890, // 4.34 × ax
            px_mw: 0.24,
            pb_mw: 3.12, // 13 × px
            ec_pj: 2.0,
            el_pj_mm: 0.39,
            fmax_k: 103_700.0,
            fmax_c: 17.6,
        }
    }
}

impl CrossbarModel {
    /// Area of one direction of `spec` in mm² (all `count` instances).
    pub fn xbar_area_mm2(&self, spec: &XbarSpec) -> f64 {
        if spec.is_direct_link() {
            return 0.0;
        }
        let io = (spec.inputs * spec.outputs) as f64;
        let ports = (spec.inputs + spec.outputs) as f64;
        let w = spec.width_mult;
        spec.count as f64 * (self.ax_mm2 * io * w * w + self.ab_mm2 * ports * w)
    }

    /// Static power of one direction of `spec` in mW.
    pub fn xbar_static_mw(&self, spec: &XbarSpec) -> f64 {
        if spec.is_direct_link() {
            return 0.0;
        }
        let io = (spec.inputs * spec.outputs) as f64;
        let ports = (spec.inputs + spec.outputs) as f64;
        let w = spec.width_mult;
        spec.count as f64 * (self.px_mw * io + self.pb_mw * ports) * w
    }

    /// Energy of one flit traversing one instance of `spec`, in pJ.
    pub fn flit_energy_pj(&self, spec: &XbarSpec) -> f64 {
        let switch = if spec.is_direct_link() { 0.0 } else { self.ec_pj };
        switch + self.el_pj_mm * spec.link_mm
    }

    /// Maximum operating frequency of an `inputs×outputs` crossbar in MHz
    /// (paper Fig 13b).
    pub fn max_frequency_mhz(&self, inputs: usize, outputs: usize) -> f64 {
        self.fmax_k / ((inputs + outputs) as f64 + self.fmax_c)
    }

    /// Total NoC area of a design in mm², request + reply networks.
    pub fn noc_area_mm2(&self, spec: &NocSpec) -> f64 {
        2.0 * spec.xbars.iter().map(|x| self.xbar_area_mm2(x)).sum::<f64>()
    }

    /// Total NoC static power of a design in mW, request + reply networks.
    pub fn noc_static_mw(&self, spec: &NocSpec) -> f64 {
        2.0 * spec.xbars.iter().map(|x| self.xbar_static_mw(x)).sum::<f64>()
    }

    /// Dynamic power in mW given per-crossbar flit counts over a runtime.
    ///
    /// `flits` must align with `spec.xbars` and hold the total flits that
    /// traversed *all instances* of each crossbar entry (both directions
    /// already summed by the caller).
    ///
    /// # Panics
    ///
    /// Panics if `flits.len() != spec.xbars.len()` or `seconds <= 0`.
    pub fn noc_dynamic_mw(&self, spec: &NocSpec, flits: &[u64], seconds: f64) -> f64 {
        assert_eq!(flits.len(), spec.xbars.len(), "flit counts must align with crossbars");
        assert!(seconds > 0.0, "runtime must be positive");
        let pj: f64 = spec
            .xbars
            .iter()
            .zip(flits)
            .map(|(x, &f)| self.flit_energy_pj(x) * f as f64)
            .sum();
        // pJ / s = 1e-12 W = 1e-9 mW.
        pj * 1e-9 / seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CrossbarModel {
        CrossbarModel::default()
    }

    /// The paper's seven NoC configurations, one direction each.
    fn baseline() -> NocSpec {
        NocSpec::new("Baseline", vec![XbarSpec::new(80, 32, 1, 12.3, 700.0)])
    }
    fn pr(y: usize) -> NocSpec {
        NocSpec::new(
            format!("Pr{y}"),
            vec![
                XbarSpec::new(80 / y, 1, y, 3.3, 1400.0),
                XbarSpec::new(y, 32, 1, 12.3, 700.0),
            ],
        )
    }
    fn sh40() -> NocSpec {
        NocSpec::new(
            "Sh40",
            vec![XbarSpec::new(80, 40, 1, 12.3, 1400.0), XbarSpec::new(40, 32, 1, 12.3, 700.0)],
        )
    }
    fn clustered(z: usize) -> NocSpec {
        let m = 40 / z;
        NocSpec::new(
            format!("Sh40+C{z}"),
            vec![
                XbarSpec::new(80 / z, m, z, 3.3, 1400.0),
                XbarSpec::new(z, 32 / m, m, 12.3, 700.0),
            ],
        )
    }

    fn area_ratio(spec: &NocSpec) -> f64 {
        model().noc_area_mm2(spec) / model().noc_area_mm2(&baseline())
    }
    fn static_ratio(spec: &NocSpec) -> f64 {
        model().noc_static_mw(spec) / model().noc_static_mw(&baseline())
    }

    #[test]
    fn area_matches_paper_fig6() {
        // Paper: Pr80 ≈ +0%, Pr40 −28%, Pr20 −54%, Pr10 −67%.
        assert!((area_ratio(&pr(80)) - 1.0).abs() < 0.03, "Pr80 {}", area_ratio(&pr(80)));
        assert!((area_ratio(&pr(40)) - 0.72).abs() < 0.03, "Pr40 {}", area_ratio(&pr(40)));
        assert!((area_ratio(&pr(20)) - 0.46).abs() < 0.03, "Pr20 {}", area_ratio(&pr(20)));
        assert!((area_ratio(&pr(10)) - 0.33).abs() < 0.03, "Pr10 {}", area_ratio(&pr(10)));
    }

    #[test]
    fn area_matches_paper_sh40_and_fig12() {
        // Paper: Sh40 +69%; C5 −45%, C10 −50%, C20 −45%.
        assert!((area_ratio(&sh40()) - 1.69).abs() < 0.08, "Sh40 {}", area_ratio(&sh40()));
        assert!((area_ratio(&clustered(5)) - 0.55).abs() < 0.04, "C5 {}", area_ratio(&clustered(5)));
        assert!((area_ratio(&clustered(10)) - 0.50).abs() < 0.04, "C10 {}", area_ratio(&clustered(10)));
        assert!((area_ratio(&clustered(20)) - 0.55).abs() < 0.04, "C20 {}", area_ratio(&clustered(20)));
    }

    #[test]
    fn static_power_ordering_matches_paper() {
        let base = 1.0;
        let p40 = static_ratio(&pr(40));
        let p20 = static_ratio(&pr(20));
        let p10 = static_ratio(&pr(10));
        let s40 = static_ratio(&sh40());
        let c10 = static_ratio(&clustered(10));
        // Pr40 close to baseline (paper: −4%).
        assert!((p40 - 0.96).abs() < 0.05, "Pr40 static {p40}");
        // Deeper aggregation saves more.
        assert!(p10 < p20 && p20 < p40, "{p10} {p20} {p40}");
        // Sh40 is a significant overhead (paper +57%; model lands ~+70%).
        assert!(s40 > 1.4 * base, "Sh40 static {s40}");
        // Clustered design saves static power (paper −16%).
        assert!((0.70..0.95).contains(&c10), "C10 static {c10}");
    }

    #[test]
    fn fmax_matches_fig13b_story() {
        let m = model();
        // Large crossbars can't be doubled past the 700 MHz interconnect.
        assert!(m.max_frequency_mhz(80, 32) < 1400.0);
        assert!(m.max_frequency_mhz(80, 40) < 1400.0);
        assert!(m.max_frequency_mhz(80, 40) < m.max_frequency_mhz(80, 32));
        // But both can run at the baseline 700 MHz.
        assert!(m.max_frequency_mhz(80, 40) >= 700.0);
        // Small crossbars comfortably reach 2× the core clock.
        assert!(m.max_frequency_mhz(2, 1) > 2800.0);
        assert!(m.max_frequency_mhz(8, 4) > 2800.0);
        // NoC#2 of the clustered design can hold 700 MHz with margin.
        assert!(m.max_frequency_mhz(10, 8) > 2.0 * 700.0);
    }

    #[test]
    fn direct_links_are_free_of_router_costs() {
        let link = XbarSpec::new(1, 1, 80, 3.3, 1400.0);
        let m = model();
        assert_eq!(m.xbar_area_mm2(&link), 0.0);
        assert_eq!(m.xbar_static_mw(&link), 0.0);
        assert!(m.flit_energy_pj(&link) > 0.0, "links still burn wire energy");
    }

    #[test]
    fn dynamic_power_scales_with_traffic_and_length() {
        let m = model();
        let spec = NocSpec::new(
            "t",
            vec![XbarSpec::new(8, 4, 10, 3.3, 1400.0), XbarSpec::new(10, 8, 4, 12.3, 700.0)],
        );
        let low = m.noc_dynamic_mw(&spec, &[1_000, 1_000], 1e-3);
        let high = m.noc_dynamic_mw(&spec, &[2_000, 2_000], 1e-3);
        assert!((high / low - 2.0).abs() < 1e-9);
        // A flit on the long NoC#2 link costs more than on the short one.
        assert!(m.flit_energy_pj(&spec.xbars[1]) > m.flit_energy_pj(&spec.xbars[0]));
    }

    #[test]
    fn flit_boosted_baseline_overheads_match_paper() {
        // Paper §VIII-A: 4× flit size → 18.5× NoC area, 4.2× static power.
        let m = model();
        let boosted = NocSpec::new(
            "flit4x",
            vec![XbarSpec::new(80, 32, 1, 12.3, 700.0).with_width_mult(4.0)],
        );
        let area = m.noc_area_mm2(&boosted) / m.noc_area_mm2(&baseline());
        let stat = m.noc_static_mw(&boosted) / m.noc_static_mw(&baseline());
        assert!((10.0..20.0).contains(&area), "flit-boosted area ratio {area}");
        assert!((3.5..4.5).contains(&stat), "flit-boosted static ratio {stat}");
    }

    #[test]
    #[should_panic(expected = "align")]
    fn dynamic_power_misaligned_flits_panics() {
        let m = model();
        m.noc_dynamic_mw(&baseline(), &[], 1.0);
    }

    #[test]
    fn absolute_scale_is_plausible() {
        let m = model();
        let a = m.noc_area_mm2(&baseline());
        assert!((5.0..25.0).contains(&a), "baseline NoC area {a} mm2");
        let p = m.noc_static_mw(&baseline());
        assert!((500.0..5_000.0).contains(&p), "baseline NoC static {p} mW");
    }
}
