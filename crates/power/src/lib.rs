//! Analytical area, power and frequency models.
//!
//! The paper evaluates NoC area/power with **DSENT** (22 nm) and cache area
//! with **CACTI 6.5**. Neither tool is available here, so this crate
//! provides closed-form stand-ins calibrated against the *relative* numbers
//! the paper prints, which are the only quantities its arguments use:
//!
//! * NoC area of Pr40 / Pr20 / Pr10 = −28% / −54% / −67% vs baseline
//!   (Fig 6), Sh40 = +69% (Section V-B), clustered C5 / C10 / C20 =
//!   −45% / −50% / −45% (Fig 12);
//! * NoC static power: Pr40 ≈ −4%, Sh40 strongly up, C10 ≈ −16%;
//! * maximum crossbar frequency falling with radix (Fig 13b): big 80×32 /
//!   80×40 crossbars cannot reach 2× the 700 MHz interconnect clock, while
//!   2×1 and 8×4 crossbars can;
//! * SRAM area where 40 DC-L1 banks beat 80 half-size banks by ~8% and the
//!   4×4×128 B node queues cost 6.25% of the L1 budget (Fig 18b).
//!
//! Calibration-fit tests live in each module.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cacti;
pub mod dsent;
pub mod energy;

pub use cacti::SramModel;
pub use dsent::{CrossbarModel, NocSpec, XbarSpec};
pub use energy::{EnergyReport, NocPowerBreakdown};
