//! Whole-run energy roll-up (paper Fig 18a).
//!
//! Combines the DSENT-like static and dynamic NoC power with a runtime to
//! produce the paper's reported metrics: total NoC power, NoC energy,
//! performance-per-watt and performance-per-energy (energy efficiency).

use crate::dsent::{CrossbarModel, NocSpec};

/// NoC power decomposed as in Fig 18a.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocPowerBreakdown {
    /// Static (leakage + clock) power, mW.
    pub static_mw: f64,
    /// Dynamic (traffic-proportional) power, mW.
    pub dynamic_mw: f64,
}

impl NocPowerBreakdown {
    /// Total NoC power, mW.
    pub fn total_mw(&self) -> f64 {
        self.static_mw + self.dynamic_mw
    }
}

/// Energy metrics for one simulated run of one design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Power breakdown.
    pub power: NocPowerBreakdown,
    /// Run length in seconds.
    pub seconds: f64,
    /// Instructions retired (for perf/W and perf/energy).
    pub instructions: u64,
    /// NoC energy in millijoules.
    pub energy_mj: f64,
}

impl EnergyReport {
    /// Builds a report from a design's NoC spec, its per-crossbar flit
    /// traffic, the run length and the retired instruction count.
    ///
    /// # Panics
    ///
    /// Panics if `flits` does not align with `spec.xbars` or
    /// `seconds <= 0` (propagated from the crossbar model).
    pub fn new(
        model: &CrossbarModel,
        spec: &NocSpec,
        flits: &[u64],
        seconds: f64,
        instructions: u64,
    ) -> Self {
        let power = NocPowerBreakdown {
            static_mw: model.noc_static_mw(spec),
            dynamic_mw: model.noc_dynamic_mw(spec, flits, seconds),
        };
        EnergyReport {
            power,
            seconds,
            instructions,
            energy_mj: power.total_mw() * seconds, // mW · s = mJ… (mW*s = µJ*1e3 = mJ)
        }
    }

    /// Instructions per second (raw performance).
    pub fn perf(&self) -> f64 {
        self.instructions as f64 / self.seconds
    }

    /// Performance per watt: instructions / second / W.
    pub fn perf_per_watt(&self) -> f64 {
        self.perf() / (self.power.total_mw() / 1000.0)
    }

    /// Performance per energy (energy efficiency): instructions / mJ.
    pub fn perf_per_energy(&self) -> f64 {
        self.instructions as f64 / self.energy_mj
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsent::XbarSpec;

    fn spec() -> NocSpec {
        NocSpec::new("t", vec![XbarSpec::new(8, 4, 10, 3.3, 1400.0)])
    }

    #[test]
    fn energy_is_power_times_time() {
        let m = CrossbarModel::default();
        let r = EnergyReport::new(&m, &spec(), &[1_000_000], 1e-3, 500_000);
        assert!((r.energy_mj - r.power.total_mw() * 1e-3).abs() < 1e-12);
        assert!(r.power.static_mw > 0.0 && r.power.dynamic_mw > 0.0);
    }

    #[test]
    fn faster_run_improves_energy_not_power() {
        let m = CrossbarModel::default();
        // Same work done in half the time: static energy halves.
        let slow = EnergyReport::new(&m, &spec(), &[1_000_000], 2e-3, 1_000_000);
        let fast = EnergyReport::new(&m, &spec(), &[1_000_000], 1e-3, 1_000_000);
        assert!(fast.energy_mj < slow.energy_mj);
        assert!(fast.perf_per_energy() > slow.perf_per_energy());
        assert!(fast.perf() > slow.perf());
    }

    #[test]
    fn perf_metrics_consistent() {
        let m = CrossbarModel::default();
        let r = EnergyReport::new(&m, &spec(), &[0], 1.0, 1_000);
        assert!((r.perf() - 1_000.0).abs() < 1e-9);
        let watts = r.power.total_mw() / 1000.0;
        assert!((r.perf_per_watt() - 1_000.0 / watts).abs() < 1e-6);
    }
}
