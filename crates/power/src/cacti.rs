//! CACTI-like SRAM area model.
//!
//! The paper uses CACTI 6.5 for two claims (Fig 18b):
//!
//! 1. the four 4-entry × 128 B queues added per DC-L1 node cost **6.25%**
//!    of the total baseline L1 cache area — which is exactly the storage
//!    ratio (40 nodes × 2 KB of queues over 80 × 16 KB of L1), so queue
//!    cells are modelled at cache-cell density;
//! 2. merging 80 small L1 banks into 40 double-size DC-L1 banks saves
//!    **8%** of cache area because half the peripheral/port overhead is
//!    paid — which pins the per-bank overhead coefficient.
//!
//! Model: `area(bank) = cap_bytes · A_CELL + A_BANK`, with `A_BANK` fit so
//! 80→40 banks at constant capacity saves 8%.


/// Analytical SRAM area model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramModel {
    /// Cell-array area per byte, mm².
    pub cell_mm2_per_byte: f64,
    /// Fixed per-bank overhead (decoders, sense amps, the data port), mm².
    pub bank_overhead_mm2: f64,
}

impl Default for SramModel {
    fn default() -> Self {
        // 22 nm-ish density: ~0.30 mm² per 16 KB array. The per-bank
        // overhead is fit to the paper's 8% saving for 80 → 40 banks at
        // constant total capacity (see `fits_paper_bank_saving`).
        let cell = 0.30 / (16.0 * 1024.0);
        SramModel {
            cell_mm2_per_byte: cell,
            // Derivation: saving = 40·h / (C·a + 80·h) = 0.08 with
            // C·a = total array area → h = 0.08·C·a / (40 − 0.08·80).
            // For C = 1.28 MB: h ≈ 0.00238 · C·a.
            bank_overhead_mm2: 0.00238 * (1280.0 * 1024.0) * cell,
        }
    }
}

impl SramModel {
    /// Area of `banks` SRAM banks of `bytes_per_bank` each, in mm².
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero.
    pub fn area_mm2(&self, banks: usize, bytes_per_bank: usize) -> f64 {
        assert!(banks > 0, "bank count must be nonzero");
        banks as f64 * (bytes_per_bank as f64 * self.cell_mm2_per_byte + self.bank_overhead_mm2)
    }

    /// Area of the four bounded queues in one DC-L1 node (paper Fig 3):
    /// 4 queues × `entries` × `entry_bytes`, modelled at cell density with
    /// no bank overhead (they are small latch/SRAM FIFOs).
    pub fn node_queues_mm2(&self, entries: usize, entry_bytes: usize) -> f64 {
        4.0 * (entries * entry_bytes) as f64 * self.cell_mm2_per_byte
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOTAL_L1: usize = 80 * 16 * 1024;

    #[test]
    fn fits_paper_bank_saving() {
        let m = SramModel::default();
        let base = m.area_mm2(80, TOTAL_L1 / 80);
        let dcl1 = m.area_mm2(40, TOTAL_L1 / 40);
        let saving = 1.0 - dcl1 / base;
        assert!((saving - 0.08).abs() < 0.005, "bank saving {saving}");
    }

    #[test]
    fn fits_paper_queue_overhead() {
        let m = SramModel::default();
        let base = m.area_mm2(80, TOTAL_L1 / 80);
        // 40 nodes, each with 4 queues of 4 × 128 B entries.
        let queues = 40.0 * m.node_queues_mm2(4, 128);
        let overhead = queues / base;
        // Paper: 6.25% of the baseline L1 cache area. Our baseline area
        // includes bank overhead, so the ratio lands slightly below the
        // pure storage ratio.
        assert!((0.05..0.07).contains(&overhead), "queue overhead {overhead}");
    }

    #[test]
    fn area_monotonic_in_capacity_and_banks() {
        let m = SramModel::default();
        assert!(m.area_mm2(1, 32 * 1024) > m.area_mm2(1, 16 * 1024));
        assert!(m.area_mm2(2, 16 * 1024) > m.area_mm2(1, 32 * 1024));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_banks_panics() {
        SramModel::default().area_mm2(0, 1024);
    }
}
