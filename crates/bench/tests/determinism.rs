//! Intra-point determinism acceptance: partitioning the machine into any
//! number of execution domains — worker threads on or off — must not move
//! a single byte of statistics, and must not change a point's memo-cache
//! identity.
//!
//! Builds the machines directly rather than through `runner::run_app` so
//! a memoized result can never satisfy (and so mask) the comparison: every
//! leg of the grid actually simulates.

use dcl1::{Design, GpuConfig, GpuSystem, SimOptions};
use dcl1_bench::runner::{self, RunRequest};
use dcl1_bench::Scale;
use dcl1_workloads::by_name;
use std::str::FromStr;

/// The designs the grid covers: a private aggregation (NoC#1 spanning
/// few crossbars), the fully shared design (one big crossbar, which
/// shards unaligned), and the clustered flagship (cluster-aligned).
const GRID_DESIGNS: [&str; 3] = ["pr4", "sh16", "sh16+c8+boost"];

/// Simulates C-BLK at smoke scale under `shards` execution domains and
/// returns the canonical byte dump of the full `RunStats` (every field,
/// fixed formatting — the same artifact sweep CI diffs).
fn canonical(design: &Design, shards: usize, force_threads: bool) -> String {
    let cfg = GpuConfig::default();
    let app = by_name("C-BLK").expect("C-BLK workload").scaled(1, 16);
    let opts =
        SimOptions { warmup_instructions: app.total_instructions() / 3, ..SimOptions::default() };
    let mut sys =
        GpuSystem::build(&cfg, design, &app, opts).unwrap_or_else(|e| panic!("build: {e}"));
    sys.set_shards(shards);
    assert_eq!(sys.shards(), shards.max(1), "{}: shard request clamped", design.name());
    if force_threads {
        sys.set_shard_threads(true);
    }
    let stats = sys.run();
    runner::canonical_stats_dump(&[(design.name(), stats)])
}

#[test]
fn sharded_stats_match_sequential_across_grid() {
    for name in GRID_DESIGNS {
        let design = Design::from_str(name).unwrap_or_else(|e| panic!("{name}: {e}"));
        let sequential = canonical(&design, 1, false);
        for shards in [2, 4, 8] {
            let sharded = canonical(&design, shards, false);
            assert_eq!(
                sharded, sequential,
                "{name}: stats differ between 1 and {shards} shards"
            );
        }
    }
}

#[test]
fn forced_thread_pool_matches_sequential() {
    // Threads default off on small hosts; forcing the pool on exercises
    // the real submit/barrier/merge path regardless of core count.
    let design = Design::from_str("sh16+c8+boost").expect("flagship parses");
    let sequential = canonical(&design, 1, false);
    for shards in [2, 4] {
        let pooled = canonical(&design, shards, true);
        assert_eq!(pooled, sequential, "thread pool changed stats at {shards} shards");
    }
}

#[test]
fn infeasible_topologies_clamp_to_one_domain() {
    let cfg = GpuConfig::default();
    let app = by_name("C-BLK").expect("C-BLK workload").scaled(1, 16);
    let mut sys = GpuSystem::build(&cfg, &Design::IdealSingleL1, &app, SimOptions::default())
        .expect("build ideal");
    sys.set_shards(8);
    assert_eq!(sys.shards(), 1, "ideal single L1 must stay sequential");
}

#[test]
fn memo_key_is_independent_of_shard_count() {
    // The shard count is an execution strategy, not a simulation input:
    // a sharded and a sequential run share one cache entry, which is only
    // sound because their stats are byte-identical (tests above).
    let design = Design::from_str("pr4").expect("pr4 parses");
    let req = RunRequest::new(by_name("C-BLK").expect("C-BLK workload"), design);
    runner::set_shard_override(1);
    let key_seq = runner::memo_key_hex(&req, Scale::Smoke);
    runner::set_shard_override(8);
    let key_sharded = runner::memo_key_hex(&req, Scale::Smoke);
    runner::set_shard_override(0);
    assert_eq!(key_seq, key_sharded, "shard override leaked into the memo key");
}
