//! Satellite: the chaos corruption census must land on real cache entries.
//!
//! `Chaos` aims its post-write corruption at the v3 fan-out disk layout
//! and at the shared tier's write-back copy. If the schema moves and the
//! injector keeps scribbling on paths nobody reads, the corruption
//! recovery path silently stops being tested — a green chaos suite over a
//! dead fault injector. This census closes that hole: every point the
//! engine claims to corrupt must resolve to a real bucketed v3 entry that
//! was (a) detected and quarantined locally, (b) healed by a re-store,
//! and (c) left detectably corrupt in the shared tier, whose rejection is
//! each reader's own job (healing is local-only by design).

use dcl1::{GpuConfig, SimOptions};
use dcl1_bench::{grid, runner, Scale};
use dcl1_common::checksum;
use dcl1_resilience::Chaos;
use std::path::{Path, PathBuf};
use std::process::Command;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dcl1-census-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The apps this census sweeps, each restricted to two designs so the
/// in-test request list models the sweep's point set exactly.
const CENSUS_APPS: [&str; 4] = ["C-BLK", "C-RAY", "C-BFS", "C-NN"];

/// The exact requests `perf_sweep --only=<app> --design=pr4 --design=sh16`
/// runs (fast-forward defaults on), so `memo_key_hex` yields the same
/// keys the sweep writes under.
fn census_requests() -> Vec<runner::RunRequest> {
    let cfg = GpuConfig::default();
    let designs = grid::parse_designs(&["pr4".to_string(), "sh16".to_string()], &cfg)
        .expect("census designs parse");
    let only: Vec<String> = CENSUS_APPS.iter().map(|a| (*a).to_string()).collect();
    let opts = SimOptions { fast_forward: true, ..SimOptions::default() };
    grid::build_grid(&designs, &only, &cfg, opts)
}

/// Whether the file at `path` is an intact cache entry: a
/// `checksum <hex>` header whose digest verifies the body. Mirrors the
/// disk tier's own load-time check.
fn entry_intact(path: &Path) -> bool {
    let Ok(text) = std::fs::read_to_string(path) else { return false };
    let Some(rest) = text.strip_prefix("checksum ") else { return false };
    let Some((digest, body)) = rest.split_once('\n') else { return false };
    checksum::verify_hex(body.as_bytes(), digest)
}

#[test]
fn chaos_corruption_census_lands_on_v3_bucketed_entries() {
    let reqs = census_requests();
    let labels: Vec<String> = reqs.iter().map(runner::point_label).collect();
    assert_eq!(labels.len(), 8, "census subset is 4 apps x 2 designs");

    // A seed that corrupts at least one entry and quarantines nothing, so
    // the sweep exits 0 with every point completed and healed.
    let seed = (0..200_000u64)
        .find(|&s| {
            let c = Chaos::new(s).census(&labels);
            c.persistent_panics == 0 && c.corruptions >= 1
        })
        .expect("no corruption seed in range");
    let census = Chaos::new(seed).census(&labels);
    let victims = Chaos::new(seed).corruption_points(&labels);
    assert_eq!(victims.len(), census.corruptions, "census and point list disagree");

    let dir = scratch("sweep");
    let json = dir.join("sweep.json");
    let mut args: Vec<String> = CENSUS_APPS.iter().map(|a| format!("--only={a}")).collect();
    args.push("--design=pr4".to_string());
    args.push("--design=sh16".to_string());
    args.push(format!("--chaos={seed}"));
    args.push(format!("--json={}", json.display()));
    let out = Command::new(env!("CARGO_BIN_EXE_perf_sweep"))
        .args(&args)
        .env("DCL1_SCALE", "smoke")
        .env("DCL1_CACHE_DIR", dir.join("cache"))
        .env("DCL1_CACHE_SHARED_DIR", dir.join("shared"))
        .current_dir(&dir)
        .output()
        .expect("spawn perf_sweep");
    assert!(
        out.status.success(),
        "chaos sweep (seed {seed}) failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Every corruption the engine claims must have landed on the real
    // fan-out layout: healed local entry, still-corrupt shared copy.
    for point in &victims {
        let req = reqs
            .iter()
            .find(|r| &runner::point_label(r) == point)
            .unwrap_or_else(|| panic!("corruption point {point} not in the census grid"));
        let key = runner::memo_key_hex(req, Scale::Smoke);

        let local = dir.join("cache").join("v3").join(&key[..2]).join(format!("{key}.stats"));
        assert!(local.is_file(), "{point}: no v3 bucketed entry at {}", local.display());
        assert!(
            entry_intact(&local),
            "{point}: local entry not healed after corruption recovery"
        );

        let shared = dir.join("shared").join("v3").join(&key[..2]).join(format!("{key}.stats"));
        assert!(shared.is_file(), "{point}: no shared write-back at {}", shared.display());
        assert!(
            !entry_intact(&shared),
            "{point}: shared copy passes its checksum — the injection missed the shared tier"
        );
    }

    // The recovery ledger saw exactly the injected corruptions (each one
    // detected once, locally), and the quarantine dir holds the damaged
    // originals.
    let report = std::fs::read_to_string(&json).expect("sweep report");
    assert!(
        report.contains(&format!("\"cache_corruptions\": {}", census.corruptions)),
        "seed {seed}: ledger disagrees with the census ({} expected):\n{report}",
        census.corruptions
    );
    let qdir = dir.join("cache").join("v3").join("quarantine");
    let quarantined = std::fs::read_dir(&qdir)
        .map(|it| it.filter_map(Result::ok).count())
        .unwrap_or(0);
    assert!(
        quarantined >= census.corruptions,
        "seed {seed}: {} quarantined file(s), census says {}",
        quarantined,
        census.corruptions
    );

    let _ = std::fs::remove_dir_all(&dir);
}
