//! `--check` acceptance: over the three CI design points, a run under the
//! conservation-invariant harness (a) completes with every epoch sweep
//! passing and (b) produces statistics byte-identical to an unchecked run
//! of the same point.
//!
//! Builds the machines directly rather than through `runner::run_app` so
//! the test neither flips the process-global check mode (which would race
//! with other tests in this binary) nor touches the on-disk memo.

use dcl1::{Design, GpuConfig, GpuSystem, RunStats, SimOptions};
use dcl1_workloads::by_name;
use std::str::FromStr;

/// The design points the CI smoke job exercises with `--check`.
const CI_POINTS: [&str; 3] = ["pr4", "sh16", "sh16+c8+boost"];

/// Simulates C-BLK at smoke scale (1/16 traces, warmup over the first
/// third — the same shaping `runner::run_app` applies), optionally under
/// the invariant harness. Returns the stats and the epochs checked.
fn simulate(design: &Design, check: bool) -> (RunStats, u64) {
    let cfg = GpuConfig::default();
    let app = by_name("C-BLK").expect("C-BLK workload").scaled(1, 16);
    let opts =
        SimOptions { warmup_instructions: app.total_instructions() / 3, ..SimOptions::default() };
    let mut sys =
        GpuSystem::build(&cfg, design, &app, opts).unwrap_or_else(|e| panic!("build: {e}"));
    if check {
        sys.enable_check();
    }
    let stats = sys.run();
    let epochs = sys.checker().map_or(0, |ck| ck.epochs_checked);
    (stats, epochs)
}

#[test]
fn checked_runs_are_byte_identical_and_sweep_invariants() {
    for name in CI_POINTS {
        let design = Design::from_str(name).unwrap_or_else(|e| panic!("{name}: {e}"));
        let (plain, _) = simulate(&design, false);
        let (checked, epochs) = simulate(&design, true);
        assert_eq!(checked, plain, "{name}: --check changed the statistics");
        // At least the drain sweep must have run; real runs also cross
        // many epoch boundaries.
        assert!(epochs > 0, "{name}: invariant harness never swept");
    }
}
