//! End-to-end supervision acceptance against the real `perf_sweep`
//! binary: a killed sweep resumes from its checkpoint journal to
//! byte-identical statistics, a chaos-riddled sweep converges to the
//! fault-free bytes, and with chaos off the whole layer is a no-op
//! (clean recovery counters, unchanged on-disk cache schema).
//!
//! Each test spawns the binary with its own `DCL1_CACHE_DIR` and scratch
//! directory, so nothing here races the in-process runner tests or a
//! developer's real cache.

use dcl1_resilience::Chaos;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

/// Scratch directory unique to one test invocation.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dcl1-resilience-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// A `perf_sweep` invocation at smoke scale with an isolated cache.
fn sweep_cmd(dir: &Path, args: &[String]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_perf_sweep"));
    cmd.args(args)
        .env("DCL1_SCALE", "smoke")
        .env("DCL1_CACHE_DIR", dir.join("cache"))
        .current_dir(dir);
    cmd
}

/// Runs the command to completion, panicking with its stderr on spawn
/// failure. Returns (exit-ok, stdout, stderr).
fn run(mut cmd: Command) -> (bool, String, String) {
    let out = cmd.output().expect("spawn perf_sweep");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// The apps the chaos test sweeps (pinned one `--only` each, so the label
/// set below models the sweep's point set exactly).
const CHAOS_APPS: [&str; 4] = ["C-BLK", "C-RAY", "C-BFS", "C-NN"];

/// The point labels the chaos subset produces, in the same form the
/// runner hands to the chaos engine.
fn subset_labels() -> Vec<String> {
    CHAOS_APPS
        .iter()
        .flat_map(|app| ["Pr4", "Sh16"].iter().map(move |d| format!("{app}/{d}")))
        .collect()
}

#[test]
fn killed_sweep_resumes_to_byte_identical_stats() {
    let dir = scratch("resume");
    let journal = dir.join("journal.jsonl");
    let common = || {
        vec![
            "--only=C-".to_string(),
            "--design=pr4".to_string(),
            "--design=sh16".to_string(),
            "--workers=1".to_string(),
        ]
    };

    // Reference: one uninterrupted sweep.
    let ref_stats = dir.join("ref-stats.txt");
    let mut args = common();
    args.push(format!("--stats-out={}", ref_stats.display()));
    args.push(format!("--json={}", dir.join("ref.json").display()));
    let (ok, _, err) = run(sweep_cmd(&dir, &args));
    assert!(ok, "reference sweep failed:\n{err}");

    // Victim: same sweep with a journal, killed once the journal shows
    // at least one checkpointed point. (If the sweep finishes before the
    // kill lands, the journal simply holds every point — the resume
    // contract below is identical.)
    let mut args = common();
    args.push(format!("--journal={}", journal.display()));
    let mut child = sweep_cmd(&dir, &args)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn victim sweep");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    loop {
        let lines =
            std::fs::read_to_string(&journal).map(|s| s.lines().count()).unwrap_or(0);
        let exited = child.try_wait().expect("poll victim").is_some();
        if lines >= 1 || exited {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "victim never checkpointed");
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let _ = child.kill();
    let _ = child.wait();
    let checkpointed = read(&journal).lines().count();
    assert!(checkpointed >= 1, "journal is empty after the kill");

    // Resume: only unfinished points are resimulated; the merged output
    // must be byte-identical to the uninterrupted reference.
    let resumed_stats = dir.join("resumed-stats.txt");
    let mut args = common();
    args.push(format!("--resume={}", journal.display()));
    args.push(format!("--stats-out={}", resumed_stats.display()));
    args.push(format!("--json={}", dir.join("resumed.json").display()));
    let (ok, _, err) = run(sweep_cmd(&dir, &args));
    assert!(ok, "resumed sweep failed:\n{err}");
    assert!(
        err.contains(&format!("resumed {checkpointed} point(s)")),
        "banner does not report the restored checkpoint: {err}"
    );
    assert_eq!(
        read(&ref_stats),
        read(&resumed_stats),
        "resume changed the statistics"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaos_sweep_converges_to_fault_free_bytes() {
    let dir = scratch("chaos");
    let labels = subset_labels();
    // A seed that injects recoverable faults (no persistent panics) into
    // this subset, so every point completes and the dumps must match
    // byte for byte.
    let seed = (0..200_000u64)
        .find(|&s| {
            let c = Chaos::new(s).census(&labels);
            c.persistent_panics == 0 && c.total() >= 2
        })
        .expect("no recoverable-fault seed in range");

    let common = || {
        let mut v: Vec<String> = CHAOS_APPS.iter().map(|a| format!("--only={a}")).collect();
        v.push("--design=pr4".to_string());
        v.push("--design=sh16".to_string());
        v
    };

    let ref_stats = dir.join("ref-stats.txt");
    let mut args = common();
    args.push(format!("--stats-out={}", ref_stats.display()));
    args.push(format!("--json={}", dir.join("ref.json").display()));
    let (ok, _, err) = run(sweep_cmd(&dir, &args));
    assert!(ok, "fault-free sweep failed:\n{err}");

    let chaos_stats = dir.join("chaos-stats.txt");
    let chaos_json = dir.join("chaos.json");
    let mut args = common();
    args.push(format!("--chaos={seed}"));
    args.push(format!("--stats-out={}", chaos_stats.display()));
    args.push(format!("--json={}", chaos_json.display()));
    let (ok, _, err) = run(sweep_cmd(&dir, &args));
    assert!(ok, "chaos sweep (seed {seed}) did not exit 0:\n{err}");

    assert_eq!(
        read(&ref_stats),
        read(&chaos_stats),
        "seed {seed}: chaos changed the statistics"
    );
    let report = read(&chaos_json);
    assert!(report.contains(&format!("\"chaos_seed\": {seed}")), "seed missing from report");
    let census = Chaos::new(seed).census(&labels);
    if census.transient_panics + census.stalls > 0 {
        assert!(!report.contains("\"retries\": 0"), "faults injected but no retries recorded");
    }
    if census.corruptions > 0 {
        assert!(
            !report.contains("\"cache_corruptions\": 0"),
            "cache corruption injected but not detected"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flat_cache_entries_migrate_into_fanout_on_reopen() {
    let dir = scratch("migrate");
    let args = |json: &Path| {
        vec![
            "--only=C-BLK".to_string(),
            "--design=pr4".to_string(),
            format!("--json={}", json.display()),
        ]
    };
    let (ok, _, err) = run(sweep_cmd(&dir, &args(&dir.join("cold.json"))));
    assert!(ok, "cold sweep failed:\n{err}");

    // Rewind the layout to the legacy flat v3 scheme: hoist the entry out
    // of its fan-out bucket and plant stale schema dirs beside v3.
    let v3 = dir.join("cache").join("v3");
    let mut hoisted = 0;
    for bucket in std::fs::read_dir(&v3).expect("v3 exists").map(|e| e.expect("dir entry").path())
    {
        if bucket.is_dir() && bucket.file_name().is_some_and(|n| n.len() == 2) {
            for entry in
                std::fs::read_dir(&bucket).expect("bucket").map(|e| e.expect("bucket entry").path())
            {
                std::fs::rename(&entry, v3.join(entry.file_name().expect("entry name")))
                    .expect("hoist entry to flat layout");
                hoisted += 1;
            }
            std::fs::remove_dir(&bucket).expect("remove emptied bucket");
        }
    }
    assert_eq!(hoisted, 1, "the one-point sweep must have cached exactly one entry");
    for stale in ["v1", "v2"] {
        let d = dir.join("cache").join(stale);
        std::fs::create_dir_all(&d).expect("stale schema dir");
        std::fs::write(d.join("junk.stats"), "junk").expect("stale entry");
    }

    // Reopening migrates (renames) the flat entry into its bucket, purges
    // the stale schema dirs, and serves the point from disk — zero
    // resimulation. (`--keep-cache` skips the sweep's default cache clear.)
    let json = dir.join("warm.json");
    let mut warm_args = args(&json);
    warm_args.push("--keep-cache".to_string());
    let (ok, _, err) = run(sweep_cmd(&dir, &warm_args));
    assert!(ok, "warm sweep failed:\n{err}");
    let report = read(&json);
    for needle in
        ["\"memo.migrated_entries\": 1", "\"memo.disk_hits\": 1", "\"memo.simulated\": 0"]
    {
        assert!(report.contains(needle), "{needle} missing from warm report:\n{report}");
    }
    let flat_leftovers = std::fs::read_dir(&v3)
        .expect("v3 exists")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.is_file())
        .count();
    assert_eq!(flat_leftovers, 0, "flat entries must be renamed away, not copied");
    assert!(
        !dir.join("cache").join("v1").exists() && !dir.join("cache").join("v2").exists(),
        "stale schema dirs must be purged on open"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaos_off_supervision_is_a_no_op() {
    let dir = scratch("noop");
    let json = dir.join("sweep.json");
    let args = vec![
        "--only=C-BLK".to_string(),
        "--design=pr4".to_string(),
        format!("--json={}", json.display()),
    ];
    let (ok, _, err) = run(sweep_cmd(&dir, &args));
    assert!(ok, "plain sweep failed:\n{err}");

    let report = read(&json);
    assert!(report.contains("\"chaos_seed\": null"), "chaos armed without a flag");
    for field in
        ["retries", "quarantines", "cache_corruptions", "livelocks", "deadlines", "resumed_points"]
    {
        assert!(
            report.contains(&format!("\"{field}\": 0")),
            "recovery counter {field} nonzero on a clean run:\n{report}"
        );
    }
    assert!(report.contains("\"quarantined\": [\n  ]"), "quarantine list not empty");

    // Entries live under the current schema-version directory, fanned out
    // into two-hex-digit buckets, and the integrity header is the only
    // addition to the body.
    let v3 = dir.join("cache").join("v3");
    let entries: Vec<PathBuf> = std::fs::read_dir(&v3)
        .expect("v3 cache dir exists")
        .flat_map(|e| {
            let p = e.expect("dir entry").path();
            if p.is_dir() {
                std::fs::read_dir(&p)
                    .expect("bucket dir")
                    .map(|e| e.expect("bucket entry").path())
                    .collect::<Vec<_>>()
            } else {
                vec![p]
            }
        })
        .filter(|p| p.extension().is_some_and(|x| x == "stats"))
        .collect();
    assert_eq!(entries.len(), 1, "expected exactly one cached point in {}", v3.display());
    let entry = read(&entries[0]);
    let first = entry.lines().next().unwrap_or_default();
    assert!(
        first.starts_with("checksum ") && first.len() == "checksum ".len() + 16,
        "entry header is not a 16-hex checksum line: {first:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
