//! Registry merge-determinism acceptance: a machine's counter-registry
//! snapshot walks components in global order, so partitioning the machine
//! into any number of execution domains must not move a single byte of
//! the rendered registry — and enabling the registry (or the profiler, or
//! a progress hook) must not move a single byte of the statistics.
//!
//! Builds machines directly rather than through `runner::run_app` so a
//! memoized result can never satisfy (and so mask) the comparison.

use dcl1::{Design, GpuConfig, GpuSystem, ProgressHook, SimOptions};
use dcl1_bench::runner;
use dcl1_workloads::by_name;
use std::str::FromStr;

/// The same grid the stats-determinism suite covers: a private
/// aggregation, the fully shared design (shards unaligned), and the
/// clustered flagship (cluster-aligned).
const GRID_DESIGNS: [&str; 3] = ["pr4", "sh16", "sh16+c8+boost"];

/// Builds the C-BLK smoke-scale point under `shards` domains and hands the
/// machine to `f` (the workload must outlive the machine, so the scope
/// lives here).
fn with_system<R>(design: &Design, shards: usize, f: impl FnOnce(&mut GpuSystem<'_>) -> R) -> R {
    let cfg = GpuConfig::default();
    let app = by_name("C-BLK").expect("C-BLK workload").scaled(1, 16);
    let opts =
        SimOptions { warmup_instructions: app.total_instructions() / 3, ..SimOptions::default() };
    let mut sys =
        GpuSystem::build(&cfg, design, &app, opts).unwrap_or_else(|e| panic!("build: {e}"));
    sys.set_shards(shards);
    f(&mut sys)
}

/// Runs the point under `shards` domains with the registry on and returns
/// the rendered registry snapshot (text form — every counter, gauge, and
/// histogram bucket).
fn registry_render(design: &Design, shards: usize) -> String {
    with_system(design, shards, |sys| {
        sys.enable_registry();
        sys.run();
        let mm = sys.take_metrics().expect("registry was enabled");
        let mut out = String::new();
        mm.registry().render_into(&mut out);
        assert!(!out.is_empty(), "{}: empty registry render", design.name());
        out
    })
}

#[test]
fn registry_snapshot_is_partition_independent_across_grid() {
    for name in GRID_DESIGNS {
        let design = Design::from_str(name).unwrap_or_else(|e| panic!("{name}: {e}"));
        let sequential = registry_render(&design, 1);
        for shards in [2, 4, 8] {
            let sharded = registry_render(&design, shards);
            assert_eq!(
                sharded, sequential,
                "{name}: registry snapshot differs between 1 and {shards} shards"
            );
        }
    }
}

#[test]
fn observability_does_not_move_statistics() {
    // The hard gate: registry + profiler + progress hook enabled vs
    // everything off — statistics must be byte-identical.
    let design = Design::from_str("sh16+c8+boost").expect("flagship parses");
    let baseline = with_system(&design, 4, |sys| {
        runner::canonical_stats_dump(&[(design.name(), sys.run())])
    });

    let (dump, profile_nanos) = with_system(&design, 4, |sys| {
        sys.enable_registry();
        sys.enable_profiler();
        // Attaching a hook changes the stepping path (the fast-forward
        // clamp); a smoke run ends before the first callback boundary, so
        // the body never fires — the clamp alone must stay neutral.
        sys.set_progress_hook(ProgressHook::new(|_cycle, _retired| {}));
        let stats = sys.run();
        let dump = runner::canonical_stats_dump(&[(design.name(), stats)]);
        let profile = sys.take_profiler().expect("profiler was enabled");
        (dump, profile.total_nanos())
    });
    assert_eq!(dump, baseline, "observability moved statistics");
    assert!(profile_nanos > 0, "profiler recorded nothing");
}

#[test]
fn registry_snapshot_reflects_run_totals() {
    let design = Design::from_str("pr4").expect("pr4 parses");
    with_system(&design, 2, |sys| {
        sys.enable_registry();
        let stats = sys.run();
        let mm = sys.take_metrics().expect("registry was enabled");
        let reg = mm.registry();
        assert_eq!(reg.get("gpu.instructions"), Some(stats.instructions));
        assert_eq!(reg.get("dcl1.l1_accesses"), Some(stats.l1_accesses));
        assert_eq!(reg.get("dcl1.l1_misses"), Some(stats.l1_misses));
        assert_eq!(reg.get("mem.l2_accesses"), Some(stats.l2_accesses));
        assert!(reg.get("dcl1.cycles").is_some_and(|c| c > 0));
        // Flow conservation at drain: everything produced was consumed.
        assert_eq!(reg.get("shard.txns_produced"), reg.get("shard.txns_consumed"));
        assert_eq!(reg.get("shard.txns_in_flight"), Some(0));
    });
}
