//! Satellite: single-flight leadership must survive a panicking leader.
//!
//! The sweep runner wraps every point in `supervise()` (panic containment)
//! and in the store's single-flight machinery (duplicate suppression). The
//! dangerous interleaving is their composition: a point that panics *while
//! holding the flight slot*. The slot's `FlightGuard` must release every
//! blocked waiter during the unwind — before `supervise` even decides to
//! retry — and the re-elected leader must publish an entry byte-identical
//! to a run that never panicked, or the crash would silently change
//! results.

use dcl1_resilience::{supervise, RetryPolicy};
use dcl1_store::{Codec, DiskTierConfig, Flight, ResultStore, StoreConfig};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct TextCodec;

impl Codec<String> for TextCodec {
    fn encode(&self, v: &String) -> String {
        v.clone()
    }
    fn decode(&self, body: &str) -> Option<String> {
        Some(body.to_string())
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dcl1-flight-sup-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open_store(root: PathBuf) -> ResultStore<String> {
    ResultStore::open(
        &StoreConfig {
            mem_budget_bytes: 1 << 16,
            mem_shards: 1,
            disk: Some(DiskTierConfig {
                root,
                budget_bytes: None,
                migrate_flat: false,
                purge_stale_siblings: false,
            }),
            shared: None,
            shared_writeback: false,
        },
        TextCodec,
    )
}

#[test]
fn panicking_leader_inside_supervise_releases_waiters_and_reelects() {
    let dir = scratch("reelect");
    let store = Arc::new(open_store(dir.join("cache")));
    let reference = open_store(dir.join("reference"));

    const KEY: u128 = 0x00dc_1f17;
    let value = "C-BLK/baseline ipc=1.2345 cycles=9876\n".to_string();

    // The clean-run entry: what the disk must hold when no leader panics.
    reference.insert(KEY, &value);
    let want = std::fs::read(reference.disk_entry_path(KEY).expect("reference has a disk tier"))
        .expect("reference entry written");

    let leader_holding = Arc::new(AtomicBool::new(false));
    let policy = RetryPolicy { max_attempts: 3, backoff: Duration::ZERO };
    let mut attempts_seen = 0u32;

    std::thread::scope(|s| {
        let waiter = {
            let store = Arc::clone(&store);
            let leader_holding = Arc::clone(&leader_holding);
            s.spawn(move || {
                while !leader_holding.load(Ordering::SeqCst) {
                    std::thread::yield_now();
                }
                // Blocks behind the doomed leader. Only the guard's Drop,
                // running during the unwind, can let this thread return —
                // a hang here is the regression this test exists to catch.
                drop(store.begin_flight(KEY));
            })
        };

        let out = supervise(
            "C-BLK/baseline",
            &policy,
            |attempt| {
                attempts_seen = attempt + 1;
                match store.begin_flight(KEY) {
                    Flight::Leader(_guard) => {
                        if attempt == 0 {
                            leader_holding.store(true, Ordering::SeqCst);
                            // Let the waiter actually queue behind the slot
                            // before the leader dies, so the release path
                            // under test (Drop waking a *blocked* thread)
                            // is the one exercised.
                            let t0 = Instant::now();
                            while store.stats().flight_waits == 0
                                && t0.elapsed() < Duration::from_secs(10)
                            {
                                std::thread::yield_now();
                            }
                            panic!("chaos: leader dies holding the flight slot");
                        }
                        store.insert(KEY, &value);
                        Ok(value.clone())
                    }
                    // The panicked attempt's guard removed the key from the
                    // in-flight map, and the waiter never re-enters; the
                    // retry must therefore win a fresh election.
                    Flight::Waited => panic!("retry found the dead leader's slot still held"),
                }
            },
            |_| {},
        );
        assert_eq!(
            out.expect("supervisor must recover the point via re-election"),
            value
        );
        waiter.join().expect("waiter must be released by the guard's Drop");
    });

    assert_eq!(attempts_seen, 2, "exactly one retry after the contained panic");
    assert_eq!(
        store.stats().flight_waits,
        1,
        "the waiter must have blocked behind the doomed leader"
    );

    // Byte-identical re-election: the crash must not leak into the entry.
    let got = std::fs::read(store.disk_entry_path(KEY).expect("store has a disk tier"))
        .expect("re-elected leader published the entry");
    assert_eq!(got, want, "re-elected leader's entry differs from the clean run");

    let _ = std::fs::remove_dir_all(&dir);
}
