//! Runs every experiment module in one process (sharing the memoized
//! simulation cache across figures) and prints all tables.
//!
//! Usage: `DCL1_SCALE=full cargo run --release -p dcl1-bench --bin experiments [figNN ...]`
//!
//! `--workers=N` sets intra-point parallelism: each machine is sharded
//! across N execution domains and available/N points run concurrently
//! (default: 4 shards, one point-thread per available core). Statistics
//! are byte-identical at any setting.
//!
//! Observability: `--trace[=PATH]`, `--metrics[=PATH]`,
//! `--metrics-interval=N` and `--observe=APP/DESIGN` additionally run one
//! instrumented point and print its stall-attribution table;
//! `--progress[=PATH]` streams per-point lifecycle events as JSONL (see
//! `dcl1_bench::ObsCli`).
//!
//! Supervision: `--journal[=PATH]` checkpoints each completed point,
//! `--resume[=PATH]` preloads the journal so a killed run resimulates
//! only unfinished points, and `--chaos=SEED` / `--deadline=SECS` /
//! `--watchdog=CYCLES` configure fault injection and hang detection (see
//! `dcl1_bench::ResCli`).

use dcl1_bench::experiments as ex;
use dcl1_bench::{ObsCli, ResCli, Scale, Table};

/// One experiment entry point.
type Experiment = fn(Scale) -> Vec<Table>;

fn main() {
    let scale = Scale::from_env();
    let mut filter: Vec<String> = std::env::args().skip(1).collect();
    let obs = ObsCli::parse(&mut filter);
    let res = ResCli::parse(&mut filter);
    eprintln!("[experiments] {}", res.banner());
    obs.install_progress();
    filter.retain(|a| match a.strip_prefix("--workers=") {
        None => true,
        Some(w) => {
            match w.parse::<usize>() {
                Ok(n) if n > 0 => {
                    dcl1_bench::runner::set_shard_override(n);
                    let avail =
                        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
                    dcl1_bench::runner::set_worker_override((avail / n).max(1));
                }
                _ => {
                    eprintln!("experiments: bad --workers={w}: expected a positive integer");
                    std::process::exit(2);
                }
            }
            false
        }
    });
    obs.run_if_enabled(scale);
    let all: Vec<(&str, Experiment)> = vec![
        ("tab1", ex::tab1_private_configs::run),
        ("fig01", ex::fig01_motivation::run),
        ("fig02", ex::fig02_utilization::run),
        ("fig04", ex::fig04_private::run),
        ("fig06", ex::fig06_noc_area::run),
        ("fig08", ex::fig08_shared::run),
        ("fig09", ex::fig09_shared_insensitive::run),
        ("fig11", ex::fig11_clustered::run),
        ("fig12", ex::fig12_clustered_noc::run),
        ("fig13", ex::fig13_boost::run),
        ("fig14", ex::fig14_final::run),
        ("fig15", ex::fig15_scurve::run),
        ("fig16", ex::fig16_missrate::run),
        ("fig17", ex::fig17_port_utilization::run),
        ("fig18", ex::fig18_energy_area::run),
        ("fig19", ex::fig19_sensitivity::run),
        ("ablations", ex::ablations::run),
        ("ext_scaling", ex::ext_scaling::run),
    ];
    let t0 = std::time::Instant::now();
    for (name, run) in all {
        if !filter.is_empty() && !filter.iter().any(|f| f == name) {
            continue;
        }
        let t = std::time::Instant::now();
        for table in run(scale) {
            println!("{table}");
        }
        eprintln!("[{name}] done in {:.1?} (total {:.1?})", t.elapsed(), t0.elapsed());
    }
    println!("{}", dcl1_bench::runner::throughput_summary());
    let recovery = dcl1_bench::runner::recovery_log();
    if !recovery.is_clean() {
        eprintln!(
            "[experiments] recovery: {} retries, {} quarantines, {} cache corruptions, \
             {} livelocks, {} deadlines, {} resumed",
            recovery.retries,
            recovery.quarantines,
            recovery.cache_corruptions,
            recovery.livelocks,
            recovery.deadlines,
            recovery.resumed_points
        );
        for line in recovery.events() {
            eprintln!("[experiments]   {line}");
        }
    }
}
