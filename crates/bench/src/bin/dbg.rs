//! Performance-debugging tool: runs selected (app, design) points and
//! dumps internal pressure counters.
//!
//! Usage: `DCL1_SCALE=smoke cargo run --release -p dcl1-bench --bin dbg [app:design ...]`

// Debugging tool, not sim state: panics and small casts are acceptable.
#![allow(clippy::unwrap_used, clippy::cast_possible_truncation)]

use dcl1::{Design, GpuConfig, GpuSystem, SimOptions};
use dcl1_bench::Scale;

fn main() {
    let scale = Scale::from_env();
    let (num, den) = scale.ratio();
    let cap: u64 = std::env::var("DBG_CAP").ok().and_then(|v| v.parse().ok()).unwrap_or(4_000_000);
    for (app, d, big_l1) in [
        ("P-2MM", Design::Baseline, false),
        ("P-2MM", Design::Shared { nodes: 40 }, false),
    ] {
        let spec = dcl1_workloads::by_name(app).unwrap().scaled(num, den);
        let mut cfg = GpuConfig::default();
        if big_l1 {
            cfg.l1_bytes *= 16;
        }
        let opts = SimOptions {
            max_cycles: cap,
            warmup_instructions: spec.total_instructions() / 3,
            ..SimOptions::default()
        };
        let mut sys = GpuSystem::build(&cfg, &d, &spec, opts).unwrap();
        let t0 = std::time::Instant::now();
        let s = sys.run();
        println!(
            "{app:12}{} {:16} cycles={:9} instr={:9} (expected {:9}) ipc={:5.2} miss={:.2} rtt={:6.1} wall={:?}",
            if big_l1 { "(16x)" } else { "" }, s.design, s.cycles, s.instructions, spec.total_instructions(),
            s.ipc(), s.l1_miss_rate(), s.mean_load_rtt, t0.elapsed()
        );
        print!("{}", sys.debug_snapshot());
        println!("---");
    }
}
