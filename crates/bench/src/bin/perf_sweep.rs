//! Cold-cache throughput benchmark: the all-apps × four-design sweep used
//! to score simulator performance work.
//!
//! Clears the on-disk memo first so every point is actually simulated,
//! then prints per-point timings and the aggregate throughput table, and
//! writes the same data machine-readably to `BENCH_sweep.json`.
//!
//! The sweep is supervised: worker panics and watchdog-detected hangs are
//! retried with deterministic backoff and, on exhaustion, quarantined —
//! the sweep completes, the quarantined points are listed in the JSON
//! report, and the exit code is nonzero only when a point failed without
//! fault injection armed.
//!
//! Usage:
//!   DCL1_SCALE=smoke cargo run --release -p dcl1-bench --bin perf_sweep
//!   ... --no-fast-forward   # disable the idle fast-forward (A/B baseline)
//!   ... --keep-cache        # skip the cache clear (measure warm behavior)
//!   ... --json=PATH         # where to write the JSON report
//!   ... --stats-out=PATH    # also write the canonical per-point stats
//!                           # dump (byte-comparable across runs)
//!   ... --only=SUBSTR       # keep only points whose "APP/DESIGN" name
//!                           # contains SUBSTR (repeatable)
//!   ... --workers=N         # intra-point parallelism: shard each machine
//!                           # across N execution domains and run
//!                           # available/N points concurrently (default:
//!                           # 4 shards, one point-thread per available
//!                           # core); recorded in the JSON
//!   ... --design=NAME       # sweep these designs instead of the default
//!                           # four (repeatable; names per Design::from_str,
//!                           # e.g. pr4, sh16, sh16+c8+boost)
//!   ... --journal[=PATH] --resume[=PATH] --chaos=SEED --deadline=SECS
//!                           # supervision knobs (see ResCli)
//!   ... --trace[=PATH] --metrics[=PATH] --metrics-interval=N --progress[=PATH]
//!                           # observability sinks (see ObsCli)
//!   ... --allocs=PATH       # embed an alloc-probe --json report in the
//!                           # sweep JSON (compared by --compare)
//!   ... --compare=BASELINE.json [--compare-threshold=R]
//!                           # regression gate: diff this run against a
//!                           # committed baseline report; exit 1 on any
//!                           # digest/throughput/phase/alloc regression

use dcl1::{GpuConfig, SimOptions};
use dcl1_bench::compare::{compare_reports, DEFAULT_THROUGHPUT_THRESHOLD};
use dcl1_bench::runner::{self, SweepOutcome};
use dcl1_bench::{grid, ObsCli, ResCli, Scale, Table};
use dcl1_obs::json::escape;
use std::fmt::Write as _;

/// Renders the sweep report as a JSON document.
#[expect(clippy::too_many_arguments)] // a report has many independent facts
fn sweep_json(
    scale: Scale,
    fast_forward: bool,
    timings: &[runner::PointTiming],
    outcome: &SweepOutcome,
    total_points: usize,
    total_sim_cycles: u64,
    end_to_end_wall: f64,
    chaos_seed: Option<u64>,
    digest: &str,
    allocs_json: Option<&str>,
) -> String {
    let m = runner::memo_stats();
    let sim_wall = m.wall_nanos as f64 / 1e9;
    let khz = if sim_wall > 0.0 { m.sim_cycles as f64 / sim_wall / 1e3 } else { 0.0 };
    let recovery = runner::recovery_log();
    let sh = runner::shard_sweep_stats();
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"scale\": \"{scale:?}\",\n  \"fast_forward\": {fast_forward},\n  \"workers\": {},\n  \"shards\": {{\n    \"requested\": {},\n    \"effective_max\": {},\n    \"barrier_stall_seconds\": {:.6}\n  }},\n  \"chaos_seed\": {},\n  \"stats_digest\": \"{digest}\",\n  \"totals\": {{\n    \"points\": {total_points},\n    \"points_simulated\": {},\n    \"points_from_memo\": {},\n    \"sim_cycles\": {total_sim_cycles},\n    \"sim_wall_seconds\": {sim_wall:.6},\n    \"sim_khz\": {khz:.3},\n    \"end_to_end_wall_seconds\": {end_to_end_wall:.6}\n  }},\n  \"recovery\": {{ {} }},\n  \"quarantined\": [",
        runner::effective_workers(),
        runner::effective_shards(),
        sh.shards,
        sh.barrier_wait_nanos as f64 / 1e9,
        chaos_seed.map_or("null".to_string(), |s| s.to_string()),
        m.simulated,
        m.total_hits(),
        recovery.json_fields(),
    );
    for (i, q) in outcome.quarantined.iter().enumerate() {
        let _ = write!(
            out,
            "{}\n    {{\"point\": \"{}\", \"attempts\": {}, \"class\": \"{}\", \"error\": \"{}\"}}",
            if i == 0 { "" } else { "," },
            escape(&q.point),
            q.attempts,
            escape(&q.class),
            escape(&q.error),
        );
    }
    out.push_str("\n  ],\n  \"profile\": ");
    runner::sweep_phase_profile().render_json_into(&mut out);
    out.push_str(",\n  \"registry\": {");
    runner::sweep_registry_snapshot().render_json_into(&mut out);
    out.push_str("},\n  \"allocs\": ");
    match allocs_json {
        // The alloc-probe fragment is embedded verbatim (it is already
        // JSON); trailing whitespace would garble the document.
        Some(frag) => out.push_str(frag.trim_end()),
        None => out.push_str("null"),
    }
    out.push_str(",\n  \"simcheck\": ");
    match simcheck_provenance() {
        Some((rules, findings, suppressed)) => {
            let _ = write!(
                out,
                "{{\"rules\": {rules}, \"findings\": {findings}, \"suppressed\": {suppressed}}}"
            );
        }
        None => out.push_str("null"),
    }
    out.push_str(",\n  \"points\": [");
    for (i, t) in timings.iter().enumerate() {
        let _ = write!(
            out,
            "{}\n    {{\"app\": \"{}\", \"design\": \"{}\", \"sim_cycles\": {}, \"wall_seconds\": {:.6}, \"khz\": {:.3}, \"phases\": ",
            if i == 0 { "" } else { "," },
            escape(t.app),
            escape(&t.design),
            t.sim_cycles,
            t.wall_seconds,
            t.khz()
        );
        t.profile.render_json_into(&mut out);
        out.push('}');
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// The sweep's lint pedigree: rule census size, finding count (0 on a
/// healthy tree — the simcheck-clean gate), and suppression count, from
/// a fresh lint of the enclosing workspace. `None` when the sweep runs
/// outside a workspace checkout (e.g. a deployed binary).
fn simcheck_provenance() -> Option<(usize, usize, usize)> {
    let root = simcheck::workspace::find_root(None).ok()?;
    let report = simcheck::run_lint(&root).ok()?;
    Some((report.rules, report.findings.len(), report.suppressed))
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let obs = ObsCli::parse(&mut args);
    let res = ResCli::parse(&mut args);
    let fast_forward = !args.iter().any(|a| a == "--no-fast-forward");
    let keep_cache = args.iter().any(|a| a == "--keep-cache");
    let json_path = args
        .iter()
        .find_map(|a| a.strip_prefix("--json="))
        .unwrap_or("BENCH_sweep.json")
        .to_string();
    let stats_out = args.iter().find_map(|a| a.strip_prefix("--stats-out=")).map(String::from);
    let compare_path =
        args.iter().find_map(|a| a.strip_prefix("--compare=")).map(String::from);
    let compare_threshold = args
        .iter()
        .find_map(|a| a.strip_prefix("--compare-threshold="))
        .map_or(DEFAULT_THROUGHPUT_THRESHOLD, |v| {
            v.parse().unwrap_or_else(|_| {
                eprintln!("perf_sweep: bad --compare-threshold={v}: expected a float");
                std::process::exit(2);
            })
        });
    let allocs_json = args
        .iter()
        .find_map(|a| a.strip_prefix("--allocs="))
        .map(|p| {
            std::fs::read_to_string(p).unwrap_or_else(|e| {
                eprintln!("perf_sweep: cannot read --allocs={p}: {e}");
                std::process::exit(2);
            })
        });
    let only: Vec<String> =
        args.iter().filter_map(|a| a.strip_prefix("--only=")).map(String::from).collect();
    if let Some(w) = args.iter().find_map(|a| a.strip_prefix("--workers=")) {
        match w.parse::<usize>() {
            Ok(n) if n > 0 => {
                // `--workers=N` is intra-point parallelism: N shard
                // domains inside each machine, and the point-level fan-out
                // shrinks to available/N so the two layers together never
                // oversubscribe the host.
                runner::set_shard_override(n);
                let avail =
                    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
                runner::set_worker_override((avail / n).max(1));
            }
            _ => {
                eprintln!("perf_sweep: bad --workers={w}: expected a positive integer");
                std::process::exit(2);
            }
        }
    }
    let scale = Scale::from_env();

    if !keep_cache {
        runner::clear_disk_cache();
    }
    eprintln!("[perf_sweep] {}", res.banner());
    obs.install_progress();
    let cfg = GpuConfig::default();
    let design_names: Vec<String> =
        args.iter().filter_map(|a| a.strip_prefix("--design=")).map(String::from).collect();
    let designs = grid::parse_designs(&design_names, &cfg).unwrap_or_else(|e| {
        eprintln!("perf_sweep: {e}");
        std::process::exit(2);
    });
    let opts = SimOptions { fast_forward, ..SimOptions::default() };
    let reqs = grid::build_grid(&designs, &only, &cfg, opts);

    let t0 = std::time::Instant::now();
    let outcome = runner::run_apps_supervised(&reqs, scale, runner::effective_workers());
    let wall = t0.elapsed();

    let mut per_point = Table::new(
        format!("Per-point timings ({scale:?}, fast_forward={fast_forward})"),
        &["point", "sim-cycles", "wall s", "KHz"],
    );
    let timings = runner::point_timings();
    for t in &timings {
        per_point.row(
            format!("{}/{}", t.app, t.design),
            vec![
                t.sim_cycles.to_string(),
                format!("{:.3}", t.wall_seconds),
                format!("{:.0}", t.khz()),
            ],
        );
    }
    println!("{per_point}");
    println!("{}", runner::throughput_summary());
    let completed = outcome.completed();
    let total: u64 = completed.iter().map(|s| s.cycles).sum();
    println!(
        "sweep: {} points ({} quarantined), {total} sim-cycles, {:.2} s end-to-end wall",
        reqs.len(),
        outcome.quarantined.len(),
        wall.as_secs_f64()
    );
    let recovery = runner::recovery_log();
    if !recovery.is_clean() {
        eprintln!(
            "[perf_sweep] recovery: {} retries, {} quarantines, {} cache corruptions, \
             {} livelocks, {} deadlines, {} resumed",
            recovery.retries,
            recovery.quarantines,
            recovery.cache_corruptions,
            recovery.livelocks,
            recovery.deadlines,
            recovery.resumed_points
        );
        for line in recovery.events() {
            eprintln!("[perf_sweep]   {line}");
        }
    }

    // Canonical per-point stats: the byte-comparable artifact resume and
    // chaos CI jobs diff against a fault-free reference run.
    let labeled: Vec<(String, dcl1::RunStats)> = reqs
        .iter()
        .zip(&outcome.results)
        .filter_map(|(req, r)| r.as_ref().map(|s| (runner::point_label(req), s.clone())))
        .collect();
    let digest = runner::stats_digest(&labeled);
    if let Some(path) = &stats_out {
        match std::fs::write(path, runner::canonical_stats_dump(&labeled)) {
            Ok(()) => eprintln!("[perf_sweep] wrote {path}"),
            Err(e) => eprintln!("[perf_sweep] cannot write {path}: {e}"),
        }
    }

    let report = sweep_json(
        scale,
        fast_forward,
        &timings,
        &outcome,
        reqs.len(),
        total,
        wall.as_secs_f64(),
        res.chaos_seed,
        &digest,
        allocs_json.as_deref(),
    );
    match std::fs::write(&json_path, &report) {
        Ok(()) => eprintln!("[perf_sweep] wrote {json_path}"),
        Err(e) => eprintln!("[perf_sweep] cannot write {json_path}: {e}"),
    }

    obs.run_if_enabled(scale);

    if let Some(path) = &compare_path {
        let baseline = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("perf_sweep: cannot read --compare={path}: {e}");
            std::process::exit(2);
        });
        match compare_reports(&report, &baseline, compare_threshold) {
            Ok(cmp) => {
                print!("{cmp}");
                if !cmp.passed() {
                    eprintln!("[perf_sweep] regression gate failed against {path}");
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("perf_sweep: --compare failed: {e}");
                std::process::exit(2);
            }
        }
    }

    // Under chaos, quarantines are injected on purpose (persistent-panic
    // points); the proof of robustness is the byte-identical digest plus
    // the quarantine report, so the sweep still exits 0. Without chaos, a
    // quarantined point is a genuine failure.
    if !outcome.quarantined.is_empty() && res.chaos_seed.is_none() {
        eprintln!("[perf_sweep] {} point(s) failed supervision", outcome.quarantined.len());
        std::process::exit(1);
    }
}
